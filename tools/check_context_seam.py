#!/usr/bin/env python
"""Lint gate: the ExecutionContext seam must not regress.

The PR-4 deprecation shims (machine-first signatures, ``backend=``
keyword threading, nested pair accessors, ``from_pair_lists``) were
deleted after their one-release grace period; this gate keeps them
deleted.  It scans ``src/repro/{core,lang,apps}`` and fails when:

* ``backend=`` keyword threading reappears anywhere outside the one
  module that resolves backends (``core/context.py``) — f-string debug
  reprs (``backend={...}``) are tolerated;
* the removed nested pair accessors (``send_pairs`` / ``recv_pairs`` /
  ``place_pairs``) or nested constructors (``from_pair_lists``) are
  mentioned anywhere — they no longer exist, so any occurrence is a
  resurrection;
* the deleted shim machinery (``_UNSET`` sentinel, ``_warn_legacy``)
  reappears anywhere.

Run from the repository root (CI lint job)::

    python tools/check_context_seam.py

Exit status 0 = clean, 1 = violations (printed one per line).
``tests/test_context.py`` runs the same scan, so a violation also fails
tier-1.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: directory trees the seam covers
SCAN_DIRS = ("src/repro/core", "src/repro/lang", "src/repro/apps")

#: the one module allowed to spell ``backend=`` (defaults are resolved
#: there and nowhere else)
BACKEND_SHIM_MODULES = frozenset({"src/repro/core/context.py"})

_BACKEND_KWARG = re.compile(r"backend=(?!\{)")
#: fully banned — these names were deleted in PR 5 and must stay deleted
_RESURRECTED = re.compile(
    r"\b(?:send_pairs|recv_pairs|place_pairs|from_pair_lists"
    r"|_warn_legacy|_UNSET)\b"
)


def scan(root: str = REPO_ROOT) -> list[str]:
    problems: list[str] = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _dirnames, filenames in os.walk(base):
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        if (rel not in BACKEND_SHIM_MODULES
                                and _BACKEND_KWARG.search(line)):
                            problems.append(
                                f"{rel}:{lineno}: backend= kwarg threading "
                                f"outside the context module: "
                                f"{line.strip()}"
                            )
                        if _RESURRECTED.search(line):
                            problems.append(
                                f"{rel}:{lineno}: resurrected deprecated "
                                f"surface (deleted in PR 5): {line.strip()}"
                            )
    return problems


def main() -> int:
    problems = scan()
    if problems:
        print("ExecutionContext seam violations:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"context seam clean across {', '.join(SCAN_DIRS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
