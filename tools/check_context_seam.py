#!/usr/bin/env python
"""Lint gate: the ExecutionContext seam must not regress.

Scans ``src/repro/{core,lang,apps}`` and fails when:

* ``backend=`` keyword threading reappears anywhere outside the shim
  module (``core/context.py``) — the only tolerated form elsewhere is
  the shim parameter default ``backend=_UNSET``;
* the deprecated nested pair accessors (``send_pairs(`` /
  ``recv_pairs(`` / ``place_pairs(``) are *called* anywhere outside the
  three plan modules that define them (``core/schedule.py``,
  ``core/lightweight.py``, ``core/remap.py``).

Run from the repository root (CI lint job)::

    python tools/check_context_seam.py

Exit status 0 = clean, 1 = violations (printed one per line).
``tests/test_context.py`` runs the same scan, so a violation also fails
tier-1.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: directory trees the seam covers
SCAN_DIRS = ("src/repro/core", "src/repro/lang", "src/repro/apps")

#: the one module allowed to spell ``backend=`` (defaults are resolved
#: there and nowhere else)
BACKEND_SHIM_MODULES = frozenset({"src/repro/core/context.py"})

#: modules defining the deprecated nested accessors
PAIR_SHIM_MODULES = frozenset({
    "src/repro/core/schedule.py",
    "src/repro/core/lightweight.py",
    "src/repro/core/remap.py",
})

_BACKEND_KWARG = re.compile(r"backend=(?!_UNSET\b)")
_PAIR_CALL = re.compile(r"\b(?:send_pairs|recv_pairs|place_pairs)\(")


def scan(root: str = REPO_ROOT) -> list[str]:
    problems: list[str] = []
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _dirnames, filenames in os.walk(base):
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as fh:
                    for lineno, line in enumerate(fh, 1):
                        if (rel not in BACKEND_SHIM_MODULES
                                and _BACKEND_KWARG.search(line)):
                            problems.append(
                                f"{rel}:{lineno}: backend= kwarg threading "
                                f"outside the context shim module: "
                                f"{line.strip()}"
                            )
                        if rel not in PAIR_SHIM_MODULES \
                                and _PAIR_CALL.search(line):
                            problems.append(
                                f"{rel}:{lineno}: deprecated nested pair "
                                f"accessor call site: {line.strip()}"
                            )
    return problems


def main() -> int:
    problems = scan()
    if problems:
        print("ExecutionContext seam violations:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"context seam clean across {', '.join(SCAN_DIRS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
