"""Unit tests: chaos_hash, localize_only, stamp clearing, hash reuse."""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    chaos_hash,
    clear_stamp,
    localize_only,
    make_hash_tables,
    split_by_block,
)
from repro.sim import Machine


def env(rng, n=30, p=4):
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    hts = make_hash_tables(rt.ctx, tt)
    return m, rt, tt, hts


class TestChaosHash:
    def test_localized_indices_resolve_correctly(self, rng):
        m, rt, tt, hts = env(rng)
        idx_g = rng.integers(0, 30, 80)
        loc = chaos_hash(rt.ctx, hts, tt, split_by_block(idx_g, m), "s")
        # owned references point at local offsets; ghost refs past n_local
        for p in m.ranks():
            part = split_by_block(idx_g, m)[p]
            owners = tt.owner_local(part)
            offsets = tt.offset_local(part)
            n_local = tt.dist.local_size(p)
            owned = owners == p
            assert np.array_equal(loc[p][owned], offsets[owned])
            assert np.all(loc[p][~owned] >= n_local)

    def test_shared_registry_across_ranks(self, rng):
        m, rt, tt, hts = env(rng)
        chaos_hash(rt.ctx, hts, tt, [np.array([1])] + [None] * 3, "s")
        # stamp exists on every rank's registry even if it hashed nothing
        for ht in hts:
            assert "s" in ht.registry

    def test_rehash_unchanged_is_cheap(self, rng):
        """Second hash of the same indices does no translation traffic."""
        m, rt, tt, hts = env(rng)
        idx = split_by_block(rng.integers(0, 30, 60), m)
        chaos_hash(rt.ctx, hts, tt, idx, "a")
        m.reset_traffic()
        chaos_hash(rt.ctx, hts, tt, idx, "b")  # same indices, new stamp
        # replicated table: no traffic either way; but no new entries:
        assert all(ht.n_entries == len({int(g) for g in part})
                   for ht, part in zip(hts, idx))

    def test_none_indices_allowed(self, rng):
        m, rt, tt, hts = env(rng)
        loc = chaos_hash(rt.ctx, hts, tt, [None] * 4, "s")
        assert all(a.size == 0 for a in loc)

    def test_partial_overlap_inserts_only_new(self, rng):
        m, rt, tt, hts = env(rng)
        chaos_hash(rt.ctx, hts, tt, [np.array([0, 1, 2]), None, None, None], "a")
        before = hts[0].n_entries
        chaos_hash(rt.ctx, hts, tt, [np.array([1, 2, 3]), None, None, None], "b")
        assert hts[0].n_entries == before + 1


class TestLocalizeOnly:
    def test_matches_chaos_hash(self, rng):
        m, rt, tt, hts = env(rng)
        idx = split_by_block(rng.integers(0, 30, 40), m)
        loc1 = chaos_hash(rt.ctx, hts, tt, idx, "s")
        loc2 = localize_only(rt.ctx, hts, idx)
        for a, b in zip(loc1, loc2):
            assert np.array_equal(a, b)

    def test_unhashed_rejected(self, rng):
        m, rt, tt, hts = env(rng)
        with pytest.raises(KeyError):
            localize_only(rt.ctx, hts, [np.array([5])] + [None] * 3)


class TestClearStamp:
    def test_counts_cleared_entries(self, rng):
        m, rt, tt, hts = env(rng)
        idx = split_by_block(rng.integers(0, 30, 40), m)
        chaos_hash(rt.ctx, hts, tt, idx, "nb")
        total = clear_stamp(rt.ctx, hts, "nb")
        uniq = sum(len({int(g) for g in part}) for part in idx)
        assert total == uniq

    def test_release_once_globally(self, rng):
        m, rt, tt, hts = env(rng)
        chaos_hash(rt.ctx, hts, tt, [np.array([1])] + [None] * 3, "s")
        clear_stamp(rt.ctx, hts, "s", release=True)
        assert "s" not in hts[0].registry

    def test_clear_then_rehash_reuses_entries(self, rng):
        """The paper's non-bonded-list update pattern: clear + rehash a
        mostly-overlapping list touches no new table entries."""
        m, rt, tt, hts = env(rng)
        idx1 = rng.integers(0, 30, 50)
        chaos_hash(rt.ctx, hts, tt, split_by_block(idx1, m), "nb")
        entries_before = [ht.n_entries for ht in hts]
        clear_stamp(rt.ctx, hts, "nb")
        chaos_hash(rt.ctx, hts, tt, split_by_block(idx1, m), "nb")
        assert [ht.n_entries for ht in hts] == entries_before


class TestChaosRuntimeFacade:
    def test_hash_tables_cached_per_ttable(self, rng):
        m = Machine(4)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, 4, 10))
        assert rt.hash_tables(tt) is rt.hash_tables(tt)
        rt.drop_hash_tables(tt)
        # dropped: next call makes new ones
        assert rt.hash_tables(tt) is not None

    def test_stamp_expr_union(self, rng):
        m = Machine(2)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table([0, 0, 1, 1])
        rt.hash_indirection(tt, [np.array([2]), np.array([0])], "a")
        rt.hash_indirection(tt, [np.array([3]), np.array([1])], "b")
        expr = rt.stamp_expr(tt, "a", "b")
        sched = rt.build_schedule(tt, expr)
        # each stamp fetched one off-processor element on each of 2 ranks
        assert sched.total_elements() == 4

    def test_release_purges_and_shrinks_occupancy(self, rng):
        """``release=True`` tombstones entries whose stamp mask went
        empty and recycles their rows: key-store occupancy, table bytes,
        and ghost capacity all measurably shrink."""
        m, rt, tt, hts = env(rng, n=3000)
        idx = split_by_block(rng.integers(0, 3000, 4000), m)
        chaos_hash(rt.ctx, hts, tt, idx, "nb")
        occupied = [len(ht) for ht in hts]
        nbytes = [ht.nbytes() for ht in hts]
        assert any(n > 0 for n in occupied)
        clear_stamp(rt.ctx, hts, "nb", release=True)
        assert all(len(ht) == 0 for ht in hts)
        assert all(ht.nbytes() <= b for ht, b in zip(hts, nbytes))
        assert sum(ht.nbytes() for ht in hts) < sum(nbytes)

    def test_release_keeps_entries_under_other_stamps(self, rng):
        m, rt, tt, hts = env(rng)
        shared = [np.array([0, 1, 2]), None, None, None]
        chaos_hash(rt.ctx, hts, tt, shared, "a")
        chaos_hash(rt.ctx, hts, tt, shared, "b")
        chaos_hash(rt.ctx, hts, tt, [np.array([3, 4]), None, None, None],
                   "b")
        clear_stamp(rt.ctx, hts, "b", release=True)
        # entries stamped only by "b" were purged, shared ones survive
        assert len(hts[0]) == 3
        assert np.array_equal(
            localize_only(rt.ctx, hts, shared)[0],
            chaos_hash(rt.ctx, hts, tt, shared, "a")[0],
        )
