"""Unit tests: RCB and RIB."""

import numpy as np
import pytest

from repro.core import IrregularDistribution
from repro.partitioners import RCB, RIB, run_partitioner
from repro.sim import Machine


def clustered_coords(rng, n=400, clusters=4):
    centers = rng.random((clusters, 3)) * 10
    pts = []
    for c in centers:
        pts.append(c + 0.3 * rng.standard_normal((n // clusters, 3)))
    return np.concatenate(pts)


@pytest.mark.parametrize("cls", [RCB, RIB])
class TestBisection:
    def test_every_element_assigned(self, cls, rng):
        coords = rng.random((100, 3))
        res = cls().partition(coords, 8)
        assert res.labels.shape == (100,)
        assert set(np.unique(res.labels)) <= set(range(8))

    def test_balance_with_uniform_weights(self, cls, rng):
        coords = rng.random((1000, 2))
        res = cls().partition(coords, 8)
        counts = np.bincount(res.labels, minlength=8)
        assert counts.max() - counts.min() <= 8

    def test_weighted_balance(self, cls, rng):
        coords = rng.random((500, 3))
        w = rng.random(500) * 10 + 0.1
        res = cls().partition(coords, 4, w)
        assert res.imbalance(w) < 1.2

    def test_non_power_of_two_parts(self, cls, rng):
        coords = rng.random((300, 3))
        res = cls().partition(coords, 7)
        assert set(np.unique(res.labels)) == set(range(7))
        counts = np.bincount(res.labels, minlength=7)
        assert counts.min() > 0

    def test_single_part(self, cls, rng):
        res = cls().partition(rng.random((10, 3)), 1)
        assert np.all(res.labels == 0)

    def test_spatial_locality(self, cls, rng):
        """Parts are spatially compact: mean intra-part spread is much
        smaller than the global spread."""
        coords = clustered_coords(rng)
        res = cls().partition(coords, 4)
        global_spread = coords.std(axis=0).mean()
        intra = []
        for k in range(4):
            pts = coords[res.labels == k]
            intra.append(pts.std(axis=0).mean())
        assert np.mean(intra) < global_spread

    def test_1d_coords_accepted(self, cls, rng):
        res = cls().partition(rng.random(64), 4)
        assert res.labels.shape == (64,)

    def test_degenerate_identical_points(self, cls):
        coords = np.ones((16, 3))
        res = cls().partition(coords, 4)
        counts = np.bincount(res.labels, minlength=4)
        assert counts.max() <= 8  # still splits somehow

    def test_negative_weights_rejected(self, cls, rng):
        with pytest.raises(ValueError):
            cls().partition(rng.random((10, 3)), 2, -np.ones(10))

    def test_weight_shape_mismatch_rejected(self, cls, rng):
        with pytest.raises(ValueError):
            cls().partition(rng.random((10, 3)), 2, np.ones(9))

    def test_parallel_cost_grows_with_p(self, cls):
        part = cls()
        m16, m128 = Machine(16), Machine(128)
        c16 = sum(part.parallel_cost(10000, 16, m16))
        c128 = sum(part.parallel_cost(10000, 128, m128))
        assert c128 > c16 * 0.5  # communication grows even as compute shrinks
        comm16 = part.parallel_cost(10000, 16, m16)[1]
        comm128 = part.parallel_cost(10000, 128, m128)[1]
        assert comm128 > comm16


class TestRIBSpecific:
    def test_diagonal_geometry_single_cut(self, rng):
        """RIB should split an elongated diagonal cloud across its long
        axis, producing two compact halves."""
        t = rng.random(400)
        coords = np.stack([t * 10, t * 10, 0.1 * rng.standard_normal(400)],
                          axis=1)
        res = RIB().partition(coords, 2)
        m0 = coords[res.labels == 0].mean(axis=0)
        m1 = coords[res.labels == 1].mean(axis=0)
        assert np.linalg.norm(m0 - m1) > 3.0


class TestRunPartitioner:
    def test_charges_partition_category(self, rng):
        m = Machine(8)
        run_partitioner(m, RCB(), rng.random((200, 3)))
        assert m.clocks.mean_category("partition") > 0

    def test_result_converts_to_distribution(self, rng):
        m = Machine(4)
        res = run_partitioner(m, RCB(), rng.random((50, 3)))
        dist = res.to_distribution(4)
        assert isinstance(dist, IrregularDistribution)
        assert dist.n_global == 50
