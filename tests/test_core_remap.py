"""Unit tests: remapping between distributions."""

import numpy as np
import pytest

from repro.core import (
    BlockDistribution,
    ExecutionContext,
    CyclicDistribution,
    IrregularDistribution,
    remap,
    remap_array,
    remap_global_values,
)
from repro.sim import Machine


class TestRemapPlan:
    def test_block_to_cyclic_roundtrip(self, ctx4, rng):
        n = 23
        old = BlockDistribution(n, 4)
        new = CyclicDistribution(n, 4)
        x_g = rng.standard_normal(n)
        data = [x_g[old.global_indices(p)] for p in range(4)]
        plan = remap(ctx4, old, new)
        out = remap_array(ctx4, plan, data)
        for p in range(4):
            assert np.array_equal(out[p], x_g[new.global_indices(p)])

    def test_random_to_random(self, ctx4, rng):
        n = 50
        old = IrregularDistribution(rng.integers(0, 4, n), 4)
        new = IrregularDistribution(rng.integers(0, 4, n), 4)
        x_g = rng.standard_normal(n)
        data = [x_g[old.global_indices(p)] for p in range(4)]
        out = remap_global_values(ctx4, old, new, data)
        for p in range(4):
            assert np.array_equal(out[p], x_g[new.global_indices(p)])

    def test_identity_remap_moves_nothing(self, ctx4, rng):
        n = 20
        d = BlockDistribution(n, 4)
        plan = remap(ctx4, d, d)
        assert plan.elements_moved() == 0
        assert plan.total_messages() == 0

    def test_2d_rows(self, ctx4, rng):
        n = 30
        old = BlockDistribution(n, 4)
        new = IrregularDistribution(rng.integers(0, 4, n), 4)
        pos_g = rng.standard_normal((n, 3))
        data = [pos_g[old.global_indices(p)] for p in range(4)]
        plan = remap(ctx4, old, new)
        out = remap_array(ctx4, plan, data)
        for p in range(4):
            assert np.array_equal(out[p], pos_g[new.global_indices(p)])

    def test_plan_reused_for_multiple_arrays(self, ctx4, rng):
        n = 25
        old = BlockDistribution(n, 4)
        new = CyclicDistribution(n, 4)
        plan = remap(ctx4, old, new)
        for _ in range(3):
            x_g = rng.standard_normal(n)
            data = [x_g[old.global_indices(p)] for p in range(4)]
            out = remap_array(ctx4, plan, data)
            for p in range(4):
                assert np.array_equal(out[p], x_g[new.global_indices(p)])

    def test_size_mismatch_rejected(self, ctx4):
        with pytest.raises(ValueError):
            remap(ctx4, BlockDistribution(10, 4), BlockDistribution(11, 4))

    def test_machine_mismatch_rejected(self, ctx4):
        with pytest.raises(ValueError):
            remap(ctx4, BlockDistribution(10, 2), BlockDistribution(10, 2))

    def test_wrong_local_size_rejected(self, ctx4, rng):
        n = 20
        old = BlockDistribution(n, 4)
        new = CyclicDistribution(n, 4)
        plan = remap(ctx4, old, new)
        bad = [np.zeros(1) for _ in range(4)]
        with pytest.raises(IndexError):
            remap_array(ctx4, plan, bad)

    def test_charges_remap_category(self, rng):
        m = Machine(4)
        ctx = ExecutionContext.resolve(m)
        n = 40
        old = BlockDistribution(n, 4)
        new = IrregularDistribution(rng.integers(0, 4, n), 4)
        x_g = rng.standard_normal(n)
        data = [x_g[old.global_indices(p)] for p in range(4)]
        remap_global_values(ctx, old, new, data)
        assert m.clocks.mean_category("remap") > 0

    def test_elements_moved_counts_cross_rank_only(self, ctx4):
        old = BlockDistribution(8, 4)
        # swap halves of each pair of ranks
        new = IrregularDistribution([1, 1, 0, 0, 3, 3, 2, 2], 4)
        plan = remap(ctx4, old, new)
        assert plan.elements_moved() == 8
