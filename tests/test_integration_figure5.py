"""Integration test for Figure 5's two-phase pattern: incremental
schedules let a second loop reuse the first loop's gathered data.

    L2: x(ia(i)) += y(ia(i)) * y(ib(i))      (phase 1: stamps a, b)
    L3: x(ic(i)) += y(ic(i))                 (phase 2: stamp c)

Instead of a full schedule for L3, an *incremental* schedule fetches only
the elements of y that L2's schedules did not already bring in.
"""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    allocate_ghosts,
    gather,
    split_by_block,
    stack_local_ghost,
)
from repro.sim import Machine


@pytest.fixture
def setup(rng):
    n, e = 60, 150
    m = Machine(4)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, 4, n))
    y_g = rng.standard_normal(n)
    y = rt.distribute(y_g, tt)
    ia = rng.integers(0, n, e)
    ib = rng.integers(0, n, e)
    ic = rng.integers(0, n, e)
    loc_a = rt.hash_indirection(tt, split_by_block(ia, m), "a")
    loc_b = rt.hash_indirection(tt, split_by_block(ib, m), "b")
    loc_c = rt.hash_indirection(tt, split_by_block(ic, m), "c")
    return m, rt, tt, y, y_g, (ia, ib, ic), (loc_a, loc_b, loc_c)


class TestTwoPhaseIncremental:
    def test_incremental_fetches_only_new_elements(self, setup):
        m, rt, tt, y, y_g, (ia, ib, ic), _ = setup
        e = rt.hash_tables(tt)[0].expr
        phase1 = rt.build_schedule(tt, e("a", "b"))
        inc = rt.build_schedule(tt, e("c") - e("a") - e("b"))
        full_c = rt.build_schedule(tt, e("c"))
        assert inc.total_elements() <= full_c.total_elements()
        # union property: phase1 + incremental covers everything c needs
        assert (
            phase1.total_elements() + inc.total_elements()
            == rt.build_schedule(tt, e("a", "b", "c")).total_elements()
        )

    def test_second_phase_reads_correct_values(self, setup):
        """Gather phase-1's schedule, then only the incremental one; the
        second loop's localized reads must see correct y values."""
        m, rt, tt, y, y_g, (ia, ib, ic), (loc_a, loc_b, loc_c) = setup
        e = rt.hash_tables(tt)[0].expr
        phase1 = rt.build_schedule(tt, e("a", "b"))
        inc = rt.build_schedule(tt, e("c") - e("a") - e("b"))
        ghosts = [np.zeros(g) for g in phase1.ghost_size]
        gather(rt.ctx, phase1, y.local, ghosts)
        gather(rt.ctx, inc, y.local, ghosts)   # tops up only the new elements
        stacked = stack_local_ghost(y.local, ghosts)
        for p, part in enumerate(split_by_block(ic, m)):
            assert np.array_equal(stacked[p][loc_c[p]], y_g[part])
        # and phase-1 reads still valid
        for p, part in enumerate(split_by_block(ia, m)):
            assert np.array_equal(stacked[p][loc_a[p]], y_g[part])

    def test_incremental_moves_less_than_full(self, setup):
        """The incremental gather's traffic is at most the full gather's,
        and strictly less whenever the phases overlap."""
        m, rt, tt, y, y_g, (ia, ib, ic), _ = setup
        e = rt.hash_tables(tt)[0].expr
        inc = rt.build_schedule(tt, e("c") - e("a") - e("b"))
        full_c = rt.build_schedule(tt, e("c"))
        before = m.traffic.copy()
        gather(rt.ctx, inc, y.local, allocate_ghosts(inc, y.local))
        inc_traffic = (m.traffic - before).total_bytes
        before = m.traffic.copy()
        gather(rt.ctx, full_c, y.local, allocate_ghosts(full_c, y.local))
        full_traffic = (m.traffic - before).total_bytes
        assert inc_traffic <= full_traffic

    def test_empty_incremental_when_fully_covered(self, rng):
        """If phase 2 references a subset of phase 1's elements, the
        incremental schedule is empty — zero communication."""
        m = Machine(2)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table([0] * 5 + [1] * 5)
        z = np.zeros(0, dtype=np.int64)
        rt.hash_indirection(tt, [np.array([7, 8, 9]), z], "big")
        rt.hash_indirection(tt, [np.array([8]), z], "small")
        e = rt.hash_tables(tt)[0].expr
        inc = rt.build_schedule(tt, e("small") - e("big"))
        assert inc.total_elements() == 0
        assert inc.total_messages() == 0
