"""Unit tests: cost models."""

import pytest

from repro.sim import CostModel, IPSC860, MODERN_CLUSTER, PARAGON


class TestCostModel:
    def test_message_time_linear_in_bytes(self):
        cm = CostModel(alpha=1e-4, beta=1e-6, gamma=0.0)
        t1 = cm.message_time(1000)
        t2 = cm.message_time(2000)
        assert t2 - t1 == pytest.approx(1000 * 1e-6)

    def test_message_time_includes_alpha(self):
        cm = CostModel(alpha=5e-5, beta=0.0, gamma=0.0)
        assert cm.message_time(0) == pytest.approx(5e-5)
        assert cm.message_time(10**6) == pytest.approx(5e-5)

    def test_hop_penalty(self):
        cm = CostModel(alpha=0.0, beta=0.0, gamma=2e-6)
        assert cm.message_time(8, hops=1) == pytest.approx(0.0)
        assert cm.message_time(8, hops=4) == pytest.approx(6e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            IPSC860.message_time(-1)

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            IPSC860.message_time(8, hops=0)

    def test_compute_time_scales(self):
        assert IPSC860.compute_time(100) == pytest.approx(100 * IPSC860.flop)

    def test_compute_time_negative_rejected(self):
        with pytest.raises(ValueError):
            IPSC860.compute_time(-5)

    def test_memory_time(self):
        assert IPSC860.memory_time(10) == pytest.approx(10 * IPSC860.memop)
        with pytest.raises(ValueError):
            IPSC860.memory_time(-1)

    def test_with_overrides_replaces_only_given(self):
        cm = IPSC860.with_overrides(alpha=1.0)
        assert cm.alpha == 1.0
        assert cm.beta == IPSC860.beta
        assert IPSC860.alpha != 1.0  # original untouched

    def test_presets_ordering(self):
        # newer machines have lower latency and higher bandwidth
        assert PARAGON.alpha < IPSC860.alpha
        assert PARAGON.beta < IPSC860.beta
        assert MODERN_CLUSTER.alpha < PARAGON.alpha

    def test_presets_named(self):
        assert IPSC860.name == "iPSC/860"
        assert PARAGON.name == "Paragon"

    def test_message_aggregation_wins(self):
        """k messages of n bytes cost more than one message of k*n bytes —
        the premise of communication vectorization."""
        k, n = 10, 100
        many = k * IPSC860.message_time(n)
        one = IPSC860.message_time(k * n)
        assert one < many
