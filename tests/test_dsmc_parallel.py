"""Integration tests: parallel DSMC vs the sequential oracle (bitwise)."""

import numpy as np
import pytest

from repro.apps.dsmc import (
    CartesianGrid,
    DSMCConfig,
    ParallelDSMC,
    SequentialDSMC,
)
from repro.partitioners import RCB, ChainPartitioner
from repro.sim import Machine


def run_pair(grid_shape=(10, 10), n_ranks=4, steps=10, n_initial=600,
             inflow=25, migration="lightweight", **kw):
    grid = CartesianGrid(grid_shape)
    cfg = DSMCConfig(n_initial=n_initial, inflow_rate=inflow, dt=0.4)
    seq = SequentialDSMC(grid, cfg)
    seq.run(steps)
    m = Machine(n_ranks)
    par = ParallelDSMC(
        grid, m, DSMCConfig(n_initial=n_initial, inflow_rate=inflow, dt=0.4),
        migration=migration, **kw
    )
    par.run(steps)
    return seq, par, m


def assert_states_equal(seq, par):
    a = seq.canonical_state()
    b = par.canonical_state()
    assert np.array_equal(a[0], b[0]), "particle id sets differ"
    assert np.array_equal(a[1], b[1]), "positions differ"
    assert np.array_equal(a[2], b[2]), "velocities differ"


class TestOracle:
    def test_lightweight_bitwise_match(self):
        seq, par, _ = run_pair(migration="lightweight")
        assert_states_equal(seq, par)

    def test_regular_bitwise_match(self):
        seq, par, _ = run_pair(migration="regular")
        assert_states_equal(seq, par)

    def test_3d_match(self):
        seq, par, _ = run_pair(grid_shape=(5, 5, 5), n_ranks=8, steps=6)
        assert_states_equal(seq, par)

    def test_single_rank(self):
        seq, par, _ = run_pair(n_ranks=1, steps=5)
        assert_states_equal(seq, par)

    def test_with_initial_partitioner(self):
        seq, par, _ = run_pair(partitioner=RCB())
        assert_states_equal(seq, par)

    def test_with_periodic_remapping(self):
        grid = CartesianGrid((10, 10))
        cfg = DSMCConfig(n_initial=600, inflow_rate=25, dt=0.4)
        seq = SequentialDSMC(grid, cfg)
        seq.run(12)
        m = Machine(4)
        par = ParallelDSMC(grid, m,
                           DSMCConfig(n_initial=600, inflow_rate=25, dt=0.4))
        par.run(12, remap_every=4,
                remap_partitioner=ChainPartitioner(axis=0))
        assert_states_equal(seq, par)

    def test_collision_counts_match(self):
        seq, par, _ = run_pair()
        assert seq.trace.n_collisions == par.trace.n_collisions
        assert seq.trace.n_particles == par.trace.n_particles


class TestPaperEffects:
    def test_lightweight_beats_regular(self):
        """Table 4: light-weight schedules are much cheaper."""
        _, _, m_lw = run_pair(migration="lightweight", steps=8)
        _, _, m_reg = run_pair(migration="regular", steps=8)
        assert m_lw.execution_time() < m_reg.execution_time()
        # the gap comes from the inspector side (translation/permutation)
        assert m_lw.clocks.mean_category("inspector") < \
            m_reg.clocks.mean_category("inspector")

    def test_remapping_restores_balance(self):
        """Table 5: with directional flow, periodic remapping keeps load
        balance far better than a static partition."""
        grid = CartesianGrid((16, 8))
        cfg = lambda: DSMCConfig(n_initial=800, inflow_rate=60, dt=0.4)  # noqa: E731
        m_static = Machine(8)
        par_static = ParallelDSMC(grid, m_static, cfg())
        par_static.run(20)
        m_remap = Machine(8)
        par_remap = ParallelDSMC(grid, m_remap, cfg())
        par_remap.run(20, remap_every=5,
                      remap_partitioner=ChainPartitioner(axis=0))
        counts_static = par_static.local_counts().astype(float) + 1
        counts_remap = par_remap.local_counts().astype(float) + 1
        imb_static = counts_static.max() / counts_static.mean()
        imb_remap = counts_remap.max() / counts_remap.mean()
        assert imb_remap < imb_static

    def test_migration_traffic_reported(self):
        _, par, m = run_pair(steps=5)
        assert m.traffic.tag_bytes("scatter_append") > 0

    def test_directional_flow_skews_load_along_x(self):
        """The directional flow develops a strong x-dependent density
        profile — the drifting imbalance remapping must fix, and the
        reason a 1-D chain partitioner along x works so well (§4.2.1)."""
        grid = CartesianGrid((16, 4))
        m = Machine(4)
        par = ParallelDSMC(grid, m,
                           DSMCConfig(n_initial=400, inflow_rate=50, dt=0.4))
        par.run(25)
        loads = par.cell_loads().reshape(16, 4).sum(axis=1).astype(float)
        assert loads.max() > 2.0 * loads.min() + 1


class TestValidation:
    def test_bad_migration_mode(self):
        with pytest.raises(ValueError):
            ParallelDSMC(CartesianGrid((4, 4)), Machine(2), migration="magic")

    def test_negative_steps(self):
        par = ParallelDSMC(CartesianGrid((4, 4)), Machine(2))
        with pytest.raises(ValueError):
            par.run(-1)

    def test_bad_remap_every(self):
        par = ParallelDSMC(CartesianGrid((4, 4)), Machine(2))
        with pytest.raises(ValueError):
            par.run(5, remap_every=0, remap_partitioner=RCB())

    def test_time_report_keys(self):
        _, par, _ = run_pair(steps=3)
        rep = par.time_report()
        for k in ("execution", "computation", "communication", "inspector",
                  "partition", "remap", "load_balance"):
            assert k in rep
