"""Unit tests: light-weight schedules and scatter_append."""

import numpy as np
import pytest

from repro.core import (
    ExecutionContext,
    build_lightweight_schedule,
    scatter_append,
)
from repro.sim import Machine


class TestBuild:
    def test_basic_routing(self, ctx4, rng):
        dest = [rng.integers(0, 4, 20) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        for p in range(4):
            assert sched.send_sizes(p).sum() == 20
            got = sched.recv_total(p)
            expected = sum(int(np.count_nonzero(d == p)) for d in dest)
            assert got == expected

    def test_out_of_range_dest_rejected(self, ctx4):
        dest = [np.array([0]), np.array([4]), np.zeros(0, np.int64),
                np.zeros(0, np.int64)]
        with pytest.raises(ValueError):
            build_lightweight_schedule(ctx4, dest)

    def test_empty_ranks_ok(self, ctx4):
        dest = [np.zeros(0, dtype=np.int64)] * 4
        sched = build_lightweight_schedule(ctx4, dest)
        assert sched.total_messages() == 0
        assert sched.total_moved() == 0

    def test_inconsistent_schedule_rejected(self):
        from csr_helpers import lightweight_from_pairs

        z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
        with pytest.raises(ValueError):
            lightweight_from_pairs(
                n_ranks=2,
                send_sel=[[z(), np.array([0])], [z(), z()]],
                recv_counts=np.zeros((2, 2), dtype=np.int64),
            )

    def test_build_cheaper_than_regular_inspector(self, rng):
        """The headline claim: light-weight construction does no index
        translation — strictly less inspector time than hash+schedule."""
        from repro.core import ChaosRuntime, split_by_block

        n, p = 400, 4
        dest_g = rng.integers(0, p, n)
        m1 = Machine(p)
        ctx1 = ExecutionContext.resolve(m1)
        build_lightweight_schedule(ctx1, split_by_block(dest_g, m1))
        lw_time = m1.execution_time()

        m2 = Machine(p)
        rt = ChaosRuntime(m2)
        tt = rt.irregular_table(rng.integers(0, p, n))
        m2.reset_clocks()
        idx_g = rng.integers(0, n, n)
        rt.hash_indirection(tt, split_by_block(idx_g, m2), "s")
        rt.build_schedule(tt, "s")
        regular_time = m2.execution_time()
        assert lw_time < regular_time


class TestScatterAppend:
    def test_multiset_preserved(self, ctx4, rng):
        values = [rng.standard_normal(15) for _ in range(4)]
        dest = [rng.integers(0, 4, 15) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        out = scatter_append(ctx4, sched, values)
        all_in = np.sort(np.concatenate(values))
        all_out = np.sort(np.concatenate(out))
        assert np.allclose(all_in, all_out)

    def test_elements_reach_destination(self, ctx4):
        values = [np.array([100.0 + i]) for i in range(4)]
        dest = [np.array([(p + 1) % 4]) for p in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        out = scatter_append(ctx4, sched, values)
        for p in range(4):
            src = (p - 1) % 4
            assert np.allclose(out[p], [100.0 + src])

    def test_2d_rows_move_together(self, ctx4, rng):
        values = [rng.standard_normal((10, 3)) for _ in range(4)]
        dest = [rng.integers(0, 4, 10) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        out = scatter_append(ctx4, sched, values)
        total_rows = sum(o.shape[0] for o in out)
        assert total_rows == 40
        src_set = {tuple(r) for v in values for r in v}
        dst_set = {tuple(r) for o in out for r in o}
        assert src_set == dst_set

    def test_same_schedule_reused_for_aligned_arrays(self, ctx4, rng):
        ids = [np.arange(8) + 100 * p for p in range(4)]
        vel = [rng.standard_normal(8) for _ in range(4)]
        dest = [rng.integers(0, 4, 8) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        out_ids = scatter_append(ctx4, sched, ids)
        out_vel = scatter_append(ctx4, sched, vel)
        # alignment: element k of out_ids corresponds to element k of out_vel
        for p in range(4):
            assert out_ids[p].shape[0] == out_vel[p].shape[0]
        # check pairing: build (id -> vel) map and compare to the source
        src_map = {}
        for p in range(4):
            for i, d in enumerate(dest[p]):
                src_map[int(ids[p][i])] = vel[p][i]
        for p in range(4):
            for i in range(out_ids[p].shape[0]):
                assert src_map[int(out_ids[p][i])] == pytest.approx(
                    out_vel[p][i]
                )

    def test_wrong_length_rejected(self, ctx4, rng):
        dest = [rng.integers(0, 4, 5) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        bad = [rng.standard_normal(4) for _ in range(4)]
        with pytest.raises(ValueError):
            scatter_append(ctx4, sched, bad)

    def test_deterministic_order(self, ctx4, rng):
        values = [rng.standard_normal(12) for _ in range(4)]
        dest = [rng.integers(0, 4, 12) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        out1 = scatter_append(ctx4, sched, values)
        out2 = scatter_append(ctx4, sched, values)
        for a, b in zip(out1, out2):
            assert np.array_equal(a, b)

    def test_empty_everything(self, ctx4):
        dest = [np.zeros(0, dtype=np.int64)] * 4
        sched = build_lightweight_schedule(ctx4, dest)
        out = scatter_append(ctx4, sched, [np.zeros(0)] * 4)
        assert all(o.size == 0 for o in out)
