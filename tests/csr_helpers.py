"""Test-side nested-list helpers for CSR-native plans.

The runtime stores every communication plan as flat CSR buffers; the
kwarg-era nested constructors (``from_pair_lists``) and accessors
(``send_pairs`` et al.) were deleted from ``src/`` in PR 5.  Tests that
want to build a plan from one small array per ``(p, q)`` pair — or to
compare the flat buffers against their nested presentation — use these
helpers instead, which concatenate/split through the same public CSR
layout functions the builders use.
"""

from __future__ import annotations

import numpy as np

from repro.core import LightweightSchedule, RemapPlan, Schedule
from repro.core.compiled import concat_csr, split_csr


def schedule_from_pairs(
    n_ranks: int,
    send_indices: list[list[np.ndarray]],
    recv_slots: list[list[np.ndarray]],
    ghost_size: list[int],
) -> Schedule:
    """Build a :class:`Schedule` from nested per-pair index lists."""
    send, send_off = zip(*(concat_csr(row) for row in send_indices))
    recv, recv_off = zip(*(concat_csr(row) for row in recv_slots))
    return Schedule(
        n_ranks=n_ranks,
        send_indices=list(send),
        send_offsets=list(send_off),
        recv_slots=list(recv),
        recv_offsets=list(recv_off),
        ghost_size=ghost_size,
    )


def lightweight_from_pairs(
    n_ranks: int,
    send_sel: list[list[np.ndarray]],
    recv_counts: np.ndarray,
) -> LightweightSchedule:
    """Build a :class:`LightweightSchedule` from nested selection lists."""
    flat, offs = zip(*(concat_csr(row) for row in send_sel))
    return LightweightSchedule(
        n_ranks=n_ranks, send_sel=list(flat), send_offsets=list(offs),
        recv_counts=recv_counts,
    )


def remap_from_pairs(
    n_ranks: int,
    send_sel: list[list[np.ndarray]],
    place_sel: list[list[np.ndarray]],
    new_sizes: list[int],
) -> RemapPlan:
    """Build a :class:`RemapPlan` from nested selection/placement lists."""
    send, send_off = zip(*(concat_csr(row) for row in send_sel))
    place, place_off = zip(*(concat_csr(row) for row in place_sel))
    return RemapPlan(
        n_ranks=n_ranks, send_sel=list(send), send_offsets=list(send_off),
        place_sel=list(place), place_offsets=list(place_off),
        new_sizes=new_sizes,
    )


def send_pair_views(plan) -> list[list[np.ndarray]]:
    """Nested ``[p][q]`` views of a plan's send-side CSR buffers."""
    flats = getattr(plan, "send_indices", None)
    if flats is None:
        flats = plan.send_sel
    return [split_csr(flats[p], plan.send_offsets[p])
            for p in range(plan.n_ranks)]


def recv_pair_views(sched: Schedule) -> list[list[np.ndarray]]:
    """Nested ``[p][q]`` views of a schedule's receive-side buffers."""
    return [split_csr(sched.recv_slots[p], sched.recv_offsets[p])
            for p in range(sched.n_ranks)]


def place_pair_views(plan: RemapPlan) -> list[list[np.ndarray]]:
    """Nested ``[p][q]`` views of a remap plan's placement buffers."""
    return [split_csr(plan.place_sel[p], plan.place_offsets[p])
            for p in range(plan.n_ranks)]
