"""Unit tests: stamped index hash table and stamp algebra.

``TestIndexHashTable`` runs once per key store (dict reference and
open-addressed) — the store must be invisible to table behaviour.
"""

import numpy as np
import pytest

from repro.core import (
    DictKeyStore,
    IndexHashTable,
    OpenAddressedKeyStore,
    StampExpr,
    StampRegistry,
)


class TestStampRegistry:
    def test_acquire_idempotent(self):
        r = StampRegistry()
        m1 = r.acquire("a")
        m2 = r.acquire("a")
        assert m1 == m2

    def test_distinct_bits(self):
        r = StampRegistry()
        assert r.acquire("a") != r.acquire("b")

    def test_release_frees_bit(self):
        r = StampRegistry()
        m = r.acquire("a")
        r.release("a")
        assert "a" not in r
        assert r.acquire("fresh") == m  # lowest bit reused

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            StampRegistry().release("nope")

    def test_mask_of_unknown_rejected(self):
        with pytest.raises(KeyError):
            StampRegistry().mask_of("nope")

    def test_exhaustion(self):
        r = StampRegistry()
        for i in range(StampRegistry.MAX_STAMPS):
            r.acquire(f"s{i}")
        with pytest.raises(RuntimeError):
            r.acquire("one-too-many")

    def test_names_sorted(self):
        r = StampRegistry()
        r.acquire("b")
        r.acquire("a")
        assert r.names() == ["a", "b"]


class TestStampExpr:
    def test_union(self):
        e = StampExpr(0b01) | StampExpr(0b10)
        assert e.include == 0b11

    def test_difference(self):
        e = StampExpr(0b10) - StampExpr(0b01)
        masks = np.array([0b01, 0b10, 0b11, 0b00])
        assert np.array_equal(e.matches(masks), [False, True, False, False])

    def test_matches_union(self):
        e = StampExpr(0b011)
        masks = np.array([0b001, 0b010, 0b100, 0b110])
        assert np.array_equal(e.matches(masks), [True, True, False, True])


@pytest.fixture(params=[DictKeyStore, OpenAddressedKeyStore],
                ids=["dict", "open-addressed"])
def store_cls(request):
    return request.param


class TestIndexHashTable:
    @pytest.fixture(autouse=True)
    def _bind_store(self, store_cls):
        self.store_cls = store_cls

    def make(self, rank=0, n_local=10):
        return IndexHashTable(rank=rank, n_local=n_local,
                              store=self.store_cls())

    def test_insert_and_lookup(self):
        ht = self.make()
        slots = ht.insert_translated(
            np.array([5, 17, 3]), np.array([0, 1, 2]), np.array([5, 7, 3])
        )
        assert slots.tolist() == [0, 1, 2]
        assert np.array_equal(ht.lookup_slots(np.array([17, 5])), [1, 0])
        assert ht.lookup_slots(np.array([99]))[0] == -1
        assert len(ht) == 3
        assert 17 in ht and 99 not in ht

    def test_ghost_slots_only_for_offproc(self):
        ht = self.make(rank=1)
        ht.insert_translated(
            np.array([1, 2, 3]), np.array([1, 0, 1]), np.array([0, 0, 1])
        )
        # element 1, 3 owned by rank1: no ghost slot; element 2 gets slot 0
        slots = ht.lookup_slots(np.array([1, 2, 3]))
        assert ht.buf[slots[0]] == -1
        assert ht.buf[slots[1]] == 0
        assert ht.n_ghost == 1

    def test_duplicate_insert_rejected(self):
        ht = self.make()
        ht.insert_translated(np.array([1]), np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            ht.insert_translated(np.array([1]), np.array([0]), np.array([1]))

    def test_length_mismatch_rejected(self):
        ht = self.make()
        with pytest.raises(ValueError):
            ht.insert_translated(np.array([1, 2]), np.array([0]), np.array([1]))

    def test_missing_uniques(self):
        ht = self.make()
        ht.insert_translated(np.array([4]), np.array([0]), np.array([4]))
        missing = ht.missing_uniques(np.array([4, 5, 5, 6]))
        assert missing.tolist() == [5, 6]

    def test_localize_owned_and_ghost(self):
        ht = self.make(rank=0, n_local=10)
        ht.insert_translated(
            np.array([2, 50]), np.array([0, 1]), np.array([2, 7])
        )
        out = ht.localize(np.array([2, 50, 2]))
        assert out.tolist() == [2, 10, 2]  # 50 -> n_local + slot0

    def test_localize_unhashed_rejected(self):
        ht = self.make()
        with pytest.raises(KeyError):
            ht.localize(np.array([1]))

    def test_stamps_and_select(self):
        ht = self.make(rank=0)
        s = ht.insert_translated(
            np.array([20, 21, 22]), np.array([1, 1, 2]), np.array([0, 1, 0])
        )
        ht.stamp_slots(s[:2], "a")
        ht.stamp_slots(s[1:], "b")
        sel_a = ht.select(ht.expr("a"))
        sel_b_minus_a = ht.select(ht.expr("b") - ht.expr("a"))
        sel_union = ht.select(ht.expr("a", "b"))
        assert sel_a.tolist() == [0, 1]
        assert sel_b_minus_a.tolist() == [2]
        assert sel_union.tolist() == [0, 1, 2]

    def test_select_off_processor_only(self):
        ht = self.make(rank=1)
        s = ht.insert_translated(
            np.array([1, 2]), np.array([1, 0]), np.array([0, 0])
        )
        ht.stamp_slots(s, "x")
        assert ht.select(ht.expr("x"), off_processor_only=True).tolist() == [1]
        assert ht.select(ht.expr("x"), off_processor_only=False).tolist() == [0, 1]

    def test_clear_stamp_keeps_entries(self):
        ht = self.make()
        s = ht.insert_translated(np.array([9]), np.array([1]), np.array([0]))
        ht.stamp_slots(s, "nb")
        n = ht.clear_stamp("nb")
        assert n == 1
        assert ht.select(ht.expr("nb")).size == 0
        assert len(ht) == 1  # entry retained for reuse
        assert ht.ghost_capacity() == 1  # slot retained

    def test_clear_stamp_release_frees_bit(self):
        ht = self.make()
        s = ht.insert_translated(np.array([9]), np.array([1]), np.array([0]))
        ht.stamp_slots(s, "nb")
        ht.clear_stamp("nb", release=True)
        assert "nb" not in ht.registry

    def test_growth_beyond_initial_capacity(self):
        ht = self.make(n_local=0)
        n = 5000
        ht.insert_translated(
            np.arange(n), np.ones(n, dtype=np.int64), np.arange(n)
        )
        assert len(ht) == n
        assert ht.n_ghost == n

    def test_bad_init(self):
        with pytest.raises(ValueError):
            IndexHashTable(rank=-1, n_local=0)
        with pytest.raises(ValueError):
            IndexHashTable(rank=0, n_local=-1)


# ----------------------------------------------------------------------
# key-store deletion / compaction properties
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def _store_op_sequences(draw):
    """Random insert/delete/compact programs over a small key universe.

    Small universe on purpose: re-inserting a previously deleted key is
    the interesting case (the open-addressed store must probe *past* its
    tombstone on lookup yet never resurrect the tombstoned slot).
    """
    n_ops = draw(st.integers(1, 8))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["insert", "delete", "compact"]))
        keys = draw(st.lists(st.integers(0, 200), max_size=40))
        ops.append((kind, keys))
    return ops


class TestKeyStoreDeleteCompact:
    """The open-addressed store under churn, with the dict store as the
    executable model — any divergence in lookups, sizes, or delete
    counts is a probe-chain bug."""

    UNIVERSE = np.arange(201, dtype=np.int64)

    @given(ops=_store_op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_oa_store_matches_dict_reference(self, ops):
        oa, ref = OpenAddressedKeyStore(), DictKeyStore()
        next_slot = 0
        for kind, keys in ops:
            arr = np.unique(np.asarray(keys, dtype=np.int64))
            if kind == "insert":
                fresh = arr[ref.lookup(arr) < 0]
                slots = np.arange(next_slot, next_slot + fresh.size,
                                  dtype=np.int64)
                next_slot += fresh.size
                oa.insert(fresh, slots)
                ref.insert(fresh, slots)
            elif kind == "delete":
                assert oa.delete(arr) == ref.delete(arr)
            else:
                oa.compact()
                ref.compact()
            assert len(oa) == len(ref)
            # auto-compaction keeps tombstones bounded by live entries
            assert oa.tombstones <= max(
                len(oa), OpenAddressedKeyStore.MIN_CAP // 2
            )
            assert np.array_equal(oa.lookup(self.UNIVERSE),
                                  ref.lookup(self.UNIVERSE))

    @given(ops=_store_op_sequences())
    @settings(max_examples=30, deadline=None)
    def test_compact_is_a_lookup_noop(self, ops):
        oa = OpenAddressedKeyStore()
        next_slot = 0
        for kind, keys in ops:
            arr = np.unique(np.asarray(keys, dtype=np.int64))
            if kind == "insert":
                fresh = arr[oa.lookup(arr) < 0]
                oa.insert(fresh, np.arange(next_slot,
                                           next_slot + fresh.size,
                                           dtype=np.int64))
                next_slot += fresh.size
            else:
                oa.delete(arr)
        before = oa.lookup(self.UNIVERSE)
        oa.compact()
        assert oa.tombstones == 0
        assert len(oa) * 2 <= oa.capacity
        assert np.array_equal(oa.lookup(self.UNIVERSE), before)

    @given(keys=st.lists(st.integers(0, 10_000), min_size=1,
                         max_size=300, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_delete_all_then_compact_shrinks(self, keys):
        oa = OpenAddressedKeyStore()
        arr = np.sort(np.asarray(keys, dtype=np.int64))
        oa.insert(arr, np.arange(arr.size, dtype=np.int64))
        grown_nbytes = oa.nbytes()
        assert oa.delete(arr) == arr.size
        oa.compact()
        assert len(oa) == 0
        assert oa.tombstones == 0
        assert oa.capacity == OpenAddressedKeyStore.MIN_CAP
        assert oa.nbytes() <= grown_nbytes
        assert np.all(oa.lookup(arr) == -1)

    def test_reinsert_after_tombstone_gets_new_mapping(self):
        oa = OpenAddressedKeyStore()
        oa.insert(np.array([7, 8, 9]), np.array([0, 1, 2]))
        assert oa.delete(np.array([8])) == 1
        assert 8 not in oa
        oa.insert(np.array([8]), np.array([5]))
        assert np.array_equal(oa.lookup(np.array([7, 8, 9])),
                              np.array([0, 5, 2]))
