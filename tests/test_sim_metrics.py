"""Unit tests: metrics (load-balance index, breakdowns, phase timer)."""

import time

import pytest

from repro.sim import PhaseTimer, TimeBreakdown, load_balance_index


class TestLoadBalanceIndex:
    def test_perfect_balance(self):
        assert load_balance_index([2.0, 2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_paper_formula(self):
        # LB = max * n / sum
        assert load_balance_index([1, 1, 1, 2]) == pytest.approx(2 * 4 / 5)

    def test_single_rank(self):
        assert load_balance_index([7.0]) == pytest.approx(1.0)

    def test_zero_work(self):
        assert load_balance_index([0.0, 0.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            load_balance_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            load_balance_index([1.0, -1.0])

    def test_lower_bound_is_one(self):
        assert load_balance_index([3, 1, 2, 2]) >= 1.0


class TestTimeBreakdown:
    def test_set_get(self):
        tb = TimeBreakdown()
        tb["partition"] = 1.5
        assert tb["partition"] == 1.5
        assert tb["missing"] == 0.0

    def test_add_accumulates(self):
        tb = TimeBreakdown()
        tb.add("comm", 1.0)
        tb.add("comm", 2.0)
        assert tb["comm"] == pytest.approx(3.0)

    def test_total(self):
        tb = TimeBreakdown({"a": 1.0, "b": 2.0})
        assert tb.total() == pytest.approx(3.0)

    def test_as_row(self):
        tb = TimeBreakdown({"a": 1.0})
        assert tb.as_row(["a", "b"]) == [1.0, 0.0]

    def test_merged_with(self):
        a = TimeBreakdown({"x": 1.0})
        b = TimeBreakdown({"x": 2.0, "y": 3.0})
        m = a.merged_with(b)
        assert m["x"] == pytest.approx(3.0)
        assert m["y"] == pytest.approx(3.0)
        assert a["x"] == 1.0  # originals untouched


class TestPhaseTimer:
    def test_measures_something(self):
        t = PhaseTimer()
        with t.phase("work"):
            time.sleep(0.005)
        assert t.totals["work"] >= 0.004
        assert t.counts["work"] == 1

    def test_mean(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("p"):
                pass
        assert t.counts["p"] == 3
        assert t.mean("p") == pytest.approx(t.totals["p"] / 3)

    def test_mean_of_unknown_phase(self):
        assert PhaseTimer().mean("nope") == 0.0

    def test_double_start_rejected(self):
        t = PhaseTimer()
        t.start("x")
        with pytest.raises(RuntimeError):
            t.start("x")

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            PhaseTimer().stop("never")

    def test_snapshot(self):
        t = PhaseTimer()
        with t.phase("a"):
            pass
        assert "a" in t.snapshot()
