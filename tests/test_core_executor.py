"""Unit tests: gather / scatter / scatter_op against numpy oracles."""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    allocate_ghosts,
    gather,
    scatter,
    scatter_op,
    split_local_ghost,
    stack_local_ghost,
)
from repro.sim import Machine


def env(rng, n=40, p=4, n_ref=120):
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    x_g = rng.standard_normal(n)
    x = rt.distribute(x_g, tt)
    idx_g = rng.integers(0, n, n_ref)
    from repro.core import split_by_block

    loc = rt.hash_indirection(tt, split_by_block(idx_g, m), "s")
    sched = rt.build_schedule(tt, "s")
    return m, rt, tt, x, x_g, idx_g, loc, sched


class TestGather:
    def test_ghosts_hold_remote_values(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        ghosts = rt.gather(sched, x)
        stacked = stack_local_ghost(x.local, ghosts)
        from repro.core import split_by_block

        for p, part in enumerate(split_by_block(idx_g, m)):
            got = stacked[p][loc[p]]
            assert np.array_equal(got, x_g[part])

    def test_gather_into_provided_buffers(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        ghosts = allocate_ghosts(sched, x.local)
        out = gather(rt.ctx, sched, x.local, ghosts)
        assert out is ghosts

    def test_small_ghost_buffer_rejected(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        bad = [np.zeros(max(0, g - 1)) for g in sched.ghost_size]
        if any(g > 0 for g in sched.ghost_size):
            with pytest.raises(ValueError):
                gather(rt.ctx, sched, x.local, bad)

    def test_gather_2d_rows(self, rng):
        m = Machine(4)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, 4, 30))
        pos_g = rng.standard_normal((30, 3))
        pos = rt.distribute(pos_g, tt)
        from repro.core import split_by_block

        idx_g = rng.integers(0, 30, 50)
        loc = rt.hash_indirection(tt, split_by_block(idx_g, m), "s")
        sched = rt.build_schedule(tt, "s")
        ghosts = rt.gather(sched, pos)
        stacked = stack_local_ghost(pos.local, ghosts)
        for p, part in enumerate(split_by_block(idx_g, m)):
            assert np.array_equal(stacked[p][loc[p]], pos_g[part])

    def test_schedule_vs_local_size_mismatch_rejected(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        short = [a[:1] for a in x.local]
        if sched.total_elements():
            with pytest.raises(IndexError):
                gather(rt.ctx, sched, short)

    def test_gather_charges_comm(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        before = m.clocks.mean_category("comm")
        rt.gather(sched, x)
        assert m.clocks.mean_category("comm") > before


class TestScatter:
    def test_scatter_inverts_gather(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        ghosts = rt.gather(sched, x)
        # perturb owners, then scatter ghost copies back: owners restored
        modified = [a * 0 for a in x.local]
        scatter(rt.ctx, sched, modified, ghosts)
        # every element that was fetched by someone is restored
        for p in m.ranks():
            sent = sched.send_list(p)
            if sent.size:
                assert np.allclose(modified[p][sent], x.local[p][sent])

    def test_scatter_add_matches_np_add_at(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        contrib_g = rng.standard_normal(idx_g.size)
        from repro.core import split_by_block

        acc = rt.zeros_like_table(tt)
        ghosts = allocate_ghosts(sched, acc.local)
        stacked = stack_local_ghost(acc.local, ghosts)
        for p, (part, c) in enumerate(
            zip(split_by_block(idx_g, m), split_by_block(contrib_g, m))
        ):
            np.add.at(stacked[p], loc[p], c)
        for p in m.ranks():
            n_local = acc.local[p].shape[0]
            acc.local[p][...] = stacked[p][:n_local]
            ghosts[p][...] = stacked[p][n_local:]
        scatter_op(rt.ctx, sched, acc.local, ghosts, np.add)
        expected = np.zeros_like(x_g)
        np.add.at(expected, idx_g, contrib_g)
        assert np.allclose(acc.to_global(), expected)

    def test_scatter_max(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        vals_g = rng.standard_normal(idx_g.size)
        from repro.core import split_by_block

        acc = rt.zeros_like_table(tt)
        for a in acc.local:
            a.fill(-np.inf)
        ghosts = [np.full(g, -np.inf) for g in sched.ghost_size]
        stacked = stack_local_ghost(acc.local, ghosts)
        for p, (part, c) in enumerate(
            zip(split_by_block(idx_g, m), split_by_block(vals_g, m))
        ):
            np.maximum.at(stacked[p], loc[p], c)
        for p in m.ranks():
            n_local = acc.local[p].shape[0]
            acc.local[p][...] = stacked[p][:n_local]
            ghosts[p][...] = stacked[p][n_local:]
        scatter_op(rt.ctx, sched, acc.local, ghosts, np.maximum)
        expected = np.full_like(x_g, -np.inf)
        np.maximum.at(expected, idx_g, vals_g)
        assert np.allclose(acc.to_global(), expected)

    def test_scatter_op_requires_ufunc(self, rng):
        m, rt, tt, x, x_g, idx_g, loc, sched = env(rng)
        ghosts = allocate_ghosts(sched, x.local)
        with pytest.raises(TypeError):
            scatter_op(rt.ctx, sched, x.local, ghosts, lambda a, b: a + b)


class TestStacking:
    def test_roundtrip(self, rng):
        data = [rng.standard_normal(5), rng.standard_normal(3)]
        ghosts = [rng.standard_normal(2), rng.standard_normal(4)]
        stacked = stack_local_ghost(data, ghosts)
        d2, g2 = split_local_ghost(stacked, [5, 3])
        assert np.array_equal(d2[0], data[0])
        assert np.array_equal(g2[1], ghosts[1])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            stack_local_ghost([np.zeros(1)], [])
        with pytest.raises(ValueError):
            split_local_ghost([np.zeros(1)], [1, 2])
