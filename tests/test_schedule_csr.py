"""Property tests: the CSR-native schedule layout and its nested views.

The flat int64 buffers + per-(rank, dest) offset vectors are the native
representation; per-pair views (``send_view`` / ``recv_view``, plus the
nested test helpers in ``csr_helpers.py``) are derived, zero-copy.
These tests pin down that the two presentations agree exactly —
round-trip through nested pair lists, merged and incremental schedules,
empty ranks and ``n_global == 0`` — under every registered backend.
"""

import numpy as np
import pytest
from csr_helpers import (
    lightweight_from_pairs,
    place_pair_views,
    recv_pair_views,
    remap_from_pairs,
    schedule_from_pairs,
    send_pair_views,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    Schedule,
    build_lightweight_schedule,
    build_schedule,
    chaos_hash,
    make_hash_tables,
    merge_schedules,
    split_by_block,
)
from repro.core.distribution import BlockDistribution, IrregularDistribution
from repro.core.remap import remap
from repro.core.translation import TranslationTable
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS


def _assert_schedule_equal(a: Schedule, b: Schedule) -> None:
    assert a.n_ranks == b.n_ranks
    assert list(a.ghost_size) == list(b.ghost_size)
    for p in range(a.n_ranks):
        assert np.array_equal(a.send_indices[p], b.send_indices[p])
        assert np.array_equal(a.send_offsets[p], b.send_offsets[p])
        assert np.array_equal(a.recv_slots[p], b.recv_slots[p])
        assert np.array_equal(a.recv_offsets[p], b.recv_offsets[p])


def _check_csr_invariants(sched: Schedule) -> None:
    n = sched.n_ranks
    counts = sched.counts()
    for p in range(n):
        assert sched.send_offsets[p][0] == 0
        assert sched.send_offsets[p][-1] == sched.send_indices[p].size
        assert np.all(np.diff(sched.send_offsets[p]) >= 0)
        assert sched.send_indices[p].dtype == np.int64
        assert sched.recv_slots[p].dtype == np.int64
        for q in range(n):
            # symmetry: what p sends q is what q expects from p
            assert sched.send_view(p, q).size == sched.recv_view(q, p).size
            assert counts[p, q] == sched.send_view(p, q).size


def _pipeline(backend, n_ranks=4, n=64, n_ref=96, seed=0):
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks)
    ctx = ExecutionContext.resolve(m, backend)
    tt = TranslationTable.from_map(m, rng.integers(0, n_ranks, n))
    hts = make_hash_tables(ctx, tt)
    idx_a = split_by_block(rng.integers(0, n, n_ref), m)
    idx_b = split_by_block(rng.integers(0, n, n_ref // 2), m)
    chaos_hash(ctx, hts, tt, idx_a, "a")
    chaos_hash(ctx, hts, tt, idx_b, "b")
    return ctx, tt, hts


@pytest.mark.parametrize("backend", BACKENDS)
class TestScheduleCSR:
    def test_round_trip_through_pair_lists(self, backend):
        ctx, tt, hts = _pipeline(backend)
        sched = build_schedule(ctx, hts, "a")
        _check_csr_invariants(sched)
        rebuilt = schedule_from_pairs(
            sched.n_ranks, send_pair_views(sched), recv_pair_views(sched),
            list(sched.ghost_size),
        )
        _assert_schedule_equal(sched, rebuilt)

    def test_views_are_zero_copy(self, backend):
        ctx, tt, hts = _pipeline(backend)
        sched = build_schedule(ctx, hts, "a")
        for p in range(sched.n_ranks):
            for q in range(sched.n_ranks):
                view = sched.send_view(p, q)
                if view.size:
                    assert view.base is not None
                    assert (view.base is sched.send_indices[p]
                            or view.base is sched.send_indices[p].base)

    def test_merged_schedule_csr(self, backend):
        ctx, tt, hts = _pipeline(backend)
        ht0 = hts[0]
        merged = build_schedule(ctx, hts, ht0.expr("a", "b"))
        _check_csr_invariants(merged)
        sa = build_schedule(ctx, hts, "a")
        sb = build_schedule(ctx, hts, "b")
        # stamp-union semantics: per pair, merged fetch set == set union
        for p in range(ctx.n_ranks):
            for q in range(ctx.n_ranks):
                got = set(merged.send_view(p, q).tolist())
                want = (set(sa.send_view(p, q).tolist())
                        | set(sb.send_view(p, q).tolist()))
                assert got == want

    def test_incremental_schedule_csr(self, backend):
        ctx, tt, hts = _pipeline(backend)
        ht0 = hts[0]
        inc = build_schedule(ctx, hts, ht0.expr("b") - ht0.expr("a"))
        _check_csr_invariants(inc)
        sa = build_schedule(ctx, hts, "a")
        sb = build_schedule(ctx, hts, "b")
        for p in range(ctx.n_ranks):
            for q in range(ctx.n_ranks):
                got = set(inc.send_view(p, q).tolist())
                want = (set(sb.send_view(p, q).tolist())
                        - set(sa.send_view(p, q).tolist()))
                assert got == want

    def test_concatenation_merge_csr(self, backend):
        ctx, tt, hts = _pipeline(backend)
        sa = build_schedule(ctx, hts, "a")
        sb = build_schedule(ctx, hts, "b")
        merged = merge_schedules(ctx, [sa, sb])
        _check_csr_invariants(merged)
        assert merged.total_elements() == (sa.total_elements()
                                           + sb.total_elements())
        for p in range(ctx.n_ranks):
            for q in range(ctx.n_ranks):
                want = np.concatenate(
                    [sa.send_view(p, q), sb.send_view(p, q)]
                )
                assert np.array_equal(merged.send_view(p, q), want)

    def test_empty_rank_edges(self, backend):
        # all references live on rank 0's slice; ranks 2..3 hash nothing
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, backend)
        tt = TranslationTable.from_map(m, np.zeros(16, dtype=np.int64))
        hts = make_hash_tables(ctx, tt)
        z = np.zeros(0, dtype=np.int64)
        idx = [np.arange(8, dtype=np.int64), np.arange(16, dtype=np.int64),
               z, z]
        chaos_hash(ctx, hts, tt, idx, "s")
        sched = build_schedule(ctx, hts, "s")
        _check_csr_invariants(sched)
        for p in (2, 3):
            assert sched.send_indices[p].size == 0
            assert sched.recv_slots[p].size == 0
            assert np.array_equal(sched.send_offsets[p],
                                  np.zeros(5, dtype=np.int64))
        rebuilt = schedule_from_pairs(
            4, send_pair_views(sched), recv_pair_views(sched),
            list(sched.ghost_size),
        )
        _assert_schedule_equal(sched, rebuilt)

    def test_n_global_zero(self, backend):
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, backend)
        tt = TranslationTable.from_map(m, np.zeros(0, dtype=np.int64))
        hts = make_hash_tables(ctx, tt)
        z = np.zeros(0, dtype=np.int64)
        chaos_hash(ctx, hts, tt, [z, z, z, z], "s")
        sched = build_schedule(ctx, hts, "s")
        _check_csr_invariants(sched)
        assert sched.total_elements() == 0
        assert sched.total_messages() == 0
        _assert_schedule_equal(sched, Schedule.empty(4))


class TestLightweightCSR:
    def test_round_trip(self, rng):
        m = Machine(4)
        dest = [rng.integers(0, 4, 20) for _ in range(4)]
        sched = build_lightweight_schedule(ExecutionContext.resolve(m), dest)
        rebuilt = lightweight_from_pairs(
            4, send_pair_views(sched), sched.recv_counts.copy()
        )
        for p in range(4):
            assert np.array_equal(sched.send_sel[p], rebuilt.send_sel[p])
            assert np.array_equal(sched.send_offsets[p],
                                  rebuilt.send_offsets[p])
        assert np.array_equal(sched.recv_counts, rebuilt.recv_counts)

    def test_every_element_selected_once(self, rng):
        m = Machine(4)
        dest = [rng.integers(0, 4, 20) for _ in range(4)]
        sched = build_lightweight_schedule(ExecutionContext.resolve(m), dest)
        for p in range(4):
            assert np.array_equal(np.sort(sched.send_sel[p]),
                                  np.arange(20, dtype=np.int64))
            # segment q holds exactly the elements destined for q
            for q in range(4):
                sel = sched.send_view(p, q)
                assert np.all(dest[p][sel] == q)


class TestRemapCSR:
    def test_round_trip(self, rng):
        m = Machine(4)
        n = 40
        old = BlockDistribution(n, 4)
        new = IrregularDistribution(rng.integers(0, 4, n), 4)
        plan = remap(ExecutionContext.resolve(m), old, new)
        rebuilt = remap_from_pairs(
            4, send_pair_views(plan), place_pair_views(plan),
            list(plan.new_sizes)
        )
        for p in range(4):
            assert np.array_equal(plan.send_sel[p], rebuilt.send_sel[p])
            assert np.array_equal(plan.place_sel[p], rebuilt.place_sel[p])
            assert np.array_equal(plan.send_offsets[p],
                                  rebuilt.send_offsets[p])
            assert np.array_equal(plan.place_offsets[p],
                                  rebuilt.place_offsets[p])

    def test_placements_cover_new_distribution(self, rng):
        m = Machine(4)
        n = 40
        old = BlockDistribution(n, 4)
        new = IrregularDistribution(rng.integers(0, 4, n), 4)
        plan = remap(ExecutionContext.resolve(m), old, new)
        for p in range(4):
            assert np.array_equal(np.sort(plan.place_sel[p]),
                                  np.arange(plan.new_sizes[p],
                                            dtype=np.int64))


@settings(max_examples=40, deadline=None)
@given(
    refs=st.lists(st.integers(0, 15), min_size=0, max_size=40),
    seed=st.integers(0, 2**16),
)
def test_backends_agree_on_csr_buffers(refs, seed):
    """Every registered builder emits byte-identical CSR buffers."""
    del seed  # reserved for stamp variation; keep draws deterministic
    scheds = []
    for backend in BACKENDS:
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, backend)
        tt = TranslationTable.from_map(
            m, np.arange(16, dtype=np.int64) % 4
        )
        hts = make_hash_tables(ctx, tt)
        idx = split_by_block(np.asarray(refs, dtype=np.int64), m)
        chaos_hash(ctx, hts, tt, idx, "s")
        scheds.append(build_schedule(ctx, hts, "s"))
    _assert_schedule_equal(scheds[0], scheds[1])


def test_runtime_build_schedule_is_csr(rng):
    """The ChaosRuntime facade hands out CSR-native schedules too."""
    m = Machine(2)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table([0] * 5 + [1] * 5)
    rt.hash_indirection(tt, [np.array([7, 8]), np.array([1])], "s")
    sched = rt.build_schedule(tt, "s")
    _check_csr_invariants(sched)
    assert isinstance(sched.send_indices[0], np.ndarray)
    assert sched.send_indices[0].ndim == 1
