"""Unit tests: regular and graph partitioners, quality metrics."""

import numpy as np
import pytest

from repro.partitioners import (
    BlockPartitioner,
    CyclicPartitioner,
    GreedyGraphGrowing,
    SpectralBisection,
    communication_volume,
    degree_weights,
    edge_cut,
    edges_to_csr,
    imbalance,
    part_weights,
)


def ring_edges(n):
    return np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)


class TestRegular:
    def test_block_labels(self, rng):
        res = BlockPartitioner().partition(rng.random((10, 2)), 2)
        assert res.labels.tolist() == [0] * 5 + [1] * 5

    def test_cyclic_labels(self, rng):
        res = CyclicPartitioner().partition(rng.random((6, 2)), 3)
        assert res.labels.tolist() == [0, 1, 2, 0, 1, 2]

    def test_empty(self):
        res = BlockPartitioner().partition(np.zeros((0, 3)), 4)
        assert res.labels.size == 0


class TestGraphHelpers:
    def test_edges_to_csr_symmetric(self):
        a = edges_to_csr(4, np.array([[0, 1], [1, 2]]))
        assert a[0, 1] == 1 and a[1, 0] == 1
        assert a[2, 1] == 1
        assert a[0, 3] == 0

    def test_self_loops_dropped(self):
        a = edges_to_csr(3, np.array([[1, 1], [0, 2]]))
        assert a[1, 1] == 0

    def test_duplicate_edges_collapse(self):
        a = edges_to_csr(3, np.array([[0, 1], [0, 1], [1, 0]]))
        assert a[0, 1] == 1

    def test_bad_edges_rejected(self):
        with pytest.raises(IndexError):
            edges_to_csr(3, np.array([[0, 3]]))
        with pytest.raises(ValueError):
            edges_to_csr(3, np.array([0, 1, 2]))

    def test_edge_cut(self):
        labels = np.array([0, 0, 1, 1])
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert edge_cut(labels, edges) == 1
        assert edge_cut(labels, np.zeros((0, 2), dtype=int)) == 0


class TestGraphPartitioners:
    def test_greedy_covers_all(self, rng):
        n = 100
        edges = ring_edges(n)
        res = GreedyGraphGrowing(edges).partition(rng.random((n, 2)), 4)
        assert np.all(res.labels >= 0)
        counts = np.bincount(res.labels, minlength=4)
        assert counts.min() > 0

    def test_greedy_handles_disconnected(self, rng):
        # two disjoint rings
        e1 = ring_edges(20)
        e2 = ring_edges(20) + 20
        edges = np.concatenate([e1, e2])
        res = GreedyGraphGrowing(edges).partition(rng.random((40, 2)), 2)
        assert np.all(res.labels >= 0)

    def test_spectral_ring_cut_is_small(self, rng):
        """Bisecting a ring optimally cuts exactly 2 edges; spectral should
        come close."""
        n = 64
        edges = ring_edges(n)
        res = SpectralBisection(edges).partition(rng.random((n, 2)), 2)
        assert edge_cut(res.labels, edges) <= 6

    def test_spectral_beats_cyclic_on_rings(self, rng):
        n = 64
        edges = ring_edges(n)
        spec = SpectralBisection(edges).partition(rng.random((n, 2)), 4)
        cyc = CyclicPartitioner().partition(rng.random((n, 2)), 4)
        assert edge_cut(spec.labels, edges) < edge_cut(cyc.labels, edges)

    def test_single_part(self, rng):
        res = SpectralBisection(ring_edges(8)).partition(rng.random((8, 2)), 1)
        assert np.all(res.labels == 0)


class TestQualityMetrics:
    def test_part_weights(self):
        labels = np.array([0, 1, 1, 2])
        w = np.array([1.0, 2.0, 3.0, 4.0])
        assert part_weights(labels, 3, w).tolist() == [1.0, 5.0, 4.0]

    def test_part_weights_shape_check(self):
        with pytest.raises(ValueError):
            part_weights(np.array([0, 1]), 2, np.ones(3))

    def test_imbalance_perfect(self):
        assert imbalance(np.array([0, 1, 0, 1]), 2) == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        assert imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)

    def test_communication_volume_counts_ghosts(self):
        labels = np.array([0, 0, 1])
        edges = np.array([[0, 2], [1, 2]])
        # ghosts: 0->part1, 1->part1, 2->part0 (2 appears twice, counted once)
        assert communication_volume(labels, edges) == 3

    def test_communication_volume_no_cut(self):
        assert communication_volume(np.zeros(4, dtype=int),
                                    np.array([[0, 1]])) == 0

    def test_degree_weights(self):
        edges = np.array([[0, 1], [0, 2]])
        w = degree_weights(4, edges, base=1.0, per_edge=2.0)
        assert w.tolist() == [5.0, 3.0, 3.0, 1.0]
