"""Unit tests: the simulated machine and its collectives."""

import numpy as np
import pytest

from repro.sim import IPSC860, Machine, Mesh2D, TrafficStats
from repro.sim.message import Message


class TestMachineBasics:
    def test_needs_positive_ranks(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_topology_size_checked(self):
        with pytest.raises(ValueError):
            Machine(4, topology=Mesh2D(3, 3))

    def test_check_rank(self, machine4):
        assert machine4.check_rank(3) == 3
        with pytest.raises(IndexError):
            machine4.check_rank(4)

    def test_check_per_rank(self, machine4):
        machine4.check_per_rank([1, 2, 3, 4])
        with pytest.raises(ValueError):
            machine4.check_per_rank([1, 2, 3])

    def test_charge_compute_advances_clock(self, machine4):
        machine4.charge_compute(2, 1000)
        assert machine4.clocks[2].time == pytest.approx(
            IPSC860.compute_time(1000)
        )
        assert machine4.clocks[0].time == 0.0

    def test_charge_memops(self, machine4):
        machine4.charge_memops(0, 10, "inspector")
        assert machine4.clocks[0].category("inspector") > 0


class TestAlltoallv:
    def test_delivery(self, machine4):
        send = [
            [np.full(3, p * 10 + q, dtype=np.int64) for q in range(4)]
            for p in range(4)
        ]
        recv = machine4.alltoallv(send)
        for q in range(4):
            for p in range(4):
                assert np.array_equal(recv[q][p], np.full(3, p * 10 + q))

    def test_none_means_no_message(self, machine4):
        send = [[None] * 4 for _ in range(4)]
        send[0][1] = np.arange(5.0)
        recv = machine4.alltoallv(send)
        assert np.array_equal(recv[1][0], np.arange(5.0))
        assert recv[2][3] is None
        assert machine4.traffic.n_messages == 1

    def test_self_delivery_free(self, machine4):
        send = [[None] * 4 for _ in range(4)]
        send[2][2] = np.arange(100.0)
        machine4.alltoallv(send)
        assert machine4.traffic.n_messages == 0
        assert machine4.execution_time() == 0.0

    def test_empty_arrays_cost_nothing(self, machine4):
        send = [[np.zeros(0)] * 4 for _ in range(4)]
        machine4.alltoallv(send)
        assert machine4.traffic.n_messages == 0

    def test_bytes_counted(self, machine4):
        send = [[None] * 4 for _ in range(4)]
        send[0][1] = np.zeros(10, dtype=np.float64)  # 80 bytes
        machine4.alltoallv(send)
        assert machine4.traffic.total_bytes == 80

    def test_sync_barrier_applied(self, machine4):
        send = [[None] * 4 for _ in range(4)]
        send[0][1] = np.zeros(1000)
        machine4.alltoallv(send, sync=True)
        times = [c.time for c in machine4.clocks]
        assert len(set(round(t, 12) for t in times)) == 1

    def test_wrong_shape_rejected(self, machine4):
        with pytest.raises(ValueError):
            machine4.alltoallv([[None] * 4] * 3)

    def test_2d_payloads(self, machine4):
        send = [[None] * 4 for _ in range(4)]
        send[1][0] = np.ones((5, 3))
        recv = machine4.alltoallv(send)
        assert recv[0][1].shape == (5, 3)


class TestLengthExchange:
    def test_transpose(self, machine4):
        lengths = [[p * 4 + q for q in range(4)] for p in range(4)]
        recv = machine4.alltoall_lengths(lengths)
        for q in range(4):
            for p in range(4):
                assert recv[q][p] == p * 4 + q

    def test_negative_rejected(self, machine4):
        bad = [[0] * 4 for _ in range(4)]
        bad[1][2] = -1
        with pytest.raises(ValueError):
            machine4.alltoall_lengths(bad)

    def test_zero_lengths_cost_nothing(self, machine4):
        machine4.alltoall_lengths([[0] * 4 for _ in range(4)])
        assert machine4.traffic.n_messages == 0


class TestCollectives:
    def test_allgather_returns_all(self, machine4):
        out = machine4.allgather([10, 20, 30, 40])
        assert all(row == [10, 20, 30, 40] for row in out)

    def test_allgather_charges_log_rounds(self, machine4):
        machine4.allgather([np.zeros(100)] * 4)
        assert machine4.execution_time() > 0

    def test_bcast(self, machine8):
        out = machine8.bcast({"k": 1}, root=3)
        assert all(x == {"k": 1} for x in out)

    def test_allreduce_sum(self, machine4):
        out = machine4.allreduce_sum([1, 2, 3, 4])
        assert out == [10, 10, 10, 10]

    def test_allreduce_max(self, machine4):
        out = machine4.allreduce_max([5, 2, 9, 1])
        assert out == [9, 9, 9, 9]

    def test_single_rank_collectives_free(self, machine1):
        machine1.allgather([42])
        machine1.bcast(1)
        machine1.allreduce_sum([3])
        assert machine1.execution_time() == 0.0


class TestTrafficStats:
    def test_add_and_tags(self):
        t = TrafficStats()
        t.add(Message(0, 1, 100, "gather"))
        t.add(Message(1, 0, 50, "gather"))
        t.add(Message(0, 2, 10, "scatter"))
        assert t.n_messages == 3
        assert t.total_bytes == 160
        assert t.tag_messages("gather") == 2
        assert t.tag_bytes("scatter") == 10

    def test_subtraction_gives_phase_delta(self):
        t = TrafficStats()
        t.add(Message(0, 1, 100, "a"))
        before = t.copy()
        t.add(Message(0, 1, 50, "a"))
        t.add(Message(0, 1, 25, "b"))
        delta = t - before
        assert delta.n_messages == 2
        assert delta.total_bytes == 75
        assert delta.by_tag["a"] == (1, 50)

    def test_record_keeps_messages(self):
        t = TrafficStats(record=True)
        t.add(Message(0, 1, 8, "x"))
        assert len(t.messages) == 1

    def test_negative_message_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, -5)

    def test_reset(self):
        t = TrafficStats()
        t.add(Message(0, 1, 8))
        t.reset()
        assert t.n_messages == 0 and t.total_bytes == 0


class TestReporting:
    def test_execution_time_is_max(self, machine4):
        machine4.charge_compute(1, 10000)
        assert machine4.execution_time() == pytest.approx(
            machine4.clocks[1].time
        )

    def test_mean_category(self, machine4):
        machine4.charge_compute(0, 4000)
        assert machine4.mean_category_time("compute") == pytest.approx(
            IPSC860.compute_time(4000) / 4
        )

    def test_resets(self, machine4):
        machine4.charge_compute(0, 10)
        machine4.alltoallv([[np.ones(2) if p != q else None
                             for q in range(4)] for p in range(4)])
        machine4.reset_clocks()
        machine4.reset_traffic()
        assert machine4.execution_time() == 0.0
        assert machine4.traffic.n_messages == 0
