"""Unit tests: tokenizer, parser, analyzer of the mini Fortran D dialect."""

import pytest

from repro.lang import (
    AnalysisError,
    LexError,
    ParseError,
    analyze,
    parse_program,
    tokenize,
)
from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayRef,
    BinOp,
    DecompositionStmt,
    DistributeStmt,
    Forall,
    Num,
    Reduce,
)


class TestTokenizer:
    def test_comment_lines_skipped(self):
        lines = tokenize("C a comment\n! another\n  x(1) = 2\n")
        assert len(lines) == 1

    def test_directive_lines_flagged(self):
        lines = tokenize("C$ DISTRIBUTE reg(BLOCK)\n      x(1) = 2")
        assert lines[0].is_directive
        assert not lines[1].is_directive

    def test_labels_stripped(self):
        lines = tokenize("L1:   FORALL i = 1, 5\n")
        assert lines[0].tokens[0].text.upper() == "FORALL"

    def test_inline_comment_stripped(self):
        lines = tokenize("x(1) = 2 ! trailing\n")
        texts = [t.text for t in lines[0].tokens if t.text]
        assert "trailing" not in texts

    def test_numbers_with_exponent(self):
        lines = tokenize("x(1) = 1.5e-3\n")
        nums = [t for t in lines[0].tokens if t.kind.name == "NUMBER"]
        assert any(n.text == "1.5e-3" for n in nums)

    def test_bad_character_raises(self):
        with pytest.raises(LexError):
            tokenize("x = @\n")

    def test_blank_lines_skipped(self):
        assert tokenize("\n\n   \n") == []


class TestParser:
    def test_declarations_multiple_names(self):
        prog = parse_program("REAL*8 x(10), y(10)\nINTEGER k(5)")
        decls = prog.declarations()
        assert [d.name for d in decls] == ["x", "y", "k"]
        assert decls[2].dtype == "integer"
        assert decls[0].shape == (10,)

    def test_decomposition_and_distribute(self):
        prog = parse_program(
            "C$ DECOMPOSITION reg(100), other(50)\nC$ DISTRIBUTE reg(BLOCK)\n"
            "C$ DISTRIBUTE other(CYCLIC)"
        )
        decomp = [s for s in prog.statements
                  if isinstance(s, DecompositionStmt)]
        assert [(d.name, d.size) for d in decomp] == [("reg", 100),
                                                      ("other", 50)]
        dists = [s for s in prog.statements if isinstance(s, DistributeStmt)]
        assert dists[0].scheme == "BLOCK"
        assert dists[1].scheme == "CYCLIC"

    def test_distribute_map(self):
        prog = parse_program("C$ DECOMPOSITION reg(4)\nC$ DISTRIBUTE reg(map)")
        d = [s for s in prog.statements if isinstance(s, DistributeStmt)][0]
        assert d.scheme == "MAP" and d.map_array == "map"

    def test_align_with_ragged_patterns(self):
        prog = parse_program(
            "C$ DECOMPOSITION c(4)\n"
            "C$ ALIGN icell(*,:), vel(*,:), size(:) WITH c"
        )
        a = [s for s in prog.statements if isinstance(s, AlignStmt)][0]
        assert a.arrays == ("icell", "vel", "size")
        assert a.ragged == (True, True, False)

    def test_forall_nesting(self):
        prog = parse_program(
            "FORALL i = 1, 10\n  FORALL j = 1, 5\n    x(j) = 1\n"
            "  END DO\nEND DO"
        )
        outer = prog.loops()[0]
        assert outer.var == "i"
        inner = outer.body[0]
        assert isinstance(inner, Forall) and inner.var == "j"

    def test_reduce_statement(self):
        prog = parse_program(
            "FORALL i = 1, 4\n  REDUCE(SUM, x(ia(i)), y(ib(i)) * 2)\nEND DO"
        )
        red = prog.loops()[0].body[0]
        assert isinstance(red, Reduce) and red.op == "SUM"
        assert isinstance(red.target, ArrayRef)
        assert isinstance(red.value, BinOp)

    def test_expression_precedence(self):
        prog = parse_program("x(1) = 1 + 2 * 3 ** 2")
        expr = prog.statements[0].value
        # 1 + (2 * (3 ** 2))
        assert expr.op == "+"
        assert expr.right.op == "*"
        assert expr.right.right.op == "**"

    def test_power_right_associative(self):
        prog = parse_program("x(1) = 2 ** 3 ** 2")
        expr = prog.statements[0].value
        assert expr.op == "**"
        assert isinstance(expr.left, Num)
        assert expr.right.op == "**"

    def test_unary_minus(self):
        prog = parse_program("x(1) = -y(1) + 2")
        assert prog.statements[0].value.op == "+"

    def test_unmatched_end_rejected(self):
        with pytest.raises(ParseError):
            parse_program("END DO")

    def test_forall_without_end_rejected(self):
        with pytest.raises(ParseError):
            parse_program("FORALL i = 1, 3\n x(i) = 1")

    def test_assignment_to_scalar_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x = 1")

    def test_bad_reduce_op_rejected(self):
        with pytest.raises(ParseError):
            parse_program("FORALL i = 1, 2\n REDUCE(AVG, x(i), 1)\nEND DO")


class TestAnalyzer:
    def analyze_src(self, src):
        return analyze(parse_program(src))

    def test_symbols_built(self):
        a = self.analyze_src(
            "REAL x(10)\nC$ DECOMPOSITION reg(10)\nC$ ALIGN x WITH reg"
        )
        assert a.symbols.array("x").decomposition == "reg"
        assert a.symbols.decomp("reg").size == 10

    def test_implicit_arrays_from_align(self):
        a = self.analyze_src(
            "C$ DECOMPOSITION reg(10)\nC$ ALIGN ghost WITH reg"
        )
        assert a.symbols.array("ghost").shape == (10,)

    def test_csr_loop_detected(self):
        a = self.analyze_src(
            "REAL x(4)\nINTEGER inblo(5), jnb(9)\n"
            "C$ DECOMPOSITION reg(4)\nC$ DISTRIBUTE reg(BLOCK)\n"
            "C$ ALIGN x WITH reg\n"
            "FORALL i = 1, 4\n  FORALL j = inblo(i), inblo(i+1) - 1\n"
            "    REDUCE(SUM, x(jnb(j)), 1)\n  END DO\nEND DO"
        )
        nest = a.loops[0]
        assert nest.kind == "csr"
        assert nest.csr_offsets == "inblo"
        assert nest.indirections == ["jnb"]
        assert nest.decomposition == "reg"

    def test_flat_loop_detected(self):
        a = self.analyze_src(
            "REAL x(8)\nINTEGER ia(20)\n"
            "C$ DECOMPOSITION reg(8)\nC$ ALIGN x WITH reg\n"
            "FORALL i = 1, 20\n  REDUCE(SUM, x(ia(i)), 2)\nEND DO"
        )
        assert a.loops[0].kind == "flat"
        assert a.loops[0].indirections == ["ia"]

    def test_cell_append_detected(self):
        a = self.analyze_src(
            "C$ DECOMPOSITION c(4)\n"
            "C$ ALIGN icell(*,:), vel(*,:), size(:) WITH c\n"
            "FORALL j = 1, 4\n  FORALL i = 1, size(j)\n"
            "    REDUCE(APPEND, vel(i, icell(i,j)), vel(i,j))\n"
            "  END FORALL\nEND FORALL"
        )
        assert a.loops[0].kind == "cell_append"
        assert a.loops[0].indirections == ["icell"]

    def test_ragged_sum_detected(self):
        a = self.analyze_src(
            "C$ DECOMPOSITION c(4)\n"
            "C$ ALIGN icell(*,:), size(:), ns(:) WITH c\n"
            "FORALL j = 1, 4\n  FORALL i = 1, size(j)\n"
            "    REDUCE(SUM, ns(icell(i,j)), 1)\n  END FORALL\nEND FORALL"
        )
        assert a.loops[0].kind == "ragged"

    def test_local_assign_detected(self):
        a = self.analyze_src(
            "C$ DECOMPOSITION c(4)\nC$ ALIGN ns(:) WITH c\n"
            "FORALL j = 1, 4\n  ns(j) = 0\nEND FORALL"
        )
        assert a.loops[0].kind == "local_assign"

    def test_undeclared_array_rejected(self):
        with pytest.raises(AnalysisError):
            self.analyze_src(
                "C$ DECOMPOSITION r(4)\nC$ ALIGN x WITH r\n"
                "FORALL i = 1, 4\n  REDUCE(SUM, x(i), mystery(i))\nEND DO"
            )

    def test_mixed_decompositions_rejected(self):
        with pytest.raises(AnalysisError):
            self.analyze_src(
                "C$ DECOMPOSITION a(4), b(4)\n"
                "C$ ALIGN x WITH a\nC$ ALIGN y WITH b\n"
                "FORALL i = 1, 4\n  REDUCE(SUM, x(i), y(i))\nEND DO"
            )

    def test_three_level_nest_rejected(self):
        with pytest.raises(AnalysisError):
            self.analyze_src(
                "C$ DECOMPOSITION r(4)\nC$ ALIGN x WITH r\n"
                "FORALL i = 1, 4\n FORALL j = 1, 4\n FORALL k = 1, 4\n"
                "  REDUCE(SUM, x(i), 1)\n END DO\n END DO\nEND DO"
            )

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(AnalysisError):
            self.analyze_src("REAL x(4)\nREAL x(4)")

    def test_unknown_decomposition_rejected(self):
        with pytest.raises(AnalysisError):
            self.analyze_src("C$ ALIGN x WITH nowhere")
