"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    ExecutionContext,
    BlockCyclicDistribution,
    BlockDistribution,
    ChaosRuntime,
    CyclicDistribution,
    IrregularDistribution,
    StampExpr,
    build_lightweight_schedule,
    remap,
    remap_array,
    scatter_append,
    split_by_block,
)
from repro.partitioners import RCB, chain_boundaries
from repro.sim import Machine, load_balance_index
from repro.util import hash_uniform

# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------
sizes = st.integers(min_value=0, max_value=60)
ranks = st.integers(min_value=1, max_value=6)


@st.composite
def distribution(draw):
    n = draw(sizes)
    p = draw(ranks)
    kind = draw(st.sampled_from(["block", "cyclic", "blockcyclic", "irregular"]))
    if kind == "block":
        return BlockDistribution(n, p)
    if kind == "cyclic":
        return CyclicDistribution(n, p)
    if kind == "blockcyclic":
        return BlockCyclicDistribution(n, p, draw(st.integers(1, 5)))
    labels = draw(arrays(np.int64, n, elements=st.integers(0, p - 1)))
    return IrregularDistribution(labels, p)


# ---------------------------------------------------------------------
# distribution invariants
# ---------------------------------------------------------------------
@given(distribution())
@settings(max_examples=60, deadline=None)
def test_distribution_partition_property(dist):
    """Every element owned exactly once; offsets bijective per rank."""
    n = dist.n_global
    idx = np.arange(n, dtype=np.int64)
    owners = dist.owner(idx)
    offsets = dist.local_index(idx)
    total = 0
    for p in range(dist.n_ranks):
        mine = offsets[owners == p]
        assert sorted(mine.tolist()) == list(range(mine.size))
        assert mine.size == dist.local_size(p)
        total += mine.size
    assert total == n


@given(distribution())
@settings(max_examples=40, deadline=None)
def test_distribution_global_indices_consistent(dist):
    for p in range(dist.n_ranks):
        g = dist.global_indices(p)
        if g.size:
            assert np.all(dist.owner(g) == p)
            assert np.array_equal(dist.local_index(g),
                                  np.arange(g.size))


# ---------------------------------------------------------------------
# remap round trip
# ---------------------------------------------------------------------
@given(st.integers(1, 40), ranks, st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_remap_roundtrip_property(n, p, seed):
    rng = np.random.default_rng(seed)
    m = Machine(p)
    d1 = IrregularDistribution(rng.integers(0, p, n), p)
    d2 = IrregularDistribution(rng.integers(0, p, n), p)
    x = rng.standard_normal(n)
    data = [x[d1.global_indices(q)] for q in range(p)]
    plan = remap(ExecutionContext.resolve(m), d1, d2)
    out = remap_array(ExecutionContext.resolve(m), plan, data)
    plan_back = remap(ExecutionContext.resolve(m), d2, d1)
    back = remap_array(ExecutionContext.resolve(m), plan_back, out)
    for q in range(p):
        assert np.array_equal(back[q], data[q])


# ---------------------------------------------------------------------
# gather/scatter identity through the full inspector/executor chain
# ---------------------------------------------------------------------
@given(st.integers(1, 30), st.integers(0, 80), ranks, st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_gather_fetches_correct_values_property(n, n_ref, p, seed):
    rng = np.random.default_rng(seed)
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    x_g = rng.standard_normal(n)
    x = rt.distribute(x_g, tt)
    idx_g = rng.integers(0, n, n_ref)
    loc = rt.hash_indirection(tt, split_by_block(idx_g, m), "s")
    sched = rt.build_schedule(tt, "s")
    ghosts = rt.gather(sched, x)
    from repro.core import stack_local_ghost

    stacked = stack_local_ghost(x.local, ghosts)
    for q, part in enumerate(split_by_block(idx_g, m)):
        assert np.array_equal(stacked[q][loc[q]], x_g[part])


@given(st.integers(1, 25), st.integers(0, 60), ranks, st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_scatter_add_equals_np_add_at_property(n, n_ref, p, seed):
    rng = np.random.default_rng(seed)
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    x_g = rng.standard_normal(n)
    idx_g = rng.integers(0, n, n_ref)
    vals_g = rng.standard_normal(n_ref)
    x = rt.distribute(x_g, tt)
    from repro.core import IrregularReduction

    loop = IrregularReduction(rt, tt, "prop").bind(
        ia=split_by_block(idx_g, m), ib=split_by_block(idx_g, m)
    )
    loop.setup()
    y = rt.distribute(np.zeros(n), tt)  # dummy rhs
    vals_parts = split_by_block(vals_g, m)
    counter = {"p": 0}

    def kernel(yv):
        part = vals_parts[counter["p"]]
        counter["p"] += 1
        return part

    loop.execute(x, "ia", kernel, {"y": (y, "ib")})
    expected = x_g.copy()
    np.add.at(expected, idx_g, vals_g)
    assert np.allclose(x.to_global(), expected, atol=1e-9)


# ---------------------------------------------------------------------
# stamp algebra
# ---------------------------------------------------------------------
@given(
    st.lists(st.integers(0, 7), min_size=0, max_size=30),
    st.lists(st.integers(0, 7), min_size=0, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_stamp_union_is_set_union(idx_a, idx_b):
    m = Machine(2)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table([0] * 4 + [1] * 4)
    z = np.zeros(0, dtype=np.int64)
    rt.hash_indirection(tt, [np.array(idx_a, dtype=np.int64), z], "a")
    rt.hash_indirection(tt, [np.array(idx_b, dtype=np.int64), z], "b")
    ht = rt.hash_tables(tt)[0]

    def fetched(expr):
        sched = rt.build_schedule(tt, expr)
        return set(sched.send_view(1, 0).tolist())

    fa = fetched(ht.expr("a"))
    fb = fetched(ht.expr("b"))
    assert fetched(ht.expr("a", "b")) == fa | fb
    assert fetched(ht.expr("b") - ht.expr("a")) == fb - fa
    assert fetched(ht.expr("a") - ht.expr("b")) == fa - fb


@given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1))
def test_stamp_expr_algebra(inc, exc):
    masks = np.arange(64, dtype=np.int64)
    e = StampExpr(inc, exc)
    manual = ((masks & inc) != 0) & ((masks & exc) == 0) if exc else (
        (masks & inc) != 0
    )
    assert np.array_equal(e.matches(masks), manual)


# ---------------------------------------------------------------------
# light-weight schedules conserve multisets
# ---------------------------------------------------------------------
@given(ranks, st.lists(st.integers(0, 50), min_size=0, max_size=80),
       st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_scatter_append_multiset_property(p, flat_sizes, seed):
    rng = np.random.default_rng(seed)
    m = Machine(p)
    n = len(flat_sizes)
    dest_g = rng.integers(0, p, n)
    values_g = rng.standard_normal(n)
    dest = split_by_block(dest_g, m)
    values = split_by_block(values_g, m)
    sched = build_lightweight_schedule(ExecutionContext.resolve(m), dest)
    out = scatter_append(ExecutionContext.resolve(m), sched, values)
    assert np.allclose(np.sort(np.concatenate(out) if out else []),
                       np.sort(values_g))
    for q in range(p):
        assert out[q].shape[0] == int(np.count_nonzero(dest_g == q))


# ---------------------------------------------------------------------
# partitioners
# ---------------------------------------------------------------------
@given(st.integers(1, 200), st.integers(1, 8), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_rcb_assigns_every_element_once(n, p, seed):
    rng = np.random.default_rng(seed)
    res = RCB().partition(rng.random((n, 3)), p, rng.random(n) + 0.01)
    assert res.labels.shape == (n,)
    assert res.labels.min() >= 0 and res.labels.max() < p


@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=100),
       st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_chain_boundaries_cover_and_bound(weights, p):
    w = np.array(weights)
    bounds = chain_boundaries(w, p)
    assert bounds[0] == 0 and bounds[-1] == w.size
    assert np.all(np.diff(bounds) >= 0)
    bottleneck = max(w[bounds[k]:bounds[k + 1]].sum() for k in range(p))
    # never worse than putting everything in one part, never better than
    # the trivial lower bounds
    assert bottleneck <= w.sum() + 1e-9
    assert bottleneck >= max(w.max(), w.sum() / p) - 1e-9


@given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=50))
def test_load_balance_index_lower_bound(times):
    if sum(times) == 0:
        assert load_balance_index(times) == 1.0
    else:
        assert load_balance_index(times) >= 1.0 - 1e-12


# ---------------------------------------------------------------------
# deterministic hashing
# ---------------------------------------------------------------------
@given(st.integers(0, 2**31), st.integers(0, 2**31))
def test_hash_uniform_deterministic_and_bounded(a, b):
    u1 = hash_uniform(a, b)
    u2 = hash_uniform(a, b)
    assert u1 == u2
    assert 0.0 <= u1 < 1.0


# ---------------------------------------------------------------------
# validators: every randomly-built artifact passes its invariant check
# ---------------------------------------------------------------------
@given(st.integers(1, 40), ranks, st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_built_artifacts_pass_validators(n, p, seed):
    from repro.core import (
        IrregularDistribution as ID,
        check_lightweight,
        check_remap_plan,
        check_schedule,
        check_schedule_against_hash_tables,
        check_translation_table,
    )

    rng = np.random.default_rng(seed)
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    assert check_translation_table(tt) == []
    idx = split_by_block(rng.integers(0, n, 2 * n), m)
    rt.hash_indirection(tt, idx, "s")
    sched = rt.build_schedule(tt, "s")
    assert check_schedule(sched, tt.dist) == []
    assert check_schedule_against_hash_tables(sched, rt.hash_tables(tt)) == []
    dest = split_by_block(rng.integers(0, p, n), m)
    lw = build_lightweight_schedule(ExecutionContext.resolve(m), dest)
    assert check_lightweight(lw) == []
    new = ID(rng.integers(0, p, n), p)
    plan = remap(ExecutionContext.resolve(m), tt.dist, new)
    assert check_remap_plan(plan) == []


# ---------------------------------------------------------------------
# Morton keys: identical points share keys; order is deterministic
# ---------------------------------------------------------------------
@given(st.integers(2, 120), st.integers(1, 3), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_morton_keys_properties(n, dim, seed):
    from repro.partitioners import morton_keys

    rng = np.random.default_rng(seed)
    pts = rng.random((n, dim))
    keys = morton_keys(pts)
    assert keys.shape == (n,)
    # duplicated point -> duplicated key
    pts2 = np.concatenate([pts, pts[:1]])
    keys2 = morton_keys(pts2)
    assert keys2[-1] == keys2[0]


# ---------------------------------------------------------------------
# multi-attribute append preserves row alignment across attributes
# ---------------------------------------------------------------------
@given(ranks, st.integers(0, 40), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_scatter_append_multi_alignment(p, n_total, seed):
    from repro.core import scatter_append_multi

    rng = np.random.default_rng(seed)
    m = Machine(p)
    dest_g = rng.integers(0, p, n_total)
    ids_g = np.arange(n_total, dtype=np.int64)
    val_g = rng.standard_normal(n_total)
    ctx = ExecutionContext.resolve(m)
    sched = build_lightweight_schedule(ctx, split_by_block(dest_g, m))
    out_ids, out_vals = scatter_append_multi(
        ctx, sched, [split_by_block(ids_g, m), split_by_block(val_g, m)]
    ) if n_total or p else ([], [])
    if n_total == 0:
        return
    for q in range(p):
        for i, v in zip(out_ids[q].tolist(), out_vals[q].tolist()):
            assert v == val_g[i]
            assert dest_g[i] == q
