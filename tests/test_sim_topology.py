"""Unit tests: topologies."""

import numpy as np
import pytest

from repro.sim import FullCrossbar, Hypercube, Mesh2D
from repro.sim.topology import default_topology


class TestHypercube:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(6)

    def test_dimension(self):
        assert Hypercube(1).dimension == 0
        assert Hypercube(8).dimension == 3
        assert Hypercube(128).dimension == 7

    def test_hops_is_hamming_distance(self):
        h = Hypercube(16)
        assert h.hops(0, 0) == 0
        assert h.hops(0, 15) == 4
        assert h.hops(0b1010, 0b0101) == 4
        assert h.hops(3, 1) == 1

    def test_hops_symmetric(self):
        h = Hypercube(8)
        for a in range(8):
            for b in range(8):
                assert h.hops(a, b) == h.hops(b, a)

    def test_neighbors(self):
        h = Hypercube(8)
        assert sorted(h.neighbors(0)) == [1, 2, 4]
        assert sorted(h.neighbors(7)) == [3, 5, 6]

    def test_diameter(self):
        assert Hypercube(32).diameter() == 5

    def test_rank_range_checked(self):
        h = Hypercube(4)
        with pytest.raises(IndexError):
            h.hops(0, 4)
        with pytest.raises(IndexError):
            h.hops(-1, 0)

    def test_gray_code_adjacent_differ_one_bit(self):
        for i in range(63):
            g1, g2 = Hypercube.gray_code(i), Hypercube.gray_code(i + 1)
            assert bin(g1 ^ g2).count("1") == 1

    def test_ring_embedding_single_hop(self):
        h = Hypercube(16)
        ring = h.ring_embedding()
        assert sorted(ring) == list(range(16))
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert h.hops(a, b) == 1


class TestMesh2D:
    def test_coords_roundtrip(self):
        m = Mesh2D(3, 4)
        for r in range(12):
            row, col = m.coords(r)
            assert m.rank_of(row, col) == r

    def test_manhattan_hops(self):
        m = Mesh2D(4, 4)
        assert m.hops(m.rank_of(0, 0), m.rank_of(3, 3)) == 6
        assert m.hops(5, 5) == 0

    def test_diameter(self):
        assert Mesh2D(4, 5).diameter() == 7

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)

    def test_rank_of_range(self):
        m = Mesh2D(2, 2)
        with pytest.raises(IndexError):
            m.rank_of(2, 0)


class TestFullCrossbar:
    def test_single_hop(self):
        x = FullCrossbar(5)
        assert x.hops(0, 4) == 1
        assert x.hops(2, 2) == 0
        assert x.diameter() == 1

    def test_single_rank_diameter(self):
        assert FullCrossbar(1).diameter() == 0


class TestDefaults:
    def test_power_of_two_gives_hypercube(self):
        assert isinstance(default_topology(16), Hypercube)

    def test_other_counts_give_crossbar(self):
        assert isinstance(default_topology(6), FullCrossbar)

    def test_hop_matrix(self):
        h = Hypercube(4)
        m = h.hop_matrix()
        assert m.shape == (4, 4)
        assert np.array_equal(m, m.T)
        assert np.all(np.diag(m) == 0)
