"""Regression: the backend registry under many-thread hammering.

The multi-tenant server resolves backends from worker threads, so the
registry (``register_backend`` / ``get_backend`` /
``available_backends`` / ``set_default_backend`` / ``default_backend``)
must behave under concurrency: one singleton instance per name, no
half-registered listings, and a default that is always a registered
name.  Before the module lock landed, two threads racing
``get_backend`` on an un-instantiated name could each build an
instance, breaking the identity comparisons ``ExecutionContext`` and
the resource handles rely on.
"""

import threading

import pytest

from repro.core.backends import base
from repro.core.backends.base import (
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.core.backends.serial import SerialBackend
from repro.core.context import ExecutionContext
from repro.sim.machine import Machine

N_THREADS = 16
ROUNDS = 200


@pytest.fixture
def registry_sandbox():
    """Snapshot/restore the module registry around a mutating test."""
    saved_registry = dict(base._REGISTRY)
    saved_instances = dict(base._INSTANCES)
    saved_default = base._default_name
    try:
        yield
    finally:
        with base._REGISTRY_LOCK:
            base._REGISTRY.clear()
            base._REGISTRY.update(saved_registry)
            base._INSTANCES.clear()
            base._INSTANCES.update(saved_instances)
            base._default_name = saved_default


def _run_threads(worker, n=N_THREADS):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            worker(i)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestRegistryHammer:
    def test_get_backend_returns_one_instance_per_name(
        self, registry_sandbox
    ):
        """The core singleton invariant: N threads racing the first
        ``get_backend`` of a fresh name all see the same object."""
        name = "_hammer_singleton"
        register_backend(
            type("HammerSingleton", (SerialBackend,), {"name": name})
        )
        seen = set()
        lock = threading.Lock()

        def worker(i):
            local = {get_backend(name) for _ in range(ROUNDS)}
            with lock:
                seen.update(id(b) for b in local)

        _run_threads(worker)
        assert len(seen) == 1

    def test_mixed_register_get_list_default(self, registry_sandbox):
        """Registrations, lookups, listings, and default flips from 16
        threads at once: no exceptions, registry ends consistent."""
        names = [f"_hammer{i}" for i in range(N_THREADS)]
        classes = {
            n: type(f"Hammer{i}", (SerialBackend,), {"name": n})
            for i, n in enumerate(names)
        }

        def worker(i):
            mine = names[i]
            for r in range(50):
                register_backend(classes[mine])
                assert get_backend(mine).name == mine
                listed = available_backends()
                # copy-on-read: a listing is a stable snapshot
                assert listed == tuple(sorted(listed))
                assert "serial" in listed
                if i % 4 == 0:
                    set_default_backend(
                        "serial" if r % 2 else "vectorized"
                    )
                assert base.default_backend().name in listed

        _run_threads(worker)
        listed = available_backends()
        for n in names:
            assert n in listed
            assert get_backend(n) is get_backend(n)

    def test_set_default_rejects_unknown_under_concurrency(
        self, registry_sandbox
    ):
        def worker(i):
            for _ in range(ROUNDS):
                if i % 2:
                    set_default_backend("serial")
                else:
                    with pytest.raises(KeyError):
                        set_default_backend("_never_registered")
                assert base.default_backend().name in available_backends()

        _run_threads(worker)

    def test_use_backend_restores_previous_default(self, registry_sandbox):
        set_default_backend("serial")
        with base.use_backend("vectorized"):
            assert base.default_backend().name == "vectorized"
        assert base.default_backend().name == "serial"


class TestConcurrentContexts:
    def test_concurrent_context_builds_share_backend_singletons(self):
        """Sixteen threads building (and closing) contexts at once —
        the server's steady state — share one backend instance and
        never cross resource handles."""
        results = []
        lock = threading.Lock()

        def worker(i):
            ctx = ExecutionContext.resolve(
                Machine(2), "vectorized", seed=i
            )
            try:
                # keep strong refs: id() alone could be reused after GC
                with lock:
                    results.append((ctx.backend, ctx.resources))
            finally:
                ctx.close()
            assert ctx.closed

        _run_threads(worker)
        backends = {id(b) for b, _ in results}
        resources = [r for _, r in results]
        assert len(backends) == 1
        assert len({id(r) for r in resources}) == len(resources)
