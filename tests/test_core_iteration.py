"""Unit tests: iteration partitioning (Phases C/D)."""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    block_iteration_slices,
    partition_iterations,
    split_by_block,
)
from repro.sim import Machine


def env(rng, n=24, p=4):
    m = Machine(p)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, p, n))
    return m, rt, tt


class TestBlockSlices:
    def test_cover_everything(self, machine4):
        slices = block_iteration_slices(10, machine4)
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(10))

    def test_split_by_block(self, machine4):
        arr = np.arange(10)
        parts = split_by_block(arr, machine4)
        assert np.array_equal(np.concatenate(parts), arr)
        assert len(parts) == 4


class TestOwnerComputes:
    def test_iterations_follow_first_access(self, rng):
        m, rt, tt = env(rng)
        ia_g = rng.integers(0, 24, 40)
        ib_g = rng.integers(0, 24, 40)
        accesses = [
            [a, b] for a, b in zip(split_by_block(ia_g, m),
                                   split_by_block(ib_g, m))
        ]
        assign = partition_iterations(rt.ctx, tt, accesses, rule="owner-computes")
        owners_ia = tt.owner_local(ia_g)
        flat_dest = np.concatenate(assign.dest)
        assert np.array_equal(flat_dest, owners_ia)

    def test_counts_match_schedule(self, rng):
        m, rt, tt = env(rng)
        ia_g = rng.integers(0, 24, 40)
        accesses = [[a] for a in split_by_block(ia_g, m)]
        assign = partition_iterations(rt.ctx, tt, accesses, rule="owner-computes")
        assert assign.counts.sum() == 40


class TestAlmostOwnerComputes:
    def test_majority_wins(self, rng):
        m = Machine(2)
        rt = ChaosRuntime(m)
        # elements 0,1 on rank0; 2,3 on rank1
        tt = rt.irregular_table([0, 0, 1, 1])
        # iteration accesses elements (0, 2, 3): majority rank1
        accesses = [
            [np.array([0]), np.array([2]), np.array([3])],
            [np.zeros(0, np.int64)] * 3,
        ]
        assign = partition_iterations(rt.ctx, tt, accesses,
                                      rule="almost-owner-computes")
        assert assign.dest[0][0] == 1

    def test_tie_breaks_to_first_reference(self, rng):
        m = Machine(2)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table([0, 0, 1, 1])
        # 1-1 tie between rank1 (first ref) and rank0
        accesses = [
            [np.array([3]), np.array([0])],
            [np.zeros(0, np.int64)] * 2,
        ]
        assign = partition_iterations(rt.ctx, tt, accesses,
                                      rule="almost-owner-computes")
        assert assign.dest[0][0] == 1

    def test_remap_iteration_data_aligned(self, rng):
        m, rt, tt = env(rng)
        ia_g = rng.integers(0, 24, 30)
        payload_g = rng.standard_normal(30)
        accesses = [[a] for a in split_by_block(ia_g, m)]
        assign = partition_iterations(rt.ctx, tt, accesses)
        new_ia = assign.remap_iteration_data(rt.ctx, split_by_block(ia_g, m))
        new_pay = assign.remap_iteration_data(rt.ctx, split_by_block(payload_g, m))
        # multiset preserved and alignment kept
        assert sorted(np.concatenate(new_ia).tolist()) == sorted(ia_g.tolist())
        pair_map = dict()
        for a, v in zip(ia_g.tolist(), payload_g.tolist()):
            pair_map.setdefault(a, []).append(v)
        for p in m.ranks():
            for a, v in zip(new_ia[p].tolist(), new_pay[p].tolist()):
                assert v in pair_map[a]

    def test_reduces_communication_vs_block(self, rng):
        """Almost-owner-computes places iterations where their data lives:
        fewer off-processor references than leaving iterations blocked."""
        m, rt, tt = env(rng, n=64)
        ia_g = rng.integers(0, 64, 200)
        ib_g = rng.integers(0, 64, 200)
        accesses = [
            [a, b] for a, b in zip(split_by_block(ia_g, m),
                                   split_by_block(ib_g, m))
        ]
        assign = partition_iterations(rt.ctx, tt, accesses)
        new_ia = assign.remap_iteration_data(rt.ctx, split_by_block(ia_g, m))
        new_ib = assign.remap_iteration_data(rt.ctx, split_by_block(ib_g, m))

        def offproc(parts_a, parts_b):
            total = 0
            for p in m.ranks():
                for arr in (parts_a[p], parts_b[p]):
                    total += int(np.count_nonzero(tt.owner_local(arr) != p))
            return total

        assert offproc(new_ia, new_ib) <= offproc(
            split_by_block(ia_g, m), split_by_block(ib_g, m)
        )


class TestValidation:
    def test_bad_rule_rejected(self, rng):
        m, rt, tt = env(rng)
        with pytest.raises(ValueError):
            partition_iterations(rt.ctx, tt, [[np.zeros(0, np.int64)]] * 4,
                                 rule="magic")

    def test_mismatched_lengths_rejected(self, rng):
        m, rt, tt = env(rng)
        bad = [[np.array([0, 1]), np.array([0])]] + [[np.zeros(0, np.int64)] * 2] * 3
        with pytest.raises(ValueError):
            partition_iterations(rt.ctx, tt, bad)

    def test_empty_everywhere(self, rng):
        m, rt, tt = env(rng)
        assign = partition_iterations(rt.ctx, tt, [[] for _ in range(4)])
        assert assign.counts.sum() == 0
