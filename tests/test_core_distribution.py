"""Unit tests: distributions."""

import numpy as np
import pytest

from repro.core import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    IrregularDistribution,
)


ALL_IDX = lambda n: np.arange(n, dtype=np.int64)  # noqa: E731


def check_invariants(dist):
    """Every element owned exactly once; offsets form 0..size-1 per rank."""
    n = dist.n_global
    owners = dist.owner(ALL_IDX(n))
    offsets = dist.local_index(ALL_IDX(n))
    total = 0
    for p in range(dist.n_ranks):
        mine = np.flatnonzero(owners == p)
        assert mine.size == dist.local_size(p)
        assert np.array_equal(np.sort(offsets[mine]),
                              np.arange(mine.size))
        assert np.array_equal(dist.global_indices(p), np.sort(mine)) or \
            set(dist.global_indices(p).tolist()) == set(mine.tolist())
        total += mine.size
    assert total == n


class TestBlock:
    def test_even_split(self):
        d = BlockDistribution(8, 4)
        assert [d.local_size(p) for p in range(4)] == [2, 2, 2, 2]
        assert np.array_equal(d.owner(np.array([0, 1, 2, 7])),
                              np.array([0, 0, 1, 3]))

    def test_uneven_split_front_loaded(self):
        d = BlockDistribution(10, 4)
        assert [d.local_size(p) for p in range(4)] == [3, 3, 2, 2]

    def test_local_index(self):
        d = BlockDistribution(10, 4)
        assert d.local_index(np.array([3]))[0] == 0  # rank1 starts at 3
        assert d.local_index(np.array([9]))[0] == 1

    def test_invariants(self):
        for n, p in [(0, 3), (1, 4), (17, 5), (100, 7)]:
            check_invariants(BlockDistribution(n, p))

    def test_out_of_range_rejected(self):
        d = BlockDistribution(10, 2)
        with pytest.raises(IndexError):
            d.owner(np.array([10]))
        with pytest.raises(IndexError):
            d.owner(np.array([-1]))

    def test_block_start(self):
        d = BlockDistribution(10, 4)
        assert d.block_start(0) == 0
        assert d.block_start(2) == 6

    def test_more_ranks_than_elements(self):
        d = BlockDistribution(2, 5)
        assert sum(d.local_size(p) for p in range(5)) == 2
        check_invariants(d)


class TestCyclic:
    def test_round_robin(self):
        d = CyclicDistribution(10, 3)
        assert np.array_equal(d.owner(np.array([0, 1, 2, 3, 4])),
                              np.array([0, 1, 2, 0, 1]))

    def test_local_index(self):
        d = CyclicDistribution(10, 3)
        assert d.local_index(np.array([6]))[0] == 2

    def test_invariants(self):
        for n, p in [(0, 2), (11, 3), (64, 8)]:
            check_invariants(CyclicDistribution(n, p))

    def test_sizes(self):
        d = CyclicDistribution(10, 3)
        assert [d.local_size(p) for p in range(3)] == [4, 3, 3]
        with pytest.raises(IndexError):
            d.local_size(3)


class TestBlockCyclic:
    def test_blocks_dealt(self):
        d = BlockCyclicDistribution(12, 2, block_size=3)
        assert np.array_equal(
            d.owner(ALL_IDX(12)),
            np.array([0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]),
        )

    def test_local_index(self):
        d = BlockCyclicDistribution(12, 2, block_size=3)
        # element 7 is the second element of rank0's second block
        assert d.local_index(np.array([7]))[0] == 4

    def test_invariants(self):
        check_invariants(BlockCyclicDistribution(23, 4, block_size=3))

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockCyclicDistribution(10, 2, block_size=0)

    def test_block_size_one_is_cyclic(self):
        d1 = BlockCyclicDistribution(10, 3, 1)
        d2 = CyclicDistribution(10, 3)
        assert np.array_equal(d1.owner(ALL_IDX(10)), d2.owner(ALL_IDX(10)))


class TestIrregular:
    def test_from_map(self):
        d = IrregularDistribution([1, 0, 1, 0, 2], 3)
        assert np.array_equal(d.owner(ALL_IDX(5)), [1, 0, 1, 0, 2])
        assert d.local_size(0) == 2
        assert d.local_size(2) == 1

    def test_offsets_ascending_by_global(self):
        d = IrregularDistribution([1, 0, 1, 0, 1], 2)
        # rank1 owns globals 0, 2, 4 at offsets 0, 1, 2
        assert np.array_equal(d.local_index(np.array([0, 2, 4])), [0, 1, 2])

    def test_invariants(self, rng):
        labels = rng.integers(0, 6, 100)
        check_invariants(IrregularDistribution(labels, 6))

    def test_map_out_of_range(self):
        with pytest.raises(ValueError):
            IrregularDistribution([0, 3], 2)
        with pytest.raises(ValueError):
            IrregularDistribution([-1, 0], 2)

    def test_to_map_array_roundtrip(self, rng):
        labels = rng.integers(0, 4, 50)
        d = IrregularDistribution(labels, 4)
        assert np.array_equal(d.to_map_array(), labels)

    def test_2d_map_rejected(self):
        with pytest.raises(ValueError):
            IrregularDistribution(np.zeros((2, 2), dtype=int), 2)

    def test_from_partition_lists(self):
        parts = [np.array([0, 3]), np.array([1, 2])]
        d = IrregularDistribution.from_partition_lists(parts, 4)
        assert np.array_equal(d.to_map_array(), [0, 1, 1, 0])

    def test_from_partition_lists_duplicate_rejected(self):
        with pytest.raises(ValueError):
            IrregularDistribution.from_partition_lists(
                [np.array([0, 1]), np.array([1])], 2
            )

    def test_from_partition_lists_missing_rejected(self):
        with pytest.raises(ValueError):
            IrregularDistribution.from_partition_lists(
                [np.array([0]), np.array([2])], 3
            )

    def test_equality(self):
        a = IrregularDistribution([0, 1, 0], 2)
        b = IrregularDistribution([0, 1, 0], 2)
        c = IrregularDistribution([1, 1, 0], 2)
        assert a == b
        assert a != c
        assert a != BlockDistribution(3, 2) or np.array_equal(
            a.to_map_array(), BlockDistribution(3, 2).to_map_array()
        )

    def test_block_equals_equivalent_irregular(self):
        blk = BlockDistribution(6, 2)
        irr = IrregularDistribution([0, 0, 0, 1, 1, 1], 2)
        assert blk == irr
