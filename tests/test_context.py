"""ExecutionContext: resolution order, immutability, removal, seam gate.

The context is the one carrier object for per-run state; these tests pin
down its contract:

* :meth:`ExecutionContext.resolve` default chain — explicit argument >
  process-wide runtime default > ``REPRO_BACKEND`` env > ``vectorized``;
* the carrier is frozen (fields cannot be rebound) while the services it
  carries stay shared across derived variants;
* the kwarg-era surface deprecated in PR 4 (machine-first signatures,
  ``backend=`` keywords, nested pair accessors, ``from_pair_lists``)
  is *gone* — the former shim call shapes now raise :class:`TypeError`;
* serial and vectorized contexts stay *bitwise equal* end-to-end on the
  CHARMM and DSMC pipelines (results and traffic; the threaded backend
  joins the comparison in ``test_threaded_backend.py``);
* no kwarg threading or resurrected deprecated call site survives under
  ``src/repro/{core,lang,apps}`` (the same scan the CI lint gate runs).
"""

import dataclasses
import importlib.util
import os

import numpy as np
import pytest

from repro.apps.charmm import ParallelMD, build_small_system
from repro.apps.dsmc import CartesianGrid, DSMCConfig, ParallelDSMC
from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    build_lightweight_schedule,
    gather,
    get_backend,
    split_by_block,
    use_backend,
)
from repro.core.context import ensure_context
from repro.sim import Machine


# ---------------------------------------------------------------------
# resolution order
# ---------------------------------------------------------------------
class TestResolutionOrder:
    def test_explicit_argument_wins(self, machine4):
        with use_backend("serial"):
            ctx = ExecutionContext.resolve(machine4, "vectorized")
        assert ctx.backend.name == "vectorized"

    def test_runtime_default_beats_env(self, machine4, monkeypatch):
        import repro.core.backends.base as base
        monkeypatch.setenv(base.BACKEND_ENV_VAR, "vectorized")
        with use_backend("serial"):
            ctx = ExecutionContext.resolve(machine4)
        assert ctx.backend.name == "serial"

    def test_env_beats_builtin_default(self, machine4, monkeypatch):
        import repro.core.backends.base as base
        monkeypatch.setattr(base, "_default_name", None)
        monkeypatch.setenv(base.BACKEND_ENV_VAR, "serial")
        ctx = ExecutionContext.resolve(machine4)
        assert ctx.backend.name == "serial"

    def test_vectorized_is_final_fallback(self, machine4, monkeypatch):
        import repro.core.backends.base as base
        monkeypatch.setattr(base, "_default_name", None)
        monkeypatch.delenv(base.BACKEND_ENV_VAR, raising=False)
        ctx = ExecutionContext.resolve(machine4)
        assert ctx.backend.name == "vectorized"

    def test_backend_instance_accepted(self, machine4):
        be = get_backend("serial")
        assert ExecutionContext.resolve(machine4, be).backend is be

    def test_context_passthrough(self, ctx4):
        assert ExecutionContext.resolve(ctx4) is ctx4
        assert ExecutionContext.resolve(ctx4, ctx4.backend.name) is ctx4

    def test_context_retarget_shares_services(self, ctx4):
        # pick whichever backend the fixture did NOT resolve to
        target = "serial" if ctx4.backend.name != "serial" else "vectorized"
        other = ExecutionContext.resolve(ctx4, target)
        assert other is not ctx4
        assert other.backend.name == target
        assert other.machine is ctx4.machine
        assert other.record is ctx4.record
        assert other.schedule_cache is ctx4.schedule_cache

    def test_unresolved_backend_rejected(self, machine4):
        with pytest.raises(KeyError):
            ExecutionContext.resolve(machine4, "quantum")
        with pytest.raises(TypeError):
            ExecutionContext.resolve(machine4, 42)
        with pytest.raises(TypeError):
            ExecutionContext.resolve("not a machine")

    def test_context_plus_service_overrides_rejected(self, ctx4):
        # silently dropping the overrides would be worse than an error
        with pytest.raises(TypeError, match="derive"):
            ExecutionContext.resolve(ctx4, seed=42)
        with pytest.raises(TypeError, match="derive"):
            ExecutionContext.resolve(ctx4, record=ctx4.record)
        with pytest.raises(TypeError, match="derive"):
            ExecutionContext.resolve(ctx4, schedule_cache=ctx4.schedule_cache)


# ---------------------------------------------------------------------
# immutability + services
# ---------------------------------------------------------------------
class TestCarrier:
    def test_frozen(self, ctx4):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx4.backend = get_backend("serial")
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx4.seed = 99
        with pytest.raises(dataclasses.FrozenInstanceError):
            del ctx4.machine

    def test_requires_resolved_backend(self, machine4):
        with pytest.raises(TypeError):
            ExecutionContext(machine=machine4, backend="serial")

    def test_services_constructed_and_linked(self, ctx4):
        assert ctx4.schedule_cache.record is ctx4.record
        assert ctx4.seed == 0

    def test_with_backend_and_derive(self, machine4):
        ctx = ExecutionContext.resolve(machine4, seed=7)
        serial = ctx.with_backend("serial")
        assert serial.backend.name == "serial"
        assert serial.seed == 7
        assert serial.record is ctx.record
        reseeded = ctx.derive(seed=11)
        assert reseeded.seed == 11
        assert reseeded.backend is ctx.backend

    def test_fresh_services(self, ctx4):
        fresh = ctx4.fresh_services()
        assert fresh.record is not ctx4.record
        assert fresh.schedule_cache is not ctx4.schedule_cache
        assert fresh.schedule_cache.record is fresh.record

    def test_machine_conveniences(self, ctx4, machine4):
        assert ctx4.n_ranks == 4
        assert list(ctx4.ranks()) == list(machine4.ranks())
        assert ctx4.clocks is machine4.clocks
        assert ctx4.traffic is machine4.traffic
        rng1 = ExecutionContext.resolve(machine4, seed=5).rng()
        rng2 = ExecutionContext.resolve(machine4, seed=5).rng()
        assert rng1.integers(0, 1 << 30) == rng2.integers(0, 1 << 30)

    def test_runtime_exposes_context_services(self, ctx4):
        rt = ChaosRuntime(ctx4)
        assert rt.ctx is ctx4
        assert rt.machine is ctx4.machine
        assert rt.backend is ctx4.backend
        assert rt.schedule_cache is ctx4.schedule_cache
        assert rt.modification_record is ctx4.record


# ---------------------------------------------------------------------
# the kwarg-era surface is gone
# ---------------------------------------------------------------------
class TestRemovedLegacySurface:
    def _small_schedule(self, rt, rng, n=12, refs=20):
        tt = rt.irregular_table(rng.integers(0, 4, n))
        rt.hash_indirection(tt, split_by_block(rng.integers(0, n, refs),
                                               rt.machine), "s")
        return tt, rt.build_schedule(tt, "s")

    def test_machine_first_primitive_rejected(self, machine4, rng):
        dest = [rng.integers(0, 4, 6) for _ in range(4)]
        with pytest.raises(TypeError, match="ExecutionContext"):
            build_lightweight_schedule(machine4, dest)

    def test_backend_kwarg_rejected_on_primitives(self, ctx4, rng):
        rt = ChaosRuntime(ctx4)
        tt, sched = self._small_schedule(rt, rng)
        x = rt.distribute(rng.standard_normal(12), tt)
        with pytest.raises(TypeError):
            gather(ctx4, sched, x.local, backend="serial")
        with pytest.raises(TypeError):
            gather(ctx4.machine, sched, x.local)

    def test_constructor_backend_kwarg_rejected(self, machine4):
        with pytest.raises(TypeError):
            ChaosRuntime(machine4, backend="serial")

    def test_ensure_context_rejects_junk(self):
        with pytest.raises(TypeError, match="first argument"):
            ensure_context([1, 2, 3], who="gather")

    def test_legacy_dereference_signatures_rejected(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 10))
        # pre-context queries-first shapes, with/without positional
        # category and backend: all gone
        with pytest.raises(TypeError):
            tt.dereference([np.array([1, 2])] + [None] * 3)
        with pytest.raises(TypeError):
            tt.dereference([np.arange(4)] * 4, "remap")
        with pytest.raises(TypeError):
            tt.dereference([np.arange(4)] * 4, "remap", get_backend("serial"))

    def test_legacy_redistribute_positional_backend_rejected(self, ctx4, rng):
        rt = ChaosRuntime(ctx4)
        tt = rt.irregular_table(rng.integers(0, 4, 12))
        x = rt.distribute(rng.standard_normal(12), tt)
        tt2 = rt.block_table(12)
        with pytest.raises(TypeError):
            x.redistribute(tt2, "remap", "serial")
        moved = x.redistribute(tt2, ctx=ctx4)
        assert np.array_equal(moved.to_global(), x.to_global())

    def test_nested_pair_accessors_gone(self, ctx4, rng):
        from repro.core import (
            BlockDistribution,
            LightweightSchedule,
            RemapPlan,
            Schedule,
            remap,
        )

        rt = ChaosRuntime(ctx4)
        tt, sched = self._small_schedule(rt, rng, n=16, refs=30)
        plan = remap(ctx4, BlockDistribution(8, 4), BlockDistribution(8, 4))
        dest = [rng.integers(0, 4, 5) for _ in range(4)]
        lw = build_lightweight_schedule(ctx4, dest)
        for obj in (sched, plan, lw):
            assert not hasattr(obj, "send_pairs")
        assert not hasattr(sched, "recv_pairs")
        assert not hasattr(plan, "place_pairs")
        for cls in (Schedule, LightweightSchedule, RemapPlan):
            assert not hasattr(cls, "from_pair_lists")

    def test_program_instances_sharing_ctx_do_not_cross_hit(self, ctx4):
        # two different programs on ONE context: loop ids are
        # program-relative, so the shared ScheduleCache must be scoped
        # per instance or instance B would reuse A's schedules
        from repro.lang.program import ProgramInstance, compile_program

        src_a = """
        DECOMPOSITION reg(8)
        REAL x(8), y(8)
        INTEGER ia(8)
        ALIGN x, y WITH reg
        DISTRIBUTE reg(BLOCK)
        FORALL i = 1, 8
          REDUCE(SUM, x(ia(i)), y(i))
        END FORALL
        """
        src_b = src_a.replace("reg(8)", "reg(16)") \
                     .replace("x(8), y(8)", "x(16), y(16)") \
                     .replace("ia(8)", "ia(16)") \
                     .replace("i = 1, 8", "i = 1, 16")
        ia_a = np.arange(8, dtype=np.int64)[::-1] + 1
        ia_b = np.arange(16, dtype=np.int64)[::-1] + 1
        a = ProgramInstance(compile_program(src_a), ctx4,
                            dict(ia=ia_a, y=np.ones(8)))
        b = ProgramInstance(compile_program(src_b), ctx4,
                            dict(ia=ia_b, y=np.ones(16)))
        a.execute()
        b.execute()
        # rerun A's loop directly: with unscoped keys this would hit B's
        # cached 16-element schedule and fail (or silently corrupt)
        a.run_loop(a.compiled.loop_ids()[0])
        assert np.allclose(a.get_array("x"), 2 * np.ones(8))
        assert np.allclose(b.get_array("x"), np.ones(16))

    def test_dereference_foreign_machine_rejected(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 10))
        foreign = ExecutionContext.resolve(Machine(4))
        with pytest.raises(ValueError, match="machine"):
            tt.dereference(foreign, [None] * 4)

    def test_runtime_cache_stats_mirror(self, ctx4):
        # ChaosRuntime and ProgramInstance report ScheduleCache counters
        # through the same (hits, builds) shape
        rt = ChaosRuntime(ctx4)
        assert rt.cache_stats("nope") == (0, 0)
        rt.schedule_cache.get_or_build("loop", (), lambda: 1)
        rt.schedule_cache.get_or_build("loop", (), lambda: 1)
        assert rt.cache_stats("loop") == (1, 1)


# ---------------------------------------------------------------------
# serial / vectorized contexts bitwise-equal end-to-end
# ---------------------------------------------------------------------
class TestEndToEndEquivalence:
    def _charmm(self, backend):
        system = build_small_system(120, seed=3)
        m = Machine(4, record_messages=True)
        ctx = ExecutionContext.resolve(m, backend)
        md = ParallelMD(system, ctx, dt=0.002, update_every=3)
        md.run(6)
        return md, m

    def test_charmm_pipeline_bitwise(self):
        md_s, m_s = self._charmm("serial")
        md_v, m_v = self._charmm("vectorized")
        assert np.array_equal(md_s.global_positions(),
                              md_v.global_positions())
        assert np.array_equal(md_s.global_velocities(),
                              md_v.global_velocities())
        assert m_s.traffic.snapshot() == m_v.traffic.snapshot()
        assert m_s.traffic.messages == m_v.traffic.messages

    def _dsmc(self, backend):
        grid = CartesianGrid((8, 8))
        cfg = DSMCConfig(n_initial=400, inflow_rate=20, dt=0.4)
        m = Machine(4, record_messages=True)
        ctx = ExecutionContext.resolve(m, backend)
        par = ParallelDSMC(grid, ctx, cfg)
        par.run(8)
        return par, m

    def test_dsmc_pipeline_bitwise(self):
        par_s, m_s = self._dsmc("serial")
        par_v, m_v = self._dsmc("vectorized")
        a, b = par_s.canonical_state(), par_v.canonical_state()
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        assert m_s.traffic.snapshot() == m_v.traffic.snapshot()
        assert m_s.traffic.messages == m_v.traffic.messages


# ---------------------------------------------------------------------
# seam gate: zero legacy call sites under src/
# ---------------------------------------------------------------------
def test_no_legacy_call_sites_under_src():
    """The acceptance grep, executable: no ``backend=`` threading outside
    the context shim module, no nested pair-accessor call site outside
    the three plan modules that define them."""
    tools = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "tools", "check_context_seam.py")
    spec = importlib.util.spec_from_file_location("check_context_seam", tools)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.scan() == []
