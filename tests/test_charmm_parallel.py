"""Integration tests: CHAOS-parallel CHARMM vs the sequential oracle."""

import numpy as np
import pytest

from repro.apps.charmm import ParallelMD, SequentialMD, build_small_system
from repro.partitioners import RCB, RIB, BlockPartitioner
from repro.sim import Machine


def run_pair(n_atoms=200, n_ranks=4, steps=8, update_every=3, seed=7, **kw):
    sys_seq = build_small_system(n_atoms, seed=seed)
    sys_par = sys_seq.copy()
    seq = SequentialMD(sys_seq, dt=0.002, update_every=update_every)
    seq.run(steps)
    m = Machine(n_ranks)
    par = ParallelMD(sys_par, m, dt=0.002, update_every=update_every, **kw)
    par.run(steps)
    return seq, par, m


class TestOracle:
    def test_trajectory_matches_rcb(self):
        seq, par, m = run_pair()
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9

    def test_trajectory_matches_rib(self):
        seq, par, m = run_pair(partitioner=RIB())
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9

    def test_velocities_match(self):
        seq, par, m = run_pair()
        err = np.abs(par.global_velocities() - seq.system.velocities).max()
        assert err < 1e-9

    def test_energy_traces_match(self):
        seq, par, m = run_pair()
        assert np.allclose(seq.trace.potential_energy,
                           par.trace.potential_energy, rtol=1e-9)
        assert np.allclose(seq.trace.kinetic_energy,
                           par.trace.kinetic_energy, rtol=1e-9)

    def test_nb_update_cadence_matches(self):
        seq, par, m = run_pair(steps=10, update_every=4)
        assert seq.trace.nb_list_updates == par.trace.nb_list_updates
        assert seq.trace.nb_pairs_history == par.trace.nb_pairs_history

    def test_multiple_schedule_mode_correct(self):
        seq, par, m = run_pair(schedule_mode="multiple")
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9

    def test_single_rank(self):
        seq, par, m = run_pair(n_ranks=1, steps=5)
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9

    def test_block_partitioner_still_correct(self):
        seq, par, m = run_pair(partitioner=BlockPartitioner())
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9

    def test_repartitioning_preserves_trajectory(self):
        sys_seq = build_small_system(200, seed=3)
        sys_par = sys_seq.copy()
        seq = SequentialMD(sys_seq, dt=0.002, update_every=4)
        seq.run(10)
        m = Machine(4)
        par = ParallelMD(sys_par, m, dt=0.002, update_every=4)
        par.run(10, remap_every=3, remap_partitioners=[RCB(), RIB()])
        err = np.abs(par.global_positions() - seq.system.positions).max()
        assert err < 1e-9


class TestPaperEffects:
    def test_merged_schedules_cut_communication(self):
        """Table 3: merged < multiple on communication time."""
        _, _, m_merged = run_pair(schedule_mode="merged", seed=5)
        _, _, m_multi = run_pair(schedule_mode="multiple", seed=5)
        assert m_multi.clocks.mean_category("comm") > \
            m_merged.clocks.mean_category("comm")

    def test_schedule_regen_cheaper_than_initial_generation(self):
        """Table 2 shape: with hash-table reuse, per-update regeneration
        should not dwarf initial generation."""
        seq, par, m = run_pair(steps=13, update_every=3)
        regen_total = m.clocks.mean_category("schedule_regen")
        n_regens = par.trace.nb_list_updates - 1
        assert n_regens >= 3
        initial = m.clocks.mean_category("inspector")
        assert regen_total / n_regens < initial * 2.0

    def test_spatial_partitioner_beats_block_on_execution_time(self):
        """§4.1: spatial+load partitioners 'perform significantly better
        than naive BLOCK' — the win comes mostly from load balance."""
        _, par_rcb, m_rcb = run_pair(n_atoms=1000, seed=9, steps=3, n_ranks=8)
        _, par_blk, m_blk = run_pair(n_atoms=1000, seed=9, steps=3, n_ranks=8,
                                     partitioner=BlockPartitioner())
        assert m_rcb.execution_time() < m_blk.execution_time()
        assert par_rcb.load_balance() < par_blk.load_balance()

    def test_load_balance_reasonable(self):
        _, par, _ = run_pair(steps=6)
        lb = par.load_balance()
        assert 1.0 <= lb < 1.8

    def test_time_report_keys(self):
        _, par, _ = run_pair(steps=4)
        rep = par.time_report()
        for key in ("execution", "computation", "communication",
                    "partition", "remap", "nb_update", "inspector",
                    "schedule_regen", "load_balance"):
            assert key in rep
        assert rep["execution"] >= rep["computation"]


class TestValidation:
    def test_bad_schedule_mode(self):
        s = build_small_system(60, seed=0)
        with pytest.raises(ValueError):
            ParallelMD(s, Machine(2), schedule_mode="magic")

    def test_bad_update_every(self):
        s = build_small_system(60, seed=0)
        with pytest.raises(ValueError):
            ParallelMD(s, Machine(2), update_every=0)

    def test_negative_steps(self):
        s = build_small_system(60, seed=0)
        par = ParallelMD(s, Machine(2))
        with pytest.raises(ValueError):
            par.run(-1)
