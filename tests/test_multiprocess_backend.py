"""MultiprocessBackend: lifecycle, shipping contract, shared memory.

The four-way bitwise equivalence of results/schedules/traffic is
covered by ``test_backends.py`` / ``test_threaded_backend.py`` (which
force the ship threshold to zero); this module covers what is specific
to the process backend:

* lifecycle — the pool is lazy (never launched below the ship
  threshold), created once per context, shut down on ``close()`` with
  no leaked worker processes; foreign contexts are rejected;
* the no-pickle contract — on the steady-state path no ndarray is ever
  pickled across the process boundary (proved by instrumenting the
  pickler the submission queue uses), only shared-memory descriptors
  and plain constants;
* the arena — plan buffers are exported once per compiled plan, and
  every shared-memory segment is unlinked on ``close()``;
* the fallbacks — non-ufunc combiners and sub-threshold kernels run
  inline and still match; the ``spawn`` start method works end-to-end.
"""

import multiprocessing
from multiprocessing import shared_memory
from multiprocessing.reduction import ForkingPickler

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    gather,
    get_backend,
    scatter,
    scatter_op,
    split_by_block,
)
from repro.core.backends.multiprocess import (
    SHIP_THRESHOLD_ENV_VAR,
    START_METHOD_ENV_VAR,
    MultiprocessResources,
    _chunk_ranks,
)
from repro.sim import Machine


@pytest.fixture
def ship_all(monkeypatch):
    """Force every kernel across the process boundary."""
    monkeypatch.setenv(SHIP_THRESHOLD_ENV_VAR, "0")


def _workload(backend, n_ranks=4, n=96, n_ref=400, seed=11):
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    x = rt.distribute(rng.standard_normal((n, 3)), tt)
    rt.hash_indirection(tt, split_by_block(rng.integers(0, n, n_ref), m),
                        "s")
    sched = rt.build_schedule(tt, "s")
    ctx = ExecutionContext.resolve(m, backend)
    return ctx, sched, x.local


def _round(ctx, sched, data):
    ghosts = gather(ctx, sched, data)
    scatter_op(ctx, sched, data, [0.5 * g for g in ghosts], np.add)
    return ghosts


# ---------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------
class TestLifecycle:
    def test_pool_is_lazy_below_threshold(self):
        # default threshold: this tiny exchange must never launch
        # worker processes
        ctx, sched, data = _workload("multiprocess", n=8, n_ref=12)
        res = ctx.resources
        assert isinstance(res, MultiprocessResources)
        _round(ctx, sched, data)
        assert res.pool is None
        ctx.close()

    def test_pool_and_arena_created_once_per_context(self, ship_all):
        ctx, sched, data = _workload("multiprocess")
        res = ctx.resources
        arena = res.arena
        _round(ctx, sched, data)
        pool = res.pool
        assert pool is not None
        for _ in range(3):
            _round(ctx, sched, data)
            assert ctx.resources is res
            assert res.pool is pool
            assert res.arena is arena
        ctx.close()

    def test_close_is_idempotent_and_rejects_reuse(self, ship_all):
        ctx, sched, data = _workload("multiprocess")
        res = ctx.resources
        _round(ctx, sched, data)
        ctx.close()
        assert ctx.closed and res.closed
        ctx.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            ctx.backend._run_ranks(ctx, lambda p: p)

    def test_no_process_leaks_across_contexts(self, ship_all):
        for _ in range(3):
            ctx, sched, data = _workload("multiprocess")
            _round(ctx, sched, data)
            assert ctx.resources.pool is not None
            ctx.close()
        # close(wait=True) joins the workers of every pool
        assert multiprocessing.active_children() == []

    def test_rejects_foreign_resources(self):
        ctx = ExecutionContext.resolve(Machine(2), "vectorized")
        with pytest.raises(RuntimeError, match="resources"):
            get_backend("multiprocess")._run_ranks(ctx, lambda p: p)
        ctx.close()

    def test_retarget_opens_fresh_handle(self):
        ctx = ExecutionContext.resolve(Machine(4), "threaded")
        mp_ctx = ctx.with_backend("multiprocess")
        assert isinstance(mp_ctx.resources, MultiprocessResources)
        assert mp_ctx.resources is not ctx.resources
        mp_ctx.close()
        assert not ctx.closed
        ctx.close()

    def test_single_rank_machine(self, ship_all):
        ctx, sched, data = _workload("multiprocess", n_ranks=1, n=40,
                                     n_ref=120)
        ref_ctx, ref_sched, ref_data = _workload("vectorized", n_ranks=1,
                                                 n=40, n_ref=120)
        a = _round(ctx, sched, data)
        b = _round(ref_ctx, ref_sched, ref_data)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(data[0], ref_data[0])
        ctx.close()
        ref_ctx.close()


# ---------------------------------------------------------------------
# the no-pickle contract
# ---------------------------------------------------------------------
def test_steady_state_never_pickles_an_ndarray(ship_all):
    """Messages are shm descriptors + plain ints: instrument the pickler
    the submission queue uses and prove no ndarray payload crosses."""
    ctx, sched, data = _workload("multiprocess")
    _round(ctx, sched, data)  # warm up: pool launch + plan export
    _round(ctx, sched, data)
    pickled = []

    def counting_reduce(arr):
        pickled.append(arr.shape)
        return arr.__reduce__()

    saved = dict(ForkingPickler._extra_reducers)
    ForkingPickler.register(np.ndarray, counting_reduce)
    try:
        for _ in range(3):
            ghosts = _round(ctx, sched, data)
            scatter(ctx, sched, data, [2.0 * g for g in ghosts])
    finally:
        ForkingPickler._extra_reducers.clear()
        ForkingPickler._extra_reducers.update(saved)
    assert pickled == []
    ctx.close()


def test_shipped_results_match_inline(ship_all):
    ghosts = {}
    locals_ = {}
    for backend in ("vectorized", "multiprocess"):
        ctx, sched, data = _workload(backend)
        ghosts[backend] = _round(ctx, sched, data)
        locals_[backend] = data
        ctx.close()
    for p in range(4):
        assert np.array_equal(ghosts["vectorized"][p],
                              ghosts["multiprocess"][p])
        assert np.array_equal(locals_["vectorized"][p],
                              locals_["multiprocess"][p])


def test_non_ufunc_combiner_runs_inline_and_matches(ship_all):
    class Clamp:
        @staticmethod
        def at(target, idx, seg):
            np.minimum.at(target, idx, seg)

    results = {}
    for backend in ("serial", "multiprocess"):
        ctx, sched, data = _workload(backend)
        g = gather(ctx, sched, data)
        scatter_op(ctx, sched, data, [g_p - 1.0 for g_p in g], Clamp)
        results[backend] = data
        ctx.close()
    for p in range(4):
        assert np.array_equal(results["serial"][p],
                              results["multiprocess"][p])


# ---------------------------------------------------------------------
# the shared-memory arena
# ---------------------------------------------------------------------
def test_plan_buffers_export_once(ship_all):
    ctx, sched, data = _workload("multiprocess")
    res = ctx.resources
    _round(ctx, sched, data)
    static_used = (len(res.arena._static.segments),
                   res.arena._static.used)
    for _ in range(4):
        _round(ctx, sched, data)
    # steady state: the static region never grows again
    assert (len(res.arena._static.segments),
            res.arena._static.used) == static_used
    ctx.close()


def test_segments_unlinked_on_close(ship_all):
    ctx, sched, data = _workload("multiprocess")
    _round(ctx, sched, data)
    names = ctx.resources.arena.segment_names
    assert names  # the round above really used shared memory
    ctx.close()
    assert ctx.resources.arena.segment_names == ()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------
# start methods and chunking
# ---------------------------------------------------------------------
def test_spawn_start_method_end_to_end(ship_all, monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV_VAR, "spawn")
    ctx, sched, data = _workload("multiprocess")
    ref_ctx, ref_sched, ref_data = _workload("vectorized")
    a = _round(ctx, sched, data)
    b = _round(ref_ctx, ref_sched, ref_data)
    for p in range(4):
        assert np.array_equal(a[p], b[p])
        assert np.array_equal(data[p], ref_data[p])
    ctx.close()
    ref_ctx.close()


def test_chunk_ranks_covers_every_rank_once():
    for n in (1, 3, 7, 16):
        for width in (1, 2, 5, 16, 40):
            chunks = _chunk_ranks(n, width)
            flat = [p for chunk in chunks for p in chunk]
            assert flat == list(range(n))
            assert len(chunks) == min(n, max(1, min(width, n)))
