"""Fused pipelines (:func:`run_pipeline`) vs the unfused primitives.

The fusion contract is the backend contract one level up: a fused chain
must be *observationally identical* to running its phases through the
ordinary primitives — bitwise-equal results and ghosts, the exact same
traffic (message counts, bytes, tags, per-message records) and per-rank
clocks (to float round-off) — on every registered backend.  Fusion only
changes how fast the data moves, never what moves or what it costs.

Covered here:

* randomized gather + scatter_op chains (the CHARMM force pattern) and
  multi-phase remaps over one plan (the DSMC / CHARMM Phase-B pattern),
  fused vs unfused, four ways;
* the "multiple schedule mode" shape: two gathers from two schedules
  filling one shared table-wide ghost buffer in one pass;
* legality fallbacks — a non-ufunc combiner and a chain whose scatter
  reads the ghosts its gather writes both run unfused, with identical
  results;
* empty machines, empty schedules and zero-size plans;
* fused-plan cache counters under a ``loop_id`` (hits, builds, and the
  hit-preserving rebuild when a schedule is re-inspected).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    allocate_ghosts,
    clear_stamp,
    fusable,
    gather,
    gather_phase,
    remap,
    remap_array,
    remap_phase,
    run_pipeline,
    scatter_op,
    scatter_op_phase,
    split_by_block,
)
from repro.core.reuse import FUSED_SUFFIX
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS


def _clock_snapshots(machine):
    return [c.snapshot() for c in machine.clocks]


def _assert_clocks_match(a, b):
    for ca, cb in zip(a, b):
        for key in set(ca) | set(cb):
            assert ca.get(key, 0.0) == pytest.approx(
                cb.get(key, 0.0), rel=1e-9, abs=1e-15
            ), key


def _schedule_env(seed, n_ranks, n, n_ref, trailing):
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    shape = (n,) + trailing
    x = rt.distribute(rng.standard_normal(shape), tt)
    idx_g = rng.integers(0, n, n_ref) if n else np.zeros(0, dtype=np.int64)
    rt.hash_indirection(tt, split_by_block(idx_g, m), "s")
    sched = rt.build_schedule(tt, "s")
    m.reset_clocks()
    m.reset_traffic()
    return m, x, sched, rng


def _observe(machine, *arrays):
    return (
        [[np.asarray(a).copy() for a in group] for group in arrays],
        machine.traffic.snapshot(),
        list(machine.traffic.messages),
        _clock_snapshots(machine),
    )


def _assert_same(ref, got):
    for g_ref, g_got in zip(ref[0], got[0]):
        for a, b in zip(g_ref, g_got):
            np.testing.assert_array_equal(a, b)
    assert ref[1] == got[1]
    assert ref[2] == got[2]
    _assert_clocks_match(ref[3], got[3])


def _gather_scatter(backend, fused, seed, n_ranks, n, n_ref, trailing):
    """One gather + one scatter_op over the same schedule; observe all."""
    m, x, sched, rng = _schedule_env(seed, n_ranks, n, n_ref, trailing)
    ctx = ExecutionContext.resolve(m, backend)
    try:
        ghosts = allocate_ghosts(sched, x.local)
        contrib = None
        if fused:
            run_pipeline(ctx, [gather_phase(sched, x.local, ghosts)],
                         loop_id="gs:g")
            contrib = [1.5 * g + 0.25 for g in ghosts]
            run_pipeline(
                ctx,
                [scatter_op_phase(sched, x.local, contrib, np.add)],
                loop_id="gs:s",
            )
        else:
            gather(ctx, sched, x.local, ghosts)
            contrib = [1.5 * g + 0.25 for g in ghosts]
            scatter_op(ctx, sched, x.local, contrib, np.add)
        return _observe(m, ghosts, x.local)
    finally:
        ctx.close()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    n=st.integers(1, 60),
    n_ref=st.integers(0, 150),
    trailing=st.sampled_from([(), (3,)]),
)
def test_fused_gather_scatter_four_ways(seed, n_ranks, n, n_ref, trailing):
    ref = _gather_scatter("serial", False, seed, n_ranks, n, n_ref,
                          trailing)
    for backend in BACKENDS:
        for fused in (False, True):
            got = _gather_scatter(backend, fused, seed, n_ranks, n,
                                  n_ref, trailing)
            _assert_same(ref, got)


def _remap_pipeline(backend, fused, seed, n_ranks, n, trailing):
    """Three arrays moved with one remap plan (the Phase-B pattern)."""
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    rt = ChaosRuntime(m)
    old_tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    new_tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    a = rt.distribute(rng.standard_normal((n,) + trailing), old_tt)
    b = rt.distribute(rng.integers(0, 1000, n), old_tt)
    c = rt.distribute(rng.standard_normal(n), old_tt)
    ctx = ExecutionContext.resolve(m, backend)
    try:
        plan = remap(ctx, old_tt.dist, new_tt.dist)
        m.reset_clocks()
        m.reset_traffic()
        if fused:
            ra, rb, rc = run_pipeline(
                ctx,
                [remap_phase(plan, a.local),
                 remap_phase(plan, b.local),
                 remap_phase(plan, c.local)],
                category="remap", loop_id="rm",
            )
        else:
            ra = remap_array(ctx, plan, a.local)
            rb = remap_array(ctx, plan, b.local)
            rc = remap_array(ctx, plan, c.local)
        return _observe(m, ra, rb, rc)
    finally:
        ctx.close()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 5),
    n=st.integers(0, 60),
    trailing=st.sampled_from([(), (2,)]),
)
def test_fused_remap_four_ways(seed, n_ranks, n, trailing):
    ref = _remap_pipeline("serial", False, seed, n_ranks, n, trailing)
    for backend in BACKENDS:
        for fused in (False, True):
            got = _remap_pipeline(backend, fused, seed, n_ranks, n,
                                  trailing)
            _assert_same(ref, got)
    # dtype is preserved through the fused path
    assert got[0][1][0].dtype == np.int64 if n_ranks else True


def _two_schedule_env(seed=7, n_ranks=4, n=90):
    """Two schedules over one table — the CHARMM 'multiple' mode shape.

    Ghost numbering is table-wide, so one ghost buffer (allocated from
    either schedule) holds both gathers' arrivals.
    """
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    x = rt.distribute(rng.standard_normal((n, 3)), tt)
    rt.hash_indirection(tt, split_by_block(rng.integers(0, n, 120), m),
                        "nb")
    rt.hash_indirection(tt, split_by_block(rng.integers(0, n, 80), m),
                        "bonded")
    s1 = rt.build_schedule(tt, "nb")
    s2 = rt.build_schedule(tt, "bonded")
    m.reset_clocks()
    m.reset_traffic()
    return m, x, s1, s2


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_shared_ghost_double_gather(backend):
    m, x, s1, s2 = _two_schedule_env()
    ctx = ExecutionContext.resolve(m, "serial")
    ghosts_ref = allocate_ghosts(s1, x.local)
    gather(ctx, s1, x.local, ghosts_ref)
    gather(ctx, s2, x.local, ghosts_ref)
    ref = _observe(m, ghosts_ref)
    ctx.close()

    m, x, s1, s2 = _two_schedule_env()
    ctx = ExecutionContext.resolve(m, backend)
    try:
        ghosts = allocate_ghosts(s1, x.local)
        run_pipeline(
            ctx,
            [gather_phase(s1, x.local, ghosts),
             gather_phase(s2, x.local, ghosts)],
            loop_id="multi",
        )
        _assert_same(ref, _observe(m, ghosts))
    finally:
        ctx.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_shared_dest_double_scatter(backend):
    """Two combining scatters into the same locals, stage order kept."""
    m, x, s1, s2 = _two_schedule_env(seed=11)
    ctx = ExecutionContext.resolve(m, "serial")
    g = allocate_ghosts(s1, x.local)
    gather(ctx, s1, x.local, g)
    c1 = [1.5 * a + 0.25 for a in g]
    c2 = [2.0 * a for a in g]
    m.reset_clocks()
    m.reset_traffic()
    scatter_op(ctx, s1, x.local, c1, np.add)
    scatter_op(ctx, s2, x.local, c2, np.maximum)
    ref = _observe(m, x.local)
    ctx.close()

    for backend_name in (backend,):
        m, x, s1, s2 = _two_schedule_env(seed=11)
        ctx = ExecutionContext.resolve(m, backend_name)
        try:
            g = allocate_ghosts(s1, x.local)
            gather(ctx, s1, x.local, g)
            c1 = [1.5 * a + 0.25 for a in g]
            c2 = [2.0 * a for a in g]
            m.reset_clocks()
            m.reset_traffic()
            out = run_pipeline(
                ctx,
                [scatter_op_phase(s1, x.local, c1, np.add),
                 scatter_op_phase(s2, x.local, c2, np.maximum)],
                loop_id="fs",
            )
            assert out == [None, None]
            _assert_same(ref, _observe(m, x.local))
        finally:
            ctx.close()


class _OddCombiner:
    """Has ``.at`` like a ufunc but is not a named numpy ufunc."""

    __name__ = "odd_combiner"

    @staticmethod
    def at(target, idx, values):
        np.add.at(target, idx, values)

    def __call__(self, a, b):  # pragma: no cover - signature parity
        return a + b


@pytest.mark.parametrize("backend", BACKENDS)
def test_non_ufunc_combiner_falls_back(backend):
    op = _OddCombiner()
    m, x, sched, rng = _schedule_env(23, 4, 70, 140, ())
    ctx = ExecutionContext.resolve(m, "serial")
    g = allocate_ghosts(sched, x.local)
    gather(ctx, sched, x.local, g)
    c = [0.5 * a for a in g]
    m.reset_clocks()
    m.reset_traffic()
    scatter_op(ctx, sched, x.local, c, op)
    ref = _observe(m, x.local)
    ctx.close()

    m, x, sched, rng = _schedule_env(23, 4, 70, 140, ())
    ctx = ExecutionContext.resolve(m, backend)
    try:
        g = allocate_ghosts(sched, x.local)
        gather(ctx, sched, x.local, g)
        c = [0.5 * a for a in g]
        phases = [scatter_op_phase(sched, x.local, c, op)]
        ok, reason = fusable(phases)
        assert not ok and "ufunc" in reason
        m.reset_clocks()
        m.reset_traffic()
        run_pipeline(ctx, phases)
        _assert_same(ref, _observe(m, x.local))
    finally:
        ctx.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_read_write_overlap_falls_back(backend):
    """A scatter reading the ghosts its gather writes cannot fuse."""
    m, x, sched, rng = _schedule_env(31, 4, 60, 120, (3,))
    ctx = ExecutionContext.resolve(m, "serial")
    g = allocate_ghosts(sched, x.local)
    gather(ctx, sched, x.local, g)
    scatter_op(ctx, sched, x.local, g, np.add)
    ref = _observe(m, g, x.local)
    ctx.close()

    m, x, sched, rng = _schedule_env(31, 4, 60, 120, (3,))
    ctx = ExecutionContext.resolve(m, backend)
    try:
        g = allocate_ghosts(sched, x.local)
        phases = [gather_phase(sched, x.local, g),
                  scatter_op_phase(sched, x.local, g, np.add)]
        ok, reason = fusable(phases)
        assert not ok and "reads" in reason
        run_pipeline(ctx, phases)
        _assert_same(ref, _observe(m, g, x.local))
    finally:
        ctx.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_ranks,n,n_ref", [(1, 1, 0), (3, 3, 0),
                                             (4, 0, 0), (2, 1, 1)])
def test_fused_empty_and_tiny(backend, n_ranks, n, n_ref):
    ref = _gather_scatter("serial", False, 5, n_ranks, max(n, 1), n_ref,
                          ())
    got = _gather_scatter(backend, True, 5, n_ranks, max(n, 1), n_ref,
                          ())
    _assert_same(ref, got)
    # an entirely empty phase list is a no-op returning no results
    m = Machine(n_ranks)
    ctx = ExecutionContext.resolve(m, backend)
    try:
        assert run_pipeline(ctx, []) == []
    finally:
        ctx.close()


def test_fused_cache_stats_and_rebuild():
    rng = np.random.default_rng(2)
    m = Machine(4)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, 4, 50))
    x = rt.distribute(rng.standard_normal(50), tt)
    rt.hash_indirection(tt, split_by_block(rng.integers(0, 50, 90), m),
                        "s")
    sched = rt.build_schedule(tt, "s")
    ghosts = allocate_ghosts(sched, x.local)

    assert rt.cache_stats("loop", fused=True) == (0, 0)
    run_pipeline(rt.ctx, [gather_phase(sched, x.local, ghosts)],
                 loop_id="loop")
    assert rt.cache_stats("loop", fused=True) == (0, 1)
    run_pipeline(rt.ctx, [gather_phase(sched, x.local, ghosts)],
                 loop_id="loop")
    assert rt.cache_stats("loop", fused=True) == (1, 1)

    # re-inspect: a new schedule under the same loop id forces a rebuild
    # of the fused plan without resetting the hit counter
    clear_stamp(rt.ctx, rt.hash_tables(tt), "s")
    rt.hash_indirection(tt, split_by_block(rng.integers(0, 50, 90), m),
                        "s")
    sched2 = rt.build_schedule(tt, "s")
    ghosts2 = allocate_ghosts(sched2, x.local)
    run_pipeline(rt.ctx, [gather_phase(sched2, x.local, ghosts2)],
                 loop_id="loop")
    assert rt.cache_stats("loop", fused=True) == (1, 2)
    run_pipeline(rt.ctx, [gather_phase(sched2, x.local, ghosts2)],
                 loop_id="loop")
    assert rt.cache_stats("loop", fused=True) == (2, 2)
    # the fused entry lives under its own suffixed key, so the unfused
    # schedule-cache slot for the same loop id is untouched
    assert rt.cache_stats("loop") == (0, 0)
    assert rt.schedule_cache.stats("loop" + FUSED_SUFFIX) == (2, 2)
