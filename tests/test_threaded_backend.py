"""Pooled backends: four-way equivalence + thread-pool lifecycle.

Every backend must be observationally identical to the serial
reference — bitwise-equal localized indices, schedules, executor
results, and exact traffic on the CHARMM and DSMC end-to-end
pipelines.  The sweep covers all of ``ALL_BACKENDS`` with the
multiprocess ship threshold forced to zero, so the shared-memory
process path is exercised on real workloads, not just big ones.  The
lifecycle half covers the threaded backend's per-context worker pool:
created once per context, shut down on ``close()``, never leaked
across contexts (the multiprocess variants live in
``test_multiprocess_backend.py``).
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.charmm import ParallelMD, build_small_system
from repro.apps.dsmc import CartesianGrid, DSMCConfig, ParallelDSMC
from repro.core import (
    BackendResources,
    ChaosRuntime,
    ExecutionContext,
    build_lightweight_schedule,
    build_schedule,
    chaos_hash,
    gather,
    make_hash_tables,
    scatter_append,
    scatter_op,
    split_by_block,
)
from repro.core.backends.multiprocess import SHIP_THRESHOLD_ENV_VAR
from repro.core.backends.threaded import ThreadedResources
from repro.core.translation import TranslationTable
from repro.lang.program import ProgramInstance, compile_program
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS


@pytest.fixture(scope="module", autouse=True)
def _ship_everything():
    """Force the multiprocess backend to ship every kernel, however
    small, so the equivalence sweep covers the shared-memory path."""
    old = os.environ.get(SHIP_THRESHOLD_ENV_VAR)
    os.environ[SHIP_THRESHOLD_ENV_VAR] = "0"
    yield
    if old is None:
        os.environ.pop(SHIP_THRESHOLD_ENV_VAR, None)
    else:
        os.environ[SHIP_THRESHOLD_ENV_VAR] = old


def _rank_threads() -> list[threading.Thread]:
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-rank")]


# ---------------------------------------------------------------------
# three-way pipeline equivalence
# ---------------------------------------------------------------------
class TestThreeWayPipelines:
    def _charmm(self, backend):
        system = build_small_system(120, seed=3)
        m = Machine(4, record_messages=True)
        md = ParallelMD(system, ExecutionContext.resolve(m, backend),
                        dt=0.002, update_every=3)
        md.run(6)
        return md, m

    def test_charmm_pipeline_bitwise(self):
        runs = {b: self._charmm(b) for b in BACKENDS}
        md_ref, m_ref = runs["serial"]
        for other in BACKENDS[1:]:
            md, m = runs[other]
            assert np.array_equal(md_ref.global_positions(),
                                  md.global_positions())
            assert np.array_equal(md_ref.global_velocities(),
                                  md.global_velocities())
            # the inspector's localized indices agree rank by rank
            for p in range(4):
                assert np.array_equal(md_ref.nb_i_loc[p], md.nb_i_loc[p])
                assert np.array_equal(md_ref.nb_j_loc[p], md.nb_j_loc[p])
                assert np.array_equal(md_ref.ib_loc[p], md.ib_loc[p])
                assert np.array_equal(md_ref.sched.send_indices[p],
                                      md.sched.send_indices[p])
                assert np.array_equal(md_ref.sched.recv_slots[p],
                                      md.sched.recv_slots[p])
            assert m_ref.traffic.snapshot() == m.traffic.snapshot()
            assert m_ref.traffic.messages == m.traffic.messages
            md.close()

    def test_dsmc_pipeline_bitwise(self):
        def run(backend):
            grid = CartesianGrid((8, 8))
            cfg = DSMCConfig(n_initial=400, inflow_rate=20, dt=0.4)
            m = Machine(4, record_messages=True)
            par = ParallelDSMC(grid, ExecutionContext.resolve(m, backend),
                               cfg)
            par.run(8)
            return par, m

        par_ref, m_ref = run("serial")
        for other in BACKENDS[1:]:
            par, m = run(other)
            for x, y in zip(par_ref.canonical_state(),
                            par.canonical_state()):
                assert np.array_equal(x, y)
            assert m_ref.traffic.snapshot() == m.traffic.snapshot()
            assert m_ref.traffic.messages == m.traffic.messages
            par.close()

    def test_compiler_runtime_on_threaded(self):
        src = """
        DECOMPOSITION reg(12)
        REAL x(12), y(12)
        INTEGER ia(12)
        ALIGN x, y WITH reg
        DISTRIBUTE reg(BLOCK)
        FORALL i = 1, 12
          REDUCE(SUM, x(ia(i)), y(i))
        END FORALL
        """
        ia = np.arange(12, dtype=np.int64)[::-1] + 1
        outs = {}
        for backend in BACKENDS:
            with ProgramInstance(
                compile_program(src),
                ExecutionContext.resolve(Machine(4), backend),
                dict(ia=ia, y=np.arange(12, dtype=float)),
            ) as prog:
                prog.execute()
                outs[backend] = prog.get_array("x")
        for other in BACKENDS[1:]:
            assert np.array_equal(outs["serial"], outs[other])


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    n=st.integers(1, 80),
    n_ref=st.integers(0, 200),
)
def test_threaded_primitives_bitwise(seed, n_ranks, n, n_ref):
    """Localized indices, schedule buffers, executor results and exact
    traffic agree three ways on randomized irregular workloads."""
    results = {}
    for backend in BACKENDS:
        rng = np.random.default_rng(seed)
        m = Machine(n_ranks, record_messages=True)
        ctx = ExecutionContext.resolve(m, backend)
        tt = TranslationTable.from_map(m, rng.integers(0, n_ranks, n))
        hts = make_hash_tables(ctx, tt)
        idx = split_by_block(rng.integers(0, n, n_ref), m)
        loc = chaos_hash(ctx, hts, tt, idx, "s")
        sched = build_schedule(ctx, hts, "s")
        data = [rng.standard_normal((tt.dist.local_size(p), 3))
                for p in m.ranks()]
        ghosts = gather(ctx, sched, data)
        scatter_op(ctx, sched, data, [2.0 * g for g in ghosts], np.add)
        dest = [rng.integers(0, n_ranks, 11) for _ in m.ranks()]
        lw = build_lightweight_schedule(ctx, dest)
        moved = scatter_append(ctx, lw, [rng.standard_normal(11)
                                         for _ in m.ranks()])
        results[backend] = (loc, sched, ghosts, data, moved,
                            m.traffic.snapshot(), list(m.traffic.messages))
        ctx.close()
    a = results["serial"]
    for other in BACKENDS[1:]:
        b = results[other]
        for p in range(n_ranks):
            assert np.array_equal(a[0][p], b[0][p])
            assert np.array_equal(a[1].send_indices[p], b[1].send_indices[p])
            assert np.array_equal(a[1].send_offsets[p], b[1].send_offsets[p])
            assert np.array_equal(a[1].recv_slots[p], b[1].recv_slots[p])
            assert np.array_equal(a[2][p], b[2][p])
            assert np.array_equal(a[3][p], b[3][p])
            assert np.array_equal(a[4][p], b[4][p])
        assert a[5] == b[5]
        assert a[6] == b[6]


# ---------------------------------------------------------------------
# resource lifecycle
# ---------------------------------------------------------------------
class TestLifecycle:
    def test_pool_created_once_per_context(self, rng):
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, "threaded")
        res = ctx.resources
        assert isinstance(res, ThreadedResources)
        assert res.backend is ctx.backend
        pool = res.pool
        dest = [rng.integers(0, 4, 10) for _ in range(4)]
        for _ in range(3):
            sched = build_lightweight_schedule(ctx, dest)
            scatter_append(ctx, sched, [rng.standard_normal(10)
                                        for _ in range(4)])
            assert ctx.resources is res
            assert res.pool is pool
        ctx.close()

    def test_close_shuts_pool_down_and_is_idempotent(self):
        ctx = ExecutionContext.resolve(Machine(4), "threaded")
        res = ctx.resources
        assert not ctx.closed
        ctx.close()
        assert ctx.closed and res.closed
        ctx.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            ctx.backend._run_ranks(ctx, lambda p: p)

    def test_no_thread_leaks_across_contexts(self, rng):
        baseline = len(_rank_threads())
        for _ in range(5):
            with ExecutionContext.resolve(Machine(4), "threaded") as ctx:
                dest = [rng.integers(0, 4, 50) for _ in range(4)]
                sched = build_lightweight_schedule(ctx, dest)
                scatter_append(ctx, sched, [rng.standard_normal(50)
                                            for _ in range(4)])
                assert len(_rank_threads()) > baseline  # pool is live
        # close(wait=True) joins workers: nothing left running
        assert len(_rank_threads()) == baseline

    def test_components_own_the_lifecycle(self, rng):
        with ChaosRuntime(
            ExecutionContext.resolve(Machine(4), "threaded")
        ) as rt:
            tt = rt.irregular_table(rng.integers(0, 4, 12))
            rt.hash_indirection(
                tt, split_by_block(rng.integers(0, 12, 20), rt.machine), "s"
            )
            rt.build_schedule(tt, "s")
            assert not rt.ctx.closed
        assert rt.ctx.closed

        md = ParallelMD(build_small_system(40, seed=1),
                        ExecutionContext.resolve(Machine(2), "threaded"),
                        update_every=2)
        md.run(2)
        md.close()
        assert md.ctx.closed

    def test_retarget_opens_fresh_handle(self):
        ctx = ExecutionContext.resolve(Machine(4), "vectorized")
        assert type(ctx.resources) is BackendResources  # no pool owned
        threaded = ctx.with_backend("threaded")
        assert isinstance(threaded.resources, ThreadedResources)
        assert threaded.resources is not ctx.resources
        # same-backend variants share the handle; closing the variant
        # closes it for the family, closing a sibling backend does not
        derived = threaded.derive(seed=7)
        assert derived.resources is threaded.resources
        threaded.close()
        assert derived.closed
        assert not ctx.closed
        ctx.close()

    def test_with_backend_same_backend_is_self(self):
        ctx = ExecutionContext.resolve(Machine(4), "threaded")
        assert ctx.with_backend("threaded") is ctx
        ctx.close()

    def test_failing_rank_kernel_propagates_cleanly(self):
        # one kernel raising must surface its error with every other
        # submitted kernel cancelled or drained first — and leave the
        # pool reusable
        ctx = ExecutionContext.resolve(Machine(4), "threaded")

        def boom(p):
            if p == 2:
                raise ValueError("rank 2 kernel failed")
            return p

        with pytest.raises(ValueError, match="rank 2"):
            ctx.backend._run_ranks(ctx, boom)
        assert ctx.backend._run_ranks(ctx, lambda p: p) == [0, 1, 2, 3]
        ctx.close()

    def test_threaded_rejects_foreign_resources(self):
        # a context whose resources belong to another backend must not
        # be driven through the threaded rank loop
        ctx = ExecutionContext.resolve(Machine(2), "vectorized")
        from repro.core import get_backend
        with pytest.raises(RuntimeError, match="resources"):
            get_backend("threaded")._run_ranks(ctx, lambda p: p)
        ctx.close()
