"""Tests for second-round extensions: Morton partitioner, multi-array
scatter_append, Fortran-D intrinsic functions, the CHARMM thermostat."""

import numpy as np
import pytest

from repro.core import (
    ExecutionContext,
    build_lightweight_schedule,
    scatter_append,
    scatter_append_multi,
)
from repro.partitioners import MortonPartitioner, RCB, morton_keys
from repro.sim import Machine


class TestMortonKeys:
    def test_locality(self, rng):
        """Points close in space get close Morton keys (statistically)."""
        pts = rng.random((500, 2))
        keys = morton_keys(pts)
        order = np.argsort(keys)
        # consecutive points along the curve are spatially close on average
        d_curve = np.linalg.norm(np.diff(pts[order], axis=0), axis=1).mean()
        d_random = np.linalg.norm(
            pts[rng.permutation(500)][:-1] - pts[rng.permutation(500)][1:],
            axis=1,
        ).mean()
        assert d_curve < d_random / 2

    def test_deterministic(self, rng):
        pts = rng.random((100, 3))
        assert np.array_equal(morton_keys(pts), morton_keys(pts))

    def test_1d_accepted(self):
        keys = morton_keys(np.array([0.1, 0.9, 0.5]))
        assert keys.argsort().tolist() == [0, 2, 1]

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            morton_keys(np.zeros((3, 4)))

    def test_empty(self):
        assert morton_keys(np.zeros((0, 2))).size == 0


class TestMortonPartitioner:
    def test_all_assigned_balanced(self, rng):
        coords = rng.random((400, 3))
        w = rng.random(400) + 0.1
        res = MortonPartitioner().partition(coords, 8, w)
        assert res.labels.shape == (400,)
        assert res.imbalance(w) < 1.35

    def test_spatial_compactness(self, rng):
        coords = rng.random((600, 2))
        res = MortonPartitioner().partition(coords, 4)
        global_spread = coords.std(axis=0).mean()
        intra = [coords[res.labels == k].std(axis=0).mean() for k in range(4)]
        assert np.mean(intra) < global_spread

    def test_cost_between_chain_and_rcb(self):
        from repro.partitioners import ChainPartitioner

        m = Machine(64)
        chain = sum(ChainPartitioner().parallel_cost(50000, 64, m))
        morton = sum(MortonPartitioner().parallel_cost(50000, 64, m))
        rcb = sum(RCB().parallel_cost(50000, 64, m))
        assert chain < morton < rcb

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            MortonPartitioner(bits=0)

    def test_single_part(self, rng):
        res = MortonPartitioner().partition(rng.random((10, 2)), 1)
        assert np.all(res.labels == 0)

    def test_charmm_runs_with_morton(self):
        from repro.apps.charmm import ParallelMD, SequentialMD, build_small_system

        a = build_small_system(180, seed=2)
        b = a.copy()
        seq = SequentialMD(a, update_every=3)
        seq.run(5)
        par = ParallelMD(b, Machine(4), update_every=3,
                         partitioner=MortonPartitioner())
        par.run(5)
        assert np.abs(par.global_positions() - a.positions).max() < 1e-9


class TestScatterAppendMulti:
    def test_matches_separate_appends(self, ctx4, rng):
        dest = [rng.integers(0, 4, 10) for _ in range(4)]
        ids = [np.arange(10) + 50 * p for p in range(4)]
        vel = [rng.standard_normal((10, 2)) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        ref_ids = scatter_append(ctx4, sched, ids)
        ref_vel = scatter_append(ctx4, sched, vel)
        out = scatter_append_multi(ctx4, sched, [ids, vel])
        for p in range(4):
            assert np.array_equal(out[0][p], ref_ids[p])
            assert np.array_equal(out[1][p], ref_vel[p])

    def test_single_message_set(self, rng):
        dest = [rng.integers(0, 4, 20) for _ in range(4)]
        arrays = [[rng.standard_normal(20) for _ in range(4)]
                  for _ in range(3)]
        m1 = Machine(4)
        c1 = ExecutionContext.resolve(m1)
        s1 = build_lightweight_schedule(c1, dest)
        m1.reset_traffic()
        scatter_append_multi(c1, s1, arrays)
        m2 = Machine(4)
        c2 = ExecutionContext.resolve(m2)
        s2 = build_lightweight_schedule(c2, dest)
        m2.reset_traffic()
        for a in arrays:
            scatter_append(c2, s2, a)
        assert m1.traffic.n_messages * 3 == m2.traffic.n_messages
        # same bytes on the wire either way (payloads identical)
        assert m1.traffic.total_bytes == m2.traffic.total_bytes

    def test_empty_attr_list(self, ctx4):
        dest = [np.zeros(0, dtype=np.int64)] * 4
        sched = build_lightweight_schedule(ctx4, dest)
        assert scatter_append_multi(ctx4, sched, []) == []

    def test_length_mismatch_rejected(self, ctx4, rng):
        dest = [rng.integers(0, 4, 5) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        bad = [[rng.standard_normal(4) for _ in range(4)]]
        with pytest.raises(ValueError):
            scatter_append_multi(ctx4, sched, bad)


class TestIntrinsics:
    def run_both(self, src, bindings, n_ranks=3):
        from repro.lang import (
            ProgramInstance,
            compile_program,
            interpret_sequential,
        )

        prog = compile_program(src)
        seq = interpret_sequential(
            prog, {k: np.copy(v) for k, v in bindings.items()}
        )
        inst = ProgramInstance(prog, Machine(n_ranks),
                               {k: np.copy(v) for k, v in bindings.items()})
        inst.execute()
        return seq, inst

    def test_sqrt_abs(self, rng):
        n, e = 12, 40
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), SQRT(ABS(y(ib(i)))))
          END DO
"""
        b = dict(x=np.zeros(n), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        seq, inst = self.run_both(src, b)
        assert np.allclose(inst.get_array("x"), seq["x"])

    def test_exp_sin_cos(self, rng):
        n, e = 10, 30
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), EXP(-y(ia(i)) ** 2) * SIN(y(ia(i))) + COS(y(ia(i))))
          END DO
"""
        b = dict(x=np.zeros(n), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e))
        seq, inst = self.run_both(src, b)
        assert np.allclose(inst.get_array("x"), seq["x"])

    def test_intrinsic_not_confused_with_array(self):
        """An array named like an intrinsic is not supported — parses as a
        Call, so analysis flags the unknown usage cleanly rather than
        silently mis-reading it."""
        from repro.lang import parse_program
        from repro.lang.ast_nodes import Call

        prog = parse_program("x(1) = SQRT(2)")
        assert isinstance(prog.statements[0].value, Call)


class TestThermostat:
    def test_parallel_matches_sequential(self):
        from repro.apps.charmm import ParallelMD, SequentialMD, build_small_system

        a = build_small_system(180, seed=4)
        b = a.copy()
        seq = SequentialMD(a, update_every=3, thermostat_temperature=0.3)
        seq.run(8)
        par = ParallelMD(b, Machine(4), update_every=3,
                         thermostat_temperature=0.3)
        par.run(8)
        assert np.abs(par.global_positions() - a.positions).max() < 1e-8

    def test_controls_temperature(self):
        from repro.apps.charmm import SequentialMD, build_small_system

        a = build_small_system(200, seed=6)
        b = a.copy()
        free = SequentialMD(a, update_every=4)
        free.run(12)
        damped = SequentialMD(b, update_every=4,
                              thermostat_temperature=1e-6,
                              thermostat_tau=0.01)
        damped.run(12)
        assert damped.system.kinetic_energy() < free.system.kinetic_energy()

    def test_validation(self):
        from repro.apps.charmm import SequentialMD, ParallelMD, build_small_system

        s = build_small_system(60, seed=0)
        with pytest.raises(ValueError):
            SequentialMD(s, thermostat_temperature=-1)
        with pytest.raises(ValueError):
            SequentialMD(s, thermostat_temperature=1.0, thermostat_tau=0)
        with pytest.raises(ValueError):
            ParallelMD(s.copy(), Machine(2), thermostat_temperature=0)
