"""Shared fixtures."""

import numpy as np
import pytest

from repro.sim import Machine


@pytest.fixture
def machine4() -> Machine:
    return Machine(4)


@pytest.fixture
def machine8() -> Machine:
    return Machine(8)


@pytest.fixture
def machine1() -> Machine:
    return Machine(1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
