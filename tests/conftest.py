"""Shared fixtures."""

import numpy as np
import pytest

from repro.core import ExecutionContext
from repro.sim import Machine


@pytest.fixture
def machine4() -> Machine:
    return Machine(4)


@pytest.fixture
def machine8() -> Machine:
    return Machine(8)


@pytest.fixture
def machine1() -> Machine:
    return Machine(1)


@pytest.fixture
def ctx4(machine4) -> ExecutionContext:
    return ExecutionContext.resolve(machine4)


@pytest.fixture
def ctx8(machine8) -> ExecutionContext:
    return ExecutionContext.resolve(machine8)


@pytest.fixture
def ctx1(machine1) -> ExecutionContext:
    return ExecutionContext.resolve(machine1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
