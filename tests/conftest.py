"""Shared fixtures.

``ALL_BACKENDS`` is the single source of truth for the registered
backend names the equivalence suites sweep; import it (``from conftest
import ALL_BACKENDS``) instead of repeating the tuple per file.
"""

import numpy as np
import pytest

from repro.core import ExecutionContext
from repro.sim import Machine

#: every built-in backend, serial (the reference semantics) first
ALL_BACKENDS = ("serial", "vectorized", "threaded", "multiprocess")


def pytest_addoption(parser):
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        # environments without the plugin (it is in the test extras but
        # not baked into every image): register the ini keys it would
        # own as inert options so pyproject's timeout config does not
        # trigger unknown-ini warnings; tests then run without deadlines
        parser.addini("timeout", "per-test timeout (inert: plugin absent)")
        parser.addini("timeout_method",
                      "timeout mechanism (inert: plugin absent)")


@pytest.fixture(params=ALL_BACKENDS)
def backend_name(request) -> str:
    """Parametrizes a test over every registered backend name."""
    return request.param


@pytest.fixture
def machine4() -> Machine:
    return Machine(4)


@pytest.fixture
def machine8() -> Machine:
    return Machine(8)


@pytest.fixture
def machine1() -> Machine:
    return Machine(1)


@pytest.fixture
def ctx4(machine4) -> ExecutionContext:
    return ExecutionContext.resolve(machine4)


@pytest.fixture
def ctx8(machine8) -> ExecutionContext:
    return ExecutionContext.resolve(machine8)


@pytest.fixture
def ctx1(machine1) -> ExecutionContext:
    return ExecutionContext.resolve(machine1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
