"""Tests for extension features: plume workloads, the copy-cost tier,
cost-model sensitivity, mesh topologies in full runs, and the compiled
program's redistribute helper."""

import numpy as np
import pytest

from repro.apps.dsmc import (
    CartesianGrid,
    DSMCConfig,
    FlowConfig,
    ParallelDSMC,
    SequentialDSMC,
    initial_population,
    plume_population,
)
from repro.sim import IPSC860, MODERN_CLUSTER, PARAGON, Machine, Mesh2D
from repro.sim.cost_model import CostModel


class TestPlumePopulation:
    def test_density_decays_downstream(self):
        grid = CartesianGrid((20, 4))
        p = plume_population(grid, 20000, FlowConfig(seed=1))
        x = p.positions[:, 0]
        upstream = np.count_nonzero(x < grid.lengths[0] / 2)
        downstream = p.n - upstream
        assert upstream > 2 * downstream

    def test_positions_inside_domain(self):
        grid = CartesianGrid((8, 8, 8))
        p = plume_population(grid, 5000, FlowConfig(seed=2))
        assert np.all(grid.contains(p.positions))

    def test_deterministic(self):
        grid = CartesianGrid((10, 10))
        a = plume_population(grid, 100, FlowConfig(seed=3))
        b = plume_population(grid, 100, FlowConfig(seed=3))
        assert np.array_equal(a.positions, b.positions)

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            plume_population(CartesianGrid((4, 4)), 10, FlowConfig(),
                             decay_fraction=0.0)

    def test_config_profile_dispatch(self):
        grid = CartesianGrid((10, 4))
        cfg_u = DSMCConfig(n_initial=500, initial_profile="uniform")
        cfg_p = DSMCConfig(n_initial=500, initial_profile="plume")
        pu = initial_population(grid, cfg_u)
        pp = initial_population(grid, cfg_p)
        assert not np.array_equal(pu.positions, pp.positions)

    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            DSMCConfig(initial_profile="gaussian")

    def test_plume_oracle_still_exact(self):
        grid = CartesianGrid((10, 6))
        cfg = DSMCConfig(n_initial=400, inflow_rate=20, dt=0.3,
                         initial_profile="plume")
        seq = SequentialDSMC(grid, cfg)
        seq.run(8)
        m = Machine(4)
        par = ParallelDSMC(grid, m, DSMCConfig(
            n_initial=400, inflow_rate=20, dt=0.3, initial_profile="plume"
        ))
        par.run(8)
        a, b = seq.canonical_state(), par.canonical_state()
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestCopyCostTier:
    def test_copy_time(self):
        cm = CostModel(copyop=1e-6)
        assert cm.copy_time(100) == pytest.approx(1e-4)
        with pytest.raises(ValueError):
            cm.copy_time(-1)

    def test_copies_cheaper_than_memops(self):
        assert IPSC860.copyop < IPSC860.memop

    def test_charge_copyops(self):
        m = Machine(2)
        m.charge_copyops(1, 1000, "comm")
        assert m.clocks[1].category("comm") == pytest.approx(
            IPSC860.copy_time(1000)
        )


class TestCostModelSensitivity:
    def run_charmm(self, cost_model):
        from repro.apps.charmm import ParallelMD, build_small_system

        system = build_small_system(300, seed=5)
        m = Machine(8, cost_model=cost_model)
        md = ParallelMD(system, m, update_every=4)
        md.run(4)
        return md.time_report()

    def test_modern_cluster_shifts_bottleneck(self):
        """On a modern network the communication fraction collapses —
        exposing how the paper's conclusions depend on alpha/beta."""
        old = self.run_charmm(IPSC860)
        new = self.run_charmm(MODERN_CLUSTER)
        frac_old = old["communication"] / old["execution"]
        frac_new = new["communication"] / new["execution"]
        assert frac_new < frac_old

    def test_paragon_faster_than_ipsc(self):
        old = self.run_charmm(IPSC860)
        mid = self.run_charmm(PARAGON)
        assert mid["execution"] < old["execution"]


class TestMeshTopologyRuns:
    def test_charmm_on_mesh(self):
        """Full application run over a 2-D mesh topology (hop-dependent
        message costs) still matches the sequential oracle."""
        from repro.apps.charmm import ParallelMD, SequentialMD, build_small_system

        sys_a = build_small_system(200, seed=8)
        sys_b = sys_a.copy()
        seq = SequentialMD(sys_a, update_every=3)
        seq.run(5)
        m = Machine(6, topology=Mesh2D(2, 3))
        par = ParallelMD(sys_b, m, update_every=3)
        par.run(5)
        assert np.abs(par.global_positions() - sys_a.positions).max() < 1e-9

    def test_mesh_hops_charged(self):
        m = Machine(9, topology=Mesh2D(3, 3))
        send = [[None] * 9 for _ in range(9)]
        send[0][8] = np.zeros(100)  # 4 hops corner to corner
        m.alltoallv(send)
        t_far = m.clocks[0].category("comm")
        m2 = Machine(9, topology=Mesh2D(3, 3))
        send = [[None] * 9 for _ in range(9)]
        send[0][1] = np.zeros(100)  # 1 hop
        m2.alltoallv(send)
        t_near = m2.clocks[0].category("comm")
        assert t_far > t_near


class TestProgramRedistribute:
    def test_redistribute_preserves_and_invalidates(self, rng):
        from repro.lang import ProgramInstance, compile_program

        n = 24
        src = f"""
          REAL x({n})
          INTEGER map({n}), ia(40)
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x WITH reg
          FORALL i = 1, 40
            REDUCE(SUM, x(ia(i)), 1)
          END DO
"""
        prog = compile_program(src)
        m = Machine(4)
        x0 = rng.standard_normal(n)
        inst = ProgramInstance(prog, m, dict(
            x=x0.copy(), map=rng.integers(0, 4, n),
            ia=rng.integers(1, n + 1, 40),
        ))
        inst.execute()
        after_first = inst.get_array("x").copy()
        loop_id = prog.loop_ids()[0]
        _, builds0 = inst.cache_stats(loop_id)
        # redistribute irregularly; values must survive, schedule must
        # regenerate on the next loop execution
        inst.set_array("map", rng.integers(0, 4, n))
        inst.redistribute("reg", "map")
        assert np.allclose(inst.get_array("x"), after_first)
        inst.run_loop(loop_id)
        _, builds1 = inst.cache_stats(loop_id)
        assert builds1 == builds0 + 1
        expected = after_first.copy()
        np.add.at(expected, np.asarray(inst.get_array("ia"),
                                       dtype=np.int64) - 1, 1.0)
        assert np.allclose(inst.get_array("x"), expected)


class TestLangReductionVariants:
    def test_prod_reduction(self, rng):
        from repro.lang import ProgramInstance, compile_program, interpret_sequential

        n, e = 12, 30
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(PROD, x(ia(i)), y(ib(i)))
          END DO
"""
        b = dict(x=np.ones(n), y=rng.uniform(0.5, 1.5, n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        prog = compile_program(src)
        seq = interpret_sequential(prog, {k: v.copy() for k, v in b.items()})
        inst = ProgramInstance(prog, Machine(3),
                               {k: v.copy() for k, v in b.items()})
        inst.execute()
        assert np.allclose(inst.get_array("x"), seq["x"])

    def test_min_reduction(self, rng):
        from repro.lang import ProgramInstance, compile_program, interpret_sequential

        n, e = 10, 25
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(MIN, x(ia(i)), y(ib(i)))
          END DO
"""
        b = dict(x=np.full(n, 100.0), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        prog = compile_program(src)
        seq = interpret_sequential(prog, {k: v.copy() for k, v in b.items()})
        inst = ProgramInstance(prog, Machine(2),
                               {k: v.copy() for k, v in b.items()})
        inst.execute()
        assert np.allclose(inst.get_array("x"), seq["x"])

    def test_scalar_loop_bound(self, rng):
        from repro.lang import ProgramInstance, compile_program

        n = 8
        src = f"""
          REAL x({n})
          INTEGER ia(10)
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x WITH reg
          FORALL i = 1, nedges
            REDUCE(SUM, x(ia(i)), 2)
          END DO
"""
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), dict(
            x=np.zeros(n), ia=rng.integers(1, n + 1, 10), nedges=10,
        ))
        inst.execute()
        assert inst.get_array("x").sum() == pytest.approx(20.0)
