"""Unit tests: DSMC building blocks (grid, particles, collisions, move)."""

import numpy as np
import pytest

from repro.apps.dsmc import (
    CartesianGrid,
    DSMCConfig,
    FlowConfig,
    ParticleSet,
    advance_positions,
    collide_cells,
    collision_pair_count,
    inflow_particles,
    make_velocities,
    move_phase,
    remove_outflow,
    uniform_population,
)


class TestGrid:
    def test_2d_cell_of(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        cells = g.cell_of(np.array([[0.5, 0.5], [3.5, 0.5], [0.5, 3.5]]))
        assert cells.tolist() == [0, 12, 3]

    def test_3d_cell_of(self):
        g = CartesianGrid((2, 2, 2), (2.0, 2.0, 2.0))
        c = g.cell_of(np.array([[1.5, 0.5, 1.5]]))
        assert c[0] == 4 + 0 + 1

    def test_cell_coords_roundtrip(self):
        g = CartesianGrid((3, 5), (3.0, 5.0))
        ids = np.arange(g.n_cells)
        coords = g.cell_coords(ids)
        re_ids = coords[:, 0] * 5 + coords[:, 1]
        assert np.array_equal(re_ids, ids)

    def test_cell_centers(self):
        g = CartesianGrid((2, 2), (4.0, 4.0))
        centers = g.cell_centers()
        assert centers.shape == (4, 2)
        assert centers[0].tolist() == [1.0, 1.0]
        assert centers[3].tolist() == [3.0, 3.0]

    def test_positions_clipped(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        c = g.cell_of(np.array([[-1.0, 5.0]]))
        assert c[0] == g.cell_of(np.array([[0.0, 3.99]]))[0]

    def test_contains(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        ok = g.contains(np.array([[1.0, 1.0], [4.0, 1.0], [-0.1, 2.0]]))
        assert ok.tolist() == [True, False, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            CartesianGrid((4,))
        with pytest.raises(ValueError):
            CartesianGrid((0, 4))
        with pytest.raises(ValueError):
            CartesianGrid((4, 4), (4.0,))
        with pytest.raises(ValueError):
            CartesianGrid((4, 4), (0.0, 4.0))

    def test_dim_mismatch_rejected(self):
        g = CartesianGrid((4, 4))
        with pytest.raises(ValueError):
            g.cell_of(np.zeros((3, 3)))


class TestParticles:
    def test_soa_validation(self):
        with pytest.raises(ValueError):
            ParticleSet(ids=np.arange(3), positions=np.zeros((2, 2)),
                        velocities=np.zeros((2, 2)))

    def test_select_concat(self):
        g = CartesianGrid((4, 4))
        p = uniform_population(g, 10, FlowConfig())
        a = p.select(p.ids < 5)
        b = p.select(p.ids >= 5)
        merged = a.concat(b)
        assert merged.n == 10
        ids, pos, vel = merged.state_tuple()
        assert np.array_equal(ids, np.arange(10))

    def test_uniform_population_deterministic(self):
        g = CartesianGrid((4, 4))
        p1 = uniform_population(g, 50, FlowConfig(seed=3))
        p2 = uniform_population(g, 50, FlowConfig(seed=3))
        assert np.array_equal(p1.positions, p2.positions)
        p3 = uniform_population(g, 50, FlowConfig(seed=4))
        assert not np.array_equal(p1.positions, p3.positions)

    def test_drift_fraction_honored(self):
        flow = FlowConfig(drift_fraction=0.75, drift_speed=2.0,
                          thermal_speed=0.1)
        v = make_velocities(np.arange(4000), 2, flow)
        frac_positive = np.mean(v[:, 0] > 1.0)
        assert 0.70 <= frac_positive <= 0.80

    def test_paper_directionality(self):
        """>70% of molecules moving along +x (paper §4.2.1)."""
        flow = FlowConfig()  # defaults model the paper's regime
        v = make_velocities(np.arange(5000), 3, flow)
        assert np.mean(v[:, 0] > 0) > 0.70

    def test_inflow_enters_near_x0_moving_right(self):
        g = CartesianGrid((8, 8), (8.0, 8.0))
        inc = inflow_particles(g, step=3, count=40, next_id=100,
                               flow=FlowConfig())
        assert np.all(inc.positions[:, 0] < g.cell_size[0] + 1e-12)
        assert np.all(inc.velocities[:, 0] > 0)
        assert np.array_equal(inc.ids, np.arange(100, 140))

    def test_flow_config_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(drift_fraction=1.5)
        with pytest.raises(ValueError):
            FlowConfig(drift_speed=-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DSMCConfig(n_initial=-1)
        with pytest.raises(ValueError):
            DSMCConfig(dt=0)


class TestMove:
    def test_ballistic_drift(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        p = ParticleSet(ids=np.array([0]),
                        positions=np.array([[1.0, 1.0]]),
                        velocities=np.array([[1.0, 0.5]]))
        out = advance_positions(p, g, dt=1.0)
        assert np.allclose(out.positions, [[2.0, 1.5]])

    def test_transverse_reflection(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        p = ParticleSet(ids=np.array([0]),
                        positions=np.array([[1.0, 3.8]]),
                        velocities=np.array([[0.0, 1.0]]))
        out = advance_positions(p, g, dt=1.0)
        assert 0 <= out.positions[0, 1] <= 4.0
        assert out.positions[0, 1] == pytest.approx(3.2)
        assert out.velocities[0, 1] == pytest.approx(-1.0)

    def test_outflow_removed_both_ends(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        p = ParticleSet(
            ids=np.arange(3),
            positions=np.array([[3.9, 1.0], [0.1, 1.0], [2.0, 1.0]]),
            velocities=np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 0.0]]),
        )
        kept = remove_outflow(advance_positions(p, g, dt=0.5), g)
        assert kept.ids.tolist() == [2]

    def test_move_phase_adds_inflow(self):
        g = CartesianGrid((4, 4), (4.0, 4.0))
        p = ParticleSet.empty(2)
        out, next_id = move_phase(p, g, 0.5, step=0, next_id=7,
                                  inflow_rate=5, flow=FlowConfig())
        assert out.n == 5
        assert next_id == 12
        assert np.array_equal(out.ids, np.arange(7, 12))


class TestCollisions:
    def make_population(self, rng, n=200, n_cells=10):
        ids = np.arange(n)
        cells = rng.integers(0, n_cells, n)
        vel = rng.standard_normal((n, 3))
        return ids, cells, vel

    def test_momentum_conserved(self, rng):
        ids, cells, vel = self.make_population(rng)
        new_vel, n_pairs = collide_cells(ids, cells, vel, step=0)
        assert n_pairs > 0
        assert np.allclose(new_vel.sum(axis=0), vel.sum(axis=0))

    def test_kinetic_energy_conserved(self, rng):
        ids, cells, vel = self.make_population(rng)
        new_vel, _ = collide_cells(ids, cells, vel, step=0)
        assert np.sum(new_vel**2) == pytest.approx(np.sum(vel**2))

    def test_order_insensitive(self, rng):
        """Permuting the particle arrays changes nothing per particle."""
        ids, cells, vel = self.make_population(rng)
        new_vel, _ = collide_cells(ids, cells, vel, step=5)
        perm = rng.permutation(ids.size)
        new_vel_p, _ = collide_cells(ids[perm], cells[perm], vel[perm], step=5)
        assert np.allclose(new_vel[perm], new_vel_p)

    def test_subset_closed_under_cells_identical(self, rng):
        """Computing per cell-subset (as ranks do) matches the global
        computation — the parallelization-correctness property."""
        ids, cells, vel = self.make_population(rng)
        global_vel, _ = collide_cells(ids, cells, vel, step=2)
        out = np.empty_like(vel)
        for c in np.unique(cells):
            sel = cells == c
            sub_vel, _ = collide_cells(ids[sel], cells[sel], vel[sel], step=2)
            out[sel] = sub_vel
        assert np.allclose(global_vel, out)

    def test_different_steps_different_outcomes(self, rng):
        ids, cells, vel = self.make_population(rng)
        v1, _ = collide_cells(ids, cells, vel, step=0)
        v2, _ = collide_cells(ids, cells, vel, step=1)
        assert not np.allclose(v1, v2)

    def test_lone_particles_unchanged(self):
        ids = np.arange(3)
        cells = np.array([0, 1, 2])  # all alone
        vel = np.ones((3, 2))
        new_vel, n_pairs = collide_cells(ids, cells, vel, step=0)
        assert n_pairs == 0
        assert np.array_equal(new_vel, vel)

    def test_2d_collisions(self, rng):
        ids = np.arange(10)
        cells = np.zeros(10, dtype=np.int64)
        vel = rng.standard_normal((10, 2))
        new_vel, n_pairs = collide_cells(ids, cells, vel, step=0)
        assert n_pairs == 5
        assert np.allclose(new_vel.sum(axis=0), vel.sum(axis=0))

    def test_pair_count_estimate(self):
        cells = np.array([0, 0, 0, 1, 1, 2])
        assert collision_pair_count(cells) == 1 + 1 + 0

    def test_empty(self):
        v, n = collide_cells(np.zeros(0, np.int64), np.zeros(0, np.int64),
                             np.zeros((0, 2)), step=0)
        assert n == 0 and v.shape == (0, 2)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            collide_cells(np.arange(3), np.zeros(2, np.int64),
                          np.zeros((3, 2)), step=0)
