"""Unit tests: DistributedArray, ChaosRuntime facade, IrregularReduction."""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    DistributedArray,
    IrregularReduction,
    split_by_block,
)
from repro.sim import Machine


class TestDistributedArray:
    def test_roundtrip(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 20))
        x_g = rng.standard_normal(20)
        x = rt.distribute(x_g, tt)
        assert np.array_equal(x.to_global(), x_g)

    def test_2d_roundtrip(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 20))
        pos_g = rng.standard_normal((20, 3))
        pos = rt.distribute(pos_g, tt)
        assert np.array_equal(pos.to_global(), pos_g)

    def test_wrong_size_rejected(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 20))
        with pytest.raises(ValueError):
            rt.distribute(np.zeros(19), tt)

    def test_wrong_local_shape_rejected(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 8))
        bad = [np.zeros(100) for _ in range(4)]
        with pytest.raises(ValueError):
            DistributedArray(machine4, tt, bad)

    def test_redistribute_preserves_values(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt1 = rt.irregular_table(rng.integers(0, 4, 30))
        tt2 = rt.irregular_table(rng.integers(0, 4, 30))
        x_g = rng.standard_normal(30)
        x = rt.distribute(x_g, tt1)
        y = x.redistribute(tt2)
        assert np.array_equal(y.to_global(), x_g)
        assert y.ttable is tt2

    def test_copy_is_deep(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 10))
        x = rt.distribute(rng.standard_normal(10), tt)
        y = x.copy()
        y.local[0][...] = 0
        assert not np.array_equal(x.to_global(), y.to_global())

    def test_zeros_like_table(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 12))
        z = rt.zeros_like_table(tt, trailing=(3,))
        assert z.to_global().shape == (12, 3)
        assert z.n_global == 12

    def test_block_and_cyclic_tables(self, machine4):
        rt = ChaosRuntime(machine4)
        bt = rt.block_table(10)
        ct = rt.cyclic_table(10)
        assert bt.dist.local_size(0) == 3
        assert ct.dist.owner(np.array([5]))[0] == 1


class TestIrregularReduction:
    def make(self, rng, n=40, e=100, p=4):
        m = Machine(p)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, p, n))
        x_g = rng.standard_normal(n)
        y_g = rng.standard_normal(n)
        ia_g = rng.integers(0, n, e)
        ib_g = rng.integers(0, n, e)
        return m, rt, tt, x_g, y_g, ia_g, ib_g

    def test_figure1_loop(self, rng):
        """x(ia(i)) += y(ib(i)) — the paper's canonical irregular loop."""
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        loop = IrregularReduction(rt, tt, "fig1").bind(
            ia=split_by_block(ia_g, m), ib=split_by_block(ib_g, m)
        )
        loop.setup()
        loop.execute(x, "ia", lambda yv: yv, {"y": (y, "ib")})
        expected = x_g.copy()
        np.add.at(expected, ia_g, y_g[ib_g])
        assert np.allclose(x.to_global(), expected)

    def test_executes_repeatedly_with_one_schedule(self, rng):
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        loop = IrregularReduction(rt, tt, "L").bind(
            ia=split_by_block(ia_g, m), ib=split_by_block(ib_g, m)
        )
        s1 = loop.setup()
        for _ in range(3):
            loop.execute(x, "ia", lambda v: v, {"y": (y, "ib")})
        expected = x_g.copy()
        for _ in range(3):
            np.add.at(expected, ia_g, y_g[ib_g])
        assert np.allclose(x.to_global(), expected)
        assert loop.schedule is s1  # never rebuilt

    def test_adapt_rebuilds_only_changed_stamp(self, rng):
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        loop = IrregularReduction(rt, tt, "L").bind(
            ia=split_by_block(ia_g, m), ib=split_by_block(ib_g, m)
        )
        loop.setup()
        ib2_g = rng.integers(0, x_g.size, ib_g.size)
        loop.adapt("ib", split_by_block(ib2_g, m))
        loop.execute(x, "ia", lambda v: v, {"y": (y, "ib")})
        expected = x_g.copy()
        np.add.at(expected, ia_g, y_g[ib2_g])
        assert np.allclose(x.to_global(), expected)

    def test_adapt_touched_takes_delta_path(self, rng):
        """A targeted adapt records a delta payload and repairs the
        cached schedule incrementally — one build, then delta rebuilds,
        with results identical to a full re-run."""
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        loop = IrregularReduction(rt, tt, "app:L").bind(
            ia=split_by_block(ia_g, m), ib=split_by_block(ib_g, m)
        )
        loop.setup()
        ib = split_by_block(ib_g, m)
        ib2_g = ib_g.copy()
        touched, nxt = [], []
        for p in m.ranks():
            k = max(1, ib[p].size // 10)
            pos = rng.choice(ib[p].size, size=k, replace=False)
            b = ib[p].copy()
            b[pos] = rng.integers(0, x_g.size, k)
            touched.append(pos)
            nxt.append(b)
        lo = 0
        for p in m.ranks():
            ib2_g[lo + touched[p]] = nxt[p][touched[p]]
            lo += ib[p].size
        loop.adapt("ib", nxt, touched=touched)
        st = rt.cache_stats("app:L")
        assert (st.builds, st.delta_rebuilds) == (1, 1)
        loop.execute(x, "ia", lambda v: v, {"y": (y, "ib")})
        expected = x_g.copy()
        np.add.at(expected, ia_g, y_g[ib2_g])
        assert np.allclose(x.to_global(), expected)
        # the loop name contains a colon on purpose: the delta replay
        # must still recover the array name from the stamp
        assert loop.localized("ib") is not None

    def test_adapt_untouched_positions_must_not_change(self, rng):
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        loop = IrregularReduction(rt, tt, "L").bind(
            ia=split_by_block(ia_g, m)
        )
        sched1 = loop.setup()
        same = split_by_block(ia_g, m)
        # empty touched set with unchanged values: schedule survives as-is
        sched2 = loop.adapt(
            "ia", same, touched=[np.zeros(0, np.int64)] * m.n_ranks
        )
        assert sched2 is not None
        for p in m.ranks():
            assert np.array_equal(sched1.recv_slots[p],
                                  sched2.recv_slots[p])

    def test_setup_requires_bind(self, rng):
        m = Machine(2)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table([0, 1])
        with pytest.raises(RuntimeError):
            IrregularReduction(rt, tt).setup()

    def test_schedule_before_setup_rejected(self, rng):
        m = Machine(2)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table([0, 1])
        loop = IrregularReduction(rt, tt)
        with pytest.raises(RuntimeError):
            _ = loop.schedule

    def test_adapt_unknown_name_rejected(self, rng):
        m, rt, tt, x_g, y_g, ia_g, ib_g = self.make(rng)
        loop = IrregularReduction(rt, tt, "L").bind(
            ia=split_by_block(ia_g, m)
        )
        loop.setup()
        with pytest.raises(KeyError):
            loop.adapt("nope", [np.zeros(0, np.int64)] * m.n_ranks)

    def test_single_rank_machine(self, rng):
        m = Machine(1)
        rt = ChaosRuntime(m)
        tt = rt.block_table(10)
        x = rt.distribute(np.zeros(10), tt)
        y = rt.distribute(np.ones(10), tt)
        ia = [np.arange(10, dtype=np.int64)]
        loop = IrregularReduction(rt, tt, "L").bind(ia=ia, ib=ia)
        loop.setup()
        loop.execute(x, "ia", lambda v: 2 * v, {"y": (y, "ib")})
        assert np.allclose(x.to_global(), 2.0)
