"""Integration tests: compiled-program execution vs the sequential
interpreter oracle."""

import numpy as np
import pytest

from repro.lang import (
    ExecutionError,
    ProgramInstance,
    compile_program,
    interpret_sequential,
)
from repro.sim import Machine


def charmm_source(n, n_edges, n_offsets):
    return f"""
      REAL*8 x({n}), y({n}), dx({n}), dy({n})
      INTEGER map({n}), jnb({n_edges}), inblo({n_offsets})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y, dx, dy WITH reg
C$ DISTRIBUTE reg(map)
      FORALL i = 1, {n}
        FORALL j = inblo(i), inblo(i+1) - 1
          REDUCE (SUM, dx(jnb(j)), x(jnb(j)) - x(i))
          REDUCE (SUM, dy(jnb(j)), y(jnb(j)) - y(i))
          REDUCE (SUM, dx(i), x(i) - x(jnb(j)))
          REDUCE (SUM, dy(i), y(i) - y(jnb(j)))
        END DO
      END DO
"""


def charmm_bindings(rng, n=50, avg_deg=4, p=4):
    deg = rng.integers(0, 2 * avg_deg, n)
    inblo = np.ones(n + 1, dtype=np.int64)
    inblo[1:] = 1 + np.cumsum(deg)
    jnb = rng.integers(1, n + 1, int(deg.sum()))
    return dict(
        x=rng.standard_normal(n), y=rng.standard_normal(n),
        dx=np.zeros(n), dy=np.zeros(n),
        map=rng.integers(0, p, n), jnb=jnb, inblo=inblo,
    )


def copy_bindings(b):
    return {k: (v.copy() if hasattr(v, "copy") else v) for k, v in b.items()}


class TestCharmmTemplate:
    def test_matches_oracle(self, rng):
        n = 50
        src = charmm_source(n, 1000, n + 1)
        b = charmm_bindings(rng, n)
        src = charmm_source(n, b["jnb"].size, n + 1)
        prog = compile_program(src)
        seq = interpret_sequential(prog, copy_bindings(b))
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        assert np.allclose(inst.get_array("dx"), seq["dx"], atol=1e-10)
        assert np.allclose(inst.get_array("dy"), seq["dy"], atol=1e-10)

    def test_redistribution_embedded(self, rng):
        """The second DISTRIBUTE (map) must remap x/y/dx/dy; values must
        survive redistribution."""
        n = 40
        b = charmm_bindings(rng, n)
        src = charmm_source(n, b["jnb"].size, n + 1)
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        assert np.allclose(inst.get_array("x"), b["x"])  # data preserved

    def test_rerun_uses_schedule_cache(self, rng):
        n = 40
        b = charmm_bindings(rng, n)
        src = charmm_source(n, b["jnb"].size, n + 1)
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        loop_id = prog.loop_ids()[0]
        hits0, builds0 = inst.cache_stats(loop_id)
        inst.run_loop(loop_id)
        hits1, builds1 = inst.cache_stats(loop_id)
        assert builds1 == builds0  # no rebuild
        assert hits1 == hits0 + 1

    def test_modified_indirection_triggers_rebuild(self, rng):
        n = 40
        b = charmm_bindings(rng, n)
        src = charmm_source(n, b["jnb"].size, n + 1)
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        loop_id = prog.loop_ids()[0]
        _, builds0 = inst.cache_stats(loop_id)
        jnb2 = rng.integers(1, n + 1, b["jnb"].size)
        inst.set_array("jnb", jnb2)
        inst.set_array("dx", np.zeros(n))
        inst.set_array("dy", np.zeros(n))
        inst.run_loop(loop_id)
        _, builds1 = inst.cache_stats(loop_id)
        assert builds1 == builds0 + 1
        b2 = copy_bindings(b)
        b2["jnb"], b2["dx"], b2["dy"] = jnb2, np.zeros(n), np.zeros(n)
        seq = interpret_sequential(prog, b2)
        assert np.allclose(inst.get_array("dx"), seq["dx"], atol=1e-10)


class TestFlatTemplate:
    def test_figure8_reduction(self, rng):
        """Figure 8: FORALL over edges with REDUCE(SUM, x(ia(i)), y(ib(i)))."""
        n, e = 30, 120
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), y(ib(i)))
          END DO
"""
        b = dict(x=rng.standard_normal(n), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        prog = compile_program(src)
        seq = interpret_sequential(prog, copy_bindings(b))
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        assert np.allclose(inst.get_array("x"), seq["x"], atol=1e-10)

    def test_max_reduction(self, rng):
        n, e = 20, 80
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(MAX, x(ia(i)), y(ib(i)))
          END DO
"""
        b = dict(x=np.full(n, -100.0), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        prog = compile_program(src)
        seq = interpret_sequential(prog, copy_bindings(b))
        inst = ProgramInstance(prog, Machine(4), copy_bindings(b))
        inst.execute()
        assert np.allclose(inst.get_array("x"), seq["x"])


class TestDsmcTemplate:
    SRC = """
C$ DECOMPOSITION celltemp({nc})
C$ DISTRIBUTE celltemp(BLOCK)
C$ ALIGN icell(*,:), vel(*,:), size(:), new_size(:) WITH celltemp
L1:   FORALL j = 1, {nc}
        FORALL i = 1, size(j)
          REDUCE(APPEND, vel(i, icell(i,j)), vel(i,j))
        END FORALL
      END FORALL
L2:   FORALL j = 1, {nc}
        new_size(j) = 0
      END FORALL
L3:   FORALL j = 1, {nc}
        FORALL i = 1, size(j)
          REDUCE(SUM, new_size(icell(i,j)), 1)
        END FORALL
      END FORALL
"""

    def make(self, rng, nc=12):
        sizes = rng.integers(0, 7, nc)
        return dict(
            size=sizes.astype(np.int64),
            vel=[rng.standard_normal(s) for s in sizes],
            icell=[rng.integers(1, nc + 1, s) for s in sizes],
            new_size=np.zeros(nc),
        )

    def test_plan_kinds(self, rng):
        prog = compile_program(self.SRC.format(nc=8))
        kinds = [type(p).__name__ for p in prog.plans.values()]
        assert kinds == ["AppendPlan", "LocalPlan", "ReductionPlan"]

    def test_matches_oracle(self, rng):
        nc = 12
        b = self.make(rng, nc)
        prog = compile_program(self.SRC.format(nc=nc))
        seq = interpret_sequential(prog, {
            k: ([r.copy() for r in v] if isinstance(v, list) else v.copy())
            for k, v in b.items()
        })
        inst = ProgramInstance(prog, Machine(4), {
            k: ([r.copy() for r in v] if isinstance(v, list) else v.copy())
            for k, v in b.items()
        })
        inst.execute()
        assert np.array_equal(inst.get_array("new_size"), seq["new_size"])
        vel_par = inst.get_array("vel")
        for c in range(nc):
            assert np.allclose(np.sort(np.asarray(seq["vel"][c])),
                               np.sort(np.asarray(vel_par[c])))

    def test_new_size_counts_arrivals(self, rng):
        nc = 10
        b = self.make(rng, nc)
        prog = compile_program(self.SRC.format(nc=nc))
        inst = ProgramInstance(prog, Machine(2), b)
        inst.execute()
        vel_par = inst.get_array("vel")
        ns = inst.get_array("new_size")
        for c in range(nc):
            assert ns[c] == len(vel_par[c])

    def test_append_uses_lightweight_path(self, rng):
        nc = 10
        b = self.make(rng, nc)
        prog = compile_program(self.SRC.format(nc=nc))
        m = Machine(4)
        inst = ProgramInstance(prog, m, b)
        inst.execute()
        assert m.traffic.tag_bytes("scatter_append") > 0


class TestErrors:
    def test_use_before_distribute(self):
        src = """
C$ DECOMPOSITION r(4)
C$ ALIGN x WITH r
FORALL i = 1, 4
  REDUCE(SUM, x(i), 1)
END DO
"""
        prog = compile_program(src)
        # executing the loop directly without DISTRIBUTE must fail
        inst = ProgramInstance(prog, Machine(2), {})
        with pytest.raises(ExecutionError):
            inst.run_loop(prog.loop_ids()[0])

    def test_map_out_of_range(self):
        src = "C$ DECOMPOSITION r(4)\nC$ DISTRIBUTE r(map)\nC$ ALIGN x WITH r"
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2),
                               {"map": np.array([0, 1, 2, 0])})
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_map_wrong_length(self):
        src = "C$ DECOMPOSITION r(4)\nC$ DISTRIBUTE r(map)"
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), {"map": np.zeros(3, int)})
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_get_unknown_array(self):
        prog = compile_program("C$ DECOMPOSITION r(4)")
        inst = ProgramInstance(prog, Machine(2), {})
        with pytest.raises(ExecutionError):
            inst.get_array("ghost")
