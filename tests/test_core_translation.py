"""Unit tests: translation tables (all three storage policies)."""

import numpy as np
import pytest

from repro.core import BlockDistribution, ExecutionContext, TranslationTable
from repro.sim import Machine


@pytest.fixture
def maparr(rng):
    return rng.integers(0, 4, 64)


class TestConstruction:
    def test_from_map(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr)
        assert tt.dist.n_global == 64
        assert np.array_equal(tt.owner_local(np.arange(64)), maparr)

    def test_bad_storage_rejected(self, machine4, maparr):
        with pytest.raises(ValueError):
            TranslationTable.from_map(machine4, maparr, storage="magic")

    def test_bad_page_size_rejected(self, machine4, maparr):
        with pytest.raises(ValueError):
            TranslationTable.from_map(machine4, maparr, page_size=0)

    def test_build_charges_communication(self, maparr):
        m = Machine(4)
        TranslationTable.from_map(m, maparr)
        assert m.execution_time() > 0

    def test_from_distribution(self, machine4):
        tt = TranslationTable.from_distribution(
            machine4, BlockDistribution(10, 4)
        )
        assert tt.offset_local(np.array([4]))[0] == 1


class TestDereference:
    @pytest.mark.parametrize("storage", ["replicated", "distributed", "paged"])
    def test_correct_owners_offsets(self, maparr, storage):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage=storage)
        queries = [np.array([0, 5, 63]), None, np.array([10]), np.zeros(0, np.int64)]
        owners, offsets = tt.dereference(ExecutionContext.resolve(m), queries)
        assert np.array_equal(owners[0], maparr[[0, 5, 63]])
        assert owners[1].size == 0
        dist = tt.dist
        assert np.array_equal(offsets[2], dist.local_index(np.array([10])))

    def test_replicated_lookup_is_local(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="replicated")
        m.reset_traffic()
        tt.dereference(ExecutionContext.resolve(m), [np.arange(10)] * 4)
        assert m.traffic.n_messages == 0

    def test_distributed_lookup_communicates(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="distributed")
        m.reset_traffic()
        tt.dereference(ExecutionContext.resolve(m), [np.arange(64)] * 4)
        assert m.traffic.n_messages > 0

    def test_paged_caches_pages(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        ctx = ExecutionContext.resolve(m)
        tt.dereference(ctx, [np.arange(64)] + [None] * 3)
        m.reset_traffic()
        # repeat lookups hit the cache: no new traffic
        tt.dereference(ctx, [np.arange(64)] + [None] * 3)
        assert m.traffic.n_messages == 0

    def test_paged_cache_clear(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        tt.dereference(ExecutionContext.resolve(m), [np.arange(16)] + [None] * 3)
        assert len(tt._page_cache[0]) >= 1
        tt.clear_page_caches()
        assert len(tt._page_cache[0]) == 0

    def test_out_of_range_query_rejected(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr)
        with pytest.raises(IndexError):
            tt.dereference(ExecutionContext.resolve(machine4),
                           [np.array([64]), None, None, None])


class TestMemory:
    def test_replicated_holds_everything(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr, storage="replicated")
        assert tt.memory_per_rank(0) == 64 * 12

    def test_distributed_holds_share(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr, storage="distributed")
        assert tt.memory_per_rank(0) == 16 * 12

    def test_paged_grows_with_cache(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        before = tt.memory_per_rank(0)
        tt.dereference(ExecutionContext.resolve(m), [np.arange(64)] + [None] * 3)
        assert tt.memory_per_rank(0) > before


class TestPageBudget:
    """Byte-budgeted LRU eviction on the paged storage policy."""

    def _paged(self, maparr, budget_bytes, page_size=8):
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, page_budget_bytes=budget_bytes)
        tt = TranslationTable.from_map(m, maparr, storage="paged",
                                       page_size=page_size)
        return m, ctx, tt

    def test_budget_bounds_resident_bytes(self, maparr):
        budget = 2 * 8 * 12  # two 8-entry pages per rank
        m, ctx, tt = self._paged(maparr, budget)
        rng = np.random.default_rng(3)
        for _ in range(6):
            refs = [rng.integers(0, 64, 20) for _ in range(4)]
            tt.dereference(ctx, refs)
            for p in range(4):
                assert tt.page_resident_bytes(p) <= budget
        assert tt.page_stats()["evictions"] > 0

    def test_evicted_page_recharges_traffic(self, maparr):
        # budget of one page: the second page's fetch evicts the first,
        # so re-touching the first must communicate again (pages from a
        # remote rank's table segment — local segments never message)
        m, ctx, tt = self._paged(maparr, 1 * 8 * 12)
        page0 = [np.arange(32, 40), None, None, None]
        page1 = [np.arange(40, 48), None, None, None]
        tt.dereference(ctx, page0)
        m.reset_traffic()
        tt.dereference(ctx, page0)  # resident: free
        assert m.traffic.n_messages == 0
        tt.dereference(ctx, page1)  # evicts page 0
        m.reset_traffic()
        tt.dereference(ctx, page0)  # miss again: re-charged
        assert m.traffic.n_messages > 0

    def test_lru_prefers_recent_pages(self, maparr):
        m, ctx, tt = self._paged(maparr, 2 * 8 * 12)
        one = lambda lo: [np.arange(lo, lo + 8), None, None, None]  # noqa: E731
        tt.dereference(ctx, one(0))   # page 0
        tt.dereference(ctx, one(8))   # page 1
        tt.dereference(ctx, one(0))   # page 0 most recent
        tt.dereference(ctx, one(16))  # page 2 evicts LRU = page 1
        cache = tt._page_cache[0]
        assert 0 in cache and 2 in cache and 1 not in cache

    def test_no_budget_never_evicts(self, maparr):
        m = Machine(4)
        ctx = ExecutionContext.resolve(m)
        tt = TranslationTable.from_map(m, maparr, storage="paged",
                                       page_size=8)
        tt.dereference(ctx, [np.arange(64)] * 4)
        stats = tt.page_stats()
        assert stats["evictions"] == 0
        assert tt.page_resident_bytes(0) == 8 * 8 * 12  # all pages held

    def test_page_budget_conversion(self, maparr):
        m, ctx, tt = self._paged(maparr, 3 * 8 * 12 + 5)
        assert tt.page_budget(ctx) == 3  # floor to whole pages
        assert tt.page_budget(ExecutionContext.resolve(Machine(4))) is None

    def test_bulk_update_ingests_without_eviction(self):
        from repro.core.translation import _PageCache
        pc = _PageCache()
        pc.update(np.array([5, 1, 3, 1, 5]))
        assert len(pc) == 3
        assert np.array_equal(pc.as_array(), np.array([1, 3, 5]))
        assert 3 in pc and 2 not in pc
        # re-ingest is a no-op, counters untouched
        pc.update([1, 3])
        assert len(pc) == 3
        assert (pc.hits, pc.misses, pc.evictions) == (0, 0, 0)
