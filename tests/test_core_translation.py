"""Unit tests: translation tables (all three storage policies)."""

import numpy as np
import pytest

from repro.core import BlockDistribution, ExecutionContext, TranslationTable
from repro.sim import Machine


@pytest.fixture
def maparr(rng):
    return rng.integers(0, 4, 64)


class TestConstruction:
    def test_from_map(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr)
        assert tt.dist.n_global == 64
        assert np.array_equal(tt.owner_local(np.arange(64)), maparr)

    def test_bad_storage_rejected(self, machine4, maparr):
        with pytest.raises(ValueError):
            TranslationTable.from_map(machine4, maparr, storage="magic")

    def test_bad_page_size_rejected(self, machine4, maparr):
        with pytest.raises(ValueError):
            TranslationTable.from_map(machine4, maparr, page_size=0)

    def test_build_charges_communication(self, maparr):
        m = Machine(4)
        TranslationTable.from_map(m, maparr)
        assert m.execution_time() > 0

    def test_from_distribution(self, machine4):
        tt = TranslationTable.from_distribution(
            machine4, BlockDistribution(10, 4)
        )
        assert tt.offset_local(np.array([4]))[0] == 1


class TestDereference:
    @pytest.mark.parametrize("storage", ["replicated", "distributed", "paged"])
    def test_correct_owners_offsets(self, maparr, storage):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage=storage)
        queries = [np.array([0, 5, 63]), None, np.array([10]), np.zeros(0, np.int64)]
        owners, offsets = tt.dereference(ExecutionContext.resolve(m), queries)
        assert np.array_equal(owners[0], maparr[[0, 5, 63]])
        assert owners[1].size == 0
        dist = tt.dist
        assert np.array_equal(offsets[2], dist.local_index(np.array([10])))

    def test_replicated_lookup_is_local(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="replicated")
        m.reset_traffic()
        tt.dereference(ExecutionContext.resolve(m), [np.arange(10)] * 4)
        assert m.traffic.n_messages == 0

    def test_distributed_lookup_communicates(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="distributed")
        m.reset_traffic()
        tt.dereference(ExecutionContext.resolve(m), [np.arange(64)] * 4)
        assert m.traffic.n_messages > 0

    def test_paged_caches_pages(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        ctx = ExecutionContext.resolve(m)
        tt.dereference(ctx, [np.arange(64)] + [None] * 3)
        m.reset_traffic()
        # repeat lookups hit the cache: no new traffic
        tt.dereference(ctx, [np.arange(64)] + [None] * 3)
        assert m.traffic.n_messages == 0

    def test_paged_cache_clear(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        tt.dereference(ExecutionContext.resolve(m), [np.arange(16)] + [None] * 3)
        assert len(tt._page_cache[0]) >= 1
        tt.clear_page_caches()
        assert len(tt._page_cache[0]) == 0

    def test_out_of_range_query_rejected(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr)
        with pytest.raises(IndexError):
            tt.dereference(ExecutionContext.resolve(machine4),
                           [np.array([64]), None, None, None])


class TestMemory:
    def test_replicated_holds_everything(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr, storage="replicated")
        assert tt.memory_per_rank(0) == 64 * 12

    def test_distributed_holds_share(self, machine4, maparr):
        tt = TranslationTable.from_map(machine4, maparr, storage="distributed")
        assert tt.memory_per_rank(0) == 16 * 12

    def test_paged_grows_with_cache(self, maparr):
        m = Machine(4)
        tt = TranslationTable.from_map(m, maparr, storage="paged", page_size=16)
        before = tt.memory_per_rank(0)
        tt.dereference(ExecutionContext.resolve(m), [np.arange(64)] + [None] * 3)
        assert tt.memory_per_rank(0) > before
