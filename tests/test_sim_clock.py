"""Unit tests: virtual clocks."""

import pytest

from repro.sim import Clock, ClockArray


class TestClock:
    def test_advance_accumulates(self):
        c = Clock()
        c.advance(1.0, "compute")
        c.advance(2.0, "comm")
        c.advance(0.5, "compute")
        assert c.time == pytest.approx(3.5)
        assert c.category("compute") == pytest.approx(1.5)
        assert c.category("comm") == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-0.1)

    def test_wait_until_adds_idle(self):
        c = Clock()
        c.advance(1.0)
        idle = c.wait_until(3.0)
        assert idle == pytest.approx(2.0)
        assert c.time == pytest.approx(3.0)
        assert c.category("idle") == pytest.approx(2.0)

    def test_wait_until_past_is_noop(self):
        c = Clock()
        c.advance(5.0)
        assert c.wait_until(1.0) == 0.0
        assert c.time == pytest.approx(5.0)

    def test_busy_time_excludes_idle(self):
        c = Clock()
        c.advance(2.0, "compute")
        c.wait_until(10.0)
        assert c.busy_time() == pytest.approx(2.0)

    def test_snapshot_contains_total(self):
        c = Clock()
        c.advance(1.0, "x")
        snap = c.snapshot()
        assert snap["total"] == pytest.approx(1.0)
        assert snap["x"] == pytest.approx(1.0)

    def test_reset(self):
        c = Clock()
        c.advance(1.0)
        c.reset()
        assert c.time == 0.0
        assert c.snapshot() == {"total": 0.0}


class TestClockArray:
    def test_barrier_advances_all_to_max(self):
        ca = ClockArray(3)
        ca[0].advance(1.0)
        ca[1].advance(5.0)
        t = ca.barrier()
        assert t == pytest.approx(5.0)
        assert all(c.time == pytest.approx(5.0) for c in ca)

    def test_barrier_records_idle(self):
        ca = ClockArray(2)
        ca[0].advance(4.0, "compute")
        ca.barrier()
        assert ca[1].category("idle") == pytest.approx(4.0)
        assert ca[0].category("idle") == 0.0

    def test_stats(self):
        ca = ClockArray(4)
        for i, c in enumerate(ca):
            c.advance(float(i), "compute")
        assert ca.max_time() == pytest.approx(3.0)
        assert ca.min_time() == pytest.approx(0.0)
        assert ca.mean_time() == pytest.approx(1.5)
        assert ca.mean_category("compute") == pytest.approx(1.5)
        assert ca.max_category("compute") == pytest.approx(3.0)

    def test_category_times_list(self):
        ca = ClockArray(2)
        ca[1].advance(2.0, "comm")
        assert ca.category_times("comm") == [0.0, 2.0]

    def test_needs_one_rank(self):
        with pytest.raises(ValueError):
            ClockArray(0)

    def test_len_and_iter(self):
        ca = ClockArray(3)
        assert len(ca) == 3
        assert len(list(ca)) == 3

    def test_reset_all(self):
        ca = ClockArray(2)
        ca[0].advance(1.0)
        ca.reset()
        assert ca.max_time() == 0.0
