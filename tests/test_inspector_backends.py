"""Inspector-phase backend equivalence: serial vs vectorized engine.

The serial backend (dict key store, per-pair Python loops) defines the
semantics; the vectorized inspector engine (open-addressed key store,
argsort/bincount grouping, count-matrix accounting) must be
observationally identical on randomized adaptive workloads:

* bitwise-identical localized indices, ghost-slot assignment, and
  hash-table entry state (``g``/``proc``/``off``/``buf``/``mask``);
* bitwise-identical schedules (send lists, permutation lists, sizes)
  for plain, merged (``a | b``) and incremental (``b - a``) stamp
  expressions, through stamp clear/release/reacquire cycles;
* identical traffic statistics, message-for-message, under every
  translation-table storage policy (replicated / distributed / paged);
* per-rank virtual clocks equal to float round-off (the vectorized path
  sums message times in bulk).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DictKeyStore,
    ExecutionContext,
    OpenAddressedKeyStore,
    StampRegistry,
    TranslationTable,
    build_schedule,
    chaos_hash,
    clear_stamp,
    localize_only,
    make_hash_tables,
    split_by_block,
)
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS

STORAGES = ("replicated", "distributed", "paged")


def _clock_snapshots(machine):
    return [c.snapshot() for c in machine.clocks]


def _assert_clocks_match(a, b):
    for ca, cb in zip(a, b):
        for key in set(ca) | set(cb):
            assert ca.get(key, 0.0) == pytest.approx(
                cb.get(key, 0.0), rel=1e-9, abs=1e-15
            ), key


def _table_state(ht):
    n = ht.n_entries
    return (ht.g[:n].copy(), ht.proc[:n].copy(), ht.off[:n].copy(),
            ht.buf[:n].copy(), ht.mask[:n].copy(), ht.n_ghost)


def _schedule_state(sched):
    return (
        [a.copy() for a in sched.send_indices],
        [o.copy() for o in sched.send_offsets],
        [a.copy() for a in sched.recv_slots],
        [o.copy() for o in sched.recv_offsets],
        list(sched.ghost_size),
    )


def _assert_schedules_equal(a, b):
    *buffers_a, ga = a
    *buffers_b, gb = b
    assert ga == gb
    for per_rank_a, per_rank_b in zip(buffers_a, buffers_b):
        for x, y in zip(per_rank_a, per_rank_b):
            assert np.array_equal(x, y)


def _run_pipeline(backend, seed, n_ranks, n, n_ref, storage):
    """Hash two indirection arrays, adapt one, build plain / merged /
    incremental schedules, localize; return everything observable."""
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    tt = TranslationTable.from_map(
        m, rng.integers(0, n_ranks, n), storage=storage, page_size=16
    )
    ctx = ExecutionContext.resolve(m, backend)
    hts = make_hash_tables(ctx, tt)
    idx_a = split_by_block(rng.integers(0, n, n_ref), m)
    idx_b = split_by_block(rng.integers(0, n, max(0, n_ref // 2)), m)
    loc_a = chaos_hash(ctx, hts, tt, idx_a, "a")
    loc_b = chaos_hash(ctx, hts, tt, idx_b, "b")
    sched_a = build_schedule(ctx, hts, "a")
    merged = build_schedule(ctx, hts, hts[0].expr("a", "b"))
    incremental = build_schedule(
        ctx, hts, hts[0].expr("b") - hts[0].expr("a")
    )
    # adaptive step: array b changes, stamp cleared and re-hashed
    clear_stamp(ctx, hts, "b")
    idx_b2 = split_by_block(rng.integers(0, n, max(0, n_ref // 3)), m)
    loc_b2 = chaos_hash(ctx, hts, tt, idx_b2, "b")
    merged2 = build_schedule(ctx, hts, hts[0].expr("a", "b"))
    loc_again = localize_only(ctx, hts, idx_a)
    return {
        "loc": (loc_a, loc_b, loc_b2, loc_again),
        "tables": [_table_state(ht) for ht in hts],
        "schedules": [_schedule_state(s)
                      for s in (sched_a, merged, incremental, merged2)],
        "traffic": m.traffic.snapshot(),
        "messages": list(m.traffic.messages),
        "clocks": _clock_snapshots(m),
    }


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    n=st.integers(1, 120),
    n_ref=st.integers(0, 300),
    storage=st.sampled_from(STORAGES),
)
def test_inspector_pipeline_equivalence(seed, n_ranks, n, n_ref, storage):
    a = _run_pipeline("serial", seed, n_ranks, n, n_ref, storage)
    for other in BACKENDS[1:]:
        b = _run_pipeline(other, seed, n_ranks, n, n_ref, storage)
        for la, lb in zip(a["loc"], b["loc"]):
            for x, y in zip(la, lb):
                assert np.array_equal(x, y)
                assert x.dtype == y.dtype
        for ta, tb in zip(a["tables"], b["tables"]):
            for x, y in zip(ta[:-1], tb[:-1]):
                assert np.array_equal(x, y)
            assert ta[-1] == tb[-1]  # n_ghost
        for sa, sb in zip(a["schedules"], b["schedules"]):
            _assert_schedules_equal(sa, sb)
        assert a["traffic"] == b["traffic"]
        assert a["messages"] == b["messages"]
        _assert_clocks_match(a["clocks"], b["clocks"])


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 5),
    n=st.integers(1, 100),
    rounds=st.integers(1, 3),
)
def test_stamp_release_reacquire_cycles_agree(seed, n_ranks, n, rounds):
    """The paper's stamp-reuse pattern: clear + release the non-bonded
    stamp each regeneration, reacquire the freed bit, rebuild merged and
    incremental schedules — identical across backends every round."""
    results = {}
    for backend in BACKENDS:
        rng = np.random.default_rng(seed)
        m = Machine(n_ranks, record_messages=True)
        tt = TranslationTable.from_map(m, rng.integers(0, n_ranks, n))
        ctx = ExecutionContext.resolve(m, backend)
        hts = make_hash_tables(ctx, tt)
        base = split_by_block(rng.integers(0, n, 2 * n), m)
        chaos_hash(ctx, hts, tt, base, "bonds")
        per_round = []
        for _ in range(rounds):
            nb = split_by_block(rng.integers(0, n, 3 * n), m)
            loc = chaos_hash(ctx, hts, tt, nb, "nb")
            merged = build_schedule(ctx, hts, hts[0].expr("bonds", "nb"))
            inc = build_schedule(
                ctx, hts, hts[0].expr("nb") - hts[0].expr("bonds")
            )
            per_round.append((loc, _schedule_state(merged),
                              _schedule_state(inc)))
            clear_stamp(ctx, hts, "nb", release=True)
        results[backend] = (per_round, m.traffic.snapshot(),
                            _clock_snapshots(m))
    a = results["serial"]
    for other in BACKENDS[1:]:
        b = results[other]
        for (loc_a, ma, ia), (loc_b, mb, ib) in zip(a[0], b[0]):
            for x, y in zip(loc_a, loc_b):
                assert np.array_equal(x, y)
            _assert_schedules_equal(ma, mb)
            _assert_schedules_equal(ia, ib)
        assert a[1] == b[1]
        _assert_clocks_match(a[2], b[2])


# ---------------------------------------------------------------------
# key stores
# ---------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    n_batches=st.integers(1, 5),
    batch=st.integers(0, 200),
    key_bits=st.sampled_from([4, 16, 40, 62]),
)
def test_key_stores_agree(seed, n_batches, batch, key_bits):
    """Open-addressed store returns exactly what the dict store does,
    across growth, collisions and arbitrary key magnitudes."""
    rng = np.random.default_rng(seed)
    ref, fast = DictKeyStore(), OpenAddressedKeyStore()
    next_slot = 0
    for _ in range(n_batches):
        keys = np.unique(rng.integers(0, 1 << key_bits, batch))
        new = ref.missing(keys)
        assert np.array_equal(new, fast.missing(keys))
        slots = np.arange(next_slot, next_slot + new.size, dtype=np.int64)
        next_slot += new.size
        ref.insert(new, slots)
        fast.insert(new, slots)
        probe = rng.integers(0, 1 << key_bits, batch)
        assert np.array_equal(ref.lookup(probe), fast.lookup(probe))
        assert len(ref) == len(fast)
    for k in rng.integers(0, 1 << key_bits, 20).tolist():
        assert (k in ref) == (k in fast)


class TestOpenAddressedKeyStore:
    def test_growth_preserves_entries(self):
        s = OpenAddressedKeyStore()
        keys = np.arange(0, 10_000, 7, dtype=np.int64)
        s.insert(keys, np.arange(keys.size, dtype=np.int64))
        assert s._cap > OpenAddressedKeyStore.MIN_CAP  # grew
        assert np.array_equal(s.lookup(keys),
                              np.arange(keys.size, dtype=np.int64))
        assert s.lookup(np.array([1, 8, 15]))[0] == -1

    def test_duplicate_insert_rejected(self):
        s = OpenAddressedKeyStore()
        s.insert(np.array([5]), np.array([0]))
        with pytest.raises(ValueError, match="duplicate insert"):
            s.insert(np.array([5]), np.array([1]))

    def test_intra_batch_duplicate_rejected(self):
        s = OpenAddressedKeyStore()
        with pytest.raises(ValueError, match="duplicate insert"):
            s.insert(np.array([3, 4, 3]), np.arange(3))

    def test_negative_keys_rejected(self):
        s = OpenAddressedKeyStore()
        with pytest.raises(ValueError, match="non-negative"):
            s.insert(np.array([-1]), np.array([0]))

    def test_negative_keys_lookup_absent(self):
        # -1 is the empty-slot sentinel: a probe for it must not match
        # an empty slot and report a stale slot value
        s = OpenAddressedKeyStore()
        s.insert(np.array([5, 7, 9]), np.array([0, 1, 2]))
        assert s.lookup(np.array([-1, 5, -3, 9])).tolist() == [-1, 0, -1, 2]
        assert s.missing(np.array([-1, 5])).tolist() == [-1]
        assert -1 not in s

    def test_empty_ops(self):
        s = OpenAddressedKeyStore()
        empty = np.zeros(0, dtype=np.int64)
        s.insert(empty, empty)
        assert s.lookup(empty).size == 0
        assert s.missing(empty).size == 0
        assert len(s) == 0

    def test_lookup_before_any_insert(self):
        s = OpenAddressedKeyStore()
        assert s.lookup(np.array([0, 99])).tolist() == [-1, -1]
        assert 0 not in s


def test_make_hash_tables_uses_backend_key_store():
    m = Machine(3)
    tt = TranslationTable.from_map(m, np.array([0, 1, 2, 0, 1, 2]))
    serial = make_hash_tables(ExecutionContext.resolve(m, "serial"), tt)
    vec = make_hash_tables(ExecutionContext.resolve(m, "vectorized"), tt)
    assert all(ht.store.kind == "dict" for ht in serial)
    assert all(ht.store.kind == "open-addressed" for ht in vec)
    # one shared registry per group, as before
    assert all(ht.registry is serial[0].registry for ht in serial)


# ---------------------------------------------------------------------
# stamp registry free-bit bookkeeping
# ---------------------------------------------------------------------
class TestStampRegistryBits:
    def test_lowest_free_bit_first(self):
        r = StampRegistry()
        assert r.acquire("a") == 1 << 0
        assert r.acquire("b") == 1 << 1
        assert r.acquire("c") == 1 << 2
        r.release("b")
        assert r.acquire("d") == 1 << 1  # freed bit reused first
        assert r.acquire("e") == 1 << 3

    def test_release_reacquire_cycles(self):
        r = StampRegistry()
        for cycle in range(200):
            assert r.acquire("nb") == 1 << 0
            assert r.release("nb") == 1 << 0
        assert r.acquire("other") == 1 << 0

    def test_interleaved_release_order(self):
        r = StampRegistry()
        for i in range(10):
            r.acquire(f"s{i}")
        for name in ("s7", "s2", "s5"):
            r.release(name)
        # lowest-first regardless of release order
        assert r.acquire("x") == 1 << 2
        assert r.acquire("y") == 1 << 5
        assert r.acquire("z") == 1 << 7

    def test_exhaustion_after_churn(self):
        r = StampRegistry()
        for i in range(StampRegistry.MAX_STAMPS):
            r.acquire(f"s{i}")
        r.release("s30")
        r.acquire("replacement")
        with pytest.raises(RuntimeError):
            r.acquire("one-too-many")


# ---------------------------------------------------------------------
# translation-table edge cases
# ---------------------------------------------------------------------
class TestTranslationZeroSize:
    @pytest.mark.parametrize("storage", STORAGES)
    def test_empty_distribution_builds_free(self, storage):
        m = Machine(4, record_messages=True)
        tt = TranslationTable.from_map(m, np.zeros(0, dtype=np.int64),
                                       storage=storage)
        assert m.traffic.n_messages == 0
        assert m.traffic.total_bytes == 0
        assert tt.memory_per_rank(0) == 0

    @pytest.mark.parametrize("storage", STORAGES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_queries_cost_no_messages(self, storage, backend):
        m = Machine(4, record_messages=True)
        tt = TranslationTable.from_map(m, np.arange(8) % 4, storage=storage)
        m.reset_traffic()
        owners, offsets = tt.dereference(ExecutionContext.resolve(m, backend),
                                        [None] * 4)
        assert m.traffic.n_messages == 0
        assert all(o.size == 0 for o in owners)
        assert all(o.size == 0 for o in offsets)
