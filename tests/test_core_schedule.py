"""Unit tests: communication schedules and the Figure 6 worked example."""

import numpy as np
import pytest

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    Schedule,
    build_schedule,
    merge_schedules,
)
from repro.sim import Machine


def make_env(n_ranks=2, map_array=None):
    m = Machine(n_ranks)
    rt = ChaosRuntime(m)
    if map_array is None:
        map_array = [0] * 5 + [1] * 5
    tt = rt.irregular_table(map_array)
    return m, rt, tt


class TestScheduleStructure:
    def test_empty(self):
        s = Schedule.empty(3)
        assert s.total_messages() == 0
        assert s.total_elements() == 0
        assert s.send_list(0).size == 0
        assert s.permutation_list(1).size == 0

    def test_inconsistent_rejected(self):
        # rank 0 sends 2 elements to rank 1 but rank 1 expects none
        from csr_helpers import schedule_from_pairs

        z = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError):
            schedule_from_pairs(
                n_ranks=2,
                send_indices=[[z, np.array([1, 2])], [z, z]],
                recv_slots=[[z, z], [z, z]],
                ghost_size=[0, 0],
            )

    def test_csr_offsets_validated(self):
        z = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError):
            Schedule(
                n_ranks=2,
                send_indices=[np.array([0, 1]), z],
                send_offsets=[np.array([0, 1, 1]), np.zeros(3, np.int64)],
                recv_slots=[z, z],
                recv_offsets=[np.zeros(3, np.int64), np.zeros(3, np.int64)],
                ghost_size=[0, 0],
            )

    def test_sizes(self):
        m, rt, tt = make_env()
        rt.hash_indirection(tt, [np.array([7, 8]), np.array([1])], "s")
        sched = rt.build_schedule(tt, "s")
        # rank0 fetches 7,8 from rank1; rank1 fetches 1 from rank0
        assert sched.fetch_sizes(0)[1] == 2
        assert sched.fetch_sizes(1)[0] == 1
        assert sched.send_sizes(1)[0] == 2
        assert sched.total_messages() == 2
        assert sched.total_elements() == 3


class TestFigure6:
    """The paper's worked example, exactly (1-based elements 1..10;
    y(1..5) on proc0, y(6..10) on proc1; proc0 hashes ia, ib, ic)."""

    def setup_method(self):
        self.m, self.rt, self.tt = make_env()
        z = np.zeros(0, dtype=np.int64)
        self.ia = [np.array([1, 3, 7, 9, 2]) - 1, z]
        self.ib = [np.array([1, 5, 7, 8, 2]) - 1, z]
        self.ic = [np.array([4, 3, 10, 8, 9]) - 1, z]
        self.rt.hash_indirection(self.tt, self.ia, "a")
        self.rt.hash_indirection(self.tt, self.ib, "b")
        self.rt.hash_indirection(self.tt, self.ic, "c")
        self.e = self.rt.hash_tables(self.tt)[0].expr

    def fetched(self, expr) -> list[int]:
        s = self.rt.build_schedule(self.tt, expr)
        return sorted(5 + off + 1 for off in s.send_view(1, 0).tolist())

    def test_sched_a(self):
        assert self.fetched(self.e("a")) == [7, 9]

    def test_sched_b(self):
        assert self.fetched(self.e("b")) == [7, 8]

    def test_incremental_b_minus_a(self):
        assert self.fetched(self.e("b") - self.e("a")) == [8]

    def test_merged_abc(self):
        assert self.fetched(self.e("a", "b", "c")) == [7, 8, 9, 10]

    def test_merged_smaller_than_sum_of_parts(self):
        merged = self.rt.build_schedule(self.tt, self.e("a", "b", "c"))
        separate = sum(
            self.rt.build_schedule(self.tt, self.e(s)).total_elements()
            for s in "abc"
        )
        assert merged.total_elements() < separate  # duplicates removed


class TestBuildSchedule:
    def test_software_caching_removes_duplicates(self):
        m, rt, tt = make_env()
        # same off-proc element referenced 100 times: fetched once
        idx = [np.full(100, 9, dtype=np.int64), np.zeros(0, dtype=np.int64)]
        rt.hash_indirection(tt, idx, "dup")
        sched = rt.build_schedule(tt, "dup")
        assert sched.total_elements() == 1

    def test_schedule_build_charges_time(self):
        m, rt, tt = make_env()
        rt.hash_indirection(tt, [np.array([9]), np.array([0])], "s")
        t0 = m.execution_time()
        rt.build_schedule(tt, "s")
        assert m.execution_time() > t0

    def test_ghost_size_covers_buffer(self):
        m, rt, tt = make_env()
        rt.hash_indirection(tt, [np.array([5, 6, 7]), np.array([0, 1])], "s")
        sched = rt.build_schedule(tt, "s")
        hts = rt.hash_tables(tt)
        assert sched.ghost_size[0] == hts[0].ghost_capacity() == 3
        assert sched.ghost_size[1] == 2

    def test_string_expr_accepted(self):
        m, rt, tt = make_env()
        rt.hash_indirection(tt, [np.array([9]), None], "s")
        sched = build_schedule(rt.ctx, rt.hash_tables(tt), "s")
        assert sched.total_elements() == 1


class TestMergeSchedules:
    def test_concatenates(self):
        m, rt, tt = make_env()
        rt.hash_indirection(tt, [np.array([8]), None], "a")
        rt.hash_indirection(tt, [np.array([9]), None], "b")
        s1 = rt.build_schedule(tt, "a")
        s2 = rt.build_schedule(tt, "b")
        merged = merge_schedules(rt.ctx, [s1, s2])
        assert merged.total_elements() == 2
        assert merged.ghost_size[0] == 2

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_schedules(ExecutionContext.resolve(Machine(2)), [])

    def test_mismatched_ranks_rejected(self):
        with pytest.raises(ValueError):
            merge_schedules(ExecutionContext.resolve(Machine(2)),
                            [Schedule.empty(2), Schedule.empty(3)])
