"""Tests for the consistency validators (and, transitively, another sweep
over every builder's invariants)."""

import numpy as np
import pytest

from repro.core import (
    BlockDistribution,
    ChaosRuntime,
    IrregularDistribution,
    Schedule,
    build_lightweight_schedule,
    remap,
    split_by_block,
)
from repro.core.verify import (
    check_distribution,
    check_lightweight,
    check_remap_plan,
    check_schedule,
    check_schedule_against_hash_tables,
    check_translation_table,
)
from repro.sim import Machine


class TestDistributionChecks:
    def test_valid_distributions_pass(self, rng):
        assert check_distribution(BlockDistribution(17, 4)) == []
        assert check_distribution(
            IrregularDistribution(rng.integers(0, 5, 40), 5)
        ) == []
        assert check_distribution(BlockDistribution(0, 3)) == []

    def test_translation_table_passes(self, ctx4, rng):
        rt = ChaosRuntime(ctx4)
        tt = rt.irregular_table(rng.integers(0, 4, 25))
        assert check_translation_table(tt) == []


class TestScheduleChecks:
    def make(self, rng, n=40, refs=100):
        m = Machine(4)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, 4, n))
        idx = split_by_block(rng.integers(0, n, refs), m)
        rt.hash_indirection(tt, idx, "s")
        sched = rt.build_schedule(tt, "s")
        return m, rt, tt, sched

    def test_built_schedule_passes(self, rng):
        m, rt, tt, sched = self.make(rng)
        assert check_schedule(sched, tt.dist) == []
        assert check_schedule_against_hash_tables(
            sched, rt.hash_tables(tt)
        ) == []

    def test_empty_schedule_passes(self):
        assert check_schedule(Schedule.empty(3)) == []

    def test_corrupted_slot_detected(self, rng):
        m, rt, tt, sched = self.make(rng)
        # find a nonempty recv buffer and poke an out-of-range slot into it
        for p in range(4):
            if sched.recv_slots[p].size:
                sched.recv_slots[p] = sched.recv_slots[p].copy()
                sched.recv_slots[p][0] = sched.ghost_size[p] + 10
                problems = check_schedule(sched, tt.dist)
                assert any("out of range" in msg for msg in problems)
                return
        pytest.skip("no off-processor traffic in this draw")

    def test_send_index_range_detected(self, rng):
        m, rt, tt, sched = self.make(rng)
        for p in range(4):
            if sched.send_indices[p].size:
                sched.send_indices[p] = sched.send_indices[p].copy()
                sched.send_indices[p][0] = tt.dist.local_size(p) + 99
                problems = check_schedule(sched, tt.dist)
                assert any("beyond local size" in msg for msg in problems)
                return
        pytest.skip("no off-processor traffic in this draw")


class TestLightweightChecks:
    def test_built_passes(self, ctx4, rng):
        dest = [rng.integers(0, 4, 12) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        assert check_lightweight(sched) == []

    def test_count_mismatch_detected(self, ctx4, rng):
        dest = [rng.integers(0, 4, 12) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        # drop one element from the selection without fixing recv_counts
        # (the stale offsets make the last nonempty view come up short)
        sched.send_sel[0] = sched.send_sel[0][:-1]
        problems = check_lightweight(sched)
        assert problems  # count mismatch and/or undelivered element

    def test_double_send_detected(self, ctx4, rng):
        dest = [rng.integers(0, 4, 12) for _ in range(4)]
        sched = build_lightweight_schedule(ctx4, dest)
        # send element 0 of rank 0 to a second destination too
        pairs = [[sched.send_view(p, q).copy() for q in range(4)]
                 for p in range(4)]
        recv_counts = sched.recv_counts.copy()
        for q in range(4):
            if not np.any(pairs[0][q] == 0):
                pairs[0][q] = np.concatenate(
                    [pairs[0][q], np.array([0], dtype=np.int64)]
                )
                recv_counts[q][0] += 1
                break
        from csr_helpers import lightweight_from_pairs

        bad = lightweight_from_pairs(4, pairs, recv_counts)
        problems = check_lightweight(bad)
        assert any("multiple destinations" in msg for msg in problems)


class TestRemapChecks:
    def test_built_plan_passes(self, ctx4, rng):
        old = BlockDistribution(30, 4)
        new = IrregularDistribution(rng.integers(0, 4, 30), 4)
        plan = remap(ctx4, old, new)
        assert check_remap_plan(plan) == []

    def test_unfilled_slot_detected(self, ctx4, rng):
        old = BlockDistribution(30, 4)
        new = IrregularDistribution(rng.integers(0, 4, 30), 4)
        plan = remap(ctx4, old, new)
        # pretend a rank expects one more element than it is sent
        plan.new_sizes[0] += 1
        problems = check_remap_plan(plan)
        assert any("distinct slots filled" in msg for msg in problems)
