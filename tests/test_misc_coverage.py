"""Coverage for less-traveled paths: empty systems, vacuum DSMC runs,
bond-free MD, recorded traffic, multi-rhs reductions."""

import numpy as np

from repro.apps.charmm import MolecularSystem, SequentialMD, ParallelMD
from repro.apps.dsmc import CartesianGrid, DSMCConfig, ParallelDSMC, SequentialDSMC
from repro.core import (
    ChaosRuntime,
    IrregularReduction,
    Schedule,
    gather,
    split_by_block,
)
from repro.sim import Machine


class TestEmptySchedule:
    def test_gather_with_empty_schedule_is_noop(self, machine4, rng):
        rt = ChaosRuntime(machine4)
        tt = rt.irregular_table(rng.integers(0, 4, 10))
        x = rt.distribute(rng.standard_normal(10), tt)
        sched = Schedule.empty(4)
        machine4.reset_traffic()
        ghosts = gather(rt.ctx, sched, x.local)
        assert machine4.traffic.n_messages == 0
        assert all(g.size == 0 for g in ghosts)


class TestVacuumDSMC:
    def test_no_particles_no_inflow(self):
        grid = CartesianGrid((6, 6))
        cfg = DSMCConfig(n_initial=0, inflow_rate=0)
        seq = SequentialDSMC(grid, cfg)
        seq.run(5)
        m = Machine(4)
        par = ParallelDSMC(grid, m, DSMCConfig(n_initial=0, inflow_rate=0))
        par.run(5)
        assert par.total_particles() == 0
        assert seq.particles.n == 0

    def test_inflow_only(self):
        grid = CartesianGrid((8, 4))
        cfg = lambda: DSMCConfig(n_initial=0, inflow_rate=15, dt=0.3)  # noqa: E731
        seq = SequentialDSMC(grid, cfg())
        seq.run(6)
        m = Machine(4)
        par = ParallelDSMC(grid, m, cfg())
        par.run(6)
        a, b = seq.canonical_state(), par.canonical_state()
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_everything_flows_out(self):
        grid = CartesianGrid((4, 4), (4.0, 4.0))
        from repro.apps.dsmc import FlowConfig

        cfg = DSMCConfig(
            n_initial=100, inflow_rate=0, dt=2.0,
            flow=FlowConfig(drift_fraction=1.0, drift_speed=5.0,
                            thermal_speed=0.0),
        )
        m = Machine(2)
        par = ParallelDSMC(grid, m, cfg)
        par.run(10)
        assert par.total_particles() == 0


class TestBondFreeMD:
    def make_system(self, rng, n=60):
        box = 8.0
        return MolecularSystem(
            positions=rng.random((n, 3)) * box,
            velocities=rng.standard_normal((n, 3)) * 0.05,
            masses=np.ones(n),
            charges=np.zeros(n),
            bonds=np.zeros((0, 2), dtype=np.int64),
            box=box,
        )

    def test_parallel_matches_sequential_without_bonds(self, rng):
        a = self.make_system(rng)
        b = a.copy()
        seq = SequentialMD(a, update_every=3)
        seq.run(6)
        par = ParallelMD(b, Machine(4), update_every=3)
        par.run(6)
        assert np.abs(par.global_positions() - a.positions).max() < 1e-9


class TestRecordedTraffic:
    def test_messages_recorded_with_flag(self, rng):
        m = Machine(4, record_messages=True)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, 4, 20))
        x = rt.distribute(rng.standard_normal(20), tt)
        idx = split_by_block(rng.integers(0, 20, 30), m)
        rt.hash_indirection(tt, idx, "s")
        sched = rt.build_schedule(tt, "s")
        rt.gather(sched, x)
        gathers = [msg for msg in m.traffic.messages if msg.tag == "gather"]
        assert len(gathers) == sched.total_messages()

    def test_snapshot_roundtrip(self, rng):
        m = Machine(2)
        send = [[None, np.ones(4)], [np.ones(2), None]]
        m.alltoallv(send)
        snap = m.traffic.snapshot()
        assert snap["n_messages"] == 2
        assert snap["total_bytes"] == 48


class TestMultiRhsReduction:
    def test_two_distinct_rhs_arrays(self, rng):
        """x[ia] += y[ib] * z[ic] with three indirection arrays."""
        n, e, p = 40, 90, 4
        m = Machine(p)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, p, n))
        x_g = rng.standard_normal(n)
        y_g = rng.standard_normal(n)
        z_g = rng.standard_normal(n)
        ia = rng.integers(0, n, e)
        ib = rng.integers(0, n, e)
        ic = rng.integers(0, n, e)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        z = rt.distribute(z_g, tt)
        loop = IrregularReduction(rt, tt, "multi").bind(
            ia=split_by_block(ia, m),
            ib=split_by_block(ib, m),
            ic=split_by_block(ic, m),
        )
        loop.setup()
        loop.execute(x, "ia", lambda yv, zv: yv * zv,
                     {"y": (y, "ib"), "z": (z, "ic")})
        expected = x_g.copy()
        np.add.at(expected, ia, y_g[ib] * z_g[ic])
        assert np.allclose(x.to_global(), expected)

    def test_same_array_two_patterns(self, rng):
        """x[ia] += y[ia] * y[ib] — Figure 5's L2, one array read through
        two different indirections (gathered once)."""
        n, e, p = 30, 70, 4
        m = Machine(p)
        rt = ChaosRuntime(m)
        tt = rt.irregular_table(rng.integers(0, p, n))
        x_g = rng.standard_normal(n)
        y_g = rng.standard_normal(n)
        ia = rng.integers(0, n, e)
        ib = rng.integers(0, n, e)
        x = rt.distribute(x_g, tt)
        y = rt.distribute(y_g, tt)
        loop = IrregularReduction(rt, tt, "L2").bind(
            ia=split_by_block(ia, m), ib=split_by_block(ib, m)
        )
        loop.setup()
        loop.execute(x, "ia", lambda ya, yb: ya * yb,
                     {"ya": (y, "ia"), "yb": (y, "ib")})
        expected = x_g.copy()
        np.add.at(expected, ia, y_g[ia] * y_g[ib])
        assert np.allclose(x.to_global(), expected)
