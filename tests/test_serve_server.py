"""Unit tests for the multi-tenant program server.

Event-loop mechanics (admission, lifecycle states, per-tenant caps,
backpressure, cancellation, timeouts, soft-failure isolation) on cheap
jobs; the heavy end-to-end runs live in ``test_serve_soak.py``.  No
pytest-asyncio in the toolchain — each test drives its own loop with
``asyncio.run``.
"""

import asyncio

import numpy as np
import pytest
from serve_helpers import (
    assert_verdict_results_equal,
    figure8_job,
    halo_job,
    sleeper_job,
)

from repro.serve import (
    AdmissionFull,
    CallableJob,
    JobCancelled,
    JobControl,
    JobSpec,
    JobStatus,
    ProgramServer,
    ServerClosed,
    ServerConfig,
    run_job_inline,
)

pytestmark = pytest.mark.serve


def run(coro):
    return asyncio.run(coro)


def const_job(value, **kw):
    return CallableJob(fn=lambda ctx, control: value, **kw)


# ----------------------------------------------------------------------
# lifecycle + verdicts
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_wait_done(self):
        async def main():
            async with ProgramServer() as srv:
                handle = await srv.submit(const_job(41, name="answer"))
                verdict = await handle.wait()
                return srv, handle, verdict

        srv, handle, verdict = run(main())
        assert verdict.ok
        assert verdict.status is JobStatus.DONE
        assert verdict.result == 41
        assert verdict.name == "answer"
        assert verdict.error is None and verdict.traceback is None
        assert verdict.duration is not None and verdict.duration >= 0
        # status queries agree between handle and server
        assert handle.status is JobStatus.DONE
        assert srv.status(handle.job_id) is JobStatus.DONE
        assert srv.verdict(handle.job_id) is verdict
        assert handle.verdict is verdict

    def test_queued_running_states_observed(self):
        async def main():
            def wait_fn(ctx, control):
                control.sleep(30)  # released via cancel below

            async with ProgramServer(
                ServerConfig(max_concurrency=1)
            ) as srv:
                first = await srv.submit(
                    CallableJob(fn=wait_fn, name="hog")
                )
                second = await srv.submit(const_job(2, name="queued"))
                await asyncio.sleep(0.1)
                states = (first.status, second.status)
                first.cancel()
                v2 = await second.wait()
                return states, v2

        (s1, s2), v2 = run(main())
        assert s1 is JobStatus.RUNNING
        assert s2 is JobStatus.QUEUED
        assert v2.ok and v2.result == 2

    def test_failure_is_isolated_and_recorded(self):
        def boom(ctx, control):
            raise ValueError("tenant bug")

        async def main():
            async with ProgramServer() as srv:
                bad = await srv.submit(
                    CallableJob(fn=boom, name="boom", tenant="bad")
                )
                good = await srv.submit(const_job(7, tenant="good"))
                return await bad.wait(), await good.wait()

        vb, vg = run(main())
        assert vb.status is JobStatus.FAILED and not vb.ok
        assert "tenant bug" in vb.error
        assert "ValueError" in vb.traceback
        assert vg.ok and vg.result == 7

    def test_verdict_stats_and_summary(self):
        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(halo_job(seed=5))
                return await h.wait()

        v = run(main())
        assert v.ok
        assert v.stats["backend"] == v.backend
        assert v.stats["n_ranks"] == 4
        assert v.stats["traffic"]["n_messages"] > 0
        assert v.stats["clock"]["execution"] > 0.0
        # raw runtime-API calls bypass the plan-layer schedule cache
        assert v.stats["cache"]["entries"] >= 0
        assert v.resources_closed
        line = v.summary()
        assert "done" in line and "msgs=" in line

    def test_program_job_matches_solo_run(self):
        spec = figure8_job(seed=11)

        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(spec)
                return await h.wait()

        verdict = run(main())
        assert verdict.ok
        solo = run_job_inline(figure8_job(seed=11))
        assert_verdict_results_equal(verdict.result, solo)
        assert set(verdict.result) == {"x"}

    def test_jobs_listing_by_tenant(self):
        async def main():
            async with ProgramServer() as srv:
                await srv.submit(const_job(1, tenant="a"))
                await srv.submit(const_job(2, tenant="a"))
                await srv.submit(const_job(3, tenant="b"))
                for h in srv.jobs():
                    await h.wait()
                return (len(srv.jobs()), len(srv.jobs("a")),
                        len(srv.jobs("b")), len(srv.jobs("zzz")),
                        srv.stats())

        total, a, b, z, stats = run(main())
        assert (total, a, b, z) == (3, 2, 1, 0)
        assert stats["admitted"] == 3
        assert stats["by_status"] == {"done": 3}
        assert stats["pending"] == 0


# ----------------------------------------------------------------------
# concurrency limits
# ----------------------------------------------------------------------
class TestConcurrencyLimits:
    def test_per_tenant_cap_is_one(self):
        import threading
        import time

        lock = threading.Lock()
        counts = {"t": 0, "max_t": 0}

        def fn(ctx, control):
            with lock:
                counts["t"] += 1
                counts["max_t"] = max(counts["max_t"], counts["t"])
            time.sleep(0.1)
            with lock:
                counts["t"] -= 1

        async def main():
            cfg = ServerConfig(max_concurrency=4, per_tenant=1)
            async with ProgramServer(cfg) as srv:
                handles = [
                    await srv.submit(CallableJob(fn=fn, tenant="flood"))
                    for _ in range(3)
                ]
                for h in handles:
                    v = await h.wait()
                    assert v.ok

        run(main())
        assert counts["max_t"] == 1

    def test_tenants_run_concurrently_under_global_cap(self):
        import threading
        import time

        lock = threading.Lock()
        counts = {"g": 0, "max_g": 0}

        def fn(ctx, control):
            with lock:
                counts["g"] += 1
                counts["max_g"] = max(counts["max_g"], counts["g"])
            time.sleep(0.2)
            with lock:
                counts["g"] -= 1

        async def main():
            cfg = ServerConfig(max_concurrency=4, per_tenant=1)
            async with ProgramServer(cfg) as srv:
                handles = [
                    await srv.submit(CallableJob(fn=fn, tenant=t))
                    for t in ("a", "b", "c")
                ]
                for h in handles:
                    v = await h.wait()
                    assert v.ok

        run(main())
        # three distinct tenants, cap 4: they overlap on the pool
        assert counts["max_g"] >= 2

    def test_global_cap_bounds_overlap(self):
        import threading
        import time

        lock = threading.Lock()
        counts = {"g": 0, "max_g": 0}

        def fn(ctx, control):
            with lock:
                counts["g"] += 1
                counts["max_g"] = max(counts["max_g"], counts["g"])
            time.sleep(0.1)
            with lock:
                counts["g"] -= 1

        async def main():
            cfg = ServerConfig(max_concurrency=2, per_tenant=2)
            async with ProgramServer(cfg) as srv:
                handles = [
                    await srv.submit(
                        CallableJob(fn=fn, tenant=f"t{i % 3}")
                    )
                    for i in range(6)
                ]
                for h in handles:
                    await h.wait()

        run(main())
        assert 1 <= counts["max_g"] <= 2


# ----------------------------------------------------------------------
# bounded admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_reject_policy_raises_admission_full(self):
        async def main():
            cfg = ServerConfig(max_concurrency=1, queue_limit=2,
                               admission="reject")
            async with ProgramServer(cfg) as srv:
                h1 = await srv.submit(sleeper_job(30, name="hog"))
                h2 = await srv.submit(const_job(2))
                with pytest.raises(AdmissionFull):
                    await srv.submit(const_job(3))
                h1.cancel()
                await h1.wait()
                await h2.wait()
                # room freed: admission works again
                h3 = await srv.submit(const_job(3))
                assert (await h3.wait()).ok

        run(main())

    def test_wait_policy_applies_backpressure(self):
        async def main():
            cfg = ServerConfig(max_concurrency=1, queue_limit=1,
                               admission="wait")
            async with ProgramServer(cfg) as srv:
                hog = await srv.submit(sleeper_job(30, name="hog"))

                second = asyncio.ensure_future(
                    srv.submit(const_job(2, name="waiter"))
                )
                await asyncio.sleep(0.1)
                # the submit coroutine is suspended, nothing admitted
                assert not second.done()
                assert srv.stats()["admitted"] == 1

                hog.cancel()
                handle2 = await asyncio.wait_for(second, timeout=5)
                v2 = await handle2.wait()
                assert v2.ok and v2.result == 2

        run(main())

    def test_backpressured_submit_rejected_on_drain(self):
        async def main():
            cfg = ServerConfig(max_concurrency=1, queue_limit=1,
                               admission="wait")
            srv = ProgramServer(cfg)
            hog = await srv.submit(sleeper_job(30, name="hog"))
            second = asyncio.ensure_future(srv.submit(const_job(2)))
            await asyncio.sleep(0.05)
            assert not second.done()
            hog.cancel()
            await srv.close()
            with pytest.raises(ServerClosed):
                await second

        run(main())


# ----------------------------------------------------------------------
# cancellation + timeout
# ----------------------------------------------------------------------
class TestCancelAndTimeout:
    def test_cancel_queued_job(self):
        async def main():
            cfg = ServerConfig(max_concurrency=1)
            async with ProgramServer(cfg) as srv:
                hog = await srv.submit(sleeper_job(30, name="hog"))
                queued = await srv.submit(const_job(2, name="victim"))
                await asyncio.sleep(0.05)
                assert queued.status is JobStatus.QUEUED
                assert queued.cancel()
                v = await queued.wait()
                hog.cancel()
                await hog.wait()
                return v

        v = run(main())
        assert v.status is JobStatus.CANCELLED
        assert "queued" in v.error

    def test_cancel_running_job(self):
        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(sleeper_job(30, name="hog"))
                await asyncio.sleep(0.05)
                assert h.status is JobStatus.RUNNING
                assert h.cancel()
                v = await h.wait()
                # cancelling a finished job reports False
                assert not h.cancel()
                return v, srv.stats()

        v, stats = run(main())
        assert v.status is JobStatus.CANCELLED
        # either the loop recorded the abandonment first ("cancelled
        # while running") or the cooperative thread won the race and
        # reported its own JobCancelled — both are correct
        assert "running" in v.error or "asked to stop" in v.error
        assert stats["by_status"] == {"cancelled": 1}

    def test_timeout_records_verdict_and_run_continues(self):
        async def main():
            async with ProgramServer() as srv:
                slow = await srv.submit(
                    sleeper_job(30, name="slow", timeout=0.2)
                )
                quick = await srv.submit(const_job(1, tenant="other"))
                vs = await slow.wait()
                vq = await quick.wait()
                return vs, vq

        vs, vq = run(main())
        assert vs.status is JobStatus.TIMEOUT
        assert "deadline" in vs.error
        assert vq.ok

    def test_default_timeout_from_config(self):
        async def main():
            cfg = ServerConfig(default_timeout=0.2)
            async with ProgramServer(cfg) as srv:
                v = await (await srv.submit(
                    sleeper_job(30, name="slow")
                )).wait()
                # per-spec timeout overrides the default upward
                ok = await (await srv.submit(
                    sleeper_job(0.01, name="quick", timeout=5)
                )).wait()
                return v, ok

        v, ok = run(main())
        assert v.status is JobStatus.TIMEOUT
        assert ok.ok

    def test_uncooperative_timeout_still_records(self):
        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(
                    sleeper_job(0.6, name="stubborn", timeout=0.1,
                                cooperative=False)
                )
                v = await h.wait()
                in_flight = srv.stats()["stragglers"]
                await srv.close()
                return v, in_flight, srv.stats()["stragglers"]

        v, before, after = run(main())
        assert v.status is JobStatus.TIMEOUT
        assert before == 1  # the thread outlived its verdict...
        assert after == 0   # ...and drain reaped it

    def test_control_sleep_raises_on_stop(self):
        control = JobControl()
        control.stop()
        assert control.stopped
        with pytest.raises(JobCancelled):
            control.sleep(10)
        with pytest.raises(JobCancelled):
            control.check()


# ----------------------------------------------------------------------
# validation + misuse
# ----------------------------------------------------------------------
class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServerConfig(per_tenant=0)
        with pytest.raises(ValueError):
            ServerConfig(queue_limit=0)
        with pytest.raises(ValueError):
            ServerConfig(admission="fifo")
        with pytest.raises(ValueError):
            ServerConfig(default_timeout=0)
        with pytest.raises(ValueError):
            ServerConfig(thread_workers=0)
        assert ServerConfig(thread_workers=9).pool_size == 9
        assert ServerConfig(max_concurrency=3).pool_size == 3

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            const_job(1, n_ranks=0)
        with pytest.raises(ValueError):
            const_job(1, timeout=-1)
        with pytest.raises(TypeError):
            JobSpec()  # abstract

    def test_submit_rejects_non_spec(self):
        async def main():
            async with ProgramServer() as srv:
                with pytest.raises(TypeError):
                    await srv.submit(lambda ctx, control: 1)

        run(main())

    def test_unknown_job_id(self):
        srv = ProgramServer()
        with pytest.raises(KeyError):
            srv.status(999)
        with pytest.raises(KeyError):
            srv.verdict(999)
        asyncio.run(srv.close())

    def test_spec_backend_is_honoured(self):
        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(
                    const_job(1, backend="serial", name="pinned")
                )
                return await h.wait()

        v = run(main())
        assert v.ok and v.backend == "serial"

    def test_failed_context_build_is_a_tenant_failure(self):
        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(const_job(1, backend="no-such"))
                other = await srv.submit(const_job(2))
                return await h.wait(), await other.wait()

        vbad, vok = run(main())
        assert vbad.status is JobStatus.FAILED
        assert "no-such" in vbad.error
        assert vok.ok

    def test_result_survives_numpy_payloads(self):
        payload = np.arange(12.0).reshape(3, 4)

        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(
                    CallableJob(fn=lambda ctx, control: payload * 2)
                )
                return await h.wait()

        v = run(main())
        np.testing.assert_array_equal(v.result, payload * 2)
