"""Regression: schedule index arrays are normalized to int64.

Callers historically controlled the dtype of the schedule index buffers —
an int32 indirection array produced an int32 schedule, and downstream
code (compiled plans, fancy indexing) silently depended on whatever
arrived.  Construction now coerces every flat buffer and offset vector to
int64, whether a schedule is built directly from CSR buffers or
assembled from nested per-pair lists (``tests/csr_helpers.py``).
"""

import numpy as np

from csr_helpers import (
    lightweight_from_pairs,
    remap_from_pairs,
    schedule_from_pairs,
    send_pair_views,
)

from repro.core import (
    Schedule,
    compile_lightweight_schedule,
    compile_remap_plan,
    compile_schedule,
)


def _rows(n, arrs):
    return [[np.asarray(a, dtype=np.int32) for a in row] for row in arrs]


def _sched_2ranks():
    z = np.zeros(0, dtype=np.int32)
    return schedule_from_pairs(
        n_ranks=2,
        send_indices=_rows(2, [[z, np.array([0, 1])], [np.array([2]), z]]),
        recv_slots=_rows(2, [[z, np.array([0])], [np.array([1, 0]), z]]),
        ghost_size=[2, 1],
    )


def test_schedule_coerces_int32_indices():
    sched = _sched_2ranks()
    for p in range(2):
        assert sched.send_indices[p].dtype == np.int64
        assert sched.send_offsets[p].dtype == np.int64
        assert sched.recv_slots[p].dtype == np.int64
        assert sched.recv_offsets[p].dtype == np.int64


def test_schedule_coerces_int32_csr_buffers():
    off = lambda *v: np.asarray(v, dtype=np.int32)  # noqa: E731
    sched = Schedule(
        n_ranks=2,
        send_indices=[np.array([0, 1], dtype=np.int32),
                      np.array([2], dtype=np.int32)],
        send_offsets=[off(0, 0, 2), off(0, 1, 1)],
        recv_slots=[np.array([0], dtype=np.int32),
                    np.array([1, 0], dtype=np.int32)],
        recv_offsets=[off(0, 0, 1), off(0, 2, 2)],
        ghost_size=[2, 1],
    )
    for p in range(2):
        assert sched.send_indices[p].dtype == np.int64
        assert sched.recv_slots[p].dtype == np.int64
    assert sched.counts().dtype == np.int64


def test_pair_views_roundtrip():
    sched = _sched_2ranks()
    assert np.array_equal(sched.send_view(0, 1), [0, 1])
    assert np.array_equal(sched.send_view(1, 0), [2])
    pairs = send_pair_views(sched)
    for p in range(2):
        for q in range(2):
            assert np.array_equal(pairs[p][q], sched.send_view(p, q))


def test_lightweight_coerces_int32_indices():
    z = np.zeros(0, dtype=np.int32)
    sched = lightweight_from_pairs(
        n_ranks=2,
        send_sel=_rows(2, [[np.array([0]), np.array([1])],
                           [z, np.array([0, 1])]]),
        recv_counts=np.array([[1, 0], [1, 2]], dtype=np.int32),
    )
    for p in range(2):
        assert sched.send_sel[p].dtype == np.int64
        assert sched.send_offsets[p].dtype == np.int64
    assert sched.recv_counts.dtype == np.int64


def test_remap_plan_coerces_int32_indices():
    z = np.zeros(0, dtype=np.int32)
    plan = remap_from_pairs(
        n_ranks=2,
        send_sel=_rows(2, [[np.array([0]), np.array([1])], [z, np.array([0])]]),
        place_sel=_rows(2, [[np.array([0]), z], [np.array([0]), np.array([1])]]),
        new_sizes=[1, 2],
    )
    for p in range(2):
        assert plan.send_sel[p].dtype == np.int64
        assert plan.place_sel[p].dtype == np.int64


def test_compiled_plans_are_int64():
    sched = _sched_2ranks()
    plan = compile_schedule(sched)
    for p in range(2):
        assert plan.send_idx[p].dtype == np.int64
        assert plan.place_idx[p].dtype == np.int64
    assert plan.perm.dtype == np.int64
    assert plan.counts.dtype == np.int64

    lw = lightweight_from_pairs(
        n_ranks=1,
        send_sel=[[np.array([0, 1], dtype=np.int32)]],
        recv_counts=np.array([[2]]),
    )
    lwp = compile_lightweight_schedule(lw)
    assert lwp.send_idx[0].dtype == np.int64

    rp = remap_from_pairs(
        n_ranks=1,
        send_sel=[[np.array([0], dtype=np.int32)]],
        place_sel=[[np.array([0], dtype=np.int32)]],
        new_sizes=[1],
    )
    cp = compile_remap_plan(rp)
    assert cp.send_idx[0].dtype == np.int64
    assert cp.place_idx[0].dtype == np.int64


def test_compiled_plan_cached_on_schedule():
    sched = Schedule.empty(1)
    assert compile_schedule(sched) is compile_schedule(sched)
