"""Soak: many concurrent tenants, mixed workloads, injected failures.

The acceptance run for the server: >= 8 concurrent tenants spanning
every job family (mini-Fortran-D programs, CHARMM MD, DSMC, raw
runtime-API callables) with at least one tenant raising mid-run and
one exceeding its deadline.  Every surviving tenant's result must be
bitwise-identical to a solo run of the same spec, and shutdown must
leave no open contexts, straggler threads, or child processes.

CI runs this file under ``REPRO_BACKEND=vectorized`` and
``REPRO_BACKEND=multiprocess`` (the server job's matrix); locally it
exercises whichever default backend the environment selects, plus the
explicit parametrization below.
"""

import asyncio

import pytest
from serve_helpers import (
    assert_verdict_results_equal,
    figure8_job,
    halo_job,
    serve_threads_alive,
    sleeper_job,
)

from repro.apps import CharmmJob, DsmcJob
from repro.serve import (
    JobStatus,
    ProgramServer,
    ServerConfig,
    run_job_inline,
)

pytestmark = [pytest.mark.serve, pytest.mark.timeout(120)]


def _tenant_fleet(backend):
    """Ten tenants: 4 program, 1 CHARMM, 1 DSMC, 2 runtime-API, 1
    crasher (raises mid-run), 1 deadline-buster."""
    specs = [
        figure8_job(seed=101, tenant="prog-a", backend=backend),
        figure8_job(seed=102, tenant="prog-b", backend=backend),
        figure8_job(seed=103, tenant="prog-c", n=40, e=160,
                    backend=backend),
        figure8_job(seed=104, tenant="prog-d", backend=backend),
        CharmmJob(tenant="md", seed=7, n_atoms=96, steps=2,
                  backend=backend),
        DsmcJob(tenant="flow", seed=11, n_initial=200, steps=2,
                backend=backend),
        halo_job(seed=201, tenant="rt-a", backend=backend),
        halo_job(seed=202, tenant="rt-b", backend=backend),
        halo_job(seed=999, tenant="chaos", crash=True,
                 backend=backend),
        sleeper_job(60, tenant="late", name="overdue", timeout=0.3,
                    backend=backend),
    ]
    assert len({s.tenant for s in specs}) >= 8
    return specs


@pytest.mark.parametrize("backend", ["vectorized", "multiprocess"])
def test_soak_mixed_tenants(backend):
    specs = _tenant_fleet(backend)

    async def main():
        cfg = ServerConfig(max_concurrency=4, per_tenant=1,
                           queue_limit=16)
        async with ProgramServer(cfg) as srv:
            handles = [await srv.submit(s) for s in specs]
            verdicts = [await h.wait() for h in handles]
        return srv, verdicts

    srv, verdicts = asyncio.run(main())

    by_tenant = {v.tenant: v for v in verdicts}
    assert by_tenant["chaos"].status is JobStatus.FAILED
    assert "crashed mid-run" in by_tenant["chaos"].error
    assert by_tenant["late"].status is JobStatus.TIMEOUT
    survivors = [v for v in verdicts
                 if v.tenant not in ("chaos", "late")]
    assert all(v.ok for v in survivors), [v.summary() for v in verdicts]

    # bitwise identity: served == solo for every surviving tenant
    for spec, v in zip(specs, verdicts):
        if not v.ok:
            continue
        solo = run_job_inline(spec)
        assert_verdict_results_equal(v.result, solo)

    # the failed tenants still carry complete, audited verdicts
    assert all(v.resources_closed for v in verdicts)
    assert srv.leaked_contexts() == []
    stats = srv.stats()
    assert stats["admitted"] == len(specs)
    assert stats["pending"] == 0
    assert stats["stragglers"] == 0
    assert stats["by_status"] == {"done": 8, "failed": 1, "timeout": 1}
    assert serve_threads_alive() == []


def test_soak_two_waves_with_backpressure():
    """A second admission wave after the first drains through a tight
    queue: exercises the room signal end-to-end under real jobs."""

    async def main():
        cfg = ServerConfig(max_concurrency=2, per_tenant=1,
                           queue_limit=3, admission="wait")
        async with ProgramServer(cfg) as srv:
            handles = []
            for wave in range(2):
                for i in range(4):
                    handles.append(await srv.submit(
                        halo_job(seed=wave * 10 + i,
                                 tenant=f"w{wave}t{i}")
                    ))
            verdicts = [await h.wait() for h in handles]
        return srv, verdicts

    srv, verdicts = asyncio.run(main())
    assert len(verdicts) == 8
    assert all(v.ok for v in verdicts)
    for v in verdicts:
        solo = run_job_inline(halo_job(seed=v.seed))
        assert_verdict_results_equal(v.result, solo)
    assert srv.leaked_contexts() == []
    assert serve_threads_alive() == []
