"""Property tests: incremental delta rebuilds vs full inspector reruns.

The contract of :func:`rehash_delta` + :func:`delta_rebuild_schedule` is
*bitwise equivalence*: after any touched-subset update, the spliced
schedule, the localized indices, and the table occupancy must be
indistinguishable from running the full clear/rehash/rebuild path over
the same tables — under every registered backend, including updates
that introduce never-seen global indices (fresh ghost slots) and ones
that drop the last reference to an index (ghost-slot retirement).

Because schedules are compared bitwise, executor behaviour is identical
by construction; ``test_delta_schedule_traffic_identity`` witnesses it
anyway by running a gather through both schedules and comparing the
simulated machines' aggregate traffic and per-message logs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExecutionContext,
    TranslationTable,
    allocate_ghosts,
    build_schedule,
    chaos_hash,
    clear_stamp,
    delta_rebuild_schedule,
    gather,
    make_hash_tables,
    rehash_delta,
)
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS


def _assert_schedule_equal(a, b) -> None:
    assert a.n_ranks == b.n_ranks
    assert list(a.ghost_size) == list(b.ghost_size)
    for p in range(a.n_ranks):
        assert np.array_equal(a.send_indices[p], b.send_indices[p])
        assert np.array_equal(a.send_offsets[p], b.send_offsets[p])
        assert np.array_equal(a.recv_slots[p], b.recv_slots[p])
        assert np.array_equal(a.recv_offsets[p], b.recv_offsets[p])


def _cold_env(ctx, seed, n, per_rank):
    """Tables + cold-hashed indirection array + its schedule."""
    rng = np.random.default_rng(seed)
    m = ctx.machine
    tt = TranslationTable.from_map(m, rng.integers(0, ctx.n_ranks, n))
    hts = make_hash_tables(ctx, tt)
    idx = [rng.integers(0, n, per_rank) for _ in range(ctx.n_ranks)]
    chaos_hash(ctx, hts, tt, [a.copy() for a in idx], "s")
    sched = build_schedule(ctx, hts, "s")
    return tt, hts, idx, sched


def _churn(rng, idx, n, frac):
    """Touch ``frac`` of each rank's slice with fresh random values."""
    positions, old_vals, new_vals, nxt = [], [], [], []
    for a in idx:
        k = int(frac * a.size)
        pos = (rng.choice(a.size, size=k, replace=False)
               if k else np.zeros(0, dtype=np.int64))
        nv = rng.integers(0, n, k)
        b = a.copy()
        b[pos] = nv
        positions.append(pos)
        old_vals.append(a[pos])
        new_vals.append(nv)
        nxt.append(b)
    return positions, old_vals, new_vals, nxt


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 5),
    n=st.integers(1, 60),
    per_rank=st.integers(0, 40),
    frac=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
)
def test_delta_rebuild_matches_full_rebuild(seed, n_ranks, n, per_rank,
                                            frac):
    """Two rounds of churn: the delta path must track the full path
    bitwise — schedule, localized indices, and table occupancy — on
    every backend."""
    for backend in BACKENDS:
        m_full = Machine(n_ranks)
        m_delta = Machine(n_ranks)
        ctx_f = ExecutionContext.resolve(m_full, backend)
        ctx_d = ExecutionContext.resolve(m_delta, backend)
        tt_f, hts_f, idx, _ = _cold_env(ctx_f, seed, n, per_rank)
        tt_d, hts_d, _, sched_d = _cold_env(ctx_d, seed, n, per_rank)
        rng = np.random.default_rng(seed + 1)
        for _ in range(2):
            positions, old_vals, new_vals, idx = _churn(rng, idx, n, frac)

            clear_stamp(ctx_f, hts_f, "s")
            loc_full = chaos_hash(ctx_f, hts_f, tt_f,
                                  [a.copy() for a in idx], "s")
            sched_f = build_schedule(ctx_f, hts_f, "s")

            rehash = rehash_delta(ctx_d, hts_d, tt_d, "s",
                                  old_vals, new_vals)
            sched_d = delta_rebuild_schedule(ctx_d, hts_d, "s",
                                             sched_d, rehash)

            _assert_schedule_equal(sched_f, sched_d)
            for p in range(n_ranks):
                # the rehash's localized values patch the touched
                # positions to exactly what a full localize yields
                assert np.array_equal(rehash.localized[p],
                                      loc_full[p][positions[p]])
                assert len(hts_f[p]) == len(hts_d[p])
                assert (hts_f[p].ghost_capacity()
                        == hts_d[p].ghost_capacity())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_delta_schedules_identical_across_backends(seed):
    """The spliced schedule (and the rehash's localized patches) must
    not depend on which backend performed the update."""
    results = {}
    for backend in BACKENDS:
        m = Machine(4)
        ctx = ExecutionContext.resolve(m, backend)
        tt, hts, idx, sched = _cold_env(ctx, seed, 50, 30)
        rng = np.random.default_rng(seed + 1)
        _, old_vals, new_vals, idx = _churn(rng, idx, 50, 0.3)
        rehash = rehash_delta(ctx, hts, tt, "s", old_vals, new_vals)
        sched = delta_rebuild_schedule(ctx, hts, "s", sched, rehash)
        results[backend] = (sched, rehash.localized)
    ref_sched, ref_loc = results[BACKENDS[0]]
    for other in BACKENDS[1:]:
        sched, loc = results[other]
        _assert_schedule_equal(ref_sched, sched)
        for p in range(4):
            assert np.array_equal(ref_loc[p], loc[p])


@pytest.mark.parametrize("backend", BACKENDS)
def test_delta_schedule_traffic_identity(backend):
    """A gather driven by the delta-rebuilt schedule moves exactly the
    bytes (and messages) of one driven by the full rebuild."""
    seed, n_ranks, n, per_rank = 7, 4, 80, 60
    m_full = Machine(n_ranks, record_messages=True)
    m_delta = Machine(n_ranks, record_messages=True)
    ctx_f = ExecutionContext.resolve(m_full, backend)
    ctx_d = ExecutionContext.resolve(m_delta, backend)
    tt_f, hts_f, idx, _ = _cold_env(ctx_f, seed, n, per_rank)
    tt_d, hts_d, _, sched_d = _cold_env(ctx_d, seed, n, per_rank)
    rng = np.random.default_rng(seed + 1)
    _, old_vals, new_vals, idx = _churn(rng, idx, n, 0.25)

    clear_stamp(ctx_f, hts_f, "s")
    chaos_hash(ctx_f, hts_f, tt_f, [a.copy() for a in idx], "s")
    sched_f = build_schedule(ctx_f, hts_f, "s")
    rehash = rehash_delta(ctx_d, hts_d, tt_d, "s", old_vals, new_vals)
    sched_d = delta_rebuild_schedule(ctx_d, hts_d, "s", sched_d, rehash)
    _assert_schedule_equal(sched_f, sched_d)

    data_rng = np.random.default_rng(99)
    sizes = [tt_f.dist.local_size(p) for p in range(n_ranks)]
    x_f = [data_rng.standard_normal(s) for s in sizes]
    x_d = [a.copy() for a in x_f]
    m_full.reset_traffic()
    m_delta.reset_traffic()
    g_f = gather(ctx_f, sched_f, x_f, allocate_ghosts(sched_f, x_f))
    g_d = gather(ctx_d, sched_d, x_d, allocate_ghosts(sched_d, x_d))
    for p in range(n_ranks):
        assert np.array_equal(g_f[p], g_d[p])
    assert m_full.traffic.snapshot() == m_delta.traffic.snapshot()
    assert list(m_full.traffic.messages) == list(m_delta.traffic.messages)
