"""Edge-case coverage for the compiled-program runtime."""

import numpy as np
import pytest

from repro.lang import (
    AnalysisError,
    ExecutionError,
    ProgramInstance,
    compile_program,
)
from repro.sim import Machine


class TestBindingsAndState:
    def test_unbound_arrays_zero_allocated(self):
        prog = compile_program(
            "REAL x(6)\nC$ DECOMPOSITION r(6)\nC$ DISTRIBUTE r(BLOCK)\n"
            "C$ ALIGN x WITH r"
        )
        inst = ProgramInstance(prog, Machine(2), {})
        inst.execute()
        assert np.array_equal(inst.get_array("x"), np.zeros(6))

    def test_set_array_propagates_to_distributed(self, rng):
        prog = compile_program(
            "REAL x(8)\nC$ DECOMPOSITION r(8)\nC$ DISTRIBUTE r(BLOCK)\n"
            "C$ ALIGN x WITH r"
        )
        inst = ProgramInstance(prog, Machine(2), {"x": np.zeros(8)})
        inst.execute()
        v = rng.standard_normal(8)
        inst.set_array("x", v)
        assert np.array_equal(inst.get_array("x"), v)

    def test_set_array_wrong_size_rejected(self):
        prog = compile_program(
            "REAL x(8)\nC$ DECOMPOSITION r(8)\nC$ DISTRIBUTE r(BLOCK)\n"
            "C$ ALIGN x WITH r"
        )
        inst = ProgramInstance(prog, Machine(2), {"x": np.zeros(8)})
        inst.execute()
        with pytest.raises(ExecutionError):
            inst.set_array("x", np.zeros(7))

    def test_cyclic_distribution_scheme(self, rng):
        n, e = 12, 30
        src = f"""
          REAL x({n})
          INTEGER ia({e})
C$ DECOMPOSITION r({n})
C$ DISTRIBUTE r(CYCLIC)
C$ ALIGN x WITH r
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), 1)
          END DO
"""
        prog = compile_program(src)
        ia = rng.integers(1, n + 1, e)
        inst = ProgramInstance(prog, Machine(3),
                               dict(x=np.zeros(n), ia=ia))
        inst.execute()
        expected = np.zeros(n)
        np.add.at(expected, ia - 1, 1.0)
        assert np.allclose(inst.get_array("x"), expected)

    def test_ragged_get_before_distribute(self):
        prog = compile_program(
            "C$ DECOMPOSITION c(4)\nC$ ALIGN v(*,:) WITH c"
        )
        inst = ProgramInstance(prog, Machine(2),
                               {"v": [np.zeros(2)] * 4})
        # not distributed yet: host value returned
        assert len(inst.get_array("v")) == 4


class TestLoopValidation:
    def test_outer_loop_must_start_at_one(self, rng):
        src = """
          REAL x(6)
          INTEGER ia(10)
C$ DECOMPOSITION r(6)
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x WITH r
          FORALL i = 2, 10
            REDUCE(SUM, x(ia(i)), 1)
          END DO
"""
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), dict(
            x=np.zeros(6), ia=rng.integers(1, 7, 10)))
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_direct_ref_needs_full_span(self, rng):
        src = """
          REAL x(6)
C$ DECOMPOSITION r(6)
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x WITH r
          FORALL i = 1, 3
            REDUCE(SUM, x(i), 1)
          END DO
"""
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), {"x": np.zeros(6)})
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_indirection_shorter_than_range(self, rng):
        src = """
          REAL x(6)
          INTEGER ia(5)
C$ DECOMPOSITION r(6)
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x WITH r
          FORALL i = 1, 10
            REDUCE(SUM, x(ia(i)), 1)
          END DO
"""
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), dict(
            x=np.zeros(6), ia=np.ones(5, dtype=np.int64)))
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_mixed_reduce_ops_on_one_target_rejected(self, rng):
        src = """
          REAL x(6), y(6)
          INTEGER ia(8)
C$ DECOMPOSITION r(6)
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x, y WITH r
          FORALL i = 1, 8
            REDUCE(SUM, x(ia(i)), y(ia(i)))
            REDUCE(MAX, x(ia(i)), y(ia(i)))
          END DO
"""
        prog = compile_program(src)
        inst = ProgramInstance(prog, Machine(2), dict(
            x=np.zeros(6), y=np.ones(6), ia=rng.integers(1, 7, 8)))
        with pytest.raises(ExecutionError):
            inst.execute()

    def test_non_loop_subscript_rejected_at_compile(self):
        with pytest.raises(AnalysisError):
            compile_program("""
              REAL x(6)
C$ DECOMPOSITION r(6)
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x WITH r
              FORALL i = 1, 6
                REDUCE(SUM, x(k), 1)
              END DO
""")

    def test_append_with_extra_statement_rejected(self):
        with pytest.raises(AnalysisError):
            compile_program("""
C$ DECOMPOSITION c(4)
C$ ALIGN icell(*,:), vel(*,:), size(:), other(:) WITH c
              FORALL j = 1, 4
                FORALL i = 1, size(j)
                  REDUCE(APPEND, vel(i, icell(i,j)), vel(i,j))
                  REDUCE(SUM, other(icell(i,j)), 1)
                END FORALL
              END FORALL
""")


class TestTtableStorageModes:
    @pytest.mark.parametrize("storage", ["replicated", "distributed", "paged"])
    def test_compiled_loop_any_storage(self, storage, rng):
        n, e = 16, 40
        src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION r({n})
C$ DISTRIBUTE r(BLOCK)
C$ ALIGN x, y WITH r
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), y(ib(i)))
          END DO
"""
        prog = compile_program(src)
        b = dict(x=np.zeros(n), y=rng.standard_normal(n),
                 ia=rng.integers(1, n + 1, e), ib=rng.integers(1, n + 1, e))
        inst = ProgramInstance(prog, Machine(4),
                               {k: v.copy() for k, v in b.items()},
                               ttable_storage=storage)
        inst.execute()
        expected = np.zeros(n)
        np.add.at(expected, b["ia"] - 1, b["y"][b["ib"] - 1])
        assert np.allclose(inst.get_array("x"), expected)
