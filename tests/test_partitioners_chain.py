"""Unit tests: the 1-D chain partitioner."""

import numpy as np
import pytest

from repro.partitioners import ChainPartitioner, chain_boundaries
from repro.sim import Machine


class TestChainBoundaries:
    def test_uniform_weights_even_split(self):
        bounds = chain_boundaries(np.ones(12), 4)
        assert bounds.tolist() == [0, 3, 6, 9, 12]

    def test_contiguity_and_coverage(self, rng):
        w = rng.random(100)
        bounds = chain_boundaries(w, 7)
        assert bounds[0] == 0 and bounds[-1] == 100
        assert np.all(np.diff(bounds) >= 0)

    def test_bottleneck_optimality_small(self):
        """Compare against brute force on a small instance."""
        w = np.array([5.0, 1.0, 1.0, 1.0, 5.0, 1.0])
        bounds = chain_boundaries(w, 3)
        got = max(w[bounds[k]:bounds[k + 1]].sum() for k in range(3))
        # brute force all 2-split-point placements
        best = np.inf
        n = len(w)
        for i in range(1, n):
            for j in range(i, n):
                parts = [w[:i].sum(), w[i:j].sum(), w[j:].sum()]
                best = min(best, max(parts))
        assert got == pytest.approx(best)

    def test_single_part(self):
        assert chain_boundaries(np.ones(5), 1).tolist() == [0, 5]

    def test_more_parts_than_elements(self):
        bounds = chain_boundaries(np.ones(3), 5)
        assert bounds[-1] == 3
        sizes = np.diff(bounds)
        assert sizes.sum() == 3

    def test_empty_weights(self):
        bounds = chain_boundaries(np.zeros(0), 3)
        assert bounds.tolist() == [0, 0, 0, 0]

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            chain_boundaries(np.array([-1.0]), 2)

    def test_heavy_single_element(self):
        w = np.array([1.0, 100.0, 1.0, 1.0])
        bounds = chain_boundaries(w, 3)
        got = max(w[bounds[k]:bounds[k + 1]].sum() for k in range(3))
        assert got == pytest.approx(100.0)


class TestChainPartitioner:
    def test_contiguous_along_axis(self, rng):
        coords = rng.random((200, 3))
        res = ChainPartitioner(axis=0).partition(coords, 4)
        # sort by x: labels must be non-decreasing
        order = np.argsort(coords[:, 0], kind="stable")
        assert np.all(np.diff(res.labels[order]) >= 0)

    def test_default_axis_is_longest(self, rng):
        coords = rng.random((100, 3))
        coords[:, 1] *= 50  # y is longest
        res = ChainPartitioner().partition(coords, 4)
        order = np.argsort(coords[:, 1], kind="stable")
        assert np.all(np.diff(res.labels[order]) >= 0)

    def test_weighted_balance(self, rng):
        coords = rng.random((500, 2))
        w = rng.random(500) + 0.1
        res = ChainPartitioner(axis=0).partition(coords, 8, w)
        assert res.imbalance(w) < 1.35

    def test_bad_axis_rejected(self, rng):
        with pytest.raises(ValueError):
            ChainPartitioner(axis=3).partition(rng.random((10, 2)), 2)

    def test_cheaper_than_rcb(self):
        """The paper's Table 5 rationale: chain cost is nearly flat in P
        and far below recursive bisection."""
        from repro.partitioners import RCB

        m = Machine(128)
        chain_cost = sum(ChainPartitioner().parallel_cost(100000, 128, m))
        rcb_cost = sum(RCB().parallel_cost(100000, 128, m))
        assert chain_cost < rcb_cost / 5

    def test_single_part(self, rng):
        res = ChainPartitioner().partition(rng.random((10, 2)), 1)
        assert np.all(res.labels == 0)
