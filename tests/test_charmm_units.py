"""Unit tests: mini-CHARMM building blocks (system, neighbors, forces,
integrator)."""

import numpy as np
import pytest

from repro.apps.charmm import (
    ForceField,
    MolecularSystem,
    brute_force_nonbonded_list,
    build_nonbonded_list,
    build_small_system,
    build_solvated_system,
    list_stats,
    take_csr_rows,
)
from repro.apps.charmm.forces import (
    compute_bonded_forces,
    compute_nonbonded_forces,
    nonbond_pair_forces,
)
from repro.apps.charmm.integrator import verlet_drift, verlet_half_kick


class TestForceField:
    def test_defaults_valid(self):
        ForceField()

    def test_positive_params_enforced(self):
        with pytest.raises(ValueError):
            ForceField(cutoff=-1)
        with pytest.raises(ValueError):
            ForceField(bond_k=0)
        with pytest.raises(ValueError):
            ForceField(softening=-0.1)


class TestMolecularSystem:
    def test_builder_produces_valid_system(self):
        s = build_small_system(150, seed=1)
        assert s.n_atoms == 150 or abs(s.n_atoms - 150) <= 2
        assert s.n_bonds > 0
        assert s.positions.min() >= 0 and s.positions.max() <= s.box

    def test_paper_sized_system(self):
        s = build_solvated_system(n_protein=100, n_waters=50, seed=0)
        assert s.n_atoms == 100 + 150
        # waters contribute 2 bonds each
        assert s.n_bonds >= 100 - 1

    def test_default_builder_matches_paper_count(self):
        from repro.apps.charmm import PAPER_ATOM_COUNT

        assert PAPER_ATOM_COUNT == 14026  # Figure 10's DECOMPOSITION size

    def test_water_net_charge_zero(self):
        s = build_solvated_system(n_protein=10, n_waters=20, seed=0)
        water_charges = s.charges[10:]
        assert water_charges.reshape(-1, 3).sum(axis=1) == pytest.approx(0.0)

    def test_validation_bond_out_of_range(self):
        with pytest.raises(IndexError):
            MolecularSystem(
                positions=np.zeros((3, 3)), velocities=np.zeros((3, 3)),
                masses=np.ones(3), charges=np.zeros(3),
                bonds=np.array([[0, 5]]), box=10.0,
            )

    def test_validation_self_bond(self):
        with pytest.raises(ValueError):
            MolecularSystem(
                positions=np.zeros((3, 3)), velocities=np.zeros((3, 3)),
                masses=np.ones(3), charges=np.zeros(3),
                bonds=np.array([[1, 1]]), box=10.0,
            )

    def test_validation_cutoff_vs_box(self):
        with pytest.raises(ValueError):
            MolecularSystem(
                positions=np.zeros((2, 3)), velocities=np.zeros((2, 3)),
                masses=np.ones(2), charges=np.zeros(2),
                bonds=np.zeros((0, 2), dtype=np.int64), box=2.0,
                forcefield=ForceField(cutoff=1.5),
            )

    def test_minimum_image(self):
        s = build_small_system(60, seed=0)
        d = np.array([[s.box * 0.9, 0.0, 0.0]])
        mi = s.minimum_image(d)
        assert abs(mi[0, 0]) <= s.box / 2 + 1e-9

    def test_kinetic_energy_nonnegative(self):
        s = build_small_system(60, seed=0)
        assert s.kinetic_energy() >= 0

    def test_copy_independent(self):
        s = build_small_system(60, seed=0)
        c = s.copy()
        c.positions += 1
        assert not np.array_equal(s.positions, c.positions)


class TestNeighborList:
    def test_matches_brute_force(self, rng):
        pos = rng.random((120, 3)) * 8.0
        inblo1, jnb1 = build_nonbonded_list(pos, 1.5, 8.0)
        inblo2, jnb2 = brute_force_nonbonded_list(pos, 1.5, 8.0)
        assert np.array_equal(inblo1, inblo2)
        assert np.array_equal(jnb1, jnb2)

    def test_matches_brute_force_small_box(self, rng):
        """Few cells per dimension: the duplicate-visit path must dedupe."""
        pos = rng.random((60, 3)) * 4.0
        inblo1, jnb1 = build_nonbonded_list(pos, 1.9, 4.0)
        inblo2, jnb2 = brute_force_nonbonded_list(pos, 1.9, 4.0)
        assert np.array_equal(inblo1, inblo2)
        assert np.array_equal(jnb1, jnb2)

    def test_half_list_property(self, rng):
        pos = rng.random((80, 3)) * 6.0
        inblo, jnb = build_nonbonded_list(pos, 1.2, 6.0)
        i_exp = np.repeat(np.arange(80), np.diff(inblo))
        assert np.all(i_exp < jnb)

    def test_empty_system(self):
        inblo, jnb = build_nonbonded_list(np.zeros((0, 3)), 1.0, 5.0)
        assert inblo.tolist() == [0]
        assert jnb.size == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_nonbonded_list(np.zeros((3, 2)), 1.0, 5.0)
        with pytest.raises(ValueError):
            build_nonbonded_list(np.zeros((3, 3)), -1.0, 5.0)

    def test_list_stats(self, rng):
        pos = rng.random((50, 3)) * 5.0
        inblo, jnb = build_nonbonded_list(pos, 1.5, 5.0)
        st = list_stats(inblo)
        assert st["n_pairs"] == jnb.size
        assert st["max_partners"] >= st["mean_partners"]

    def test_take_csr_rows(self):
        inblo = np.array([0, 2, 2, 5])
        jnb = np.array([10, 11, 20, 21, 22])
        i_exp, j_vals = take_csr_rows(inblo, jnb, np.array([0, 2]))
        assert i_exp.tolist() == [0, 0, 2, 2, 2]
        assert j_vals.tolist() == [10, 11, 20, 21, 22]

    def test_take_csr_rows_empty(self):
        inblo = np.array([0, 0])
        i_exp, j_vals = take_csr_rows(inblo, np.zeros(0, np.int64),
                                      np.array([0]))
        assert i_exp.size == 0 and j_vals.size == 0


class TestForces:
    def test_newtons_third_law_bonded(self, rng):
        s = build_small_system(90, seed=2)
        f, e = compute_bonded_forces(s.positions, s.bonds, s.forcefield, s.box)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)

    def test_newtons_third_law_nonbonded(self, rng):
        s = build_small_system(90, seed=2)
        inblo, jnb = build_nonbonded_list(s.positions, s.forcefield.cutoff,
                                          s.box)
        f, e = compute_nonbonded_forces(
            s.positions, s.charges, inblo, jnb, s.forcefield, s.box
        )
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-8)

    def test_bond_force_restores_equilibrium(self):
        ff = ForceField(bond_r0=1.0, bond_k=10.0)
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])  # stretched
        bonds = np.array([[0, 1]])
        f, e = compute_bonded_forces(pos, bonds, ff, 100.0)
        assert f[0, 0] > 0 and f[1, 0] < 0  # pulled together
        assert e > 0

    def test_bond_at_equilibrium_zero_force(self):
        ff = ForceField(bond_r0=1.0)
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        f, e = compute_bonded_forces(pos, np.array([[0, 1]]), ff, 100.0)
        assert np.allclose(f, 0.0, atol=1e-12)
        assert e == pytest.approx(0.0)

    def test_cutoff_zeroes_far_pairs(self):
        ff = ForceField(cutoff=2.0)
        f, e = nonbond_pair_forces(
            np.array([[0.0, 0, 0]]), np.array([[3.0, 0, 0]]),
            np.array([1.0]), np.array([1.0]), ff, 100.0,
        )
        assert np.allclose(f, 0.0) and e[0] == 0.0

    def test_like_charges_repel(self):
        ff = ForceField(cutoff=5.0, lj_epsilon=1e-9)
        f, _ = nonbond_pair_forces(
            np.array([[0.0, 0, 0]]), np.array([[2.0, 0, 0]]),
            np.array([1.0]), np.array([1.0]), ff, 100.0,
        )
        assert f[0, 0] < 0  # force on i points away from j

    def test_energy_finite_on_overlap(self):
        ff = ForceField()
        f, e = nonbond_pair_forces(
            np.zeros((1, 3)), np.zeros((1, 3)),
            np.array([0.0]), np.array([0.0]), ff, 100.0,
        )
        assert np.all(np.isfinite(f)) and np.all(np.isfinite(e))


class TestIntegrator:
    def test_half_kick(self):
        v = np.zeros((2, 3))
        f = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        masses = np.array([1.0, 2.0])
        verlet_half_kick(v, f, masses, dt=0.2)
        assert v[0, 0] == pytest.approx(0.1)
        assert v[1, 1] == pytest.approx(0.1)

    def test_drift_wraps(self):
        x = np.array([[9.5, 0, 0]])
        v = np.array([[10.0, 0, 0]])
        verlet_drift(x, v, dt=0.1, box=10.0)
        assert 0 <= x[0, 0] < 10.0

    def test_free_particle_energy_conserved(self):
        from repro.apps.charmm.integrator import verlet_step

        x = np.array([[5.0, 5.0, 5.0]])
        v = np.array([[1.0, 0.5, -0.2]])
        masses = np.ones(1)
        f = np.zeros((1, 3))
        for _ in range(10):
            f = verlet_step(x, v, masses, f,
                            lambda pos: np.zeros_like(pos), 0.05, 10.0)
        assert np.allclose(v, [[1.0, 0.5, -0.2]])
