"""Unit tests: counter-based PRNG and table formatting."""

import numpy as np
import pytest

from repro.util import (
    format_table,
    hash_permutation_key,
    hash_uniform,
    hash_unit_vector,
    splitmix64,
)


class TestSplitMix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)
        a = splitmix64(np.arange(10))
        b = splitmix64(np.arange(10))
        assert np.array_equal(a, b)

    def test_scalar_vs_array_consistent(self):
        arr = splitmix64(np.array([7]))
        assert splitmix64(7) == arr[0]

    def test_different_inputs_differ(self):
        vals = splitmix64(np.arange(1000))
        assert np.unique(vals).size == 1000


class TestHashUniform:
    def test_range(self):
        u = hash_uniform(1, np.arange(10000))
        assert np.all(u >= 0) and np.all(u < 1)

    def test_roughly_uniform(self):
        u = hash_uniform(0, np.arange(50000))
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.min() > 4000 and hist.max() < 6000

    def test_key_order_matters(self):
        assert hash_uniform(1, 2) != hash_uniform(2, 1)

    def test_broadcasting(self):
        u = hash_uniform(5, np.arange(4), 7)
        assert u.shape == (4,)

    def test_no_keys_rejected(self):
        with pytest.raises(ValueError):
            hash_uniform()

    def test_mean_near_half(self):
        u = hash_uniform(3, np.arange(100000))
        assert abs(u.mean() - 0.5) < 0.01


class TestHashUnitVector:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_unit_length(self, dim):
        v = hash_unit_vector(dim, 0, np.arange(1000))
        norms = np.linalg.norm(v, axis=-1)
        assert np.allclose(norms, 1.0)

    def test_isotropic_mean_near_zero(self):
        v = hash_unit_vector(3, 1, np.arange(50000))
        assert np.all(np.abs(v.mean(axis=0)) < 0.02)

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            hash_unit_vector(4, 0, 1)

    def test_permutation_key_shape(self):
        k = hash_permutation_key(0, np.arange(5))
        assert k.shape == (5,) and k.dtype == np.uint64


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [30, 4.25]],
                           title="T", float_fmt="{:.2f}")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "4.25" in out
        # all rows same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_strings_pass_through(self):
        out = format_table(["name"], [["chain"]])
        assert "chain" in out
