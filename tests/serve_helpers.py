"""Shared job builders and audit helpers for the serve test suite.

Not a test module (no ``test_`` prefix); imported by
``test_serve_server.py`` / ``test_serve_drain.py`` /
``test_serve_soak.py`` the same way the suites import ``conftest``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve import CallableJob, ProgramJob

#: thread-name prefix of the server's executor pool (see server.py)
SERVE_THREAD_PREFIX = "repro-serve"


def figure8_job(*, seed=0, n=30, e=120, tenant="default", name="fig8",
                **kw) -> ProgramJob:
    """The paper's Figure-8 edge reduction as a submittable program job.

    Bindings are generated from ``seed`` at spec-construction time, so
    two specs built with the same seed carry bitwise-identical initial
    state (and ``ProgramJob.run`` copies them, so one spec can be run
    served and solo).
    """
    src = f"""
          REAL x({n}), y({n})
          INTEGER ia({e}), ib({e})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
          FORALL i = 1, {e}
            REDUCE(SUM, x(ia(i)), y(ib(i)))
          END DO
"""
    rng = np.random.default_rng(seed)
    bindings = dict(
        x=rng.standard_normal(n),
        y=rng.standard_normal(n),
        ia=rng.integers(1, n + 1, e),
        ib=rng.integers(1, n + 1, e),
    )
    return ProgramJob(source=src, bindings=bindings, fetch=("x",),
                      seed=seed, tenant=tenant, name=name, **kw)


def make_halo_fn(n=48, crash=False):
    """A runtime-API workload: hash → schedule → gather, optional crash.

    Deterministic from the context seed, so the served result is
    bitwise-comparable against ``run_job_inline``.  With ``crash=True``
    the tenant does real backend work first and then raises mid-run —
    the shape the isolation tests need.
    """

    def fn(ctx, control):
        from repro.core.api import ChaosRuntime

        rt = ChaosRuntime(ctx)  # shares ctx; its owner closes it
        tt = rt.block_table(n)
        rng = ctx.rng()
        idx = [rng.integers(0, n, size=n // 2) for _ in ctx.ranks()]
        rt.hash_indirection(tt, idx, "halo")
        sched = rt.build_schedule(tt, "halo")
        x = rt.distribute(np.arange(n, dtype=np.float64), tt)
        ghosts = rt.gather(sched, x)
        control.check()
        if crash:
            raise RuntimeError("tenant crashed mid-run")
        flat = [g for g in ghosts if g is not None and len(g)]
        return np.concatenate(flat) if flat else np.zeros(0)

    return fn


def halo_job(*, seed=0, tenant="default", name="halo", crash=False,
             **kw) -> CallableJob:
    return CallableJob(fn=make_halo_fn(crash=crash), seed=seed,
                       tenant=tenant, name=name, **kw)


def sleeper_job(seconds, *, tenant="default", name="sleeper",
                cooperative=True, **kw) -> CallableJob:
    """A job that sleeps; cooperative sleepers wake on control.stop()."""

    def fn(ctx, control):
        if cooperative:
            control.sleep(seconds)
        else:
            import time

            time.sleep(seconds)
        return "slept"

    return CallableJob(fn=fn, tenant=tenant, name=name, **kw)


def serve_threads_alive() -> list[str]:
    """Names of still-alive server executor threads (post-close: [])."""
    return [
        t.name for t in threading.enumerate()
        if t.name.startswith(SERVE_THREAD_PREFIX) and t.is_alive()
    ]


def assert_verdict_results_equal(served, solo) -> None:
    """Bitwise equality between a served result and a solo-run result."""
    assert type(served) is type(solo)
    if isinstance(served, dict):
        assert served.keys() == solo.keys()
        for k in served:
            np.testing.assert_array_equal(served[k], solo[k])
    else:
        np.testing.assert_array_equal(served, solo)
