"""Backend equivalence: SerialBackend vs every other registered backend.

The serial pair loop defines the semantics; the vectorized compiled-plan
path — and the threaded/multiprocess backends fanning its rank loops
over worker pools — must be observationally identical on randomized
schedules (the sweep is ``conftest.ALL_BACKENDS``):

* bitwise-identical ghosts / local results for gather, scatter,
  scatter_op (add and maximum), scatter_append(_multi), remap_array,
  on 1-D and 2-D data;
* identical :class:`Machine` traffic statistics (message counts, bytes,
  tags — compared exactly);
* identical per-rank virtual clock categories (compared to float
  round-off, as the vectorized path sums message times in bulk).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    IrregularDistribution,
    available_backends,
    build_lightweight_schedule,
    default_backend,
    gather,
    get_backend,
    remap,
    remap_array,
    resolve_backend,
    scatter,
    scatter_append,
    scatter_append_multi,
    scatter_op,
    set_default_backend,
    split_by_block,
    use_backend,
)
from repro.core.backends import Backend, SerialBackend, VectorizedBackend
from repro.sim import Machine

from conftest import ALL_BACKENDS as BACKENDS


def _clock_snapshots(machine):
    return [c.snapshot() for c in machine.clocks]


def _assert_clocks_match(a, b):
    for ca, cb in zip(a, b):
        for key in set(ca) | set(cb):
            assert ca.get(key, 0.0) == pytest.approx(
                cb.get(key, 0.0), rel=1e-9, abs=1e-15
            ), key


def _schedule_env(seed, n_ranks, n, n_ref, trailing):
    rng = np.random.default_rng(seed)
    m = Machine(n_ranks, record_messages=True)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, n_ranks, n))
    shape = (n,) + trailing
    x = rt.distribute(rng.standard_normal(shape), tt)
    idx_g = rng.integers(0, n, n_ref)
    rt.hash_indirection(tt, split_by_block(idx_g, m), "s")
    sched = rt.build_schedule(tt, "s")
    m.reset_clocks()
    m.reset_traffic()
    return m, x, sched, rng


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    n=st.integers(1, 80),
    n_ref=st.integers(0, 200),
    trailing=st.sampled_from([(), (3,)]),
)
def test_gather_scatter_equivalence(seed, n_ranks, n, n_ref, trailing):
    results = {}
    for backend in BACKENDS:
        m, x, sched, rng = _schedule_env(seed, n_ranks, n, n_ref, trailing)
        ctx = ExecutionContext.resolve(m, backend)
        ghosts = gather(ctx, sched, x.local)
        contrib = [1.5 * g + 0.25 for g in ghosts]
        scatter_op(ctx, sched, x.local, contrib, np.add)
        scatter_op(ctx, sched, x.local, [2.0 * g for g in ghosts],
                   np.maximum)
        scatter(ctx, sched, x.local, [0.5 * g for g in ghosts])
        results[backend] = (
            ghosts,
            [a.copy() for a in x.local],
            m.traffic.snapshot(),
            [msg for msg in m.traffic.messages],
            _clock_snapshots(m),
        )
    a = results["serial"]
    for other in BACKENDS[1:]:
        b = results[other]
        for p in range(len(a[0])):
            assert np.array_equal(a[0][p], b[0][p])  # ghosts bitwise
            assert np.array_equal(a[1][p], b[1][p])  # locals bitwise
        assert a[2] == b[2]  # aggregate traffic exact
        assert a[3] == b[3]  # individual messages, in order
        _assert_clocks_match(a[4], b[4])


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    max_per_rank=st.integers(0, 40),
    trailing=st.sampled_from([(), (2,)]),
)
def test_scatter_append_equivalence(seed, n_ranks, max_per_rank, trailing):
    rng0 = np.random.default_rng(seed)
    n_per = [int(v) for v in rng0.integers(0, max_per_rank + 1, n_ranks)]
    results = {}
    for backend in BACKENDS:
        rng = np.random.default_rng(seed + 1)
        m = Machine(n_ranks, record_messages=True)
        ctx = ExecutionContext.resolve(m, backend)
        dest = [rng.integers(0, n_ranks, c) for c in n_per]
        sched = build_lightweight_schedule(ctx, dest)
        m.reset_clocks()
        m.reset_traffic()
        vals = [rng.standard_normal((c,) + trailing) for c in n_per]
        ids = [np.arange(c, dtype=np.int64) + 1000 * p
               for p, c in enumerate(n_per)]
        out = scatter_append(ctx, sched, vals)
        out_multi = scatter_append_multi(ctx, sched, [ids, vals])
        results[backend] = (out, out_multi, m.traffic.snapshot(),
                            _clock_snapshots(m))
    a = results["serial"]
    for other in BACKENDS[1:]:
        b = results[other]
        for p in range(n_ranks):
            assert np.array_equal(a[0][p], b[0][p])
            assert a[0][p].dtype == b[0][p].dtype
            for k in range(2):
                assert np.array_equal(a[1][k][p], b[1][k][p])
                assert a[1][k][p].dtype == b[1][k][p].dtype
        assert a[2] == b[2]
        _assert_clocks_match(a[3], b[3])


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_ranks=st.integers(1, 6),
    n=st.integers(0, 60),
    trailing=st.sampled_from([(), (3,)]),
)
def test_remap_equivalence(seed, n_ranks, n, trailing):
    results = {}
    for backend in BACKENDS:
        rng = np.random.default_rng(seed)
        m = Machine(n_ranks, record_messages=True)
        old = IrregularDistribution(rng.integers(0, n_ranks, n), n_ranks)
        new = IrregularDistribution(rng.integers(0, n_ranks, n), n_ranks)
        ctx = ExecutionContext.resolve(m, backend)
        plan = remap(ctx, old, new)
        data = [rng.standard_normal((old.local_size(p),) + trailing)
                for p in range(n_ranks)]
        m.reset_clocks()
        m.reset_traffic()
        out = remap_array(ctx, plan, data)
        results[backend] = (out, m.traffic.snapshot(), _clock_snapshots(m))
    a = results["serial"]
    for other in BACKENDS[1:]:
        b = results[other]
        for p in range(n_ranks):
            assert np.array_equal(a[0][p], b[0][p])
            assert a[0][p].dtype == b[0][p].dtype
        assert a[1] == b[1]
        _assert_clocks_match(a[2], b[2])


def test_noncontiguous_inputs_fall_back_and_match(rng):
    """Strided views can't use the flat path; results must still match."""
    m = Machine(4, record_messages=True)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(rng.integers(0, 4, 30))
    x = rt.distribute(rng.standard_normal((30, 6)), tt)
    strided = [a[:, ::2] for a in x.local]
    rt.hash_indirection(tt, split_by_block(rng.integers(0, 30, 60), m), "s")
    sched = rt.build_schedule(tt, "s")
    g_serial = gather(ExecutionContext.resolve(m, "serial"), sched, strided)
    g_vec = gather(ExecutionContext.resolve(m, "vectorized"), sched, strided)
    for p in range(4):
        assert np.array_equal(g_serial[p], g_vec[p])


def test_integer_data_equivalence(rng):
    m_s, m_v = Machine(4), Machine(4)
    out = {}
    for backend, m in (("serial", m_s), ("vectorized", m_v)):
        rng2 = np.random.default_rng(3)
        rt = ChaosRuntime(ExecutionContext.resolve(m, backend))
        tt = rt.irregular_table(rng2.integers(0, 4, 25))
        x = rt.distribute(rng2.integers(0, 1000, 25).astype(np.int32), tt)
        rt.hash_indirection(tt, split_by_block(rng2.integers(0, 25, 40), m),
                            "s")
        sched = rt.build_schedule(tt, "s")
        out[backend] = rt.gather(sched, x)
    for p in range(4):
        assert np.array_equal(out["serial"][p], out["vectorized"][p])
        assert out["serial"][p].dtype == out["vectorized"][p].dtype


# ---------------------------------------------------------------------
# registry behaviour
# ---------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert "serial" in available_backends()
        assert "vectorized" in available_backends()
        assert "threaded" in available_backends()

    def test_get_backend_instances(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)
        assert get_backend("serial") is get_backend("serial")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("quantum")
        with pytest.raises(KeyError):
            set_default_backend("quantum")

    def test_resolve_variants(self):
        be = get_backend("serial")
        assert resolve_backend(be) is be
        assert resolve_backend("serial") is be
        assert isinstance(resolve_backend(None), Backend)
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_vectorized_is_default(self, monkeypatch):
        # absent an explicit choice (env var / set_default_backend), the
        # compiled-plan backend is the default
        import repro.core.backends.base as base
        monkeypatch.delenv(base.BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(base, "_default_name", None)
        assert default_backend().name == "vectorized"

    def test_use_backend_restores(self):
        before = default_backend().name
        with use_backend("serial") as be:
            assert be.name == "serial"
            assert default_backend().name == "serial"
        assert default_backend().name == before


class TestExchangeCompiled:
    def test_counts_shape_validated(self):
        m = Machine(3)
        with pytest.raises(ValueError):
            m.exchange_compiled(np.zeros((2, 2)), 8)

    def test_negative_counts_rejected(self):
        m = Machine(2)
        with pytest.raises(ValueError):
            m.exchange_compiled(np.array([[0, -1], [0, 0]]), 8)

    def test_matches_alltoallv_charges(self):
        """Flat accounting equals nested alltoallv for the same payloads."""
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 9, (4, 4))
        m1 = Machine(4, record_messages=True)
        payload = [
            [rng.standard_normal(int(counts[p, q])) if counts[p, q] else None
             for q in range(4)]
            for p in range(4)
        ]
        m1.alltoallv(payload, tag="t")
        m2 = Machine(4, record_messages=True)
        m2.exchange_compiled(counts, 8, tag="t")
        assert m1.traffic.snapshot() == m2.traffic.snapshot()
        assert m1.traffic.messages == m2.traffic.messages
        for c1, c2 in zip(m1.clocks, m2.clocks):
            assert c1.time == pytest.approx(c2.time, rel=1e-12)
