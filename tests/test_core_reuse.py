"""Unit tests: modification records and the schedule cache (§5.3.1)."""

from repro.core import ModificationRecord, ScheduleCache


class TestModificationRecord:
    def test_touch_bumps_version(self):
        r = ModificationRecord()
        assert r.version("jnb") == 0
        assert r.touch("jnb") == 1
        assert r.touch("jnb") == 2
        assert r.version("jnb") == 2

    def test_versions_of(self):
        r = ModificationRecord()
        r.touch("a")
        assert r.versions_of(("a", "b")) == {"a": 1, "b": 0}

    def test_names(self):
        r = ModificationRecord()
        r.touch("z")
        r.touch("a")
        assert r.names() == ["a", "z"]


class TestScheduleCache:
    def test_builds_once_then_hits(self):
        cache = ScheduleCache()
        calls = []

        def builder():
            calls.append(1)
            return "sched"

        v1, rebuilt1 = cache.get_or_build("L2", ("jnb",), builder)
        v2, rebuilt2 = cache.get_or_build("L2", ("jnb",), builder)
        assert v1 == v2 == "sched"
        assert rebuilt1 and not rebuilt2
        assert len(calls) == 1
        assert cache.stats("L2") == (1, 1)

    def test_rebuild_on_dependency_touch(self):
        cache = ScheduleCache()
        counter = {"n": 0}

        def builder():
            counter["n"] += 1
            return counter["n"]

        cache.get_or_build("L", ("jnb", "ia"), builder)
        cache.record.touch("ia")
        v, rebuilt = cache.get_or_build("L", ("jnb", "ia"), builder)
        assert rebuilt and v == 2

    def test_unrelated_touch_does_not_rebuild(self):
        cache = ScheduleCache()
        cache.get_or_build("L", ("jnb",), lambda: "x")
        cache.record.touch("other")
        _, rebuilt = cache.get_or_build("L", ("jnb",), lambda: "y")
        assert not rebuilt

    def test_independent_loops(self):
        cache = ScheduleCache()
        cache.get_or_build("L1", ("a",), lambda: 1)
        cache.get_or_build("L2", ("b",), lambda: 2)
        cache.record.touch("a")
        _, r1 = cache.get_or_build("L1", ("a",), lambda: 10)
        _, r2 = cache.get_or_build("L2", ("b",), lambda: 20)
        assert r1 and not r2

    def test_invalidate(self):
        cache = ScheduleCache()
        cache.get_or_build("L", (), lambda: 1)
        assert "L" in cache
        assert cache.invalidate("L")
        assert "L" not in cache
        assert not cache.invalidate("L")

    def test_invalidate_all(self):
        cache = ScheduleCache()
        cache.get_or_build("A", (), lambda: 1)
        cache.get_or_build("B", (), lambda: 2)
        cache.invalidate_all()
        assert len(cache) == 0

    def test_shared_record(self):
        r = ModificationRecord()
        cache = ScheduleCache(r)
        cache.get_or_build("L", ("x",), lambda: 1)
        r.touch("x")
        _, rebuilt = cache.get_or_build("L", ("x",), lambda: 2)
        assert rebuilt
