"""Unit tests: modification records and the schedule cache (§5.3.1)."""

import numpy as np

from repro.core import (
    CacheStats,
    DeltaFallback,
    ModificationRecord,
    ScheduleCache,
    value_nbytes,
)


class TestModificationRecord:
    def test_touch_bumps_version(self):
        r = ModificationRecord()
        assert r.version("jnb") == 0
        assert r.touch("jnb") == 1
        assert r.touch("jnb") == 2
        assert r.version("jnb") == 2

    def test_versions_of(self):
        r = ModificationRecord()
        r.touch("a")
        assert r.versions_of(("a", "b")) == {"a": 1, "b": 0}

    def test_names(self):
        r = ModificationRecord()
        r.touch("z")
        r.touch("a")
        assert r.names() == ["a", "z"]


class TestScheduleCache:
    def test_builds_once_then_hits(self):
        cache = ScheduleCache()
        calls = []

        def builder():
            calls.append(1)
            return "sched"

        v1, rebuilt1 = cache.get_or_build("L2", ("jnb",), builder)
        v2, rebuilt2 = cache.get_or_build("L2", ("jnb",), builder)
        assert v1 == v2 == "sched"
        assert rebuilt1 and not rebuilt2
        assert len(calls) == 1
        assert cache.stats("L2") == (1, 1)

    def test_rebuild_on_dependency_touch(self):
        cache = ScheduleCache()
        counter = {"n": 0}

        def builder():
            counter["n"] += 1
            return counter["n"]

        cache.get_or_build("L", ("jnb", "ia"), builder)
        cache.record.touch("ia")
        v, rebuilt = cache.get_or_build("L", ("jnb", "ia"), builder)
        assert rebuilt and v == 2

    def test_unrelated_touch_does_not_rebuild(self):
        cache = ScheduleCache()
        cache.get_or_build("L", ("jnb",), lambda: "x")
        cache.record.touch("other")
        _, rebuilt = cache.get_or_build("L", ("jnb",), lambda: "y")
        assert not rebuilt

    def test_independent_loops(self):
        cache = ScheduleCache()
        cache.get_or_build("L1", ("a",), lambda: 1)
        cache.get_or_build("L2", ("b",), lambda: 2)
        cache.record.touch("a")
        _, r1 = cache.get_or_build("L1", ("a",), lambda: 10)
        _, r2 = cache.get_or_build("L2", ("b",), lambda: 20)
        assert r1 and not r2

    def test_invalidate(self):
        cache = ScheduleCache()
        cache.get_or_build("L", (), lambda: 1)
        assert "L" in cache
        assert cache.invalidate("L")
        assert "L" not in cache
        assert not cache.invalidate("L")

    def test_invalidate_all(self):
        cache = ScheduleCache()
        cache.get_or_build("A", (), lambda: 1)
        cache.get_or_build("B", (), lambda: 2)
        cache.invalidate_all()
        assert len(cache) == 0

    def test_shared_record(self):
        r = ModificationRecord()
        cache = ScheduleCache(r)
        cache.get_or_build("L", ("x",), lambda: 1)
        r.touch("x")
        _, rebuilt = cache.get_or_build("L", ("x",), lambda: 2)
        assert rebuilt

    def test_invalidate_preserves_counters(self):
        cache = ScheduleCache()
        cache.get_or_build("L", (), lambda: 1)
        cache.get_or_build("L", (), lambda: 1)  # hit
        st = cache.stats("L")
        assert (st.hits, st.builds) == (1, 1)
        assert cache.invalidate("L")
        st = cache.stats("L")
        # eviction drops the value (and its bytes) but not the history
        assert (st.hits, st.builds, st.evictions) == (1, 1, 1)
        assert st.resident_bytes == 0
        cache.get_or_build("L", (), lambda: 2)
        assert cache.stats("L").builds == 2

    def test_peek_does_not_count_hit(self):
        cache = ScheduleCache()
        cache.get_or_build("L", (), lambda: "v")
        assert cache.peek("L") == "v"
        assert cache.peek("missing") is None
        assert cache.stats("L").hits == 0


class TestCacheStats:
    def test_tuple_compatibility(self):
        st = CacheStats(hits=3, builds=2, delta_rebuilds=1)
        hits, builds = st
        assert (hits, builds) == (3, 2)
        assert st == (3, 2)
        assert tuple(st) == (3, 2)

    def test_add_and_as_dict(self):
        a = CacheStats(hits=1, builds=2, delta_rebuilds=3, evictions=4,
                       resident_bytes=5)
        b = CacheStats(hits=10, builds=20, delta_rebuilds=30,
                       evictions=40, resident_bytes=50)
        assert (a + b).as_dict() == {
            "hits": 11, "builds": 22, "delta_rebuilds": 33,
            "evictions": 44, "resident_bytes": 55,
        }

    def test_resident_bytes_tracks_value(self):
        cache = ScheduleCache()
        arr = np.zeros(100, dtype=np.int64)
        cache.get_or_build("L", (), lambda: [arr])
        assert cache.stats("L").resident_bytes == arr.nbytes
        assert cache.total_stats().resident_bytes == arr.nbytes

    def test_total_stats_prefix(self):
        cache = ScheduleCache()
        cache.get_or_build("a:L1", (), lambda: 1)
        cache.get_or_build("a:L2", (), lambda: 2)
        cache.get_or_build("b:L1", (), lambda: 3)
        assert cache.total_stats(prefix="a:").builds == 2
        assert cache.total_stats().builds == 3


class TestValueNbytes:
    def test_ndarray_and_containers(self):
        a = np.zeros(10, dtype=np.float64)
        assert value_nbytes(a) == 80
        assert value_nbytes([a, a]) == 160
        assert value_nbytes({"x": a, "y": (a,)}) == 160
        assert value_nbytes(None) == 0
        assert value_nbytes(42) == 0


class TestDeltaChains:
    def test_chain_replay_in_order(self):
        r = ModificationRecord()
        r.touch("ia", delta="d1")
        r.touch("ia", delta="d2")
        assert r.delta_chain("ia", 0) == ["d1", "d2"]
        assert r.delta_chain("ia", 1) == ["d2"]
        assert r.delta_chain("ia", 2) == []

    def test_payloadless_touch_breaks_chain(self):
        r = ModificationRecord()
        r.touch("ia", delta="d1")
        r.touch("ia")  # "anything may have changed"
        assert r.delta_chain("ia", 0) is None
        r.touch("ia", delta="d3")
        assert r.delta_chain("ia", 0) is None  # hole at version 2
        assert r.delta_chain("ia", 2) == ["d3"]

    def test_history_ages_out(self):
        r = ModificationRecord()
        for i in range(ModificationRecord.MAX_DELTA_HISTORY + 4):
            r.touch("ia", delta=i)
        assert r.delta_chain("ia", 0) is None  # oldest payloads gone
        since = r.version("ia") - ModificationRecord.MAX_DELTA_HISTORY
        chain = r.delta_chain("ia", since)
        assert chain is not None
        assert len(chain) == ModificationRecord.MAX_DELTA_HISTORY

    def test_delta_rebuild_path(self):
        cache = ScheduleCache()
        calls = []

        def builder():
            calls.append("full")
            return "v1"

        def delta_builder(old, moved):
            calls.append(("delta", old, moved))
            return "v2"

        cache.get_or_build("L", ("ia",), builder,
                           delta_builder=delta_builder,
                           dep_masks={"ia": 0b100})
        cache.record.touch("ia", delta="p1")
        cache.record.touch("ia", delta="p2")
        v, rebuilt = cache.get_or_build("L", ("ia",), builder,
                                        delta_builder=delta_builder,
                                        dep_masks={"ia": 0b100})
        assert rebuilt and v == "v2"
        assert calls == ["full", ("delta", "v1",
                                  {"ia": (0b100, ["p1", "p2"])})]
        st = cache.stats("L")
        assert (st.builds, st.delta_rebuilds, st.hits) == (1, 1, 0)
        # the repaired entry is current: next lookup is a plain hit
        _, rebuilt = cache.get_or_build("L", ("ia",), builder,
                                        delta_builder=delta_builder)
        assert not rebuilt

    def test_payloadless_touch_forces_full_build(self):
        cache = ScheduleCache()
        builds = []
        cache.get_or_build("L", ("ia",), lambda: builds.append(1) or "v1",
                           delta_builder=lambda *_: "never",
                           dep_masks={"ia": 1})
        cache.record.touch("ia")
        v, _ = cache.get_or_build("L", ("ia",),
                                  lambda: builds.append(2) or "v2",
                                  delta_builder=lambda *_: "never",
                                  dep_masks={"ia": 1})
        assert v == "v2" and builds == [1, 2]

    def test_missing_mask_forces_full_build(self):
        cache = ScheduleCache()
        cache.get_or_build("L", ("ia",), lambda: "v1",
                           delta_builder=lambda *_: "never")
        cache.record.touch("ia", delta="p")
        v, _ = cache.get_or_build("L", ("ia",), lambda: "v2",
                                  delta_builder=lambda *_: "never")
        assert v == "v2"

    def test_delta_fallback_runs_full_build(self):
        cache = ScheduleCache()

        def delta_builder(old, moved):
            raise DeltaFallback("substrate purged")

        cache.get_or_build("L", ("ia",), lambda: "v1",
                           delta_builder=delta_builder,
                           dep_masks={"ia": 1})
        cache.record.touch("ia", delta="p")
        v, rebuilt = cache.get_or_build("L", ("ia",), lambda: "v2",
                                        delta_builder=delta_builder,
                                        dep_masks={"ia": 1})
        assert rebuilt and v == "v2"
        st = cache.stats("L")
        assert (st.builds, st.delta_rebuilds) == (2, 0)
