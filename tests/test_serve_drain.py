"""Drain / shutdown semantics and the per-job resource audit.

The acceptance contract: after ``drain()`` no new submissions are
admitted, running jobs finish (or hit their deadline), *every* per-job
``BackendResources`` handle is closed — multiprocess shared-memory
segments unlinked from ``/dev/shm`` included — and a crashing tenant
leaves its neighbours' results bitwise-identical to solo runs.
"""

import asyncio
import multiprocessing
import os

import numpy as np
import pytest
from serve_helpers import (
    assert_verdict_results_equal,
    figure8_job,
    halo_job,
    serve_threads_alive,
    sleeper_job,
)

from repro.serve import (
    CallableJob,
    JobStatus,
    ProgramServer,
    ServerClosed,
    ServerConfig,
    run_job_inline,
)

pytestmark = pytest.mark.serve


def run(coro):
    return asyncio.run(coro)


class TestDrainAdmission:
    def test_post_drain_submissions_rejected(self):
        async def main():
            srv = ProgramServer()
            h = await srv.submit(halo_job(seed=1))
            await srv.drain()
            assert srv.draining
            with pytest.raises(ServerClosed):
                await srv.submit(halo_job(seed=2))
            v = h.verdict
            await srv.close()
            with pytest.raises(ServerClosed):
                await srv.submit(halo_job(seed=3))
            return v

        v = run(main())
        assert v.ok  # admitted before the drain → ran to completion

    def test_drain_is_idempotent_and_close_reentrant(self):
        async def main():
            srv = ProgramServer()
            await srv.submit(halo_job(seed=1))
            await srv.drain()
            await srv.drain()
            await srv.close()
            await srv.close()
            return srv.stats()

        stats = run(main())
        assert stats["by_status"] == {"done": 1}
        assert stats["pending"] == 0

    def test_drain_waits_for_running_jobs(self):
        async def main():
            srv = ProgramServer()
            h = await srv.submit(sleeper_job(0.3, name="finisher"))
            await asyncio.sleep(0.05)
            assert h.status is JobStatus.RUNNING
            await srv.close()
            return h.verdict

        v = run(main())
        assert v.ok and v.result == "slept"

    def test_drain_honours_deadlines(self):
        async def main():
            srv = ProgramServer()
            h = await srv.submit(
                sleeper_job(30, name="overdue", timeout=0.2)
            )
            await asyncio.sleep(0.05)
            await srv.close()
            return h.verdict, srv.stats()

        v, stats = run(main())
        assert v.status is JobStatus.TIMEOUT
        assert stats["stragglers"] == 0


class TestResourceAudit:
    def test_every_context_closed_after_close(self):
        async def main():
            cfg = ServerConfig(max_concurrency=3)
            async with ProgramServer(cfg) as srv:
                handles = [
                    await srv.submit(halo_job(seed=s, tenant=f"t{s}"))
                    for s in range(4)
                ]
                handles.append(await srv.submit(
                    halo_job(seed=9, tenant="bad", crash=True)
                ))
                handles.append(await srv.submit(
                    sleeper_job(30, tenant="late", timeout=0.2)
                ))
                verdicts = [await h.wait() for h in handles]
            return srv, verdicts

        srv, verdicts = run(main())
        assert srv.leaked_contexts() == []
        assert all(v.resources_closed for v in verdicts)
        assert srv.stats()["stragglers"] == 0
        assert serve_threads_alive() == []

    def test_explicit_backend_contexts_closed(self):
        async def main():
            async with ProgramServer() as srv:
                hs = [
                    await srv.submit(
                        halo_job(seed=i, tenant=be, backend=be)
                    )
                    for i, be in enumerate(
                        ("serial", "vectorized", "threaded")
                    )
                ]
                return srv, [await h.wait() for h in hs]

        srv, verdicts = run(main())
        assert [v.backend for v in verdicts] == [
            "serial", "vectorized", "threaded"
        ]
        assert all(v.ok and v.resources_closed for v in verdicts)
        assert srv.leaked_contexts() == []

    def test_multiprocess_shm_segments_unlinked(self, monkeypatch):
        """Force every kernel to ship → real pool + shm arena, then
        verify drain left nothing in /dev/shm and no child processes."""
        monkeypatch.setenv("REPRO_MP_SHIP_THRESHOLD", "0")

        async def main():
            async with ProgramServer() as srv:
                h = await srv.submit(
                    halo_job(seed=3, backend="multiprocess")
                )
                return await h.wait()

        v = run(main())
        assert v.ok and v.backend == "multiprocess"
        assert v.resources_closed
        assert v.shm_segments, "shipping forced, arena expected"
        for seg in v.shm_segments:
            assert not os.path.exists(f"/dev/shm/{seg}"), (
                f"leaked shared-memory segment {seg}"
            )
        assert multiprocessing.active_children() == []

    def test_straggler_context_closed_after_drain(self):
        """A timed-out uncooperative thread still releases its context:
        drain awaits the straggler and refreshes the verdict audit."""
        import threading

        release = threading.Event()

        def stubborn(ctx, control):
            release.wait(10)  # ignores its control entirely
            return "finally"

        async def main():
            srv = ProgramServer()
            h = await srv.submit(
                CallableJob(fn=stubborn, name="stubborn", timeout=0.1)
            )
            v = await h.wait()
            assert v.status is JobStatus.TIMEOUT
            recorded_early = v.resources_closed
            release.set()
            await srv.close()
            return srv, v, recorded_early

        srv, v, recorded_early = run(main())
        # at verdict time the thread was still holding the context ...
        assert not recorded_early
        # ... but drain awaited it and the audit now shows it closed
        assert v.resources_closed
        assert srv.leaked_contexts() == []
        assert serve_threads_alive() == []


class TestCrashIsolation:
    def test_crashing_tenant_leaves_others_bitwise_identical(self):
        """Neighbours of a crashing tenant must be bitwise-equal to
        solo runs of the same specs — shared state would show up here."""
        seeds = (21, 22, 23)

        async def main():
            cfg = ServerConfig(max_concurrency=4)
            async with ProgramServer(cfg) as srv:
                crash = await srv.submit(
                    halo_job(seed=99, tenant="chaos", crash=True)
                )
                survivors = [
                    await srv.submit(
                        figure8_job(seed=s, tenant=f"t{s}")
                    )
                    for s in seeds
                ]
                survivors.append(await srv.submit(
                    halo_job(seed=31, tenant="rt")
                ))
                vc = await crash.wait()
                vs = [await h.wait() for h in survivors]
                return vc, vs

        vcrash, vs = run(main())
        assert vcrash.status is JobStatus.FAILED
        assert "crashed mid-run" in vcrash.error
        for v, seed in zip(vs[:-1], seeds):
            assert v.ok
            solo = run_job_inline(figure8_job(seed=seed))
            assert_verdict_results_equal(v.result, solo)
        assert vs[-1].ok
        solo = run_job_inline(halo_job(seed=31))
        np.testing.assert_array_equal(vs[-1].result, solo)

    def test_tenant_cannot_mutate_spec_bindings(self):
        """ProgramJob copies bindings per run: executing the same spec
        served twice yields identical results (no first-run pollution)."""
        spec = figure8_job(seed=7)

        async def main():
            async with ProgramServer() as srv:
                v1 = await (await srv.submit(spec)).wait()
            async with ProgramServer() as srv:
                v2 = await (await srv.submit(spec)).wait()
            return v1, v2

        v1, v2 = run(main())
        assert v1.ok and v2.ok
        assert_verdict_results_equal(v1.result, v2.result)

    def test_failed_jobs_never_raise_out_of_the_loop(self):
        """A pathological tenant (raises BaseException subclass Exception
        from run *and* from a generator fn) still only yields verdicts."""

        def weird(ctx, control):
            raise ArithmeticError("1/0-ish")

        async def main():
            async with ProgramServer() as srv:
                hs = [
                    await srv.submit(CallableJob(fn=weird, tenant=f"w{i}"))
                    for i in range(3)
                ]
                return [await h.wait() for h in hs]

        verdicts = run(main())
        assert all(v.status is JobStatus.FAILED for v in verdicts)
        assert all("ArithmeticError" in v.traceback for v in verdicts)
