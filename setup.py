from setuptools import setup

# Offline fallback: `pip install -e .` needs the `wheel` package for PEP 660
# editable installs, which is unavailable in this environment.  `python
# setup.py develop` (or the .pth approach) provides the same result.
setup()
