"""Shim for environments that cannot do PEP 660 editable installs.

All packaging metadata lives in ``pyproject.toml``.  This file exists so
that ``python setup.py develop`` (or the ``.pth`` approach) keeps working
where the ``wheel`` package is unavailable for ``pip install -e .``.
"""

from setuptools import setup

setup()
