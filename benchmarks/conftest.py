"""Make the shared `common` module importable when pytest collects the
benchmark files from any working directory."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
