"""Table 3: Schedule merging vs. multiple schedules.

Paper rows (16-128 procs): communication time and execution time for the
merged-schedule and multiple-schedule versions of parallel CHARMM.

Expected shape: merging wins on communication time at every P (one
deduplicated gather instead of per-loop gathers), hence on execution time.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import CHARMM_PROCS, charmm_config, print_table  # noqa: E402

from repro.apps.charmm import ParallelMD, build_solvated_system
from repro.partitioners import RCB
from repro.sim import Machine


def run(n_ranks: int, cfg: dict, mode: str):
    system = build_solvated_system(
        n_protein=cfg["n_protein"], n_waters=cfg["n_waters"],
        density=cfg["density"], seed=42,
    )
    m = Machine(n_ranks)
    md = ParallelMD(system, m, dt=0.002, update_every=cfg["update_every"],
                    partitioner=RCB(), schedule_mode=mode)
    md.run(cfg["n_steps"])
    return md.time_report()


def generate_table(cfg: dict | None = None):
    cfg = cfg or charmm_config()
    rows = []
    for p in CHARMM_PROCS:
        merged = run(p, cfg, "merged")
        multi = run(p, cfg, "multiple")
        rows.append([
            p,
            merged["communication"], merged["execution"],
            multi["communication"], multi["execution"],
        ])
    print_table(
        "Table 3: Communication time, schedule merging vs multiple "
        "schedules (virtual seconds)",
        ["Procs", "Merged comm", "Merged exec",
         "Multiple comm", "Multiple exec"],
        rows,
        float_fmt="{:.4f}",
    )
    return rows


def check_shape(rows) -> list[str]:
    failures = []
    for p, mc, me, uc, ue in rows:
        if not mc < uc:
            failures.append(f"P={p}: merged comm {mc:.4f} !< multiple {uc:.4f}")
        if not me <= ue * 1.02:
            failures.append(f"P={p}: merged exec {me:.4f} !<= multiple {ue:.4f}")
    return failures


def test_table3_schedule_merging(benchmark):
    cfg = charmm_config()
    benchmark.pedantic(lambda: run(32, dict(cfg, n_steps=1), "merged"),
                       rounds=1, iterations=1)
    rows = generate_table(cfg)
    failures = check_shape(rows)
    assert not failures, failures


if __name__ == "__main__":
    rows = generate_table()
    problems = check_shape(rows)
    print("\nshape check:", "OK" if not problems else problems)
