"""Table 7: Compiler-generated vs manually parallelized DSMC code.

Paper rows (4-32 procs): reduce-append time and total time for the 2-D
DSMC particle-movement template (32x32 cells, 5K molecules, 50 steps).

The paper's key observation: the manual version uses CHAOS data-migration
primitives that *return* the new per-cell particle counts, while the
compiler-generated code recomputes them with an additional parallelized
loop (Figure 11's L2/L3) — so the compiler version pays extra
communication and runs somewhat slower, with the same scaling trend.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import COMPILER_DSMC_PROCS, bench_context, compiler_dsmc_config, print_table  # noqa: E402

import numpy as np

from repro.apps.dsmc import CartesianGrid
from repro.core import build_lightweight_schedule, scatter_append
from repro.core.distribution import BlockDistribution
from repro.core.translation import TranslationTable
from repro.lang import ProgramInstance, compile_program
from repro.sim import Machine
from repro.util.prng import hash_uniform

FIGURE11_SRC = """
C$ DECOMPOSITION celltemp({nc})
C$ DISTRIBUTE celltemp(BLOCK)
C$ ALIGN icell(*,:), vel(*,:), size(:), new_size(:) WITH celltemp
L1:   FORALL j = 1, {nc}
        FORALL i = 1, size(j)
          REDUCE(APPEND, vel(i, icell(i,j)), vel(i,j))
        END FORALL
      END FORALL
L2:   FORALL j = 1, {nc}
        new_size(j) = 0
      END FORALL
L3:   FORALL j = 1, {nc}
        FORALL i = 1, size(j)
          REDUCE(SUM, new_size(icell(i,j)), 1)
        END FORALL
      END FORALL
"""


def make_template_state(cfg: dict, seed: int = 5):
    """Initial per-cell particle values for the MOVE template."""
    grid = CartesianGrid(cfg["shape"])
    nc = grid.n_cells
    ids = np.arange(cfg["n_initial"], dtype=np.int64)
    cells = (hash_uniform(seed, ids, 1) * nc).astype(np.int64)
    values = hash_uniform(seed, ids, 2)
    sizes = np.bincount(cells, minlength=nc).astype(np.int64)
    order = np.argsort(cells, kind="stable")
    rows = np.split(values[order], np.cumsum(sizes)[:-1])
    return grid, [np.asarray(r) for r in rows], sizes


def routing_for_step(grid, sizes: np.ndarray, step: int, seed: int = 5
                     ) -> list[np.ndarray]:
    """1-based destination cells per (slot, cell) — a drifting shuffle.

    Particles prefer moving one cell along +x (the paper's directional
    flow) with some transverse scatter; deterministic per step.
    """
    nc = grid.n_cells
    nx, ny = grid.shape
    rows = []
    for c in range(nc):
        k = int(sizes[c])
        if k == 0:
            rows.append(np.zeros(0, dtype=np.int64))
            continue
        slots = np.arange(k)
        u = hash_uniform(seed, 91, step, c, slots)
        cx, cy = divmod(c, ny)
        dx = np.where(u < 0.7, 1, 0)
        dy = np.where(u > 0.85, 1, np.where(u > 0.7, -1, 0))
        nxc = (cx + dx) % nx
        nyc = (cy + dy) % ny
        rows.append((nxc * ny + nyc + 1).astype(np.int64))
    return rows


# ---------------------------------------------------------------------
# compiler-generated version: Figure 11 executed per step
# ---------------------------------------------------------------------
def run_compiler(n_ranks: int, cfg: dict):
    grid, rows, sizes = make_template_state(cfg)
    nc = grid.n_cells
    m = Machine(n_ranks)
    prog = compile_program(FIGURE11_SRC.format(nc=nc))
    icell0 = routing_for_step(grid, sizes, 0)
    inst = ProgramInstance(prog, m, dict(
        size=sizes.copy(), vel=[r.copy() for r in rows],
        icell=[r.copy() for r in icell0], new_size=np.zeros(nc),
    ))
    append_id, local_id, sum_id = prog.loop_ids()
    t0 = time.perf_counter()
    append_time = 0.0
    inst.execute()
    append_time += m.clocks.mean_category("comm")
    for step in range(1, cfg["n_steps"]):
        new_size = inst.get_array("new_size").astype(np.int64)
        inst.set_array("size", new_size)
        inst.set_array("icell", routing_for_step(grid, new_size, step))
        before = m.clocks.mean_category("comm")
        inst.run_loop(append_id)
        append_time += m.clocks.mean_category("comm") - before
        inst.run_loop(local_id)
        inst.run_loop(sum_id)
    wall = time.perf_counter() - t0
    return {
        "append": append_time,
        "total": m.execution_time(),
        "wall": wall,
        "final_sizes": inst.get_array("new_size").astype(np.int64),
    }


# ---------------------------------------------------------------------
# manually parallelized version: scatter_append returns the counts
# ---------------------------------------------------------------------
def run_manual(n_ranks: int, cfg: dict):
    grid, rows, sizes = make_template_state(cfg)
    nc = grid.n_cells
    m = Machine(n_ranks)
    ctx = bench_context(m)
    dist = BlockDistribution(nc, m.n_ranks)
    table = TranslationTable.from_distribution(m, dist)
    # per-rank ragged state
    local_rows = [
        [rows[c] for c in dist.global_indices(p).tolist()]
        for p in m.ranks()
    ]
    local_sizes = sizes.copy()
    t0 = time.perf_counter()
    append_time = 0.0
    for step in range(cfg["n_steps"]):
        icell = routing_for_step(grid, local_sizes, step)
        # flatten owned cells per rank
        dest_cell_per, values_per = [], []
        for p in m.ranks():
            cells_owned = dist.global_indices(p)
            dests, vals = [], []
            for idx, c in enumerate(cells_owned.tolist()):
                k = int(local_sizes[c])
                if k:
                    dests.append(icell[c][:k] - 1)
                    vals.append(local_rows[p][idx][:k])
            dest_cell_per.append(
                np.concatenate(dests) if dests else np.zeros(0, np.int64)
            )
            values_per.append(
                np.concatenate(vals) if vals else np.zeros(0)
            )
            m.charge_memops(p, 2 * dest_cell_per[p].size, "inspector")
        dest_rank = [table.owner_local(d) if d.size else d
                     for d in dest_cell_per]
        before = m.clocks.mean_category("comm")
        sched = build_lightweight_schedule(ctx, dest_rank,
                                           category="inspector")
        arrived_vals = scatter_append(ctx, sched, values_per, category="comm")
        arrived_cells = scatter_append(ctx, sched, dest_cell_per,
                                       category="comm")
        append_time += m.clocks.mean_category("comm") - before
        # regroup; counts come directly from the arrival groups — no extra
        # communication (the primitives "return the new number of
        # particles in each cell")
        new_sizes = np.zeros(nc, dtype=np.int64)
        for p in m.ranks():
            cells_owned = dist.global_indices(p)
            order = np.argsort(arrived_cells[p], kind="stable")
            sc = arrived_cells[p][order]
            sv = arrived_vals[p][order]
            lo = np.searchsorted(sc, cells_owned)
            hi = np.searchsorted(sc, cells_owned, side="right")
            local_rows[p] = [sv[a:b] for a, b in zip(lo, hi)]
            new_sizes[cells_owned] = hi - lo
            m.charge_copyops(p, sv.size, "comm")
        m.barrier()
        local_sizes = new_sizes
    wall = time.perf_counter() - t0
    return {
        "append": append_time,
        "total": m.execution_time(),
        "wall": wall,
        "final_sizes": local_sizes,
    }


# ---------------------------------------------------------------------
def generate_table(cfg: dict | None = None):
    cfg = cfg or compiler_dsmc_config()
    rows = []
    results = {}
    for p in COMPILER_DSMC_PROCS:
        comp = run_compiler(p, cfg)
        man = run_manual(p, cfg)
        results[p] = (comp, man)
        rows.append([p, comp["append"], comp["total"],
                     man["append"], man["total"]])
    shape_name = "x".join(str(s) for s in cfg["shape"])
    print_table(
        f"Table 7: compiler-generated vs manual DSMC template "
        f"({shape_name} cells, {cfg['n_initial']} molecules, "
        f"{cfg['n_steps']} steps; virtual seconds)",
        ["Procs", "Compiler append", "Compiler total",
         "Manual append", "Manual total"],
        rows,
        float_fmt="{:.4f}",
    )
    return rows, results


def check_shape(rows, results) -> list[str]:
    failures = []
    for p, (comp, man) in results.items():
        # identical particle placement
        if not np.array_equal(comp["final_sizes"], man["final_sizes"]):
            failures.append(f"P={p}: compiler/manual cell counts differ")
        # compiler slower (it recomputes sizes with extra communication)
        if not comp["total"] >= man["total"]:
            failures.append(
                f"P={p}: compiler total {comp['total']:.4f} unexpectedly "
                f"beat manual {man['total']:.4f}"
            )
        # ... but not catastrophically (same primitives underneath)
        if not comp["total"] <= man["total"] * 3.0:
            failures.append(f"P={p}: compiler more than 3x manual")
    # both versions speed up with P over the sweep
    totals_c = [r[2] for r in rows]
    totals_m = [r[4] for r in rows]
    if not totals_c[-1] < totals_c[0]:
        failures.append("compiler version did not scale")
    if not totals_m[-1] < totals_m[0]:
        failures.append("manual version did not scale")
    return failures


def test_table7_compiler_dsmc(benchmark):
    cfg = compiler_dsmc_config()
    benchmark.pedantic(
        lambda: run_manual(8, dict(cfg, n_steps=2)),
        rounds=1, iterations=1,
    )
    rows, results = generate_table(cfg)
    failures = check_shape(rows, results)
    assert not failures, failures


if __name__ == "__main__":
    rows, results = generate_table()
    problems = check_shape(rows, results)
    print("\nshape check:", "OK" if not problems else problems)
