"""Backend ablation: serial vs vectorized vs threaded vs multiprocess.

Times the *executor phase* (the per-step data transport that dominates
every paper table) under each registered backend, on two workloads:

* the Table-1 CHARMM setup at 16 simulated ranks — one coordinate
  ``gather`` plus one force ``scatter_op(np.add)`` per round over the
  non-bonded schedule, also reported per phase (gather vs scatter_op
  columns) so backend differences can be attributed;
* a DSMC-style particle migration — one ``scatter_append`` per round
  over a light-weight schedule;
* a fused four-field halo exchange — the same irregular gather over
  four ``(n, 3)`` float64 fields, once as four ``gather`` calls and
  once as a single :func:`run_pipeline` chain, so the fused-executor
  speedup (single-permutation, destination-sorted kernels) is measured
  against the unfused path *on the same backend*.

All backends charge identical virtual time — the difference measured
here is pure wall-clock interpreter cost: the serial backend walks every
``(p, q)`` rank pair in Python, the vectorized backend executes a
compiled flat plan with a handful of fused numpy operations, the
threaded backend fans the vectorized per-rank kernels over its
per-context worker pool (GIL-bound), and the multiprocess backend ships
the same kernels to worker processes over shared-memory plan views.
The pooled backends' ratios are advisory — they exercise the
resource-owning backend seam end-to-end, and their wall-clock win
scales with the cores of the benchmarking host, which CI does not pin.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import numpy as np  # noqa: E402

from common import bench_context, charmm_config, print_table  # noqa: E402

from repro.apps.charmm import ParallelMD, build_solvated_system  # noqa: E402
from repro.core import (  # noqa: E402
    ChaosRuntime,
    allocate_ghosts,
    build_lightweight_schedule,
    gather,
    gather_phase,
    run_pipeline,
    scatter_append,
    scatter_op,
    split_by_block,
)
from repro.sim import Machine  # noqa: E402

N_RANKS = 16
BACKENDS = ("serial", "vectorized", "threaded", "multiprocess")


def charmm_env():
    """Table-1 CHARMM state at 16 ranks (schedule already built)."""
    cfg = charmm_config()
    system = build_solvated_system(
        n_protein=cfg["n_protein"], n_waters=cfg["n_waters"],
        density=cfg["density"], seed=42,
    )
    md = ParallelMD(system, Machine(N_RANKS), dt=0.002,
                    update_every=cfg["update_every"])
    return md


def lightweight_env(n_particles: int = 200_000, seed: int = 7):
    """DSMC-style migration: particles bucketed to random destinations."""
    rng = np.random.default_rng(seed)
    ctx = bench_context(Machine(N_RANKS))
    per = n_particles // N_RANKS
    dest = [rng.integers(0, N_RANKS, per) for _ in range(N_RANKS)]
    sched = build_lightweight_schedule(ctx, dest)
    values = [rng.standard_normal((per, 3)) for _ in range(N_RANKS)]
    return ctx, sched, values


def fused_env(n: int = 48_000, n_ref: int = 200_000, n_fields: int = 4,
              seed: int = 3):
    """Four-field halo exchange: one irregular schedule, four ``(n, 3)``
    float64 fields gathered through it (positions, velocities, forces,
    dipoles — any per-element vector data sharing one indirection)."""
    rng = np.random.default_rng(seed)
    machine = Machine(N_RANKS)
    rt = ChaosRuntime(machine)
    tt = rt.irregular_table(rng.integers(0, N_RANKS, n))
    fields = [rt.distribute(rng.standard_normal((n, 3)), tt).local
              for _ in range(n_fields)]
    rt.hash_indirection(tt, split_by_block(rng.integers(0, n, n_ref),
                                           machine), "halo")
    sched = rt.build_schedule(tt, "halo")
    return rt.ctx, sched, fields


def time_fused(ctx, sched, fields, rounds: int) -> dict[str, float]:
    """Best wall-clock seconds for the four-field exchange, unfused
    (four ``gather`` calls) vs fused (one ``run_pipeline`` chain); the
    warm-up round also asserts the fusion contract — bitwise-identical
    ghosts and exactly equal traffic, fused vs unfused."""
    machine = ctx.machine
    ghosts = [allocate_ghosts(sched, f) for f in fields]

    def unfused():
        for f, g in zip(fields, ghosts):
            gather(ctx, sched, f, g)

    def fused():
        run_pipeline(ctx, [gather_phase(sched, f, g)
                           for f, g in zip(fields, ghosts)],
                     category="comm", loop_id="bench:fused_halo")

    t0 = machine.traffic.snapshot()
    unfused()
    t1 = machine.traffic.snapshot()
    ref = [[x.copy() for x in g] for g in ghosts]
    for g in ghosts:
        for x in g:
            x.fill(0)
    fused()
    t2 = machine.traffic.snapshot()

    def delta(a, b):
        zero = (0,) * len(next(iter(b["by_tag"].values()), (0, 0)))
        return {"n_messages": b["n_messages"] - a["n_messages"],
                "total_bytes": b["total_bytes"] - a["total_bytes"],
                "by_tag": {t: tuple(np.subtract(v, a["by_tag"].get(t, zero)))
                           for t, v in b["by_tag"].items()}}

    assert delta(t0, t1) == delta(t1, t2), "fused traffic differs"
    for rg, g in zip(ref, ghosts):
        for x, y in zip(rg, g):
            assert np.array_equal(x, y), "fused ghosts differ"
    best = {"pipeline_unfused": float("inf"),
            "pipeline_fused": float("inf")}
    for _ in range(rounds):
        t = time.perf_counter()
        unfused()
        best["pipeline_unfused"] = min(best["pipeline_unfused"],
                                       time.perf_counter() - t)
        t = time.perf_counter()
        fused()
        best["pipeline_fused"] = min(best["pipeline_fused"],
                                     time.perf_counter() - t)
    return best


def time_gather_scatter(md, ctx, rounds: int) -> dict[str, float]:
    """Best wall-clock seconds per phase for one gather + scatter_op
    round (``gather`` + ``scatter_op`` are timed inside the same round,
    so the combined gated metric stays one measurement)."""
    sched = md.sched_nb
    ghosts = allocate_ghosts(sched, md.pos)
    force = [np.zeros_like(a) for a in md.pos]
    fghost = allocate_ghosts(sched, md.pos)
    best = {"gather_scatter": float("inf"), "gather": float("inf"),
            "scatter_op": float("inf")}
    for _ in range(rounds):
        t0 = time.perf_counter()
        gather(ctx, sched, md.pos, ghosts)
        t1 = time.perf_counter()
        scatter_op(ctx, sched, force, fghost, np.add)
        t2 = time.perf_counter()
        best["gather"] = min(best["gather"], t1 - t0)
        best["scatter_op"] = min(best["scatter_op"], t2 - t1)
        best["gather_scatter"] = min(best["gather_scatter"], t2 - t0)
    return best


def time_scatter_append(ctx, sched, values, rounds: int) -> float:
    """Best wall-clock seconds for one scatter_append round."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        scatter_append(ctx, sched, values)
        best = min(best, time.perf_counter() - t0)
    return best


def generate_table(rounds: int = 5):
    md = charmm_env()
    ctx, lw_sched, values = lightweight_env()
    fu_ctx0, fu_sched, fu_fields = fused_env()
    times: dict[str, dict[str, float]] = {}
    for backend in BACKENDS:
        # one context per backend for all of its timings, so warm-up
        # spins up the same worker pool the timed rounds use; close it
        # afterwards unless with_backend handed back a shared context
        md_ctx = md.ctx.with_backend(backend)
        lw_ctx = ctx.with_backend(backend)
        fu_ctx = fu_ctx0.with_backend(backend)
        # warm once so plan compilation (and thread spin-up) is
        # excluded from per-round times
        time_gather_scatter(md, md_ctx, 1)
        time_scatter_append(lw_ctx, lw_sched, values, 1)
        phases = time_gather_scatter(md, md_ctx, rounds)
        phases["scatter_append"] = time_scatter_append(
            lw_ctx, lw_sched, values, rounds
        )
        phases.update(time_fused(fu_ctx, fu_sched, fu_fields, rounds))
        times[backend] = phases
        for derived, base in ((md_ctx, md.ctx), (lw_ctx, ctx),
                              (fu_ctx, fu_ctx0)):
            if derived is not base:
                derived.close()
    columns = ("gather", "scatter_op", "gather_scatter", "scatter_append",
               "pipeline_unfused", "pipeline_fused")
    rows = [
        [backend] + [times[backend][col] * 1e3 for col in columns]
        for backend in BACKENDS
    ]
    # one speedup row per non-reference backend; the vectorized keys
    # stay unsuffixed because the regression gate reads them by name,
    # and only the round-level metrics carry speedups (the per-phase
    # columns are attribution detail, not gates).  ``fused_pipeline`` is
    # fused vs unfused *on the same backend* — the fused-executor win,
    # not the backend-vs-serial win.
    speedups: dict[str, float] = {}
    for backend in BACKENDS:
        if backend == "serial":
            continue
        suffix = "" if backend == "vectorized" else f"_{backend}"
        for phase in ("gather_scatter", "scatter_append"):
            speedups[f"{phase}{suffix}"] = (
                times["serial"][phase] / max(times[backend][phase], 1e-12)
            )
        speedups[f"fused_pipeline{suffix}"] = (
            times[backend]["pipeline_unfused"]
            / max(times[backend]["pipeline_fused"], 1e-12)
        )
        rows.append([f"speedup {backend} (x)", "", "",
                     speedups[f"gather_scatter{suffix}"],
                     speedups[f"scatter_append{suffix}"], "",
                     speedups[f"fused_pipeline{suffix}"]])
    print_table(
        f"Backend ablation: executor wall-clock at P={N_RANKS} "
        f"(ms per round, best of {rounds})",
        ["Backend", "gather", "scatter_op", "gather+scatter_op",
         "scatter_append", "halo x4 unfused", "halo x4 fused"],
        rows,
        float_fmt="{:.3f}",
        json_name="backend_ablation",
        extra={"times_seconds": times, "speedups": speedups,
               "n_ranks": N_RANKS, "rounds": rounds},
    )
    return times, speedups


def test_backend_ablation():
    times, speedups = generate_table()
    # acceptance: compiled plans beat the pair loop by >= 3x on the
    # CHARMM executor phase at 16 simulated ranks, and the fused
    # single-permutation pipeline beats the unfused vectorized path by
    # >= 1.5x on the four-field halo exchange
    assert speedups["gather_scatter"] >= 3.0, speedups
    assert speedups["scatter_append"] >= 1.5, speedups
    assert speedups["fused_pipeline"] >= 1.5, speedups


if __name__ == "__main__":
    times, speedups = generate_table()
    print(f"\nexecutor-phase speedup: {speedups['gather_scatter']:.1f}x, "
          f"migration speedup: {speedups['scatter_append']:.1f}x, "
          f"fused-pipeline speedup: {speedups['fused_pipeline']:.1f}x")
