"""Table 2: Preprocessing overheads of CHARMM.

Paper rows (16-128 procs): Data Partition, Non-bonded List Update,
Remapping and Preprocessing, Schedule Generation, Schedule Regeneration
(total over the 40 list updates).

Expected shape: preprocessing is small compared with Table 1's execution
time; per-update schedule regeneration *decreases* with P; hash-table
reuse keeps regeneration cheap relative to list generation.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import CHARMM_PROCS, charmm_config, print_table  # noqa: E402

from repro.apps.charmm import ParallelMD, build_solvated_system
from repro.partitioners import RCB
from repro.sim import Machine


def run(n_ranks: int, cfg: dict):
    system = build_solvated_system(
        n_protein=cfg["n_protein"], n_waters=cfg["n_waters"],
        density=cfg["density"], seed=42,
    )
    m = Machine(n_ranks)
    md = ParallelMD(system, m, dt=0.002, update_every=cfg["update_every"],
                    partitioner=RCB())
    md.run(cfg["n_steps"])
    return md, m


def generate_table(cfg: dict | None = None):
    cfg = cfg or charmm_config()
    rows = []
    reports = {}
    for p in CHARMM_PROCS:
        md, m = run(p, cfg)
        rep = md.time_report()
        reports[p] = rep
        n_regens = max(1, md.trace.nb_list_updates - 1)
        rows.append([
            p,
            rep["partition"],
            rep["nb_update"],
            rep["remap"],
            rep["inspector"],
            rep["schedule_regen"],
            rep["execution"],
        ])
        reports[p]["n_regens"] = n_regens
    print_table(
        f"Table 2: CHARMM preprocessing overheads (virtual seconds; "
        f"{cfg['n_steps']} steps, list updated every "
        f"{cfg['update_every']})",
        ["Procs", "Partition", "NB-list update", "Remap+preproc",
         "Sched gen", "Sched regen (total)", "Execution"],
        rows,
        float_fmt="{:.4f}",
    )
    return rows, reports


def check_shape(rows) -> list[str]:
    failures = []
    for r in rows:
        p, part, nb, remap_t, gen, regen, execution = r
        preproc = part + remap_t + gen + regen
        if not preproc < 0.5 * execution:
            failures.append(
                f"P={p}: preprocessing {preproc:.3f} not small vs "
                f"execution {execution:.3f}"
            )
    # schedule regeneration decreases with P (paper: 43.5 -> 8.9)
    regs = [r[5] for r in rows]
    if not regs[-1] < regs[0]:
        failures.append("schedule regeneration did not shrink with P")
    nbs = [r[2] for r in rows]
    del nbs
    return failures


def test_table2_preprocessing(benchmark):
    cfg = charmm_config()

    def one_refresh():
        md, m = run(16, dict(cfg, n_steps=0))
        md.refresh_nonbonded_list()
        return m.clocks.mean_category("schedule_regen")

    benchmark.pedantic(one_refresh, rounds=1, iterations=1)
    rows, _ = generate_table(cfg)
    failures = check_shape(rows)
    assert not failures, failures


if __name__ == "__main__":
    rows, _ = generate_table()
    problems = check_shape(rows)
    print("\nshape check:", "OK" if not problems else problems)
