"""Table 4: Regular schedules vs. light-weight schedules (2-D DSMC).

Paper rows: total execution time for 48x48 and 96x96 cell grids on
16-128 processors, with the computational load deliberately uniform.

Expected shape: light-weight schedules win by a large factor everywhere;
the gap *grows* with P (the regular path's per-step translation-table
rebuild does not scale, while the light-weight path's per-rank work
shrinks) — the paper's regular-schedule times even rise from 32 to 128
processors on the small grid.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import CHARMM_PROCS, dsmc2d_config, print_table  # noqa: E402

from repro.apps.dsmc import CartesianGrid, DSMCConfig, FlowConfig, ParallelDSMC
from repro.sim import Machine

PROCS = CHARMM_PROCS  # 16..128, as in the paper


def uniform_flow() -> FlowConfig:
    """Load deliberately evenly distributed (paper's Table 4 setup)."""
    return FlowConfig(drift_fraction=0.5, drift_speed=0.3, thermal_speed=0.5)


def run(shape, n_ranks: int, cfg: dict, migration: str) -> float:
    grid = CartesianGrid(shape)
    m = Machine(n_ranks)
    par = ParallelDSMC(
        grid, m,
        DSMCConfig(n_initial=cfg["n_initial"], inflow_rate=cfg["inflow"],
                   dt=0.4, flow=uniform_flow()),
        migration=migration,
    )
    par.run(cfg["n_steps"])
    return m.execution_time()


def generate_table(cfg: dict | None = None):
    cfg = cfg or dsmc2d_config()
    all_rows = {}
    for shape in cfg["shapes"]:
        rows = []
        for p in PROCS:
            t_reg = run(shape, p, cfg, "regular")
            t_lw = run(shape, p, cfg, "lightweight")
            rows.append([p, t_reg, t_lw, t_reg / t_lw])
        name = "x".join(str(s) for s in shape)
        print_table(
            f"Table 4 ({name} cells): regular vs light-weight schedules "
            f"(virtual seconds, {cfg['n_steps']} steps)",
            ["Procs", "Regular", "Light-weight", "Ratio"],
            rows,
            float_fmt="{:.4f}",
        )
        all_rows[shape] = rows
    return all_rows


def check_shape(all_rows) -> list[str]:
    failures = []
    for shape, rows in all_rows.items():
        for p, reg, lw, ratio in rows:
            if not lw < reg:
                failures.append(f"{shape} P={p}: light-weight not faster")
        ratios = [r[3] for r in rows]
        if not ratios[-1] > ratios[0]:
            failures.append(f"{shape}: gap did not grow with P")
        lws = [r[2] for r in rows]
        if not lws[-1] < lws[0]:
            failures.append(f"{shape}: light-weight did not scale")
    return failures


def test_table4_lightweight(benchmark):
    cfg = dsmc2d_config()
    shape = cfg["shapes"][0]

    def one_run():
        return run(shape, 16, dict(cfg, n_steps=2), "lightweight")

    benchmark.pedantic(one_run, rounds=1, iterations=1)
    all_rows = generate_table(cfg)
    failures = check_shape(all_rows)
    assert not failures, failures


if __name__ == "__main__":
    all_rows = generate_table()
    problems = check_shape(all_rows)
    print("\nshape check:", "OK" if not problems else problems)
