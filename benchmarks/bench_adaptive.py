"""Adaptive caching benchmark: small-delta updates vs full rebuilds.

The paper's premise (§5.3.1) is that adaptive applications touch only a
small subset of an indirection array between inspector invocations — a
CHARMM non-bonded list regenerated every ``update_every`` steps changes
a few percent of its pair entries.  This benchmark times that regime at
16 simulated ranks under the vectorized backend:

* **full path** — ``clear_stamp`` + ``chaos_hash`` of the whole updated
  array + ``build_schedule`` from scratch (what every adaptive step cost
  before incremental caching);
* **delta path** — ``rehash_delta`` over just the touched positions +
  ``delta_rebuild_schedule`` splicing the delta into the cached CSR
  schedule.

Both paths are run side by side from identical table states each round
and their schedules asserted array-equal, so the reported speedup can
never come from skipped work.  The JSON result records:

* ``delta_speedup`` — full-path / delta-path wall clock for a 2%-churn
  update (gated: >= 2x acceptance, erosion fails CI);
* ``hit_rate`` — schedule-cache hit fraction over a deterministic
  adaptive loop driven through ``IrregularReduction`` (gated — it is a
  pure function of the caching logic, so any erosion is a logic bug);
* paged-translation cache counters under a byte budget (advisory).
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import numpy as np  # noqa: E402

from common import full_scale, print_table  # noqa: E402

from repro.core import (  # noqa: E402
    ChaosRuntime,
    ExecutionContext,
    IrregularReduction,
    TranslationTable,
    build_schedule,
    chaos_hash,
    clear_stamp,
    delta_rebuild_schedule,
    make_hash_tables,
    rehash_delta,
)
from repro.sim import Machine  # noqa: E402

N_RANKS = 16
BACKEND = "vectorized"
CHURN = 0.02  # fraction of the non-bonded list touched per update
PAGE_BUDGET_BYTES = 1 << 18  # 256 KiB/rank for the paged-eviction probe


def workload():
    if full_scale():
        return dict(n_global=400_000, n_refs=1_600_000, rounds=3)
    return dict(n_global=160_000, n_refs=640_000, rounds=3)


def _split(a: np.ndarray) -> list[np.ndarray]:
    per = a.size // N_RANKS
    return [a[p * per:(p + 1) * per].copy() for p in range(N_RANKS)]


def _schedules_equal(a, b) -> bool:
    return all(
        np.array_equal(a.send_indices[p], b.send_indices[p])
        and np.array_equal(a.send_offsets[p], b.send_offsets[p])
        and np.array_equal(a.recv_slots[p], b.recv_slots[p])
        and np.array_equal(a.recv_offsets[p], b.recv_offsets[p])
        for p in range(a.n_ranks)
    ) and a.ghost_size == b.ghost_size


def bench_delta_speedup(cfg: dict, seed: int = 23) -> dict[str, float]:
    """Time full-rebuild vs delta-rebuild adaptive steps side by side.

    Two identical runtimes start from the same cold inspector state; each
    round applies the same 2%-churn update to both — runtime A through
    the full clear/rehash/rebuild path, runtime B through the delta path
    — and the resulting schedules are asserted equal before timing
    counts.
    """
    rng = np.random.default_rng(seed)
    n, n_refs = cfg["n_global"], cfg["n_refs"]
    refs = rng.integers(0, n, n_refs)
    owner_map = rng.integers(0, N_RANKS, n)

    ctxs, tables, groups, = [], [], []
    for _ in range(2):
        m = Machine(N_RANKS)
        ctx = ExecutionContext.resolve(m, BACKEND)
        tt = TranslationTable.from_map(m, owner_map)
        hts = make_hash_tables(ctx, tt)
        ctxs.append(ctx)
        tables.append(tt)
        groups.append(hts)
    idx = _split(refs)
    for ctx, tt, hts in zip(ctxs, tables, groups):
        chaos_hash(ctx, hts, tt, [a.copy() for a in idx], "nb")
    sched_delta = build_schedule(ctxs[1], groups[1], "nb")

    t_full = t_delta = 0.0
    for r in range(cfg["rounds"]):
        per = idx[0].size
        n_churn = int(CHURN * per)
        positions, old_vals, new_vals, new_idx = [], [], [], []
        for a in idx:
            pos = rng.choice(per, size=n_churn, replace=False)
            nv = rng.integers(0, n, n_churn)
            b = a.copy()
            b[pos] = nv
            positions.append(pos)
            old_vals.append(a[pos])
            new_vals.append(nv)
            new_idx.append(b)

        t0 = time.perf_counter()
        clear_stamp(ctxs[0], groups[0], "nb")
        chaos_hash(ctxs[0], groups[0], tables[0],
                   [a.copy() for a in new_idx], "nb")
        sched_full = build_schedule(ctxs[0], groups[0], "nb")
        t_full += time.perf_counter() - t0

        t0 = time.perf_counter()
        rehash = rehash_delta(ctxs[1], groups[1], tables[1], "nb",
                              old_vals, new_vals)
        sched_delta = delta_rebuild_schedule(ctxs[1], groups[1], "nb",
                                             sched_delta, rehash)
        t_delta += time.perf_counter() - t0

        if not _schedules_equal(sched_full, sched_delta):
            raise AssertionError(
                f"round {r}: delta-rebuilt schedule diverged from the "
                "full rebuild"
            )
        idx = new_idx
    for ctx in ctxs:
        ctx.close()
    return {
        "t_full_s": t_full,
        "t_delta_s": t_delta,
        "delta_speedup": t_full / t_delta if t_delta > 0 else float("inf"),
    }


def bench_hit_rate(cfg: dict, seed: int = 29) -> dict[str, float]:
    """Deterministic adaptive loop through the ``IrregularReduction``
    facade: steady steps hit the schedule cache, periodic 2%-churn
    updates take the delta path, and one cold step builds.  The
    resulting hit fraction is a pure function of the caching logic."""
    rng = np.random.default_rng(seed)
    n = cfg["n_global"] // 4
    n_refs = cfg["n_refs"] // 4
    rounds, update_every = 12, 3
    m = Machine(N_RANKS)
    rt = ChaosRuntime(ExecutionContext.resolve(m, BACKEND))
    tt = rt.irregular_table(rng.integers(0, N_RANKS, n))
    ia = _split(rng.integers(0, n, n_refs))
    loop = IrregularReduction(rt, tt, "nb").bind(ia=ia)
    cur = [a.copy() for a in ia]
    for r in range(rounds):
        if r and r % update_every == 0:
            per = cur[0].size
            n_churn = int(CHURN * per)
            touched, nxt = [], []
            for a in cur:
                pos = rng.choice(per, size=n_churn, replace=False)
                b = a.copy()
                b[pos] = rng.integers(0, n, n_churn)
                touched.append(pos)
                nxt.append(b)
            loop.adapt("ia", nxt, touched=touched)
            cur = nxt
        else:
            loop.setup()
    st = rt.cache_stats("nb")
    rt.close()
    total = st.hits + st.builds + st.delta_rebuilds
    return {
        "hits": float(st.hits),
        "builds": float(st.builds),
        "delta_rebuilds": float(st.delta_rebuilds),
        "hit_rate": st.hits / total if total else 0.0,
    }


def bench_paged_budget(cfg: dict, seed: int = 31) -> dict[str, float]:
    """Paged translation lookups under a byte budget: LRU keeps resident
    bytes bounded while hit/miss/eviction counters stay observable."""
    rng = np.random.default_rng(seed)
    n = cfg["n_global"]
    m = Machine(N_RANKS)
    ctx = ExecutionContext.resolve(m, BACKEND,
                                   page_budget_bytes=PAGE_BUDGET_BYTES)
    tt = TranslationTable.from_map(m, rng.integers(0, N_RANKS, n),
                                   storage="paged")
    hts = make_hash_tables(ctx, tt)
    for r in range(3):
        refs = rng.integers(0, n, cfg["n_refs"] // 4)
        chaos_hash(ctx, hts, tt, _split(refs), f"nb{r}")
    stats = tt.page_stats()
    resident = max(tt.page_resident_bytes(p) for p in range(N_RANKS))
    ctx.close()
    if resident > PAGE_BUDGET_BYTES:
        raise AssertionError(
            f"resident page bytes {resident} exceed the "
            f"{PAGE_BUDGET_BYTES}-byte budget"
        )
    total = stats["hits"] + stats["misses"]
    return {
        "page_hits": float(stats["hits"]),
        "page_misses": float(stats["misses"]),
        "page_evictions": float(stats["evictions"]),
        "page_resident_bytes": float(stats["resident_bytes"]),
        "page_hit_rate": stats["hits"] / total if total else 0.0,
    }


def main() -> None:
    cfg = workload()
    delta = bench_delta_speedup(cfg)
    hits = bench_hit_rate(cfg)
    paged = bench_paged_budget(cfg)
    rows = [
        ["full rebuild (s)", delta["t_full_s"]],
        ["delta rebuild (s)", delta["t_delta_s"]],
        ["delta_speedup", delta["delta_speedup"]],
        ["cache hit_rate", hits["hit_rate"]],
        ["page hit_rate", paged["page_hit_rate"]],
        ["page evictions", paged["page_evictions"]],
    ]
    print_table(
        f"Adaptive caching ({N_RANKS} ranks, {BACKEND}, "
        f"{int(100 * CHURN)}% churn, {cfg['n_refs']} references)",
        ["metric", "value"],
        rows,
        json_name="bench_adaptive",
        extra={
            "n_ranks": N_RANKS,
            "config": cfg,
            "churn": CHURN,
            "page_budget_bytes": PAGE_BUDGET_BYTES,
            "delta_speedup": delta["delta_speedup"],
            "hit_rate": hits["hit_rate"],
            "wall_clock_s": {"full": delta["t_full_s"],
                             "delta": delta["t_delta_s"]},
            "cache": hits,
            "paged": paged,
        },
    )
    if delta["delta_speedup"] < 2.0:
        print(f"WARNING: delta speedup {delta['delta_speedup']:.2f}x below "
              "the 2x acceptance target", file=sys.stderr)


if __name__ == "__main__":
    main()
