"""Inspector ablation: serial dict-walk vs vectorized inspector engine.

Times the *inspector phase* — the analysis work the paper's stamped hash
tables make cheap to repeat — under each backend at 16 simulated ranks:

* ``chaos_hash`` of a fresh indirection array (probe + translate +
  insert + stamp + localize);
* adaptive ``rehash`` of a mostly-unchanged array (the paper's §3.2.2
  reuse win: most indices are already in the table);
* ``build_schedule`` from the stamped entries (``CHAOS_schedule``);
* ``localize_only`` of an unchanged array (pure lookup).

Both backends charge identical virtual time and traffic — the difference
measured here is pure wall-clock interpreter cost: the serial backend
walks a Python dict one key at a time and visits every rank pair, the
vectorized engine batches probes through an open-addressed int64 store
and charges exchanges from count matrices.

The JSON result records the combined ``chaos_hash + build_schedule``
speedup (the PR-2 acceptance metric: >= 3x at 16 ranks).
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import numpy as np  # noqa: E402

from common import full_scale, print_table  # noqa: E402

from repro.core import (  # noqa: E402
    ExecutionContext,
    TranslationTable,
    build_schedule,
    chaos_hash,
    clear_stamp,
    localize_only,
    make_hash_tables,
)
from repro.sim import Machine  # noqa: E402

N_RANKS = 16
BACKENDS = ("serial", "vectorized")


def workload():
    if full_scale():
        return dict(n_global=200_000, n_refs=800_000, churn=0.05, rounds=3)
    return dict(n_global=40_000, n_refs=160_000, churn=0.05, rounds=3)


def run_once(backend: str, cfg: dict, seed: int = 11) -> dict[str, float]:
    """One full inspector cycle; returns wall-clock seconds per phase."""
    rng = np.random.default_rng(seed)
    n, n_refs = cfg["n_global"], cfg["n_refs"]
    m = Machine(N_RANKS)
    ctx = ExecutionContext.resolve(m, backend)
    tt = TranslationTable.from_map(m, rng.integers(0, N_RANKS, n))
    hts = make_hash_tables(ctx, tt)
    refs = rng.integers(0, n, n_refs)
    per = n_refs // N_RANKS
    idx = [refs[p * per:(p + 1) * per] for p in range(N_RANKS)]

    t0 = time.perf_counter()
    chaos_hash(ctx, hts, tt, idx, "nb")
    t_hash = time.perf_counter() - t0

    t0 = time.perf_counter()
    sched = build_schedule(ctx, hts, "nb")
    t_sched = time.perf_counter() - t0
    del sched

    # adaptive step: a small fraction of references change
    n_churn = int(cfg["churn"] * per)
    idx2 = []
    for a in idx:
        b = a.copy()
        if n_churn:
            b[rng.integers(0, per, n_churn)] = rng.integers(0, n, n_churn)
        idx2.append(b)
    clear_stamp(ctx, hts, "nb")
    t0 = time.perf_counter()
    chaos_hash(ctx, hts, tt, idx2, "nb")
    t_rehash = time.perf_counter() - t0

    t0 = time.perf_counter()
    localize_only(ctx, hts, idx2)
    t_localize = time.perf_counter() - t0

    return {"chaos_hash": t_hash, "build_schedule": t_sched,
            "rehash": t_rehash, "localize_only": t_localize}


def main() -> None:
    cfg = workload()
    best: dict[str, dict[str, float]] = {b: {} for b in BACKENDS}
    for backend in BACKENDS:
        for r in range(cfg["rounds"]):
            t = run_once(backend, cfg, seed=11 + r)
            for phase, dt in t.items():
                cur = best[backend].get(phase)
                best[backend][phase] = dt if cur is None else min(cur, dt)

    phases = ("chaos_hash", "build_schedule", "rehash", "localize_only")
    rows = []
    for phase in phases:
        s, v = best["serial"][phase], best["vectorized"][phase]
        rows.append([phase, 1e3 * s, 1e3 * v, s / v if v else float("inf")])
    hash_sched_serial = (best["serial"]["chaos_hash"]
                         + best["serial"]["build_schedule"])
    hash_sched_vec = (best["vectorized"]["chaos_hash"]
                      + best["vectorized"]["build_schedule"])
    speedup = hash_sched_serial / hash_sched_vec if hash_sched_vec else 0.0
    rows.append(["hash+schedule", 1e3 * hash_sched_serial,
                 1e3 * hash_sched_vec, speedup])
    print_table(
        f"Inspector phase ablation ({N_RANKS} ranks, "
        f"{cfg['n_refs']} references over {cfg['n_global']} elements)",
        ["phase", "serial (ms)", "vectorized (ms)", "speedup"],
        rows,
        json_name="bench_inspector",
        extra={
            "n_ranks": N_RANKS,
            "config": cfg,
            "wall_clock_s": {b: best[b] for b in BACKENDS},
            "speedup_hash_plus_schedule": speedup,
        },
    )
    if speedup < 3.0:
        print(f"WARNING: hash+schedule speedup {speedup:.2f}x below the "
              "3x acceptance target", file=sys.stderr)


if __name__ == "__main__":
    main()
