"""Table 5: Performance effects of remapping (3-D DSMC).

Paper rows (8-128 procs + sequential): execution time with (a) a static
partition (no remapping), (b) recursive bisection remapping every 40
steps, (c) chain-partitioner remapping every 40 steps.

Expected shape: remapping beats static partitioning (strongly at low P);
recursive bisection's partitioning cost erodes its win at high P (the
paper's RCB time *rises* from 64 to 128 procs); the chain partitioner is
the best policy overall.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import DSMC3D_PROCS, dsmc3d_config, print_table  # noqa: E402

from repro.apps.dsmc import (
    CartesianGrid,
    DSMCConfig,
    ParallelDSMC,
    SequentialDSMC,
)
from repro.partitioners import RCB, ChainPartitioner
from repro.sim import IPSC860, Machine


def make_config(cfg: dict) -> DSMCConfig:
    return DSMCConfig(n_initial=cfg["n_initial"], inflow_rate=cfg["inflow"],
                      dt=cfg.get("dt", 0.4), initial_profile="plume")


def run_policy(n_ranks: int, cfg: dict, policy: str) -> float:
    grid = CartesianGrid(cfg["shape"])
    m = Machine(n_ranks)
    par = ParallelDSMC(grid, m, make_config(cfg))
    if policy == "static":
        par.run(cfg["n_steps"])
    elif policy == "rcb":
        par.run(cfg["n_steps"], remap_every=cfg["remap_every"],
                remap_partitioner=RCB())
    elif policy == "chain":
        par.run(cfg["n_steps"], remap_every=cfg["remap_every"],
                remap_partitioner=ChainPartitioner(axis=0))
    else:
        raise ValueError(policy)
    return m.execution_time()


def sequential_time(cfg: dict) -> float:
    """Sequential-code column: the same workload on one virtual CPU."""
    grid = CartesianGrid(cfg["shape"])
    seq = SequentialDSMC(grid, make_config(cfg))
    seq.run(cfg["n_steps"])
    total_pairs = sum(seq.trace.n_collisions)
    total_particles = sum(seq.trace.n_particles)
    from repro.apps.dsmc.collisions import COLLIDE_OPS, MOVE_OPS

    return IPSC860.compute_time(
        COLLIDE_OPS * total_pairs + (MOVE_OPS + 2) * total_particles
    )


def generate_table(cfg: dict | None = None):
    cfg = cfg or dsmc3d_config()
    rows = []
    for p in DSMC3D_PROCS:
        rows.append([
            p,
            run_policy(p, cfg, "static"),
            run_policy(p, cfg, "rcb"),
            run_policy(p, cfg, "chain"),
        ])
    seq_t = sequential_time(cfg)
    shape_name = "x".join(str(s) for s in cfg["shape"])
    print_table(
        f"Table 5: remapping policies, 3-D DSMC {shape_name} "
        f"({cfg['n_steps']} steps, remap every {cfg['remap_every']}; "
        f"sequential code: {seq_t:.4f} virtual s)",
        ["Procs", "Static partition", "Recursive bisection", "Chain"],
        rows,
        float_fmt="{:.4f}",
    )
    return rows, seq_t


def check_shape(rows) -> list[str]:
    """The paper's stated Table 5 findings:

    - "periodic remapping outperformed static partitioning significantly
      on a small number of processors",
    - "using a recursive bisection leads to performance degradation on a
      large number of processors" (its relative cost vs static grows),
    - "the chain partitioner, however, provided the better results".
    """
    failures = []
    by_p = {r[0]: r for r in rows}
    # remapping (chain) beats static on small processor counts
    for p in (8, 16, 32):
        if not by_p[p][3] < by_p[p][1]:
            failures.append(f"P={p}: chain remap not better than static")
    # chain is never worse than recursive bisection
    worse = [p for p in DSMC3D_PROCS if by_p[p][3] > by_p[p][2] * 1.02]
    if worse:
        failures.append(f"chain worse than RCB at P={worse}")
    # recursive bisection degrades relative to static as P grows
    ratio_low = by_p[8][2] / by_p[8][1]
    ratio_high = by_p[128][2] / by_p[128][1]
    if not ratio_high > ratio_low:
        failures.append(
            f"RCB did not degrade relative to static at high P "
            f"({ratio_low:.2f} -> {ratio_high:.2f})"
        )
    # chain stays within a few percent of the best policy everywhere
    for p in DSMC3D_PROCS:
        best = min(by_p[p][1], by_p[p][2], by_p[p][3])
        if not by_p[p][3] <= best * 1.10:
            failures.append(f"P={p}: chain not within 10% of best policy")
    return failures


def test_table5_remapping(benchmark):
    cfg = dsmc3d_config()
    benchmark.pedantic(
        lambda: run_policy(16, dict(cfg, n_steps=3), "chain"),
        rounds=1, iterations=1,
    )
    rows, _ = generate_table(cfg)
    failures = check_shape(rows)
    assert not failures, failures


if __name__ == "__main__":
    rows, _ = generate_table()
    problems = check_shape(rows)
    print("\nshape check:", "OK" if not problems else problems)
