"""Shared benchmark harness utilities.

Every ``bench_table*.py`` regenerates one table of the paper's evaluation.
The simulated iPSC/860 reports *virtual* times with the paper's shape;
pytest-benchmark additionally measures the wall-clock cost of the Python
implementation for the headline kernel of each table.

Workloads are scaled down from the paper's (fewer time-steps, and for
CHARMM a smaller atom count) so the full suite runs in minutes;
``EXPERIMENTS.md`` records the scaling next to each paper-vs-measured
comparison.  Set ``REPRO_BENCH_FULL=1`` for paper-sized runs.
"""

from __future__ import annotations

import os
import sys

from repro.util import format_table

#: processor counts used in the paper's CHARMM tables
CHARMM_PROCS = (16, 32, 64, 128)
#: processor counts in Table 5 (3-D DSMC)
DSMC3D_PROCS = (8, 16, 32, 64, 128)
#: processor counts in Table 7 (compiler DSMC)
COMPILER_DSMC_PROCS = (4, 8, 16, 32)


def full_scale() -> bool:
    """True when paper-sized workloads were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def charmm_config() -> dict:
    """Mini-CHARMM workload parameters.

    Paper: MbCO + 3830 waters = 14026 atoms, 1000 steps, cutoff list
    updated 40 times (update_every = 25).  Quick mode keeps the paper's
    atom count (the compute/communication balance depends on it) but runs
    few steps at a density that gives ~60 partners per atom.
    """
    if full_scale():
        return dict(n_protein=2536, n_waters=3830, density=2.5,
                    n_steps=1000, update_every=25)
    return dict(n_protein=2536, n_waters=3830, density=2.5,
                n_steps=4, update_every=2)


def dsmc2d_config() -> dict:
    """2-D DSMC workload (paper Table 4: 48x48 and 96x96 cells)."""
    if full_scale():
        return dict(shapes=((48, 48), (96, 96)), n_steps=100,
                    n_initial=40000, inflow=400)
    return dict(shapes=((16, 16), (32, 32)), n_steps=12,
                n_initial=3000, inflow=80)


def dsmc3d_config() -> dict:
    """3-D DSMC workload (paper Table 5: 1000 steps, remap every 40).

    Quick mode starts from the *developed plume* profile (dense upstream)
    so the short run exercises the same load-imbalance regime a 1000-step
    simulation reaches.
    """
    if full_scale():
        return dict(shape=(16, 16, 16), n_steps=1000, remap_every=40,
                    n_initial=60000, inflow=600, dt=0.25)
    return dict(shape=(12, 6, 6), n_steps=24, remap_every=6,
                n_initial=20000, inflow=800, dt=0.25)


def compiler_charmm_config() -> dict:
    """Table 6 workload (paper: 100 iterations, redistributed every 25)."""
    if full_scale():
        return dict(n_atoms=14026, iters=100, redist_every=25)
    return dict(n_atoms=2000, iters=16, redist_every=4)


def compiler_dsmc_config() -> dict:
    """Table 7 workload (paper: 32x32 cells, 5K molecules, 50 steps)."""
    if full_scale():
        return dict(shape=(32, 32), n_steps=50, n_initial=5000, inflow=100)
    return dict(shape=(16, 16), n_steps=12, n_initial=1500, inflow=50)


def print_table(title: str, headers, rows, float_fmt="{:.3f}") -> str:
    out = format_table(headers, rows, title=title, float_fmt=float_fmt)
    print("\n" + out, file=sys.stderr)
    return out
