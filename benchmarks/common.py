"""Shared benchmark harness utilities.

Every ``bench_table*.py`` regenerates one table of the paper's evaluation.
The simulated iPSC/860 reports *virtual* times with the paper's shape;
pytest-benchmark additionally measures the wall-clock cost of the Python
implementation for the headline kernel of each table.

Workloads are scaled down from the paper's (fewer time-steps, and for
CHARMM a smaller atom count) so the full suite runs in minutes;
``EXPERIMENTS.md`` records the scaling next to each paper-vs-measured
comparison.  Set ``REPRO_BENCH_FULL=1`` for paper-sized runs.

Executor backend selection: pass ``--backend=NAME`` to any table script
(or set ``REPRO_BENCH_BACKEND``) to run its data transport through a
specific executor backend (``serial``, ``vectorized``, ...); importing
this module applies the selection process-wide, so every bench script
honours it uniformly.

Every table printed through :func:`print_table` is also written as
machine-readable JSON (rows, headers, backend name, wall-clock timestamp)
under ``benchmarks/results/`` — override with ``REPRO_BENCH_RESULTS_DIR``,
disable with ``REPRO_BENCH_JSON=0`` — so successive PRs can track the
perf trajectory without scraping stderr.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time

import numpy as np

from repro.core import (
    ExecutionContext,
    available_backends,
    default_backend,
    set_default_backend,
)
from repro.util import format_table

#: processor counts used in the paper's CHARMM tables
CHARMM_PROCS = (16, 32, 64, 128)
#: processor counts in Table 5 (3-D DSMC)
DSMC3D_PROCS = (8, 16, 32, 64, 128)
#: processor counts in Table 7 (compiler DSMC)
COMPILER_DSMC_PROCS = (4, 8, 16, 32)


def full_scale() -> bool:
    """True when paper-sized workloads were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


# ---------------------------------------------------------------------
# executor backend selection
# ---------------------------------------------------------------------
def bench_backend() -> str | None:
    """Backend requested for this benchmark run, or ``None`` for default.

    ``--backend=NAME`` on the command line wins over the
    ``REPRO_BENCH_BACKEND`` environment variable.
    """
    for arg in sys.argv[1:]:
        if arg.startswith("--backend="):
            return arg.split("=", 1)[1]
    return os.environ.get("REPRO_BENCH_BACKEND") or None


def apply_bench_backend() -> str:
    """Install the requested backend as the process default; returns name."""
    name = bench_backend()
    if name is not None:
        if name not in available_backends():
            raise SystemExit(
                f"unknown backend {name!r}; available: {available_backends()}"
            )
        set_default_backend(name)
    return default_backend().name


# every bench script imports this module first, so a --backend=NAME flag
# (or REPRO_BENCH_BACKEND) takes effect for all of them uniformly
apply_bench_backend()


#: one ExecutionContext per machine for the whole benchmark process —
#: helpers share it instead of re-resolving the backend per call (the
#: dict also keeps each machine alive, so ids cannot be recycled)
_BENCH_CTX: dict[int, ExecutionContext] = {}


def bench_context(machine) -> ExecutionContext:
    """The shared per-run :class:`ExecutionContext` for ``machine``.

    Resolved once with the backend selected by ``--backend=NAME`` /
    ``REPRO_BENCH_BACKEND`` (installed process-wide above) and reused by
    every helper touching the same machine, so all phases of one
    benchmark run through one context — exactly how applications hold
    it.
    """
    ctx = _BENCH_CTX.get(id(machine))
    if ctx is None:
        ctx = ExecutionContext.resolve(machine)
        _BENCH_CTX[id(machine)] = ctx
    return ctx


# ---------------------------------------------------------------------
# workload configurations
# ---------------------------------------------------------------------
def charmm_config() -> dict:
    """Mini-CHARMM workload parameters.

    Paper: MbCO + 3830 waters = 14026 atoms, 1000 steps, cutoff list
    updated 40 times (update_every = 25).  Quick mode keeps the paper's
    atom count (the compute/communication balance depends on it) but runs
    few steps at a density that gives ~60 partners per atom.
    """
    if full_scale():
        return dict(n_protein=2536, n_waters=3830, density=2.5,
                    n_steps=1000, update_every=25)
    return dict(n_protein=2536, n_waters=3830, density=2.5,
                n_steps=4, update_every=2)


def dsmc2d_config() -> dict:
    """2-D DSMC workload (paper Table 4: 48x48 and 96x96 cells)."""
    if full_scale():
        return dict(shapes=((48, 48), (96, 96)), n_steps=100,
                    n_initial=40000, inflow=400)
    return dict(shapes=((16, 16), (32, 32)), n_steps=12,
                n_initial=3000, inflow=80)


def dsmc3d_config() -> dict:
    """3-D DSMC workload (paper Table 5: 1000 steps, remap every 40).

    Quick mode starts from the *developed plume* profile (dense upstream)
    so the short run exercises the same load-imbalance regime a 1000-step
    simulation reaches.
    """
    if full_scale():
        return dict(shape=(16, 16, 16), n_steps=1000, remap_every=40,
                    n_initial=60000, inflow=600, dt=0.25)
    return dict(shape=(12, 6, 6), n_steps=24, remap_every=6,
                n_initial=20000, inflow=800, dt=0.25)


def compiler_charmm_config() -> dict:
    """Table 6 workload (paper: 100 iterations, redistributed every 25)."""
    if full_scale():
        return dict(n_atoms=14026, iters=100, redist_every=25)
    return dict(n_atoms=2000, iters=16, redist_every=4)


def compiler_dsmc_config() -> dict:
    """Table 7 workload (paper: 32x32 cells, 5K molecules, 50 steps)."""
    if full_scale():
        return dict(shape=(32, 32), n_steps=50, n_initial=5000, inflow=100)
    return dict(shape=(16, 16), n_steps=12, n_initial=1500, inflow=50)


# ---------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------
def _jsonable(obj):
    """Recursively convert numpy scalars/arrays for json.dump."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def results_dir() -> str:
    """Directory JSON results are written to."""
    return os.environ.get(
        "REPRO_BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
    )


def _slug(title: str) -> str:
    s = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return s[:80] or "table"


def emit_json(name: str, payload: dict) -> str | None:
    """Write one machine-readable result file; returns its path.

    Disabled (returns ``None``) when ``REPRO_BENCH_JSON=0``.  Every
    payload is stamped with the active executor backend, workload scale,
    and wall-clock time so result files are self-describing.
    """
    if os.environ.get("REPRO_BENCH_JSON", "1") in ("0", "false"):
        return None
    payload = dict(payload)
    payload.setdefault("name", name)
    payload.setdefault("backend", default_backend().name)
    payload.setdefault("full_scale", full_scale())
    payload.setdefault("timestamp", time.time())
    out_dir = results_dir()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{_slug(name)}.json")
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
    return path


def print_table(title: str, headers, rows, float_fmt="{:.3f}",
                json_name: str | None = None, extra: dict | None = None
                ) -> str:
    """Print one result table and persist it as JSON (see :func:`emit_json`).

    ``extra`` merges additional machine-readable fields (per-phase times,
    configs, wall-clock measurements) into the JSON payload.
    """
    out = format_table(headers, rows, title=title, float_fmt=float_fmt)
    print("\n" + out, file=sys.stderr)
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [list(r) for r in rows],
    }
    if extra:
        payload.update(extra)
    emit_json(json_name or _slug(title), payload)
    return out
