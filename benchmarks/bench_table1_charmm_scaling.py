"""Table 1: Performance of parallel CHARMM on the (simulated) iPSC/860.

Paper rows: Execution Time, Computation Time, Communication Time, Load
Balance Index for 1, 16, 32, 64, 128 processors (MbCO + 3830 waters,
1000 steps, RCB partitioning, non-bonded list updated 40 times).

Expected shape: near-linear computation scaling; slowly-growing
communication time; LB index ~= 1.0-1.1.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import CHARMM_PROCS, charmm_config, print_table  # noqa: E402

from repro.apps.charmm import ParallelMD, build_solvated_system
from repro.partitioners import RCB
from repro.sim import Machine


def build_system(cfg: dict):
    return build_solvated_system(
        n_protein=cfg["n_protein"], n_waters=cfg["n_waters"],
        density=cfg["density"], seed=42,
    )


def run_charmm(n_ranks: int, cfg: dict) -> dict:
    system = build_system(cfg)
    m = Machine(n_ranks)
    md = ParallelMD(system, m, dt=0.002, update_every=cfg["update_every"],
                    partitioner=RCB())
    md.run(cfg["n_steps"])
    rep = md.time_report()
    rep["machine"] = m
    return rep


def sequential_time(cfg: dict) -> float:
    """1-processor row: virtual time of the same workload on one rank."""
    rep = run_charmm(1, cfg)
    return rep["execution"]


def generate_table(cfg: dict | None = None):
    cfg = cfg or charmm_config()
    rows = []
    t1 = sequential_time(cfg)
    rows.append([1, t1, t1, 0.0, 1.0])
    reports = {}
    for p in CHARMM_PROCS:
        rep = run_charmm(p, cfg)
        reports[p] = rep
        rows.append([
            p,
            rep["execution"],
            rep["computation"],
            rep["communication"],
            rep["load_balance"],
        ])
    n_atoms = cfg["n_protein"] + 3 * cfg["n_waters"]
    print_table(
        f"Table 1: Parallel CHARMM (simulated iPSC/860, virtual seconds; "
        f"{n_atoms} atoms, {cfg['n_steps']} steps)",
        ["Procs", "Execution", "Computation", "Communication", "LB index"],
        rows,
        float_fmt="{:.4f}",
        json_name="table1_charmm_scaling",
        extra={
            "config": cfg,
            "phases": {
                p: {k: v for k, v in rep.items() if k != "machine"}
                for p, rep in reports.items()
            },
        },
    )
    return rows, reports


def check_shape(rows) -> list[str]:
    """Assertions the paper's numbers satisfy; returns failures."""
    failures = []
    by_p = {r[0]: r for r in rows}
    # computation time scales down with P
    for a, b in zip(CHARMM_PROCS, CHARMM_PROCS[1:]):
        if not by_p[b][2] < by_p[a][2]:
            failures.append(f"computation did not shrink {a}->{b}")
    # execution time decreases with P
    for a, b in zip(CHARMM_PROCS, CHARMM_PROCS[1:]):
        if not by_p[b][1] < by_p[a][1]:
            failures.append(f"execution did not shrink {a}->{b}")
    # load balance stays close to 1 (paper: 1.03-1.08)
    for p in CHARMM_PROCS:
        if not 1.0 <= by_p[p][4] < 1.3:
            failures.append(f"LB index out of range at P={p}: {by_p[p][4]}")
    return failures


def test_table1_charmm_scaling(benchmark):
    cfg = charmm_config()
    # benchmark the headline kernel: one parallel MD step at P=16
    md = ParallelMD(build_system(cfg), Machine(16), dt=0.002,
                    update_every=cfg["update_every"])
    benchmark.pedantic(lambda: md.run(1), rounds=2, iterations=1)
    rows, _ = generate_table(cfg)
    failures = check_shape(rows)
    assert not failures, failures


if __name__ == "__main__":
    rows, _ = generate_table()
    problems = check_shape(rows)
    print("\nshape check:", "OK" if not problems else problems)
