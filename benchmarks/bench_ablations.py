"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation turns one CHAOS mechanism off (or swaps a policy) and
measures the effect on virtual time / traffic:

* **hash-table reuse** — clear-and-rehash into a retained table vs.
  rebuilding fresh hash tables on every non-bonded-list change;
* **software caching** — deduplicated schedule volume vs. raw reference
  count (what would move without the hash table's duplicate removal);
* **communication vectorization** — message count with aggregated
  schedules vs. one message per element;
* **translation-table storage** — replicated vs. distributed vs. paged
  lookup costs;
* **iteration partitioning rule** — owner-computes vs.
  almost-owner-computes off-processor reference counts.
"""

from __future__ import annotations

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import bench_context, print_table  # noqa: E402

import numpy as np

from repro.core import (
    ChaosRuntime,
    TranslationTable,
    build_schedule,
    chaos_hash,
    clear_stamp,
    make_hash_tables,
    partition_iterations,
    split_by_block,
)
from repro.sim import Machine

P = 16
N_ELEMENTS = 4000
N_REFS = 40000
N_UPDATES = 6
SEED = 99


def _workload(rng_seed=SEED):
    rng = np.random.default_rng(rng_seed)
    maparr = rng.integers(0, P, N_ELEMENTS)
    # spatially-correlated references: mostly nearby elements, so
    # consecutive "list updates" overlap heavily (the CHARMM regime)
    base = rng.integers(0, N_ELEMENTS, N_REFS)
    updates = []
    for _ in range(N_UPDATES):
        drift = rng.integers(-40, 41, N_REFS)
        base = np.clip(base + drift, 0, N_ELEMENTS - 1)
        updates.append(base.copy())
    return maparr, updates


# ---------------------------------------------------------------------
def ablate_hash_reuse():
    """Retained stamped table vs. fresh tables per update.

    Uses a *distributed* translation table: the paper notes translation
    lookups are "another costly part of index analysis especially if a
    non-replicated translation table is used" — exactly the cost retained
    hash tables amortize away.
    """
    maparr, updates = _workload()

    def with_reuse():
        m = Machine(P)
        ctx = bench_context(m)
        tt = TranslationTable.from_map(m, maparr, storage="distributed")
        hts = make_hash_tables(ctx, tt)
        m.reset_clocks()
        for upd in updates:
            if "nb" in hts[0].registry:
                clear_stamp(ctx, hts, "nb")
            chaos_hash(ctx, hts, tt, split_by_block(upd, m), "nb")
            build_schedule(ctx, hts, hts[0].expr("nb"))
        return m.clocks.mean_category("inspector")

    def without_reuse():
        m = Machine(P)
        ctx = bench_context(m)
        tt = TranslationTable.from_map(m, maparr, storage="distributed")
        m.reset_clocks()
        for upd in updates:
            hts = make_hash_tables(ctx, tt)  # fresh: all analysis redone
            chaos_hash(ctx, hts, tt, split_by_block(upd, m), "nb")
            build_schedule(ctx, hts, hts[0].expr("nb"))
        return m.clocks.mean_category("inspector")

    reuse, fresh = with_reuse(), without_reuse()
    return ["hash-table reuse", reuse, fresh, fresh / reuse]


# ---------------------------------------------------------------------
def ablate_software_caching():
    """Elements moved with dedup vs. raw reference count."""
    maparr, updates = _workload()
    m = Machine(P)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(maparr)
    rt.hash_indirection(tt, split_by_block(updates[0], m), "s")
    sched = rt.build_schedule(tt, "s")
    deduped = sched.total_elements()
    raw_offproc = 0
    for p, part in enumerate(split_by_block(updates[0], m)):
        raw_offproc += int(np.count_nonzero(tt.owner_local(part) != p))
    return ["software caching (elements moved)", float(deduped),
            float(raw_offproc), raw_offproc / max(1, deduped)]


# ---------------------------------------------------------------------
def ablate_vectorization():
    """Messages per gather with aggregation vs. one per element."""
    maparr, updates = _workload()
    m = Machine(P)
    rt = ChaosRuntime(m)
    tt = rt.irregular_table(maparr)
    rt.hash_indirection(tt, split_by_block(updates[0], m), "s")
    sched = rt.build_schedule(tt, "s")
    aggregated = sched.total_messages()
    unvectorized = sched.total_elements()  # one message per fetched element
    cm = m.cost_model
    t_agg = aggregated * cm.alpha + sched.total_elements() * 8 * cm.beta
    t_raw = unvectorized * (cm.alpha + 8 * cm.beta)
    return ["communication vectorization (virtual s/gather)", t_agg, t_raw,
            t_raw / max(t_agg, 1e-12)]


# ---------------------------------------------------------------------
def ablate_translation_storage():
    """Dereference cost of the three storage policies."""
    maparr, updates = _workload()
    queries = split_by_block(updates[0], Machine(P))
    out = []
    for storage in ("replicated", "distributed", "paged"):
        m = Machine(P)
        tt = TranslationTable.from_map(m, maparr, storage=storage,
                                       page_size=256)
        ctx = bench_context(m)
        m.reset_clocks()
        tt.dereference(ctx, queries)
        first = m.execution_time()
        m.reset_clocks()
        tt.dereference(ctx, queries)  # repeat: paged should now hit its cache
        second = m.execution_time()
        out.append((storage, first, second,
                    tt.memory_per_rank(0) / 1024.0))
    return out


# ---------------------------------------------------------------------
def ablate_iteration_rule():
    """Off-processor references under the two iteration rules.

    Uses three indirection arrays per iteration: the first (the LHS the
    owner-computes rule follows) is uncorrelated with the other two, which
    are co-located — so majority voting (almost-owner-computes) places
    iterations with the pair and wins on communication.
    """
    rng = np.random.default_rng(SEED)
    m = Machine(P)
    rt = ChaosRuntime(m)
    maparr = rng.integers(0, P, N_ELEMENTS)
    tt = rt.irregular_table(maparr)
    n_iter = 8000
    ia = rng.integers(0, N_ELEMENTS, n_iter)
    ib = rng.integers(0, N_ELEMENTS, n_iter)
    ic = np.clip(ib + rng.integers(-10, 11, n_iter), 0, N_ELEMENTS - 1)
    arrays = (ia, ib, ic)
    accesses = [
        list(parts) for parts in zip(*(split_by_block(a, m) for a in arrays))
    ]

    def offproc(rule):
        assign = partition_iterations(rt.ctx, tt, accesses, rule=rule)
        total = 0
        for a in arrays:
            new_a = assign.remap_iteration_data(rt.ctx, split_by_block(a, m))
            for p in m.ranks():
                total += int(np.count_nonzero(tt.owner_local(new_a[p]) != p))
        return total

    oc = offproc("owner-computes")
    aoc = offproc("almost-owner-computes")
    return ["iteration partitioning (off-proc refs)", float(aoc), float(oc),
            oc / max(1, aoc)]


# ---------------------------------------------------------------------
def generate_tables():
    rows = [
        ablate_hash_reuse(),
        ablate_software_caching(),
        ablate_vectorization(),
        ablate_iteration_rule(),
    ]
    print_table(
        "Ablations: each CHAOS mechanism on vs. off",
        ["Mechanism", "With", "Without", "Win factor"],
        rows,
        float_fmt="{:.4f}",
    )
    storage_rows = ablate_translation_storage()
    print_table(
        "Ablation: translation-table storage (dereference virtual s)",
        ["Storage", "First lookup", "Repeat lookup", "KiB/rank"],
        storage_rows,
        float_fmt="{:.5f}",
    )
    return rows, storage_rows


def check_shape(rows, storage_rows) -> list[str]:
    failures = []
    for name, with_, without, factor in rows:
        if not factor > 1.0:
            failures.append(f"{name}: no win ({factor:.2f}x)")
    by_storage = {r[0]: r for r in storage_rows}
    if not by_storage["replicated"][1] < by_storage["distributed"][1]:
        failures.append("replicated lookup not cheapest")
    # paged repeat lookups beat distributed repeat lookups (cache hits)
    if not by_storage["paged"][2] < by_storage["distributed"][2]:
        failures.append("paged cache did not help on repeat lookups")
    # distributed holds the least memory
    if not by_storage["distributed"][3] < by_storage["replicated"][3]:
        failures.append("distributed table not smaller than replicated")
    return failures


def test_ablations(benchmark):
    benchmark.pedantic(ablate_hash_reuse, rounds=1, iterations=1)
    rows, storage_rows = generate_tables()
    failures = check_shape(rows, storage_rows)
    assert not failures, failures


if __name__ == "__main__":
    rows, storage_rows = generate_tables()
    problems = check_shape(rows, storage_rows)
    print("\nshape check:", "OK" if not problems else problems)
