"""Table 6: Hand-coded vs compiler-generated CHARMM loop.

Paper rows (32 and 64 procs): Partition / Remap / Inspector / Executor /
Total time for the non-bonded force template (Figure 10), run for 100
iterations with data redistributed every 25 (RCB and RIB alternately).

Expected shape: the compiler-generated code "almost matches" the hand
parallelized code — both emit the same CHAOS calls; we check agreement
within 10% on every column.
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from common import bench_context, compiler_charmm_config, print_table  # noqa: E402

import numpy as np

from repro.apps.charmm import build_small_system, build_nonbonded_list
from repro.core import (
    TranslationTable,
    build_schedule,
    chaos_hash,
    gather,
    make_hash_tables,
    remap,
    remap_array,
    scatter_op,
    stack_local_ghost,
)
from repro.core.distribution import BlockDistribution
from repro.lang import ProgramInstance, compile_program
from repro.partitioners import RCB, RIB, run_partitioner
from repro.sim import Machine

PROCS = (32, 64)


def make_workload(cfg: dict):
    """Shared workload: a solvated system's non-bonded CSR + coordinates."""
    system = build_small_system(cfg["n_atoms"], seed=11)
    inblo0, jnb0 = build_nonbonded_list(
        system.positions, system.forcefield.cutoff, system.box
    )
    n = system.n_atoms
    return {
        "n": n,
        "positions": system.positions,
        "x": system.positions[:, 0].copy(),
        "y": system.positions[:, 1].copy(),
        "inblo1": inblo0 + 1,           # 1-based CSR offsets for Fortran D
        "jnb1": jnb0 + 1,               # 1-based partners
        "inblo0": inblo0,
        "jnb0": jnb0,
    }


def figure10_source(n: int, n_jnb: int) -> str:
    return f"""
      REAL*8 x({n}), y({n}), dx({n}), dy({n})
      INTEGER map({n}), jnb({n_jnb}), inblo({n + 1})
C$ DECOMPOSITION reg({n})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y, dx, dy WITH reg
C$ DISTRIBUTE reg(map)
L1:   FORALL i = 1, {n}
        FORALL j = inblo(i), inblo(i+1) - 1
          REDUCE (SUM, dx(jnb(j)), x(jnb(j)) - x(i))
          REDUCE (SUM, dy(jnb(j)), y(jnb(j)) - y(i))
          REDUCE (SUM, dx(i), x(i) - x(jnb(j)))
          REDUCE (SUM, dy(i), y(i) - y(jnb(j)))
        END DO
      END DO
"""


def partition_map(machine: Machine, wl: dict, part) -> np.ndarray:
    weights = 1.0 + np.diff(wl["inblo0"]).astype(float)
    res = run_partitioner(machine, part, wl["positions"], weights,
                          category="partition")
    return res.labels


def report(machine: Machine, wall: float) -> dict:
    c = machine.clocks
    executor = c.mean_category("comm") + c.mean_category("compute")
    return {
        "partition": c.mean_category("partition"),
        "remap": c.mean_category("remap"),
        "inspector": c.mean_category("inspector"),
        "executor": executor,
        "total": machine.execution_time(),
        "wall": wall,
    }


# ---------------------------------------------------------------------
# compiler-generated path
# ---------------------------------------------------------------------
def run_compiler(n_ranks: int, cfg: dict, wl: dict) -> dict:
    m = Machine(n_ranks)
    prog = compile_program(figure10_source(wl["n"], wl["jnb1"].size))
    map0 = partition_map(m, wl, RCB())
    inst = ProgramInstance(prog, m, dict(
        x=wl["x"].copy(), y=wl["y"].copy(),
        dx=np.zeros(wl["n"]), dy=np.zeros(wl["n"]),
        map=map0, jnb=wl["jnb1"].copy(), inblo=wl["inblo1"].copy(),
    ))
    t0 = time.perf_counter()
    inst.execute()  # DISTRIBUTE(BLOCK), DISTRIBUTE(map), loop once
    loop_id = prog.loop_ids()[0]
    parts = [RCB(), RIB()]
    k = 0
    for it in range(1, cfg["iters"]):
        if it % cfg["redist_every"] == 0:
            labels = partition_map(m, wl, parts[k % 2])
            k += 1
            inst.set_array("map", labels)
            inst.redistribute("reg", "map")
        inst.run_loop(loop_id)
    wall = time.perf_counter() - t0
    out = report(m, wall)
    out["dx"] = inst.get_array("dx")
    return out


# ---------------------------------------------------------------------
# hand-coded path: the same CHAOS calls, written directly
# ---------------------------------------------------------------------
class HandCodedLoop:
    """What a CHAOS user writes for Figure 10's loop by hand."""

    #: arithmetic charged per pair-iteration — same expression count the
    #: compiled plan derives from the AST, since the loop body is identical
    OPS_PER_ITER = 29.0

    def __init__(self, machine: Machine, wl: dict, map_array: np.ndarray):
        self.m = machine
        self.ctx = bench_context(machine)
        self.wl = wl
        self.arrays: dict[str, list[np.ndarray]] = {}
        self._distribute(map_array, initial=True)

    def _distribute(self, map_array: np.ndarray, initial: bool = False):
        m = self.m
        wl = self.wl
        new_table = TranslationTable.from_map(m, map_array)
        if initial:
            block = BlockDistribution(wl["n"], m.n_ranks)
            TranslationTable.from_distribution(m, block)  # DISTRIBUTE(BLOCK)
            plan = remap(self.ctx, block, new_table.dist, category="remap")
            for name, g in (("x", wl["x"]), ("y", wl["y"]),
                            ("dx", np.zeros(wl["n"])),
                            ("dy", np.zeros(wl["n"]))):
                split = [g[block.global_indices(p)] for p in m.ranks()]
                self.arrays[name] = remap_array(self.ctx, plan, split,
                                                category="remap")
        else:
            plan = remap(self.ctx, self.table.dist, new_table.dist, category="remap")
            for name in ("x", "y", "dx", "dy"):
                self.arrays[name] = remap_array(self.ctx, plan, self.arrays[name],
                                                category="remap")
        self.table = new_table
        self._inspect()

    def _inspect(self):
        m = self.m
        wl = self.wl
        dist = self.table.dist
        self.htables = make_hash_tables(self.ctx, self.table)
        i_per, j_per = [], []
        offsets0, jnb0 = wl["inblo0"], wl["jnb0"]
        for p in m.ranks():
            rows = dist.global_indices(p)
            counts = offsets0[rows + 1] - offsets0[rows]
            total = int(counts.sum())
            starts = offsets0[rows]
            shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
            flat = (np.repeat(starts - shift, counts)
                    + np.arange(total, dtype=np.int64))
            i_per.append(np.repeat(rows, counts))
            j_per.append(jnb0[flat])
            m.charge_memops(p, 2 * total, "inspector")
        self.i_loc = chaos_hash(self.ctx, self.htables, self.table, i_per, "i",
                                category="inspector")
        self.j_loc = chaos_hash(self.ctx, self.htables, self.table, j_per, "jnb",
                                category="inspector")
        self.sched = build_schedule(self.ctx, self.htables,
                                    self.htables[0].expr("i", "jnb"),
                                    category="inspector")

    def execute_once(self):
        m = self.m
        x_g = gather(self.ctx, self.sched, self.arrays["x"], category="comm")
        y_g = gather(self.ctx, self.sched, self.arrays["y"], category="comm")
        xs = stack_local_ghost(self.arrays["x"], x_g)
        ys = stack_local_ghost(self.arrays["y"], y_g)
        dxa = [np.zeros(a.shape[0] + g, dtype=np.float64)
               for a, g in zip(self.arrays["dx"], self.sched.ghost_size)]
        dya = [np.zeros(a.shape[0] + g, dtype=np.float64)
               for a, g in zip(self.arrays["dy"], self.sched.ghost_size)]
        for p in m.ranks():
            i_l, j_l = self.i_loc[p], self.j_loc[p]
            if i_l.size == 0:
                continue
            np.add.at(dxa[p], j_l, xs[p][j_l] - xs[p][i_l])
            np.add.at(dya[p], j_l, ys[p][j_l] - ys[p][i_l])
            np.add.at(dxa[p], i_l, xs[p][i_l] - xs[p][j_l])
            np.add.at(dya[p], i_l, ys[p][i_l] - ys[p][j_l])
            m.charge_compute(p, self.OPS_PER_ITER * i_l.size, "compute")
        for name, acc in (("dx", dxa), ("dy", dya)):
            ghost_acc = []
            for p in m.ranks():
                n_local = self.arrays[name][p].shape[0]
                self.arrays[name][p] += acc[p][:n_local]
                ghost_acc.append(acc[p][n_local:])
            scatter_op(self.ctx, self.sched, self.arrays[name], ghost_acc, np.add,
                       category="comm")
        m.barrier()

    def get_global(self, name: str) -> np.ndarray:
        dist = self.table.dist
        out = np.zeros(self.wl["n"])
        for p in self.m.ranks():
            out[dist.global_indices(p)] = self.arrays[name][p]
        return out


def run_hand(n_ranks: int, cfg: dict, wl: dict) -> dict:
    m = Machine(n_ranks)
    map0 = partition_map(m, wl, RCB())
    t0 = time.perf_counter()
    loop = HandCodedLoop(m, wl, map0)
    loop.execute_once()
    parts = [RCB(), RIB()]
    k = 0
    for it in range(1, cfg["iters"]):
        if it % cfg["redist_every"] == 0:
            labels = partition_map(m, wl, parts[k % 2])
            k += 1
            loop._distribute(labels)
        loop.execute_once()
    wall = time.perf_counter() - t0
    out = report(m, wall)
    out["dx"] = loop.get_global("dx")
    return out


# ---------------------------------------------------------------------
def generate_table(cfg: dict | None = None):
    cfg = cfg or compiler_charmm_config()
    wl = make_workload(cfg)
    rows = []
    results = {}
    for p in PROCS:
        hand = run_hand(p, cfg, wl)
        comp = run_compiler(p, cfg, wl)
        results[p] = (hand, comp)
        rows.append(["hand", p, hand["partition"], hand["remap"],
                     hand["inspector"], hand["executor"], hand["total"]])
        rows.append(["compiler", p, comp["partition"], comp["remap"],
                     comp["inspector"], comp["executor"], comp["total"]])
    print_table(
        f"Table 6: hand-coded vs compiler-generated CHARMM loop "
        f"(virtual seconds; {cfg['iters']} iterations, redistributed "
        f"every {cfg['redist_every']})",
        ["Version", "Procs", "Partition", "Remap", "Inspector",
         "Executor", "Total"],
        rows,
        float_fmt="{:.4f}",
    )
    return rows, results


def check_shape(results) -> list[str]:
    failures = []
    for p, (hand, comp) in results.items():
        # identical numerical results
        if not np.allclose(hand["dx"], comp["dx"], atol=1e-8):
            failures.append(f"P={p}: compiler and hand dx differ")
        # compiler within 10% of hand on total time (paper: "almost
        # matches")
        rel = abs(comp["total"] - hand["total"]) / hand["total"]
        if rel > 0.10:
            failures.append(
                f"P={p}: compiler total {comp['total']:.4f} deviates "
                f"{rel:.1%} from hand {hand['total']:.4f}"
            )
    return failures


def test_table6_compiler_charmm(benchmark):
    cfg = compiler_charmm_config()
    wl = make_workload(cfg)
    benchmark.pedantic(
        lambda: run_compiler(32, dict(cfg, iters=2), wl),
        rounds=1, iterations=1,
    )
    _, results = generate_table(cfg)
    failures = check_shape(results)
    assert not failures, failures


if __name__ == "__main__":
    _, results = generate_table()
    problems = check_shape(results)
    print("\nshape check:", "OK" if not problems else problems)
