"""Benchmark-regression gate: compare fresh results to committed baselines.

Wall-clock milliseconds differ wildly between machines, so the gate
compares *vectorized-vs-serial speedup ratios* — both backends run in the
same process on the same hardware, which makes the ratio a stable,
machine-independent measure of whether the vectorized engine's advantage
is eroding.  A gated check fails when a baseline ratio shrinks by more
than ``--max-slowdown`` (default 1.3x); the remaining per-phase ratios
are advisory (reported, never fatal) because short phases are too noisy
on shared CI runners to gate on individually.

Baselines are committed JSON files at the repository root
(``BENCH_inspector.json``, ``BENCH_backends.json``,
``BENCH_adaptive.json``); fresh results are the files the benchmark
scripts write under ``benchmarks/results/``.  The adaptive-caching gate
extends the same idea to the incremental inspector: its delta-vs-full
rebuild speedup is a same-process ratio, and its schedule-cache hit rate
is deterministic, so both gate without machine sensitivity.
``--update`` refreshes a baseline when the gated ratios improved or
stayed within a small drift tolerance: a sequence of sub-threshold
erosions cannot ratchet itself into the baseline, one lucky fast run
cannot pin the baseline out of reach, and an unchanged run produces no
file diff (so CI's refresh commit is skipped).

The gate degrades gracefully but never silently: a *missing* committed
baseline is a clear skip message (first run on a fresh fork), a metric
the current bench emits that the baseline predates (a newly registered
backend) is reported as "no baseline yet" and skipped, and a baseline
that exists but cannot be parsed fails the gate with a message — no
case tracebacks.

Usage::

    python benchmarks/check_regression.py --run      # run benches + gate
    PYTHONPATH=src python benchmarks/bench_inspector.py
    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_adaptive.py
    python benchmarks/check_regression.py            # gate (CI)
    python benchmarks/check_regression.py --update   # refresh baselines
                                                     # (main branch only)

``--run`` executes the gated benchmark scripts first; they build one
shared :class:`~repro.core.context.ExecutionContext` per machine (see
``benchmarks/common.py``), so fresh results and committed baselines
measure the same context-resolved pipeline.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_RESULTS = os.path.join(REPO_ROOT, "benchmarks", "results")

#: scripts whose JSON results the gate consumes, in run order
GATED_BENCH_SCRIPTS = ("bench_inspector.py", "bench_backends.py",
                       "bench_adaptive.py")


def run_gated_benches() -> None:
    """Regenerate the gated results by running the benchmark scripts."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for script in GATED_BENCH_SCRIPTS:
        path = os.path.join(REPO_ROOT, "benchmarks", script)
        print(f"running {script} ...", flush=True)
        subprocess.run([sys.executable, path], check=True, env=env)


def _inspector_ratios(payload: dict) -> dict[str, float]:
    """Per-phase serial/vectorized wall-clock ratios + the headline one."""
    ratios: dict[str, float] = {}
    wall = payload.get("wall_clock_s", {})
    serial, vec = wall.get("serial", {}), wall.get("vectorized", {})
    for phase in sorted(set(serial) & set(vec)):
        if vec[phase] > 0:
            ratios[phase] = serial[phase] / vec[phase]
    if "speedup_hash_plus_schedule" in payload:
        ratios["hash+schedule"] = float(payload["speedup_hash_plus_schedule"])
    return ratios


def _backend_ratios(payload: dict) -> dict[str, float]:
    return {k: float(v) for k, v in payload.get("speedups", {}).items()}


def _adaptive_ratios(payload: dict) -> dict[str, float]:
    """Delta-vs-full rebuild speedup and cache hit fractions.

    ``delta_speedup`` is a same-process wall-clock ratio (machine
    independent, like the other gated ratios); ``hit_rate`` is a pure
    function of the caching logic over a deterministic adaptive loop, so
    any erosion is a logic bug rather than noise.  The paged-translation
    hit rate stays advisory — it depends on the byte budget constant.
    """
    ratios: dict[str, float] = {}
    for key in ("delta_speedup", "hit_rate"):
        if key in payload:
            ratios[key] = float(payload[key])
    paged = payload.get("paged", {})
    if "page_hit_rate" in paged:
        ratios["page_hit_rate"] = float(paged["page_hit_rate"])
    return ratios


#: (baseline file at repo root, result file under benchmarks/results/,
#:  ratio extractor, metrics that gate — the rest are advisory)
CHECKS = (
    ("BENCH_inspector.json", "bench_inspector.json", _inspector_ratios,
     frozenset({"hash+schedule"})),
    ("BENCH_backends.json", "backend_ablation.json", _backend_ratios,
     frozenset({"gather_scatter", "scatter_append", "fused_pipeline"})),
    ("BENCH_adaptive.json", "bench_adaptive.json", _adaptive_ratios,
     frozenset({"delta_speedup", "hit_rate"})),
)


#: sentinel for a file that exists but cannot be parsed — distinct from
#: "absent", because a *corrupt tracked baseline* must fail the gate
#: (silently skipping it would disable regression detection) while a
#: merely missing one is first-run ergonomics
_CORRUPT = object()


def _load(path: str):
    """Parse one result/baseline file.

    Returns the payload dict, ``None`` when the file is absent, or
    :data:`_CORRUPT` when it exists but cannot be read/parsed — never a
    traceback.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"warning: could not read {path}: {exc}", file=sys.stderr)
        return _CORRUPT


def _gated_mean(ratios: dict[str, float], gated: frozenset[str]) -> float:
    vals = [v for k, v in ratios.items() if k in gated]
    return sum(vals) / len(vals) if vals else 0.0


#: declines up to this factor are treated as run-to-run noise and still
#: refresh the baseline; it must stay well below the gate's
#: ``--max-slowdown`` so a genuine one-shot regression is never absorbed
DRIFT_TOLERANCE = 1.1


def _maybe_update(baseline_path: str, current: dict, extract,
                  gated: frozenset[str], result_path: str) -> None:
    """Refresh a baseline when gated ratios improved or merely drifted.

    Improvements always refresh.  Small declines (< ``DRIFT_TOLERANCE``)
    refresh too, so one lucky run cannot pin the baseline at a value
    typical runs can never reach again (which would turn the gate into a
    permanent failure).  Declines beyond the tolerance keep the old
    baseline: a sequence of just-under-the-gate erosions cannot ratchet
    itself in, because each must land within the much smaller drift
    tolerance of the *original* baseline to be absorbed.
    """
    name = os.path.basename(baseline_path)
    baseline = _load(baseline_path)
    if baseline is not None and baseline is not _CORRUPT:
        # compare over the metrics both sides have: a gated metric the
        # baseline predates (first run after registering it) must not
        # drag the current mean down and block its own adoption
        common = gated & set(extract(baseline)) & set(extract(current))
        old = _gated_mean(extract(baseline), common)
        new = _gated_mean(extract(current), common)
        if new < old and (new <= 0 or old / new > DRIFT_TOLERANCE):
            print(f"baseline kept: {name} (gated mean fell {old:.2f}x -> "
                  f"{new:.2f}x, beyond the {DRIFT_TOLERANCE}x drift "
                  "tolerance)")
            return
    shutil.copyfile(result_path, baseline_path)
    print(f"baseline refreshed: {name} <- {os.path.basename(result_path)}")


def check(results_dir: str, baseline_dir: str, max_slowdown: float,
          update: bool) -> int:
    failures: list[str] = []
    missing: list[str] = []
    for baseline_name, result_name, extract, gated in CHECKS:
        baseline_path = os.path.join(baseline_dir, baseline_name)
        result_path = os.path.join(results_dir, result_name)
        current = _load(result_path)
        if current is None or current is _CORRUPT:
            missing.append(
                f"{result_path} missing or unreadable — run the matching "
                f"benchmark first"
            )
            continue
        if update:
            _maybe_update(baseline_path, current, extract, gated,
                          result_path)
            continue
        baseline = _load(baseline_path)
        if baseline is None:
            # first-run ergonomics: no committed baseline is a skip, not
            # a failure — nothing to regress against yet
            print(f"skipping {baseline_name}: no committed baseline yet "
                  f"(run with --update on main to create it)")
            continue
        if baseline is _CORRUPT:
            # a baseline that exists but cannot be parsed means the gate
            # cannot do its job — fail loudly instead of going green
            failures.append(
                f"{baseline_name}: committed baseline is unreadable — fix "
                f"it or regenerate with --update on main"
            )
            continue
        base_ratios = extract(baseline)
        cur_ratios = extract(current)
        print(f"\n== {baseline_name} vs {result_name} "
              f"(gated metrics fail when the advantage shrinks > "
              f"{max_slowdown:.2f}x) ==")
        for key in sorted(base_ratios):
            if key not in cur_ratios:
                if key in gated:
                    failures.append(f"{baseline_name}: gated metric {key!r} "
                                    "vanished from current results")
                else:
                    print(f"  {key:28s} baseline {base_ratios[key]:6.2f}x  "
                          f"[advisory metric missing from current results]")
                continue
            base, cur = base_ratios[key], cur_ratios[key]
            slowdown = base / cur if cur > 0 else float("inf")
            ok = slowdown <= max_slowdown
            if key in gated:
                status = "OK" if ok else "REGRESSION"
            else:
                status = "advisory" if ok else "advisory-WARN"
            print(f"  {key:28s} baseline {base:6.2f}x  current {cur:6.2f}x"
                  f"  ratio {slowdown:5.2f}  [{status}]")
            if key in gated and not ok:
                failures.append(
                    f"{baseline_name}: {key} speedup fell {slowdown:.2f}x "
                    f"({base:.2f}x -> {cur:.2f}x)"
                )
        # new-backend ergonomics: a metric the current bench emits but
        # the committed baseline predates (e.g. a freshly registered
        # backend's ratios) is reported and skipped, never a crash
        for key in sorted(set(cur_ratios) - set(base_ratios)):
            print(f"  {key:28s} current {cur_ratios[key]:6.2f}x  "
                  f"[new metric — no baseline yet, skipped; refresh with "
                  f"--update]")
    if missing:
        print("\n".join(missing), file=sys.stderr)
        return 2
    if failures:
        print("\nbenchmark regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if not update:
        print("\nall gated benchmark ratios within tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results", default=DEFAULT_RESULTS,
                    help="directory holding fresh benchmark JSON results")
    ap.add_argument("--baselines", default=REPO_ROOT,
                    help="directory holding committed BENCH_*.json baselines")
    ap.add_argument("--max-slowdown", type=float, default=1.3,
                    help="tolerated shrink factor of a gated speedup ratio")
    ap.add_argument("--update", action="store_true",
                    help="refresh the committed baselines from the fresh "
                         "results (only where the gated ratios improved) "
                         "instead of gating")
    ap.add_argument("--run", action="store_true",
                    help="run the gated benchmark scripts first (they share "
                         "one ExecutionContext per machine), then gate")
    args = ap.parse_args(argv)
    if args.run:
        run_gated_benches()
    return check(args.results, args.baselines, args.max_slowdown,
                 args.update)


if __name__ == "__main__":
    raise SystemExit(main())
