"""Compile and run the paper's Figure 10: CHARMM's non-bonded loop in
Fortran D.

The mini-compiler parses the DECOMPOSITION/DISTRIBUTE/ALIGN directives and
the FORALL/REDUCE nest, lowers the loop to an inspector/executor plan over
CHAOS, executes it on a simulated 8-processor machine, and matches the
sequential interpretation.  It then modifies the non-bonded list (jnb) and
re-runs — the schedule cache detects the modification and regenerates,
reusing unchanged hash-table analysis.

Run:  python examples/fortran_d_charmm.py
"""

import numpy as np

from repro.lang import ProgramInstance, compile_program, interpret_sequential
from repro.partitioners import RCB
from repro.sim import Machine

N_ATOMS = 200
N_PROCS = 8

SOURCE = f"""
C     Figure 10: non-bonded force calculation loop of CHARMM in Fortran D
      REAL*8 x({N_ATOMS}), y({N_ATOMS}), dx({N_ATOMS}), dy({N_ATOMS})
      INTEGER map({N_ATOMS}), jnb(4000), inblo({N_ATOMS + 1})
C$ DECOMPOSITION reg({N_ATOMS})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y, dx, dy WITH reg
C$ DISTRIBUTE reg(map)
L1:   FORALL i = 1, {N_ATOMS}
        FORALL j = inblo(i), inblo(i+1) - 1
          REDUCE (SUM, dx(jnb(j)), x(jnb(j)) - x(i))
          REDUCE (SUM, dy(jnb(j)), y(jnb(j)) - y(i))
          REDUCE (SUM, dx(i), x(i) - x(jnb(j)))
          REDUCE (SUM, dy(i), y(i) - y(jnb(j)))
        END DO
      END DO
"""


def make_bindings(rng):
    """A random CSR non-bonded list + coordinates + an RCB map array."""
    deg = rng.integers(0, 10, N_ATOMS)
    inblo = np.ones(N_ATOMS + 1, dtype=np.int64)
    inblo[1:] = 1 + np.cumsum(deg)
    jnb = rng.integers(1, N_ATOMS + 1, int(deg.sum()))
    coords = rng.random((N_ATOMS, 3))
    maparr = RCB().partition(coords, N_PROCS).labels
    return dict(
        x=rng.standard_normal(N_ATOMS), y=rng.standard_normal(N_ATOMS),
        dx=np.zeros(N_ATOMS), dy=np.zeros(N_ATOMS),
        map=maparr, jnb=jnb, inblo=inblo,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    program = compile_program(SOURCE)
    nest = program.analyzer.loops[0]
    print(f"compiled: loop kind = {nest.kind!r}, indirection arrays = "
          f"{nest.indirections}, CSR offsets = {nest.csr_offsets!r}")

    bindings = make_bindings(rng)
    expected = interpret_sequential(
        program, {k: v.copy() for k, v in bindings.items()}
    )

    machine = Machine(N_PROCS)
    inst = ProgramInstance(program, machine,
                           {k: v.copy() for k, v in bindings.items()})
    inst.execute()
    err = np.abs(inst.get_array("dx") - expected["dx"]).max()
    print(f"compiler-parallel vs sequential interpreter: max err {err:.2e}")
    assert err < 1e-10

    loop_id = program.loop_ids()[0]
    hits, builds = inst.cache.stats(loop_id)
    print(f"schedule cache after first run: hits={hits} builds={builds}")

    # re-run unchanged: schedule reused (the §5.3.1 record sees no change)
    inst.run_loop(loop_id)
    hits, builds = inst.cache.stats(loop_id)
    print(f"after unchanged re-run:         hits={hits} builds={builds}")

    # modify the non-bonded list: the record triggers regeneration
    inst.set_array("jnb", rng.integers(1, N_ATOMS + 1,
                                       bindings["jnb"].size))
    inst.run_loop(loop_id)
    hits, builds = inst.cache.stats(loop_id)
    print(f"after jnb modification:         hits={hits} builds={builds}")
    print("OK")


if __name__ == "__main__":
    main()
