"""Mini-CHARMM molecular dynamics, sequential vs CHAOS-parallel.

Builds a small solvated-macromolecule system, runs the same trajectory
sequentially and on a simulated 16-processor machine, verifies they agree,
and prints the paper-style time report (Tables 1/2 rows).

Run:  python examples/charmm_md.py
"""

import numpy as np

from repro.apps.charmm import ParallelMD, SequentialMD, build_small_system
from repro.partitioners import RCB
from repro.core import ExecutionContext
from repro.sim import Machine

N_ATOMS = 600
N_STEPS = 15
UPDATE_EVERY = 5          # non-bonded list regeneration cadence
N_PROCS = 16


def main() -> None:
    system_seq = build_small_system(N_ATOMS, seed=3)
    system_par = system_seq.copy()

    print(f"system: {system_seq.n_atoms} atoms, {system_seq.n_bonds} bonds, "
          f"box {system_seq.box:.2f}, cutoff "
          f"{system_seq.forcefield.cutoff}")

    seq = SequentialMD(system_seq, dt=0.002, update_every=UPDATE_EVERY)
    seq.run(N_STEPS)

    machine = Machine(N_PROCS)
    # the app constructs one ExecutionContext at init; passing one
    # explicitly pins the backend for the whole run
    ctx = ExecutionContext.resolve(machine)
    par = ParallelMD(system_par, ctx, dt=0.002,
                     update_every=UPDATE_EVERY, partitioner=RCB())
    par.run(N_STEPS)

    err = np.abs(par.global_positions() - system_seq.positions).max()
    print(f"max trajectory deviation after {N_STEPS} steps: {err:.2e}")
    assert err < 1e-9

    print(f"\nnon-bonded list updated {par.trace.nb_list_updates} times; "
          f"pair counts: {par.trace.nb_pairs_history}")
    print("\npaper-style report (virtual seconds on the simulated "
          "iPSC/860):")
    for key, value in par.time_report().items():
        print(f"  {key:16s} {value:10.5f}")
    print("OK")


if __name__ == "__main__":
    main()
