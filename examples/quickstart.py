"""Quickstart: the paper's Figure 1 loop, end to end.

Parallelizes

    do n = 1, n_step                      ! outer time loop
      do i = 1, n_edges                   ! irregular inner loop
        x(ia(i)) = x(ia(i)) + y(ib(i))
      end do
    end do

through all six CHAOS phases (paper Figure 4) on a simulated 8-processor
iPSC/860, then verifies the result against plain numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    IrregularReduction,
    split_by_block,
)
from repro.partitioners import RCB
from repro.sim import Machine

N_ELEMENTS = 1000
N_EDGES = 6000
N_STEPS = 5
N_PROCS = 8


def main() -> None:
    rng = np.random.default_rng(7)

    # The data: two arrays indexed through indirection arrays ia/ib that
    # are only known at runtime.
    x = rng.standard_normal(N_ELEMENTS)
    y = rng.standard_normal(N_ELEMENTS)
    coords = rng.random((N_ELEMENTS, 2))          # element "positions"
    ia = rng.integers(0, N_ELEMENTS, N_EDGES)
    ib = np.clip(ia + rng.integers(-20, 21, N_EDGES), 0, N_ELEMENTS - 1)

    machine = Machine(N_PROCS)                    # simulated iPSC/860
    # one ExecutionContext carries the machine, the resolved backend
    # (REPRO_BACKEND=serial selects the reference), and per-run caches
    ctx = ExecutionContext.resolve(machine)
    rt = ChaosRuntime(ctx)

    # Phase A - data partitioning: RCB over element positions.
    labels = RCB().partition(coords, N_PROCS).labels
    ttable = rt.irregular_table(labels)           # the translation table

    # Phase B - data remapping: distribute x and y by the new map.
    x_d = rt.distribute(x, ttable)
    y_d = rt.distribute(y, ttable)

    # Phases C/D/E - iteration partitioning + inspector: handled by the
    # IrregularReduction facade (hashing ia and ib under stamps, building
    # one merged communication schedule).
    loop = IrregularReduction(rt, ttable, name="fig1").bind(
        ia=split_by_block(ia, machine),
        ib=split_by_block(ib, machine),
    )
    sched = loop.setup()
    print(
        f"schedule: {sched.total_elements()} off-processor elements in "
        f"{sched.total_messages()} messages "
        f"(software caching removed duplicates, vectorization aggregated "
        f"messages)"
    )

    # Phase F - executor, reused every time step (the access pattern does
    # not change, so preprocessing ran exactly once).
    for _ in range(N_STEPS):
        loop.execute(x_d, "ia", lambda yv: yv, {"y": (y_d, "ib")})

    # verify against the sequential oracle
    expected = x.copy()
    for _ in range(N_STEPS):
        np.add.at(expected, ia, y[ib])
    err = np.abs(x_d.to_global() - expected).max()
    print(f"max |parallel - sequential| = {err:.2e}")
    assert err < 1e-9

    print(
        f"virtual execution time on {N_PROCS} procs: "
        f"{machine.execution_time() * 1e3:.2f} ms "
        f"(compute {machine.clocks.mean_category('compute') * 1e3:.2f} ms, "
        f"comm {machine.clocks.mean_category('comm') * 1e3:.2f} ms)"
    )
    print(f"network traffic: {machine.traffic.n_messages} messages, "
          f"{machine.traffic.total_bytes} bytes")
    print("OK")


if __name__ == "__main__":
    main()
