"""Chaos-as-a-service: the multi-tenant program server end to end.

Spins up a :class:`~repro.serve.server.ProgramServer` and submits a
mixed fleet of tenants — a mini-Fortran-D program, a CHARMM MD
trajectory, a DSMC flow, one tenant that crashes mid-run, and one that
blows its deadline — then shows the soft-failure contract in action:
every tenant gets a recorded verdict, the failures never touch their
neighbours (the survivors' results are bitwise-identical to solo
runs), and the graceful drain leaves no backend resources open.

Run:  python examples/serve_demo.py
"""

import asyncio

import numpy as np

from repro.apps import CharmmJob, DsmcJob
from repro.serve import (
    CallableJob,
    ProgramJob,
    ProgramServer,
    ServerClosed,
    ServerConfig,
    run_job_inline,
)

N = 40
N_EDGES = 160

FIGURE8_SRC = f"""
      REAL x({N}), y({N})
      INTEGER ia({N_EDGES}), ib({N_EDGES})
C$ DECOMPOSITION reg({N})
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y WITH reg
      FORALL i = 1, {N_EDGES}
        REDUCE(SUM, x(ia(i)), y(ib(i)))
      END DO
"""


def figure8_spec(seed: int) -> ProgramJob:
    rng = np.random.default_rng(seed)
    return ProgramJob(
        name="figure8", tenant="lang", seed=seed,
        source=FIGURE8_SRC,
        bindings=dict(
            x=rng.standard_normal(N), y=rng.standard_normal(N),
            ia=rng.integers(1, N + 1, N_EDGES),
            ib=rng.integers(1, N + 1, N_EDGES),
        ),
        fetch=("x",),
    )


def crash(ctx, control):
    raise RuntimeError("tenant bug: divided the universe by zero")


def overrun(ctx, control):
    control.sleep(60)  # wakes early when the server abandons the job


async def main() -> None:
    config = ServerConfig(max_concurrency=3, per_tenant=1,
                          queue_limit=8, default_timeout=30.0)
    fleet = [
        figure8_spec(seed=42),
        CharmmJob(tenant="md", seed=7, n_atoms=120, steps=3),
        DsmcJob(tenant="flow", seed=11, n_initial=300, steps=3),
        CallableJob(fn=crash, name="buggy", tenant="chaos"),
        CallableJob(fn=overrun, name="overdue", tenant="late",
                    timeout=0.5),
    ]

    async with ProgramServer(config) as server:
        handles = [await server.submit(spec) for spec in fleet]
        print(f"admitted {len(handles)} tenants; server: {server}\n")

        for handle in handles:
            verdict = await handle.wait()
            print(verdict.summary())

        # the crash and the timeout never touched their neighbours:
        # survivors match solo runs of the same specs bitwise
        print("\nisolation check (served vs solo):")
        for spec, handle in zip(fleet, handles):
            v = handle.verdict
            if not v.ok:
                continue
            solo = run_job_inline(spec)
            same = all(
                np.array_equal(v.result[k], solo[k]) for k in solo
            )
            print(f"  {v.tenant}/{v.name}: bitwise identical = {same}")

        await server.drain()
        print(f"\ndrained; leaked contexts: {server.leaked_contexts()}")
        print(f"stats: {server.stats()}")
        try:
            await server.submit(figure8_spec(seed=1))
        except ServerClosed as exc:
            print(f"post-drain submit rejected: {exc}")


if __name__ == "__main__":
    asyncio.run(main())
