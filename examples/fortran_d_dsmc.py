"""Compile and run the paper's Figure 11: DSMC particle movement in
Fortran D with the proposed REDUCE(APPEND) intrinsic.

The compiler recognizes the reduce-append nest and lowers it to a
light-weight schedule + scatter_append — no index translation, no
permutation lists.  Loops L2/L3 recompute the per-cell particle counts,
the extra work the paper notes makes compiler-generated code slightly
slower than the hand version (Table 7).

Run:  python examples/fortran_d_dsmc.py
"""

import numpy as np

from repro.lang import ProgramInstance, compile_program, interpret_sequential
from repro.sim import Machine

N_CELLS = 24
N_PROCS = 4

SOURCE = f"""
C     Figure 11: DSMC particle movement code in Fortran D
C$ DECOMPOSITION celltemp({N_CELLS})
C$ DISTRIBUTE celltemp(BLOCK)
C$ ALIGN icell(*,:), vel(*,:), size(:), new_size(:) WITH celltemp
C     Reduce-append particle data into new cells according to icell
L1:   FORALL j = 1, {N_CELLS}
        FORALL i = 1, size(j)
          REDUCE(APPEND, vel(i, icell(i,j)), vel(i,j))
        END FORALL
      END FORALL
C     Recompute the number of particles in each cell
L2:   FORALL j = 1, {N_CELLS}
        new_size(j) = 0
      END FORALL
L3:   FORALL j = 1, {N_CELLS}
        FORALL i = 1, size(j)
          REDUCE(SUM, new_size(icell(i,j)), 1)
        END FORALL
      END FORALL
"""


def main() -> None:
    rng = np.random.default_rng(4)
    program = compile_program(SOURCE)
    kinds = {lid: type(p).__name__ for lid, p in program.plans.items()}
    print("compiled plans:", kinds)

    sizes = rng.integers(0, 9, N_CELLS).astype(np.int64)
    make = lambda: dict(  # noqa: E731
        size=sizes.copy(),
        vel=[rng.standard_normal(s) for s in sizes],
        icell=[rng.integers(1, N_CELLS + 1, s) for s in sizes],
        new_size=np.zeros(N_CELLS),
    )
    bindings = make()
    copy = lambda b: {  # noqa: E731
        k: ([r.copy() for r in v] if isinstance(v, list) else v.copy())
        for k, v in b.items()
    }

    expected = interpret_sequential(program, copy(bindings))

    machine = Machine(N_PROCS)
    inst = ProgramInstance(program, machine, copy(bindings))
    inst.execute()

    new_size = inst.get_array("new_size")
    assert np.array_equal(new_size, expected["new_size"])
    vel = inst.get_array("vel")
    for c in range(N_CELLS):
        assert np.allclose(np.sort(vel[c]), np.sort(expected["vel"][c]))
    print(f"particle movement verified: per-cell counts "
          f"{new_size.astype(int).tolist()}")
    print(f"light-weight migration traffic: "
          f"{machine.traffic.tag_bytes('scatter_append')} bytes in "
          f"{machine.traffic.tag_messages('scatter_append')} messages")
    print(f"virtual execution time: {machine.execution_time() * 1e3:.3f} ms")
    print("OK")


if __name__ == "__main__":
    main()
