"""Figure 6, executably: stamps, merged and incremental schedules.

Reproduces the paper's worked example character for character:
processor 0 hashes three indirection arrays

    ia = 1, 3, 7, 9, 2
    ib = 1, 5, 7, 8, 2
    ic = 4, 3, 10, 8, 9

against data array y distributed with elements 1..5 on processor 0 and
6..10 on processor 1, then builds the four schedules of the figure:

    sched_A        (stamp a)      -> gathers elements 7, 9
    sched_B        (stamp b)      -> gathers elements 7, 8
    inc_schedB     (stamp b - a)  -> gathers element 8
    merged_shedABC (stamp a+b+c)  -> gathers elements 7, 9, 8, 10

then runs an adaptive gather loop through :func:`run_pipeline` with a
``loop_id``, showing the fused-plan cache reusing one compiled chain
across iterations — and rebuilding it exactly once after a stamp is
cleared and re-hashed.

Run:  python examples/schedule_reuse.py
"""

import numpy as np

from repro.core import (
    ChaosRuntime,
    ExecutionContext,
    IrregularReduction,
    allocate_ghosts,
    gather_phase,
    run_pipeline,
)
from repro.sim import Machine


def main() -> None:
    # one ExecutionContext per run: machine + resolved backend + per-run
    # services, shared by every primitive the runtime touches
    ctx = ExecutionContext.resolve(Machine(2))
    rt = ChaosRuntime(ctx)

    # y(1..10): elements 1-5 on processor 0, 6-10 on processor 1.
    ttable = rt.irregular_table([0] * 5 + [1] * 5)

    z = np.zeros(0, dtype=np.int64)
    to0 = lambda one_based: [np.array(one_based) - 1, z]  # noqa: E731

    rt.hash_indirection(ttable, to0([1, 3, 7, 9, 2]), "a")
    rt.hash_indirection(ttable, to0([1, 5, 7, 8, 2]), "b")
    rt.hash_indirection(ttable, to0([4, 3, 10, 8, 9]), "c")
    ht0 = rt.hash_tables(ttable)[0]
    print(f"processor 0 hash table: {len(ht0)} entries, "
          f"{ht0.ghost_capacity()} ghost slots, stamps {ht0.registry.names()}")

    def fetched(expr) -> list[int]:
        sched = rt.build_schedule(ttable, expr)
        # what processor 1 sends to processor 0, as 1-based element ids
        return [6 + int(off) for off in sched.send_view(1, 0)]

    e = ht0.expr
    cases = [
        ("sched_A   = CHAOS_schedule(stamp = a)", e("a"), [7, 9]),
        ("sched_B   = CHAOS_schedule(stamp = b)", e("b"), [7, 8]),
        ("inc_schedB = CHAOS_schedule(stamp = b-a)", e("b") - e("a"), [8]),
        ("merged_shedABC = CHAOS_schedule(stamp = a+b+c)",
         e("a", "b", "c"), [7, 8, 9, 10]),
    ]
    for label, expr, expected in cases:
        got = sorted(fetched(expr))
        status = "OK" if got == sorted(expected) else "MISMATCH"
        print(f"{label:48s} gathers {got}  [{status}]")
        assert got == sorted(expected)

    # the adaptive trick: clear stamp b, rehash a *changed* ib — unchanged
    # entries (1, 7, 2) are reused, only 6 is translated anew
    entries_before = len(ht0)
    rt.clear_stamp(ttable, "b")
    rt.hash_indirection(ttable, to0([1, 6, 7, 2]), "b")
    print(f"\nafter re-hashing a modified ib: {len(ht0)} entries "
          f"({len(ht0) - entries_before} new), "
          f"sched_B now gathers {sorted(fetched(e('b')))}")

    # fused pipelines in an adaptive loop: two gathers over sched_A,
    # compiled into one single-permutation pass and cached under the
    # loop id.  Iteration 1 builds the fused plan, iterations 2-3 hit.
    y = rt.distribute(np.arange(1.0, 11.0), ttable)
    w = rt.distribute(np.arange(1.0, 11.0) ** 2, ttable)
    sched = rt.build_schedule(ttable, e("a"))
    for _ in range(3):
        run_pipeline(
            rt.ctx,
            [gather_phase(sched, y.local, allocate_ghosts(sched, y.local)),
             gather_phase(sched, w.local, allocate_ghosts(sched, w.local))],
            loop_id="example:field_gather",
        )
    hits, builds = rt.cache_stats("example:field_gather", fused=True)
    print(f"\nfused plan cache after 3 iterations: "
          f"{hits} hits, {builds} builds")

    # re-hash stamp a (the mesh adapted): the next pipeline run detects
    # the stale chain and rebuilds the fused plan exactly once
    rt.clear_stamp(ttable, "a")
    rt.hash_indirection(ttable, to0([1, 3, 7, 9, 2]), "a")
    sched = rt.build_schedule(ttable, e("a"))
    run_pipeline(
        rt.ctx,
        [gather_phase(sched, y.local, allocate_ghosts(sched, y.local)),
         gather_phase(sched, w.local, allocate_ghosts(sched, w.local))],
        loop_id="example:field_gather",
    )
    hits, builds = rt.cache_stats("example:field_gather", fused=True)
    print(f"after a stamp change + rebuild:      "
          f"{hits} hits, {builds} builds")
    assert (hits, builds) == (2, 2)

    # incremental delta rebuilds: an adapt() that names the *touched
    # positions* repairs the cached schedule in place (rehash_delta +
    # delta_rebuild_schedule) instead of re-running the full inspector.
    # ia changes one entry per step — exactly the paper's few-percent
    # non-bonded-list churn, at toy scale.
    loop = IrregularReduction(rt, ttable, "example:adaptive")
    ia = to0([1, 3, 7, 9, 2])
    loop.bind(ia=ia)
    loop.setup()                      # cold build
    loop.execute(y, "ia", lambda wv: wv, {"w": (w, "ia")})
    for step, replacement in enumerate([8, 10, 4]):
        nxt = [ia[0].copy(), z]
        nxt[0][step] = replacement - 1          # one touched position
        loop.adapt("ia", nxt, touched=[np.array([step]), z])
        loop.execute(y, "ia", lambda wv: wv, {"w": (w, "ia")})
        ia = nxt
    st = rt.cache_stats("example:adaptive")
    print(f"\nadaptive loop cache: {st.builds} full build, "
          f"{st.delta_rebuilds} delta rebuilds "
          f"({st.resident_bytes} cached bytes)")
    assert (st.builds, st.delta_rebuilds) == (1, 3)
    print("OK")


if __name__ == "__main__":
    main()
