"""DSMC directional gas flow: light-weight schedules + periodic remapping.

Runs the particle-in-cell code on a 2-D grid with the paper's directional
flow (>70% of molecules drifting +x), comparing:

* light-weight vs regular schedules for the per-step MOVE migration
  (Table 4's comparison),
* a static cell partition vs periodic chain-partitioner remapping
  (Table 5's comparison),

and verifies the parallel particle state is bit-identical to the
sequential oracle in every configuration.

Run:  python examples/dsmc_flow.py
"""

import numpy as np

from repro.apps.dsmc import (
    CartesianGrid,
    DSMCConfig,
    ParallelDSMC,
    SequentialDSMC,
)
from repro.partitioners import ChainPartitioner
from repro.core import ExecutionContext
from repro.sim import Machine

GRID = (20, 10)
N_STEPS = 15
N_PROCS = 8


def config() -> DSMCConfig:
    return DSMCConfig(n_initial=3000, inflow_rate=120, dt=0.3,
                      initial_profile="plume")


def main() -> None:
    grid = CartesianGrid(GRID)
    seq = SequentialDSMC(grid, config())
    seq.run(N_STEPS)
    ids_ref, pos_ref, vel_ref = seq.canonical_state()
    print(f"sequential: {seq.particles.n} particles after {N_STEPS} steps, "
          f"{sum(seq.trace.n_collisions)} collisions")

    results = {}
    for migration in ("lightweight", "regular"):
        m = Machine(N_PROCS)
        par = ParallelDSMC(grid, ExecutionContext.resolve(m), config(),
                           migration=migration)
        par.run(N_STEPS)
        ids, pos, vel = par.canonical_state()
        assert np.array_equal(ids, ids_ref)
        assert np.array_equal(pos, pos_ref)
        assert np.array_equal(vel, vel_ref)
        results[migration] = m.execution_time()
        print(f"{migration:12s} migration: exact match, virtual time "
              f"{m.execution_time() * 1e3:8.2f} ms")
    print(f"light-weight speedup over regular schedules: "
          f"{results['regular'] / results['lightweight']:.2f}x")

    # remapping vs static
    m_static = Machine(N_PROCS)
    par_static = ParallelDSMC(grid, m_static, config())
    par_static.run(N_STEPS)
    m_remap = Machine(N_PROCS)
    par_remap = ParallelDSMC(grid, m_remap, config())
    par_remap.run(N_STEPS, remap_every=5,
                  remap_partitioner=ChainPartitioner(axis=0))
    ids, pos, vel = par_remap.canonical_state()
    assert np.array_equal(pos, pos_ref)

    loads_static = par_static.local_counts()
    loads_remap = par_remap.local_counts()
    print(f"\nparticles per rank, static partition:  {loads_static.tolist()}")
    print(f"particles per rank, chain remapping:   {loads_remap.tolist()}")
    print(f"static exec {m_static.execution_time() * 1e3:8.2f} ms | "
          f"remapped exec {m_remap.execution_time() * 1e3:8.2f} ms")
    print("OK")


if __name__ == "__main__":
    main()
