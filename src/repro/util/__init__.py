"""Shared utilities: counter-based PRNG, table formatting."""

from repro.util.prng import (
    hash_permutation_key,
    hash_uniform,
    hash_unit_vector,
    splitmix64,
)
from repro.util.tables import format_table

__all__ = [
    "splitmix64",
    "hash_uniform",
    "hash_unit_vector",
    "hash_permutation_key",
    "format_table",
]
