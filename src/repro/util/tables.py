"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned text table (paper-style benchmark output)."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
