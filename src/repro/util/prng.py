"""Counter-based deterministic randomness (vectorized SplitMix64).

DSMC collision outcomes must be *identical* between the sequential oracle
and every parallel configuration, regardless of how particles are ordered
in memory or which rank owns a cell.  Object-style RNGs can't give that
(their streams depend on draw order), so we derive every random quantity
from a pure hash of logical coordinates — (seed, step, particle ids) —
with SplitMix64, fully vectorized over uint64 numpy arrays.
"""

from __future__ import annotations

import numpy as np

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_U53 = np.uint64((1 << 53) - 1)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (or scalar).

    uint64 wraparound is the algorithm; numpy only warns for 0-d inputs,
    so everything is promoted to at least 1-d and squeezed back.
    """
    arr = np.atleast_1d(np.asarray(x, dtype=np.uint64))
    z = (arr + _GAMMA).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * _M1
    z = (z ^ (z >> np.uint64(27))) * _M2
    z = z ^ (z >> np.uint64(31))
    return z if np.ndim(x) else z[0]


def _combine(*keys) -> np.ndarray:
    """Hash-combine several integer keys (arrays broadcast together).

    Each key is salted with its position so the combination is
    order-sensitive: ``hash(a, b) != hash(b, a)``.
    """
    if not keys:
        raise ValueError("need at least one key")
    acc = None
    for i, k in enumerate(keys):
        arr = np.asarray(k, dtype=np.int64).astype(np.uint64)
        h = splitmix64(arr ^ splitmix64(np.uint64(i + 1)))
        acc = h if acc is None else splitmix64(acc ^ h)
    return acc


def hash_uniform(*keys) -> np.ndarray:
    """Deterministic uniforms in [0, 1) from integer keys.

    ``hash_uniform(seed, step, ids)`` broadcasts like numpy: any key may
    be an array.
    """
    bits = _combine(*keys) & _U53
    return bits.astype(np.float64) / float(1 << 53)


def hash_permutation_key(*keys) -> np.ndarray:
    """Raw 64-bit hash usable as a sort key for hash-order permutations."""
    return _combine(*keys)


def hash_unit_vector(dim: int, *keys) -> np.ndarray:
    """Deterministic uniformly-distributed unit vectors, shape (n, dim).

    2-D: angle from one uniform.  3-D: Marsaglia-style z + azimuth from
    two independent uniforms.
    """
    if dim == 2:
        theta = 2.0 * np.pi * hash_uniform(*keys, 101)
        return np.stack([np.cos(theta), np.sin(theta)], axis=-1)
    if dim == 3:
        z = 2.0 * hash_uniform(*keys, 211) - 1.0
        phi = 2.0 * np.pi * hash_uniform(*keys, 223)
        r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
        return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=-1)
    raise ValueError(f"unsupported dimension {dim}")
