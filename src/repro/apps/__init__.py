"""Adaptive irregular applications parallelized with CHAOS.

``charmm`` — a mini molecular-dynamics code with the computational
structure of CHARMM (static bonded indirection, periodically-regenerated
non-bonded lists).  ``dsmc`` — a Direct Simulation Monte Carlo
particle-in-cell code (per-step particle migration, drifting load).
``jobs`` — submit-friendly :class:`~repro.serve.job.JobSpec` wrappers
(:class:`CharmmJob`, :class:`DsmcJob`) for hosting either app as a
tenant of :class:`~repro.serve.server.ProgramServer`.
"""


def __getattr__(name):
    # lazy: the job specs pull in repro.serve, which plain charmm/dsmc
    # users never need
    if name in ("CharmmJob", "DsmcJob"):
        from repro.apps import jobs

        return getattr(jobs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
