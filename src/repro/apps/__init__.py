"""Adaptive irregular applications parallelized with CHAOS.

``charmm`` — a mini molecular-dynamics code with the computational
structure of CHARMM (static bonded indirection, periodically-regenerated
non-bonded lists).  ``dsmc`` — a Direct Simulation Monte Carlo
particle-in-cell code (per-step particle migration, drifting load).
"""
