"""Particle state and workload generators for DSMC.

Particles are stored struct-of-arrays: ids (stable identity for oracle
comparisons), positions, velocities.  The flow generator reproduces the
paper's directional regime — "more than 70 percent of the molecules were
found moving along the positive x-axis" — which drives both the per-step
migration volume and the drifting load imbalance remapping must fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.dsmc.grid import CartesianGrid
from repro.util.prng import hash_uniform


@dataclass
class ParticleSet:
    """Struct-of-arrays particle storage."""

    ids: np.ndarray        # (n,) int64, globally unique
    positions: np.ndarray  # (n, dim)
    velocities: np.ndarray  # (n, dim)

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.velocities = np.asarray(self.velocities, dtype=np.float64)
        n = self.ids.shape[0]
        if self.positions.shape[0] != n or self.velocities.shape[0] != n:
            raise ValueError("SoA length mismatch")
        if self.positions.shape != self.velocities.shape:
            raise ValueError("positions/velocities shape mismatch")

    @property
    def n(self) -> int:
        return self.ids.shape[0]

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def select(self, mask_or_idx) -> "ParticleSet":
        return ParticleSet(
            ids=self.ids[mask_or_idx],
            positions=self.positions[mask_or_idx],
            velocities=self.velocities[mask_or_idx],
        )

    def concat(self, other: "ParticleSet") -> "ParticleSet":
        return ParticleSet(
            ids=np.concatenate([self.ids, other.ids]),
            positions=np.concatenate([self.positions, other.positions]),
            velocities=np.concatenate([self.velocities, other.velocities]),
        )

    @classmethod
    def empty(cls, dim: int) -> "ParticleSet":
        return cls(
            ids=np.zeros(0, dtype=np.int64),
            positions=np.zeros((0, dim)),
            velocities=np.zeros((0, dim)),
        )

    def sorted_by_id(self) -> "ParticleSet":
        order = np.argsort(self.ids, kind="stable")
        return self.select(order)

    def state_tuple(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical (id-sorted) state for oracle comparisons."""
        s = self.sorted_by_id()
        return s.ids, s.positions, s.velocities


@dataclass(frozen=True)
class FlowConfig:
    """Workload knobs for the synthetic gas flow."""

    drift_fraction: float = 0.75   # fraction of molecules drifting +x
    drift_speed: float = 1.2       # mean +x speed of drifting molecules
    thermal_speed: float = 0.35    # isotropic thermal component
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.drift_fraction <= 1.0:
            raise ValueError("drift_fraction must be in [0, 1]")
        if self.drift_speed < 0 or self.thermal_speed < 0:
            raise ValueError("speeds must be non-negative")


def _hash_normal(*keys) -> np.ndarray:
    """Deterministic standard normals (Box-Muller over hash uniforms)."""
    u1 = np.maximum(hash_uniform(*keys, 7), 1e-12)
    u2 = hash_uniform(*keys, 11)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def make_velocities(ids: np.ndarray, dim: int, flow: FlowConfig) -> np.ndarray:
    """Deterministic velocities for the given particle ids."""
    ids = np.asarray(ids, dtype=np.int64)
    v = np.empty((ids.size, dim))
    for k in range(dim):
        v[:, k] = flow.thermal_speed * _hash_normal(flow.seed, ids, 1000 + k)
    drifting = hash_uniform(flow.seed, ids, 17) < flow.drift_fraction
    v[:, 0] += np.where(drifting, flow.drift_speed, 0.0)
    return v


def uniform_population(
    grid: CartesianGrid, n_particles: int, flow: FlowConfig
) -> ParticleSet:
    """Deterministic uniformly-spread initial population (Table 4 setup:
    "computational load was deliberately evenly distributed")."""
    if n_particles < 0:
        raise ValueError("negative particle count")
    ids = np.arange(n_particles, dtype=np.int64)
    pos = np.empty((n_particles, grid.dim))
    for k in range(grid.dim):
        pos[:, k] = hash_uniform(flow.seed, ids, 2000 + k) * grid.lengths[k]
    vel = make_velocities(ids, grid.dim, flow)
    return ParticleSet(ids=ids, positions=pos, velocities=vel)


def plume_population(
    grid: CartesianGrid, n_particles: int, flow: FlowConfig,
    decay_fraction: float = 0.35,
) -> ParticleSet:
    """Developed-flow initial population: density decays downstream.

    Models the steady state a long directional-flow run reaches (dense
    near the inflow, thinning toward the outflow) so short benchmark runs
    start from the load profile the paper's 1000-step simulations develop.
    ``decay_fraction`` is the e-folding length as a fraction of the
    domain's x extent.
    """
    if n_particles < 0:
        raise ValueError("negative particle count")
    if decay_fraction <= 0:
        raise ValueError("decay_fraction must be positive")
    ids = np.arange(n_particles, dtype=np.int64)
    pos = np.empty((n_particles, grid.dim))
    lx = grid.lengths[0]
    scale = decay_fraction * lx
    u = np.maximum(hash_uniform(flow.seed, ids, 2100), 1e-12)
    # inverse-CDF sample of a truncated exponential on [0, lx)
    trunc = 1.0 - np.exp(-lx / scale)
    pos[:, 0] = -scale * np.log(1.0 - u * trunc)
    np.clip(pos[:, 0], 0.0, np.nextafter(lx, 0.0), out=pos[:, 0])
    for k in range(1, grid.dim):
        pos[:, k] = hash_uniform(flow.seed, ids, 2000 + k) * grid.lengths[k]
    vel = make_velocities(ids, grid.dim, flow)
    return ParticleSet(ids=ids, positions=pos, velocities=vel)


def inflow_particles(
    grid: CartesianGrid,
    step: int,
    count: int,
    next_id: int,
    flow: FlowConfig,
    inflow_depth: float = 1.0,
) -> ParticleSet:
    """Deterministic inflow for one step: new molecules enter near x=0.

    ``inflow_depth`` is the x-extent (in cell widths) of the entry slab.
    Identical between sequential and parallel drivers by construction.
    """
    if count < 0:
        raise ValueError("negative inflow count")
    ids = np.arange(next_id, next_id + count, dtype=np.int64)
    pos = np.empty((count, grid.dim))
    depth = inflow_depth * grid.cell_size[0]
    pos[:, 0] = hash_uniform(flow.seed, ids, 31, step) * depth
    for k in range(1, grid.dim):
        pos[:, k] = hash_uniform(flow.seed, ids, 3000 + k, step) * grid.lengths[k]
    vel = make_velocities(ids, grid.dim, flow)
    vel[:, 0] = np.abs(vel[:, 0]) + 0.05  # inflow must move downstream
    return ParticleSet(ids=ids, positions=pos, velocities=vel)
