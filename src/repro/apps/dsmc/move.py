"""The MOVE phase (paper Figure 3): advance particles, apply boundaries.

Molecules drift ballistically for ``dt``, reflect off the transverse
walls, leave the domain through the outflow boundary (x >= L), and a
deterministic inflow enters near x = 0 each step.  The functions here are
pure — both the sequential oracle and each parallel rank call the same
code on their own particle arrays, guaranteeing identical physics.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dsmc.grid import CartesianGrid
from repro.apps.dsmc.particles import FlowConfig, ParticleSet, inflow_particles


def advance_positions(
    pset: ParticleSet, grid: CartesianGrid, dt: float
) -> ParticleSet:
    """Ballistic drift + transverse-wall reflection; returns updated set.

    x (axis 0) is the flow direction: particles may leave through either
    end (handled by :func:`remove_outflow`).  Transverse axes reflect
    elastically off the walls.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    pos = pset.positions + dt * pset.velocities
    vel = pset.velocities.copy()
    for k in range(1, grid.dim):
        length = grid.lengths[k]
        # reflect (possibly multiple times for fast particles)
        period = 2.0 * length
        folded = np.mod(pos[:, k], period)
        reflect = folded > length
        pos[:, k] = np.where(reflect, period - folded, folded)
        # velocity flips once per odd number of wall hits
        crossings = np.floor((pset.positions[:, k] + dt * vel[:, k]) / length)
        vel[:, k] = np.where(crossings.astype(np.int64) % 2 != 0,
                             -vel[:, k], vel[:, k])
    return ParticleSet(ids=pset.ids, positions=pos, velocities=vel)


def remove_outflow(pset: ParticleSet, grid: CartesianGrid) -> ParticleSet:
    """Drop particles that left through either x boundary."""
    keep = (pset.positions[:, 0] >= 0.0) & (
        pset.positions[:, 0] < grid.lengths[0]
    )
    return pset.select(keep)


def move_phase(
    pset: ParticleSet,
    grid: CartesianGrid,
    dt: float,
    step: int,
    next_id: int,
    inflow_rate: int,
    flow: FlowConfig,
) -> tuple[ParticleSet, int]:
    """Full MOVE: drift, boundary handling, inflow.

    Returns the updated particle set and the next unused particle id.
    """
    moved = advance_positions(pset, grid, dt)
    kept = remove_outflow(moved, grid)
    if inflow_rate > 0:
        incoming = inflow_particles(grid, step, inflow_rate, next_id, flow)
        kept = kept.concat(incoming)
        next_id += inflow_rate
    return kept, next_id
