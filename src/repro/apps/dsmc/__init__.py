"""DSMC: Direct Simulation Monte Carlo particle-in-cell application."""

from repro.apps.dsmc.grid import CartesianGrid
from repro.apps.dsmc.particles import (
    FlowConfig,
    ParticleSet,
    inflow_particles,
    make_velocities,
    plume_population,
    uniform_population,
)
from repro.apps.dsmc.collisions import collide_cells, collision_pair_count
from repro.apps.dsmc.move import advance_positions, move_phase, remove_outflow
from repro.apps.dsmc.sequential import (
    DSMCConfig,
    DSMCTrace,
    SequentialDSMC,
    initial_population,
)
from repro.apps.dsmc.parallel import ParallelDSMC

__all__ = [
    "CartesianGrid",
    "FlowConfig",
    "ParticleSet",
    "inflow_particles",
    "make_velocities",
    "uniform_population",
    "plume_population",
    "initial_population",
    "collide_cells",
    "collision_pair_count",
    "advance_positions",
    "move_phase",
    "remove_outflow",
    "DSMCConfig",
    "DSMCTrace",
    "SequentialDSMC",
    "ParallelDSMC",
]
