"""Per-cell hard-sphere collision phase, order-insensitive deterministic.

DSMC collides molecules only with others in the same cell.  Outcomes must
not depend on particle storage order or cell ownership (the parallel
oracle requirement), so all randomness is counter-based
(:mod:`repro.util.prng`) keyed on (seed, step, particle ids):

1. within each cell, particles are permuted by a hash of their ids,
2. consecutive pairs in that order collide (one collision per molecule
   per step, the simple no-time-counter variant),
3. each pair's post-collision relative direction is a hash-derived unit
   vector keyed by both ids — elastic hard-sphere kinematics preserve
   momentum and kinetic energy exactly.

Fully vectorized across all cells at once via a single lexsort.
"""

from __future__ import annotations

import numpy as np

from repro.util.prng import hash_permutation_key, hash_unit_vector

#: abstract work units per colliding pair (used for virtual-time charging).
#: Real DSMC collision kernels evaluate cross-sections, acceptance tests
#: and post-collision kinematics — roughly 10^2 flops per pair.
COLLIDE_OPS = 150.0
#: abstract work units per particle for the move/reindex phase (geometry
#: checks, boundary handling, cell reindexing).
MOVE_OPS = 40.0


def collide_cells(
    ids: np.ndarray,
    cells: np.ndarray,
    velocities: np.ndarray,
    step: int,
    seed: int = 0,
) -> tuple[np.ndarray, int]:
    """Collide particles within cells; returns (new_velocities, n_pairs).

    Input arrays may be any permutation of the global particle set (or any
    subset closed under whole cells); results are identical per particle.
    """
    ids = np.asarray(ids, dtype=np.int64)
    cells = np.asarray(cells, dtype=np.int64)
    vel = np.asarray(velocities, dtype=np.float64)
    n = ids.size
    if cells.shape != (n,) or vel.shape[0] != n:
        raise ValueError("ids/cells/velocities length mismatch")
    if n < 2:
        return vel.copy(), 0

    hkey = hash_permutation_key(seed, 71, step, ids)
    order = np.lexsort((hkey, cells))
    sc = cells[order]
    # segment-local index of each particle within its cell
    seg_start = np.flatnonzero(np.concatenate(([True], sc[1:] != sc[:-1])))
    seg_id = np.cumsum(np.concatenate(([0], (sc[1:] != sc[:-1]).astype(np.int64))))
    local_idx = np.arange(n, dtype=np.int64) - seg_start[seg_id]
    seg_len = np.diff(np.concatenate((seg_start, [n])))
    my_len = seg_len[seg_id]
    # pair k = (local 2k, local 2k+1); odd leftover skips
    is_first = (local_idx % 2 == 0) & (local_idx + 1 < my_len)
    a = order[is_first]
    b_positions = np.flatnonzero(is_first) + 1
    b = order[b_positions]

    new_vel = vel.copy()
    if a.size == 0:
        return new_vel, 0
    id_lo = np.minimum(ids[a], ids[b])
    id_hi = np.maximum(ids[a], ids[b])
    v1, v2 = vel[a], vel[b]
    vcm = 0.5 * (v1 + v2)
    vrel = np.linalg.norm(v1 - v2, axis=1)
    direction = hash_unit_vector(vel.shape[1], seed, 83, step, id_lo, id_hi)
    half = 0.5 * vrel[:, None] * direction
    new_vel[a] = vcm + half
    new_vel[b] = vcm - half
    return new_vel, int(a.size)


def collision_pair_count(cells: np.ndarray) -> int:
    """Pairs the collision phase will process (for work estimates)."""
    counts = np.bincount(np.asarray(cells, dtype=np.int64))
    return int((counts // 2).sum())
