"""Sequential DSMC reference driver — the oracle for the parallel code.

Because every source of randomness is counter-based, the parallel driver
reproduces this driver's particle state *bit-for-bit* (not just
statistically), which the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.dsmc.collisions import collide_cells
from repro.apps.dsmc.grid import CartesianGrid
from repro.apps.dsmc.move import move_phase
from repro.apps.dsmc.particles import (
    FlowConfig,
    ParticleSet,
    plume_population,
    uniform_population,
)


@dataclass
class DSMCConfig:
    """Workload parameters shared by sequential and parallel drivers."""

    n_initial: int = 5000
    inflow_rate: int = 50
    dt: float = 0.4
    flow: FlowConfig = field(default_factory=FlowConfig)
    collision_seed: int = 12345
    #: "uniform" (Table 4's deliberately even load) or "plume" (a
    #: developed directional-flow profile, dense upstream — the regime
    #: Table 5's remapping comparison exercises)
    initial_profile: str = "uniform"

    def __post_init__(self):
        if self.n_initial < 0:
            raise ValueError("negative initial particle count")
        if self.inflow_rate < 0:
            raise ValueError("negative inflow rate")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.initial_profile not in ("uniform", "plume"):
            raise ValueError(
                f"unknown initial profile {self.initial_profile!r}"
            )


def initial_population(grid: CartesianGrid, config: "DSMCConfig") -> ParticleSet:
    """Initial particles per the config's profile (shared by both drivers)."""
    if config.initial_profile == "plume":
        return plume_population(grid, config.n_initial, config.flow)
    return uniform_population(grid, config.n_initial, config.flow)


@dataclass
class DSMCTrace:
    """Per-step diagnostics."""

    n_particles: list[int] = field(default_factory=list)
    n_collisions: list[int] = field(default_factory=list)
    max_cell_load: list[int] = field(default_factory=list)


class SequentialDSMC:
    """In-order DSMC simulation on global arrays."""

    def __init__(self, grid: CartesianGrid, config: DSMCConfig | None = None):
        self.grid = grid
        self.config = config if config is not None else DSMCConfig()
        self.particles = initial_population(grid, self.config)
        self.next_id = self.config.n_initial
        self.step_count = 0
        self.trace = DSMCTrace()

    def step(self) -> None:
        cfg = self.config
        self.particles, self.next_id = move_phase(
            self.particles, self.grid, cfg.dt, self.step_count,
            self.next_id, cfg.inflow_rate, cfg.flow,
        )
        cells = self.grid.cell_of(self.particles.positions)
        new_vel, n_pairs = collide_cells(
            self.particles.ids, cells, self.particles.velocities,
            self.step_count, cfg.collision_seed,
        )
        self.particles = ParticleSet(
            ids=self.particles.ids,
            positions=self.particles.positions,
            velocities=new_vel,
        )
        counts = np.bincount(cells, minlength=self.grid.n_cells)
        self.trace.n_particles.append(self.particles.n)
        self.trace.n_collisions.append(n_pairs)
        self.trace.max_cell_load.append(int(counts.max()) if counts.size else 0)
        self.step_count += 1

    def run(self, n_steps: int) -> DSMCTrace:
        if n_steps < 0:
            raise ValueError("negative step count")
        for _ in range(n_steps):
            self.step()
        return self.trace

    def cell_loads(self) -> np.ndarray:
        """Current particles per cell."""
        cells = self.grid.cell_of(self.particles.positions)
        return np.bincount(cells, minlength=self.grid.n_cells)

    def canonical_state(self):
        """(ids, positions, velocities) sorted by id, for oracle checks."""
        return self.particles.state_tuple()
