"""CHAOS-parallel DSMC driver (paper §4.2).

Cells are distributed over ranks (BLOCK initially, or by a partitioner);
each rank holds the particles of its cells.  Every step:

1. **move** — each rank advances its particles (same pure kernels as the
   sequential driver) and computes destination cells,
2. **migration** — particles whose new cell lives elsewhere move, either
   with a **light-weight schedule** (one bucketing pass + size exchange +
   ``scatter_append``, the paper's fast path) or with **regular
   schedules** (per-step index translation: a new particle numbering, a
   translation-table build, and a permutation-ordered remap — what PARTI
   would have to do; the Table 4 comparison),
3. **collide** — per-cell collisions on owned cells (deterministic
   counter-based randomness ⇒ bit-identical to the sequential oracle),
4. optionally every ``remap_every`` steps — **cell remapping** with RCB /
   RIB / chain to restore load balance (Table 5).
"""

from __future__ import annotations

import numpy as np

from repro.apps.dsmc.collisions import COLLIDE_OPS, MOVE_OPS, collide_cells
from repro.apps.dsmc.grid import CartesianGrid
from repro.apps.dsmc.move import advance_positions, remove_outflow
from repro.apps.dsmc.particles import ParticleSet, inflow_particles
from repro.apps.dsmc.sequential import DSMCConfig, DSMCTrace, initial_population
from repro.core.context import resolve_component
from repro.core.distribution import BlockDistribution, IrregularDistribution
from repro.core.lightweight import (
    build_lightweight_schedule,
    scatter_append_multi,
)
from repro.core.executor import run_pipeline
from repro.core.remap import remap, remap_phase
from repro.core.translation import TranslationTable
from repro.partitioners.base import Partitioner, run_partitioner
from repro.sim.metrics import load_balance_index


class ParallelDSMC:
    """DSMC over distributed cells with CHAOS data migration.

    Parameters
    ----------
    migration:
        ``"lightweight"`` (scatter_append; the paper's contribution) or
        ``"regular"`` (per-step translation + permutation-ordered remap).
    machine:
        An :class:`~repro.core.context.ExecutionContext` (preferred) or a
        bare :class:`Machine`, in which case one context with the default
        backend is resolved at init.  The context's backend runs particle
        migration and remapping; DSMC uses light-weight schedules only,
        so the executor half of the backend seam is what it exercises
        (the inspector half matters for the hash-table apps — CHARMM,
        the compiler runtime).
    partitioner:
        Initial cell partitioner; ``None`` = BLOCK over flat cell ids
        ("static partition" baseline of Table 5 when no remapping).
    """

    def __init__(
        self,
        grid: CartesianGrid,
        machine,
        config: DSMCConfig | None = None,
        migration: str = "lightweight",
        partitioner: Partitioner | None = None,
        ttable_storage: str = "replicated",
    ):
        ctx = resolve_component(machine, "ParallelDSMC")
        if migration not in ("lightweight", "regular"):
            raise ValueError(f"unknown migration mode {migration!r}")
        self.grid = grid
        self.ctx = ctx
        self.machine = ctx.machine
        self.config = config if config is not None else DSMCConfig()
        self.migration = migration
        self.ttable_storage = ttable_storage
        self.trace = DSMCTrace()
        self.step_count = 0
        self.next_id = self.config.n_initial

        m = self.machine
        if partitioner is None:
            dist = BlockDistribution(grid.n_cells, m.n_ranks)
        else:
            res = run_partitioner(
                m, partitioner, grid.cell_centers(), category="partition"
            )
            dist = res.to_distribution(m.n_ranks)
        self.cell_table = TranslationTable(m, dist, storage=ttable_storage)

        # initial particles, split by cell owner
        init = initial_population(grid, self.config)
        cells = grid.cell_of(init.positions)
        owners = self.cell_table.owner_local(cells)
        self.parts: list[ParticleSet] = [
            init.select(owners == p) for p in m.ranks()
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the context's backend resources (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "ParallelDSMC":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def cell_dist(self):
        return self.cell_table.dist

    def local_counts(self) -> np.ndarray:
        return np.array([ps.n for ps in self.parts], dtype=np.int64)

    def total_particles(self) -> int:
        return int(self.local_counts().sum())

    def cell_loads(self) -> np.ndarray:
        """Global particles-per-cell (host-side assembly)."""
        loads = np.zeros(self.grid.n_cells, dtype=np.int64)
        for ps in self.parts:
            if ps.n:
                np.add.at(loads, self.grid.cell_of(ps.positions), 1)
        return loads

    # ------------------------------------------------------------------
    # one simulation step
    # ------------------------------------------------------------------
    def step(self) -> None:
        m = self.machine
        cfg = self.config
        grid = self.grid

        # --- 1. local move (drift + transverse reflection + outflow) ----
        moved: list[ParticleSet] = []
        for p in m.ranks():
            ps = self.parts[p]
            if ps.n:
                ps = remove_outflow(advance_positions(ps, grid, cfg.dt), grid)
            m.charge_compute(p, MOVE_OPS * max(ps.n, 0), "compute")
            moved.append(ps)

        # --- inflow: deterministic; each new molecule starts on the rank
        # owning its cell (boundary cells belong to somebody) -------------
        if cfg.inflow_rate > 0:
            incoming = inflow_particles(
                grid, self.step_count, cfg.inflow_rate, self.next_id, cfg.flow
            )
            self.next_id += cfg.inflow_rate
            in_cells = grid.cell_of(incoming.positions)
            in_owner = self.cell_table.owner_local(in_cells)
            for p in m.ranks():
                mine = incoming.select(in_owner == p)
                if mine.n:
                    moved[p] = moved[p].concat(mine)

        # --- 2. migration to new cell owners ----------------------------
        if self.migration == "lightweight":
            self.parts = self._migrate_lightweight(moved)
        else:
            self.parts = self._migrate_regular(moved)

        # --- 3. collisions on owned cells --------------------------------
        n_pairs_total = 0
        for p in m.ranks():
            ps = self.parts[p]
            if ps.n >= 2:
                cells = grid.cell_of(ps.positions)
                new_vel, n_pairs = collide_cells(
                    ps.ids, cells, ps.velocities,
                    self.step_count, cfg.collision_seed,
                )
                self.parts[p] = ParticleSet(
                    ids=ps.ids, positions=ps.positions, velocities=new_vel
                )
                n_pairs_total += n_pairs
                m.charge_compute(p, COLLIDE_OPS * n_pairs, "compute")
            m.charge_memops(p, 2 * ps.n, "compute")  # cell reindexing
        m.barrier()

        loads = self.cell_loads()
        self.trace.n_particles.append(self.total_particles())
        self.trace.n_collisions.append(n_pairs_total)
        self.trace.max_cell_load.append(int(loads.max()) if loads.size else 0)
        self.step_count += 1

    # ------------------------------------------------------------------
    def _dest_ranks(self, moved: list[ParticleSet]) -> list[np.ndarray]:
        dest = []
        for p in self.machine.ranks():
            ps = moved[p]
            if ps.n:
                cells = self.grid.cell_of(ps.positions)
                dest.append(self.cell_table.owner_local(cells))
                self.machine.charge_memops(p, ps.n, "inspector")
            else:
                dest.append(np.zeros(0, dtype=np.int64))
        return dest

    def _migrate_lightweight(self, moved: list[ParticleSet]
                             ) -> list[ParticleSet]:
        """The paper's fast path: one light-weight schedule moves all
        particle attributes; arrivals append in arbitrary order."""
        dest = self._dest_ranks(moved)
        sched = build_lightweight_schedule(self.ctx, dest,
                                           category="inspector")
        ids, pos, vel = scatter_append_multi(
            self.ctx, sched,
            [[ps.ids for ps in moved],
             [ps.positions for ps in moved],
             [ps.velocities for ps in moved]],
        )
        return [
            ParticleSet(ids=i, positions=x, velocities=v)
            for i, x, v in zip(ids, pos, vel)
        ]

    def _migrate_regular(self, moved: list[ParticleSet]) -> list[ParticleSet]:
        """The PARTI-style path Table 4 compares against: arrivals must be
        placed in a prescribed order, so every step pays

        * a globally-agreed new particle numbering (sort by (cell, id)),
        * a translation-table build over all particles,
        * a permutation-ordered remap (schedule with placement lists).
        """
        m = self.machine
        # global canonical order after the move: by (destination cell, id)
        all_ids = np.concatenate([ps.ids for ps in moved])
        all_pos = np.concatenate([ps.positions for ps in moved])
        all_vel = np.concatenate([ps.velocities for ps in moved])
        src_rank = np.concatenate([
            np.full(moved[p].n, p, dtype=np.int64) for p in m.ranks()
        ])
        n = all_ids.size
        if n == 0:
            return [ParticleSet.empty(self.grid.dim) for _ in m.ranks()]
        cells = self.grid.cell_of(all_pos)
        owner = self.cell_table.owner_local(cells)
        order = np.lexsort((all_ids, cells))
        # new global slot of each particle = its position in this order
        slot_of = np.empty(n, dtype=np.int64)
        slot_of[order] = np.arange(n, dtype=np.int64)
        # old distribution: particles grouped by source rank, slot = global
        # rank-major position; new distribution: owner of each slot
        old_map = src_rank.copy()
        old_dist = IrregularDistribution(old_map, m.n_ranks)
        # the slot-indexed new distribution needs a translation table build
        # every step — the dominant regular-schedule overhead
        new_map_for_old_index = np.empty(n, dtype=np.int64)
        new_map_for_old_index[:] = owner  # owner of particle (by old index)
        # charge: sort + numbering
        for p in m.ranks():
            m.charge_memops(p, 6.0 * moved[p].n, "inspector")
        new_dist = IrregularDistribution(new_map_for_old_index, m.n_ranks)
        TranslationTable(m, new_dist, storage=self.ttable_storage)
        plan = remap(self.ctx, old_dist, new_dist, category="inspector")
        # data arrays in old (source-rank) layout:
        per_rank = lambda arr: [  # noqa: E731
            arr[src_rank == p] for p in m.ranks()
        ]
        ids, pos, vel = run_pipeline(
            self.ctx,
            [remap_phase(plan, per_rank(all_ids)),
             remap_phase(plan, per_rank(all_pos)),
             remap_phase(plan, per_rank(all_vel))],
            category="remap", loop_id="dsmc:particles_remap",
        )
        del slot_of
        return [
            ParticleSet(ids=i, positions=x, velocities=v)
            for i, x, v in zip(ids, pos, vel)
        ]

    # ------------------------------------------------------------------
    # periodic cell remapping (Table 5)
    # ------------------------------------------------------------------
    def remap_cells(self, partitioner: Partitioner) -> None:
        """Repartition cells by current load and migrate particles."""
        m = self.machine
        loads = self.cell_loads().astype(float)
        res = run_partitioner(
            m, partitioner, self.grid.cell_centers(),
            weights=loads + 0.01, category="partition",
        )
        new_table = TranslationTable(
            m, res.to_distribution(m.n_ranks), storage=self.ttable_storage
        )
        self.cell_table = new_table
        # move particles to the new owners of their cells (one message
        # set carries all three attributes)
        dest = self._dest_ranks(self.parts)
        sched = build_lightweight_schedule(self.ctx, dest, category="remap")
        ids, pos, vel = scatter_append_multi(
            self.ctx, sched,
            [[ps.ids for ps in self.parts],
             [ps.positions for ps in self.parts],
             [ps.velocities for ps in self.parts]],
            category="remap",
        )
        self.parts = [
            ParticleSet(ids=i, positions=x, velocities=v)
            for i, x, v in zip(ids, pos, vel)
        ]

    # ------------------------------------------------------------------
    def run(self, n_steps: int, remap_every: int | None = None,
            remap_partitioner: Partitioner | None = None) -> DSMCTrace:
        """Advance ``n_steps``; optionally remap cells every K steps."""
        if n_steps < 0:
            raise ValueError("negative step count")
        if remap_every is not None and remap_every < 1:
            raise ValueError("remap_every must be >= 1")
        for _ in range(n_steps):
            if (
                remap_every
                and remap_partitioner is not None
                and self.step_count > 0
                and self.step_count % remap_every == 0
            ):
                self.remap_cells(remap_partitioner)
            self.step()
        return self.trace

    # ------------------------------------------------------------------
    def canonical_state(self):
        """Global (ids, positions, velocities) sorted by id."""
        merged = ParticleSet.empty(self.grid.dim)
        for ps in self.parts:
            merged = merged.concat(ps)
        return merged.state_tuple()

    def load_balance(self) -> float:
        return load_balance_index(
            self.machine.clocks.category_times("compute")
        )

    def time_report(self) -> dict[str, float]:
        c = self.machine.clocks
        return {
            "execution": self.machine.execution_time(),
            "computation": c.mean_category("compute"),
            "communication": c.mean_category("comm"),
            "inspector": c.mean_category("inspector"),
            "partition": c.mean_category("partition"),
            "remap": c.mean_category("remap"),
            "load_balance": self.load_balance(),
        }
