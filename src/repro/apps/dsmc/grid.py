"""Cartesian grids for the DSMC application (2-D and 3-D).

The DSMC method "involves laying out a cartesian grid over the domain,
which may be either 2-dimensional or 3-dimensional, and associating each
molecule with its cartesian cell" (paper §2.2).  Cells are identified by a
flat row-major index; the grid answers position→cell queries vectorized.
"""

from __future__ import annotations

import numpy as np


class CartesianGrid:
    """Uniform cartesian grid over ``[0, lengths[k])`` per dimension."""

    def __init__(self, shape: tuple[int, ...], lengths: tuple[float, ...] | None = None):
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (2, 3):
            raise ValueError(f"DSMC grids are 2-D or 3-D, got {len(shape)}-D")
        if any(s < 1 for s in shape):
            raise ValueError(f"grid dims must be positive, got {shape}")
        self.shape = shape
        self.dim = len(shape)
        if lengths is None:
            lengths = tuple(float(s) for s in shape)
        lengths = tuple(float(x) for x in lengths)
        if len(lengths) != self.dim:
            raise ValueError("lengths dimensionality mismatch")
        if any(x <= 0 for x in lengths):
            raise ValueError("lengths must be positive")
        self.lengths = lengths
        self.cell_size = tuple(
            length / s for length, s in zip(lengths, shape)
        )
        self._strides = np.ones(self.dim, dtype=np.int64)
        for k in range(self.dim - 2, -1, -1):
            self._strides[k] = self._strides[k + 1] * shape[k + 1]

    @property
    def n_cells(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    # ------------------------------------------------------------------
    def cell_of(self, positions: np.ndarray) -> np.ndarray:
        """Flat cell id per particle position (positions clipped to domain)."""
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != self.dim:
            raise ValueError(
                f"positions must be (n, {self.dim}), got {pos.shape}"
            )
        multi = np.empty((pos.shape[0], self.dim), dtype=np.int64)
        for k in range(self.dim):
            c = np.floor(pos[:, k] / self.cell_size[k]).astype(np.int64)
            np.clip(c, 0, self.shape[k] - 1, out=c)
            multi[:, k] = c
        return multi @ self._strides

    def cell_coords(self, cells: np.ndarray) -> np.ndarray:
        """(n, dim) integer grid coordinates from flat ids."""
        c = np.asarray(cells, dtype=np.int64)
        if c.size and (c.min() < 0 or c.max() >= self.n_cells):
            raise IndexError("cell id out of range")
        out = np.empty((c.size,) + (self.dim,), dtype=np.int64)
        rem = c.copy()
        for k in range(self.dim):
            out[:, k] = rem // self._strides[k]
            rem = rem % self._strides[k]
        return out

    def cell_centers(self) -> np.ndarray:
        """(n_cells, dim) physical center of every cell."""
        coords = self.cell_coords(np.arange(self.n_cells, dtype=np.int64))
        return (coords + 0.5) * np.asarray(self.cell_size)

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean: inside the domain box (before clipping)."""
        pos = np.asarray(positions, dtype=np.float64)
        ok = np.ones(pos.shape[0], dtype=bool)
        for k in range(self.dim):
            ok &= (pos[:, k] >= 0) & (pos[:, k] < self.lengths[k])
        return ok
