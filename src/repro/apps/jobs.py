"""Submit-friendly job specs for the paper's applications.

These wrap the CHARMM MD and DSMC drivers as
:class:`~repro.serve.job.JobSpec`\\ s so a
:class:`~repro.serve.server.ProgramServer` can host them as tenants:
each spec builds its whole workload from its own parameters + seed
inside ``run`` (nothing shared across submissions), steps the driver
with a ``control.check()`` between steps so timeouts and cancellations
take effect at step granularity, and returns plain numpy arrays —
bitwise-comparable between served and solo runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.job import JobControl, JobSpec


@dataclass(kw_only=True)
class CharmmJob(JobSpec):
    """A short mini-CHARMM MD trajectory on a fresh small system."""

    name: str = "charmm"
    n_atoms: int = 150
    steps: int = 3
    dt: float = 0.002
    update_every: int = 2

    def run(self, ctx, control: JobControl) -> dict:
        from repro.apps.charmm import ParallelMD, build_small_system

        control.check()
        system = build_small_system(self.n_atoms, seed=self.seed)
        md = ParallelMD(system, ctx, dt=self.dt,
                        update_every=self.update_every)
        for _ in range(self.steps):
            control.check()
            md.run(1)
        return {
            "positions": md.global_positions(),
            "velocities": md.global_velocities(),
        }


@dataclass(kw_only=True)
class DsmcJob(JobSpec):
    """A short DSMC flow on a fresh grid (light-weight migration)."""

    name: str = "dsmc"
    grid_shape: tuple[int, ...] = (8, 4)
    steps: int = 3
    n_initial: int = 400
    inflow_rate: int = 30
    dt: float = 0.3
    initial_profile: str = "uniform"

    def run(self, ctx, control: JobControl) -> dict:
        from repro.apps.dsmc import CartesianGrid, DSMCConfig, ParallelDSMC

        control.check()
        grid = CartesianGrid(self.grid_shape)
        config = DSMCConfig(
            n_initial=self.n_initial, inflow_rate=self.inflow_rate,
            dt=self.dt, initial_profile=self.initial_profile,
        )
        dsmc = ParallelDSMC(grid, ctx, config=config)
        for _ in range(self.steps):
            control.check()
            dsmc.step()
        ids, positions, velocities = dsmc.canonical_state()
        return {"ids": ids, "positions": positions,
                "velocities": velocities}
