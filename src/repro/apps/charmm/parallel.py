"""CHAOS-parallel mini-CHARMM driver (paper §4.1).

Implements the full six-phase flow on the simulated machine:

* **Phase A** — atoms partitioned by RCB/RIB with computational weights
  proportional to non-bonded list length; replicated translation table.
* **Phase B** — all atom-associated arrays remapped with one plan.
* **Phase C/D** — bonded-loop iterations partitioned almost-owner-computes
  and indirection arrays (``ib``, ``jb``) remapped; non-bonded outer-loop
  iterations follow the owner-computes rule (iteration i runs where atom i
  lives), so its rows need no remap.
* **Phase E** — indirection arrays hashed with stamps (``bonds``, ``nb``);
  schedules built merged (one gather per step) or separate (Table 3's
  comparison).  When the non-bonded list regenerates, only its stamp is
  cleared and re-hashed — unchanged bonded analysis is reused.
* **Phase F** — gather coordinates, compute forces locally, scatter-add
  force contributions, integrate owned atoms.

Virtual-time categories: ``partition``, ``remap``, ``nb_update``,
``inspector`` (initial schedule generation), ``schedule_regen``
(adaptive regenerations), ``comm``, ``compute`` — mapping one-to-one onto
the rows of the paper's Tables 1 and 2.
"""

from __future__ import annotations

import numpy as np

from repro.apps.charmm.forces import (
    BOND_OPS,
    INTEGRATE_OPS,
    NONBOND_OPS,
    bond_pair_forces,
    nonbond_pair_forces,
)
from repro.apps.charmm.neighbors import build_nonbonded_list, take_csr_rows
from repro.apps.charmm.sequential import MDTrace
from repro.apps.charmm.system import MolecularSystem
from repro.core.context import resolve_component
from repro.core.distribution import BlockDistribution
from repro.core.executor import (
    allocate_ghosts,
    gather_phase,
    run_pipeline,
    scatter_op_phase,
    stack_local_ghost,
)
from repro.core.inspector import chaos_hash, clear_stamp, make_hash_tables
from repro.core.iteration import partition_iterations, split_by_block
from repro.core.remap import remap, remap_phase
from repro.core.schedule import Schedule, build_schedule
from repro.core.translation import TranslationTable
from repro.partitioners.base import Partitioner, run_partitioner
from repro.partitioners.geometric import RCB
from repro.sim.metrics import load_balance_index


class ParallelMD:
    """Mini-CHARMM parallelized with CHAOS primitives.

    Parameters
    ----------
    machine:
        An :class:`~repro.core.context.ExecutionContext` (preferred) or a
        bare :class:`Machine`, in which case one context with the default
        backend is resolved at init.  The context's backend runs index
        analysis, schedule generation, the translation lookups they
        trigger, iteration partitioning (Phase C/D), and all Phase-F /
        remap data transport.
    schedule_mode:
        ``"merged"`` builds one schedule for the union of bonded and
        non-bonded stamps (one gather per step); ``"multiple"`` builds one
        schedule per loop, duplicating shared elements — the Table 3
        comparison knob.
    ttable_storage:
        Translation-table policy (paper used ``"replicated"``).
    """

    def __init__(
        self,
        system: MolecularSystem,
        machine,
        dt: float = 0.002,
        update_every: int = 10,
        partitioner: Partitioner | None = None,
        schedule_mode: str = "merged",
        ttable_storage: str = "replicated",
        thermostat_temperature: float | None = None,
        thermostat_tau: float = 0.1,
    ):
        ctx = resolve_component(machine, "ParallelMD")
        if schedule_mode not in ("merged", "multiple"):
            raise ValueError(f"unknown schedule_mode {schedule_mode!r}")
        if update_every < 1:
            raise ValueError(f"update_every must be >= 1, got {update_every}")
        if thermostat_temperature is not None and thermostat_temperature <= 0:
            raise ValueError("thermostat temperature must be positive")
        if thermostat_tau <= 0:
            raise ValueError("thermostat tau must be positive")
        self.thermostat_temperature = thermostat_temperature
        self.thermostat_tau = float(thermostat_tau)
        self.system = system
        self.ctx = ctx
        self.machine = ctx.machine
        self.dt = float(dt)
        self.update_every = int(update_every)
        self.partitioner = partitioner if partitioner is not None else RCB()
        self.schedule_mode = schedule_mode
        self.ttable_storage = ttable_storage
        self.trace = MDTrace()
        self.step_count = 0

        # global-side copies of adaptive state
        self.inblo: np.ndarray | None = None
        self.jnb: np.ndarray | None = None

        self._setup()

    # ==================================================================
    # lifecycle
    # ==================================================================
    def close(self) -> None:
        """Tear down the context's backend resources (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "ParallelMD":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ==================================================================
    # setup: phases A-E
    # ==================================================================
    def _setup(self) -> None:
        s = self.system
        m = self.machine
        # Initial list (needed for load weights), then partition, then the
        # paper regenerates the list after redistribution.
        self.inblo, self.jnb = build_nonbonded_list(
            s.positions, s.forcefield.cutoff, s.box
        )
        self._charge_nb_update()
        weights = self._atom_weights()
        result = run_partitioner(m, self.partitioner, s.positions, weights,
                                 category="partition")
        self.ttable = TranslationTable(
            m, result.to_distribution(m.n_ranks), storage=self.ttable_storage
        )
        dist = self.ttable.dist

        # Phase B: distribute atom arrays (host-side scatter; the initial
        # scatter from a BLOCK'd source is charged as a remap).
        block = BlockDistribution(s.n_atoms, m.n_ranks)
        plan = remap(self.ctx, block, dist, category="remap")
        split = lambda a: [a[block.global_indices(p)] for p in m.ranks()]  # noqa: E731
        # all atom-associated arrays move with one plan (Phase B) — one
        # fused pack/permute/apply pass instead of four remap rounds
        self.pos, self.vel, self.mass, self.charge = run_pipeline(
            self.ctx,
            [remap_phase(plan, split(s.positions)),
             remap_phase(plan, split(s.velocities)),
             remap_phase(plan, split(s.masses)),
             remap_phase(plan, split(s.charges))],
            category="remap", loop_id="charmm:atoms_remap",
        )

        # Phase C/D for the bonded loop.
        ib_g, jb_g = (
            (s.bonds[:, 0], s.bonds[:, 1]) if s.n_bonds
            else (np.zeros(0, dtype=np.int64),) * 2
        )
        assign = partition_iterations(
            self.ctx, self.ttable,
            [[a, b] for a, b in zip(split_by_block(ib_g, m),
                                    split_by_block(jb_g, m))],
            rule="almost-owner-computes", category="partition"
        )
        self.ib = assign.remap_iteration_data(self.ctx, split_by_block(ib_g, m))
        self.jb = assign.remap_iteration_data(self.ctx, split_by_block(jb_g, m))

        # Phase E: hash tables and schedules.
        self.htables = make_hash_tables(self.ctx, self.ttable)
        self.ib_loc = chaos_hash(self.ctx, self.htables, self.ttable, self.ib,
                                 "bonds", category="inspector")
        self.jb_loc = chaos_hash(self.ctx, self.htables, self.ttable, self.jb,
                                 "bonds", category="inspector")
        self._hash_nonbonded(category="inspector")
        self._build_schedules(category="inspector")
        # per-step list regeneration cadence bookkeeping
        self.trace.nb_list_updates += 1
        self.trace.nb_pairs_history.append(int(self.jnb.size))

    # ------------------------------------------------------------------
    def _atom_weights(self) -> np.ndarray:
        """Paper's CHARMM weighting: "the amount of computation associated
        with an atom depends on ... the number of non-bonded list entries
        for that atom" — i.e. the atom's own (half-)list row length, since
        the owner of atom i executes i's rows under owner-computes."""
        return 1.0 + np.diff(self.inblo).astype(float)

    def _charge_nb_update(self) -> None:
        """Charge the parallel cost of regenerating the non-bonded list.

        Each rank rebuilds cell lists for its atoms (work ~ its pair
        count) after an all-gather of coordinates — the structure of the
        replicated-coordinate list build the paper's CHARMM uses.
        """
        m = self.machine
        s = self.system
        n_pairs = int(self.jnb.size)
        per_rank_pairs = n_pairs / m.n_ranks
        coords_share = np.zeros((max(1, s.n_atoms // m.n_ranks), 3))
        m.allgather([coords_share] * m.n_ranks, tag="nb_coords",
                    category="nb_update")
        for p in m.ranks():
            m.charge_time(
                p,
                m.cost_model.compute_time(6.0 * per_rank_pairs
                                          + 4.0 * s.n_atoms / m.n_ranks),
                "nb_update",
            )
        m.barrier()

    def _owned_atoms(self, p: int) -> np.ndarray:
        return self.ttable.dist.global_indices(p)

    def _hash_nonbonded(self, category: str) -> None:
        """Hash the (current) non-bonded rows of every rank's owned atoms."""
        m = self.machine
        i_per, j_per = [], []
        for p in m.ranks():
            rows = self._owned_atoms(p)
            i_exp, j_vals = take_csr_rows(self.inblo, self.jnb, rows)
            i_per.append(i_exp)
            j_per.append(j_vals)
        self.nb_i = i_per
        self.nb_j = j_per
        self.nb_i_loc = chaos_hash(self.ctx, self.htables, self.ttable, i_per,
                                   "nb", category=category)
        self.nb_j_loc = chaos_hash(self.ctx, self.htables, self.ttable, j_per,
                                   "nb", category=category)

    def _build_schedules(self, category: str) -> None:
        expr = self.htables[0].expr
        if self.schedule_mode == "merged":
            self.sched: Schedule = build_schedule(
                self.ctx, self.htables, expr("bonds", "nb"), category=category
            )
            self.sched_bonded = self.sched
            self.sched_nb = self.sched
        else:
            self.sched_bonded = build_schedule(
                self.ctx, self.htables, expr("bonds"), category=category
            )
            self.sched_nb = build_schedule(
                self.ctx, self.htables, expr("nb"), category=category
            )
            self.sched = self.sched_nb  # ghost capacity is table-wide
        # static ghost data: charges (atoms' charges never change); in
        # multiple mode both schedules fill one table-wide ghost buffer,
        # fused into a single pass
        self.charge_ghost = allocate_ghosts(self.sched_nb, self.charge)
        phases = [gather_phase(self.sched_nb, self.charge,
                               self.charge_ghost)]
        if self.schedule_mode == "multiple":
            phases.append(gather_phase(self.sched_bonded, self.charge,
                                       self.charge_ghost))
        run_pipeline(self.ctx, phases, category="comm",
                     loop_id="charmm:charge_gather")

    # ==================================================================
    # adaptive: non-bonded list regeneration (stamp reuse)
    # ==================================================================
    def refresh_nonbonded_list(self) -> None:
        """Regenerate the list, re-hash only its stamp, rebuild schedules."""
        s = self.system
        self._sync_positions_to_system()
        self.inblo, self.jnb = build_nonbonded_list(
            s.positions, s.forcefield.cutoff, s.box
        )
        self._charge_nb_update()
        clear_stamp(self.ctx, self.htables, "nb", category="schedule_regen")
        self._hash_nonbonded(category="schedule_regen")
        self._build_schedules(category="schedule_regen")
        self.trace.nb_list_updates += 1
        self.trace.nb_pairs_history.append(int(self.jnb.size))

    # ==================================================================
    # remapping: full repartition (Table 6's every-25-iterations RCB/RIB)
    # ==================================================================
    def repartition(self, partitioner: Partitioner | None = None) -> None:
        """Phases A-E again: new partition, remap arrays, rebuild analysis."""
        m = self.machine
        part = partitioner if partitioner is not None else self.partitioner
        self._sync_positions_to_system()
        weights = self._atom_weights()
        result = run_partitioner(m, part, self.system.positions, weights,
                                 category="partition")
        new_ttable = TranslationTable(
            m, result.to_distribution(m.n_ranks), storage=self.ttable_storage
        )
        plan = remap(self.ctx, self.ttable.dist, new_ttable.dist, category="remap")
        self.pos, self.vel, self.mass, self.charge = run_pipeline(
            self.ctx,
            [remap_phase(plan, self.pos),
             remap_phase(plan, self.vel),
             remap_phase(plan, self.mass),
             remap_phase(plan, self.charge)],
            category="remap", loop_id="charmm:atoms_remap",
        )
        self.ttable = new_ttable

        ib_g, jb_g = (
            (self.system.bonds[:, 0], self.system.bonds[:, 1])
            if self.system.n_bonds else (np.zeros(0, dtype=np.int64),) * 2
        )
        assign = partition_iterations(
            self.ctx, self.ttable,
            [[a, b] for a, b in zip(split_by_block(ib_g, m),
                                    split_by_block(jb_g, m))],
            rule="almost-owner-computes", category="partition"
        )
        self.ib = assign.remap_iteration_data(self.ctx, split_by_block(ib_g, m))
        self.jb = assign.remap_iteration_data(self.ctx, split_by_block(jb_g, m))

        self.htables = make_hash_tables(self.ctx, self.ttable)
        self.ib_loc = chaos_hash(self.ctx, self.htables, self.ttable, self.ib,
                                 "bonds", category="inspector")
        self.jb_loc = chaos_hash(self.ctx, self.htables, self.ttable, self.jb,
                                 "bonds", category="inspector")
        self._hash_nonbonded(category="inspector")
        self._build_schedules(category="inspector")

    # ==================================================================
    # executor: one force evaluation + integration step
    # ==================================================================
    def _compute_forces(self) -> tuple[list[np.ndarray], float]:
        """Gather coordinates, run both force loops, scatter-add results.

        Returns per-rank local force arrays (owned atoms) and the global
        potential energy.
        """
        m = self.machine
        s = self.system
        ff = s.forcefield

        pos_ghost = allocate_ghosts(self.sched_nb, self.pos)
        phases = [gather_phase(self.sched_nb, self.pos, pos_ghost)]
        if self.schedule_mode == "multiple":
            phases.append(gather_phase(self.sched_bonded, self.pos,
                                       pos_ghost))
        run_pipeline(self.ctx, phases, category="comm",
                     loop_id="charmm:pos_gather")
        pos_stacked = stack_local_ghost(self.pos, pos_ghost)
        charge_stacked = stack_local_ghost(self.charge, self.charge_ghost)

        force_local = [np.zeros_like(self.pos[p]) for p in m.ranks()]
        force_ghost_nb = allocate_ghosts(self.sched_nb, self.pos)
        force_ghost_b = (
            force_ghost_nb if self.schedule_mode == "merged"
            else allocate_ghosts(self.sched_bonded, self.pos)
        )
        energy = 0.0

        for p in m.ranks():
            ps = pos_stacked[p]
            qs = charge_stacked[p]
            n_local = self.pos[p].shape[0]

            fb_stack = np.zeros_like(ps)
            ib_l, jb_l = self.ib_loc[p], self.jb_loc[p]
            if ib_l.size:
                f_i, eb = bond_pair_forces(ps[ib_l], ps[jb_l], ff, s.box)
                np.add.at(fb_stack, ib_l, f_i)
                np.add.at(fb_stack, jb_l, -f_i)
                energy += float(eb.sum())
                m.charge_compute(p, BOND_OPS * ib_l.size, "compute")

            fn_stack = np.zeros_like(ps)
            i_l, j_l = self.nb_i_loc[p], self.nb_j_loc[p]
            if i_l.size:
                f_i, en = nonbond_pair_forces(
                    ps[i_l], ps[j_l], qs[i_l], qs[j_l], ff, s.box
                )
                np.add.at(fn_stack, i_l, f_i)
                np.add.at(fn_stack, j_l, -f_i)
                energy += float(en.sum())
                m.charge_compute(p, NONBOND_OPS * i_l.size, "compute")

            force_local[p] += fb_stack[:n_local] + fn_stack[:n_local]
            force_ghost_b[p] += fb_stack[n_local:force_ghost_b[p].shape[0] + n_local]
            force_ghost_nb[p] += fn_stack[n_local:force_ghost_nb[p].shape[0] + n_local]

        phases = [scatter_op_phase(self.sched_nb, force_local,
                                   force_ghost_nb, np.add)]
        if self.schedule_mode == "multiple":
            phases.append(scatter_op_phase(self.sched_bonded, force_local,
                                           force_ghost_b, np.add))
        run_pipeline(self.ctx, phases, category="comm",
                     loop_id="charmm:force_scatter")
        m.barrier()
        return force_local, energy

    def _integrate_half(self, forces: list[np.ndarray]) -> None:
        m = self.machine
        for p in m.ranks():
            self.vel[p] += (0.5 * self.dt) * forces[p] / self.mass[p][:, None]
            m.charge_compute(p, INTEGRATE_OPS / 2 * self.vel[p].shape[0],
                             "compute")

    def _drift(self) -> None:
        m = self.machine
        for p in m.ranks():
            self.pos[p] += self.dt * self.vel[p]
            np.mod(self.pos[p], self.system.box, out=self.pos[p])
            m.charge_compute(p, INTEGRATE_OPS / 2 * self.pos[p].shape[0],
                             "compute")

    # ==================================================================
    def run(self, n_steps: int, remap_every: int | None = None,
            remap_partitioners: list[Partitioner] | None = None) -> MDTrace:
        """Advance ``n_steps`` with the sequential driver's exact cadence.

        ``remap_every`` triggers a full repartition+remap every so many
        steps (Table 6 redistributes every 25 iterations, alternating RCB
        and RIB via ``remap_partitioners``).
        """
        if n_steps < 0:
            raise ValueError(f"negative step count {n_steps}")
        m = self.machine
        if not hasattr(self, "_forces"):
            self._forces, self._pe = self._compute_forces()
        remap_idx = 0
        for _ in range(n_steps):
            step = self.step_count
            if remap_every and step > 0 and step % remap_every == 0:
                parts = remap_partitioners or [self.partitioner]
                self.repartition(parts[remap_idx % len(parts)])
                remap_idx += 1
                self._forces, self._pe = self._compute_forces()
            if step > 0 and step % self.update_every == 0:
                self.refresh_nonbonded_list()
                self._forces, self._pe = self._compute_forces()
            self._integrate_half(self._forces)
            self._drift()
            self._forces, self._pe = self._compute_forces()
            self._integrate_half(self._forces)
            if self.thermostat_temperature is not None:
                self._apply_thermostat()
            ke = sum(
                float(0.5 * np.sum(self.mass[p][:, None] * self.vel[p] ** 2))
                for p in m.ranks()
            )
            self.trace.potential_energy.append(self._pe)
            self.trace.kinetic_energy.append(ke)
            self.step_count += 1
        self._sync_positions_to_system()
        return self.trace

    def _apply_thermostat(self) -> None:
        """Berendsen rescale: per-rank kinetic energies are all-reduced
        (a charged collective), then every rank rescales its atoms with
        the globally-agreed factor — the standard parallel thermostat."""
        m = self.machine
        s = self.system
        local_ke = [
            float(0.5 * np.sum(self.mass[p][:, None] * self.vel[p] ** 2))
            for p in m.ranks()
        ]
        ke = m.allreduce_sum(local_ke, category="comm")[0]
        n = s.n_atoms
        if n == 0 or ke <= 0:
            return
        temperature = 2.0 * ke / (3.0 * n)
        factor = 1.0 + (self.dt / self.thermostat_tau) * (
            self.thermostat_temperature / temperature - 1.0
        )
        scale = float(np.sqrt(np.clip(factor, 0.25, 4.0)))
        for p in m.ranks():
            self.vel[p] *= scale
            m.charge_compute(p, 3.0 * self.vel[p].shape[0], "compute")

    # ==================================================================
    # host-side assembly (verification / list rebuild)
    # ==================================================================
    def _sync_positions_to_system(self) -> None:
        s = self.system
        dist = self.ttable.dist
        for p in self.machine.ranks():
            g = dist.global_indices(p)
            s.positions[g] = self.pos[p]
            s.velocities[g] = self.vel[p]

    def global_positions(self) -> np.ndarray:
        self._sync_positions_to_system()
        return self.system.positions.copy()

    def global_velocities(self) -> np.ndarray:
        self._sync_positions_to_system()
        return self.system.velocities.copy()

    # ==================================================================
    # reporting (paper table rows)
    # ==================================================================
    def load_balance(self) -> float:
        return load_balance_index(
            self.machine.clocks.category_times("compute")
        )

    def time_report(self) -> dict[str, float]:
        """Virtual-time rows matching Tables 1 and 2."""
        c = self.machine.clocks
        return {
            "execution": self.machine.execution_time(),
            "computation": c.mean_category("compute"),
            "communication": c.mean_category("comm"),
            "partition": c.mean_category("partition"),
            "remap": c.mean_category("remap"),
            "nb_update": c.mean_category("nb_update"),
            "inspector": c.mean_category("inspector"),
            "schedule_regen": c.mean_category("schedule_regen"),
            "load_balance": self.load_balance(),
        }
