"""Sequential reference MD driver — the oracle for the parallel version.

Runs the Figure-2 structure directly on global arrays: bonded forces every
step from the static bond list, non-bonded forces from a cutoff list
regenerated every ``update_every`` steps, velocity-Verlet integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.charmm.forces import (
    compute_bonded_forces,
    compute_nonbonded_forces,
)
from repro.apps.charmm.integrator import verlet_drift, verlet_half_kick
from repro.apps.charmm.neighbors import build_nonbonded_list
from repro.apps.charmm.system import MolecularSystem


@dataclass
class MDTrace:
    """Per-step diagnostics collected by both drivers."""

    potential_energy: list[float] = field(default_factory=list)
    kinetic_energy: list[float] = field(default_factory=list)
    nb_list_updates: int = 0
    nb_pairs_history: list[int] = field(default_factory=list)

    def total_energy(self) -> np.ndarray:
        return np.asarray(self.potential_energy) + np.asarray(self.kinetic_energy)


class SequentialMD:
    """Reference in-order MD simulation."""

    def __init__(self, system: MolecularSystem, dt: float = 0.002,
                 update_every: int = 10,
                 thermostat_temperature: float | None = None,
                 thermostat_tau: float = 0.1):
        if update_every < 1:
            raise ValueError(f"update_every must be >= 1, got {update_every}")
        if thermostat_temperature is not None and thermostat_temperature <= 0:
            raise ValueError("thermostat temperature must be positive")
        if thermostat_tau <= 0:
            raise ValueError("thermostat tau must be positive")
        self.system = system
        self.dt = float(dt)
        self.update_every = int(update_every)
        self.thermostat_temperature = thermostat_temperature
        self.thermostat_tau = float(thermostat_tau)
        self.inblo: np.ndarray | None = None
        self.jnb: np.ndarray | None = None
        self.trace = MDTrace()
        self._forces = np.zeros_like(system.positions)
        self._pe = 0.0

    # ------------------------------------------------------------------
    def refresh_nonbonded_list(self) -> None:
        s = self.system
        self.inblo, self.jnb = build_nonbonded_list(
            s.positions, s.forcefield.cutoff, s.box
        )
        self.trace.nb_list_updates += 1
        self.trace.nb_pairs_history.append(int(self.jnb.size))

    def compute_forces(self) -> tuple[np.ndarray, float]:
        s = self.system
        fb, eb = compute_bonded_forces(s.positions, s.bonds, s.forcefield, s.box)
        fn, en = compute_nonbonded_forces(
            s.positions, s.charges, self.inblo, self.jnb, s.forcefield, s.box
        )
        return fb + fn, eb + en

    # ------------------------------------------------------------------
    def run(self, n_steps: int) -> MDTrace:
        """Advance ``n_steps``; returns the trace (also kept on self)."""
        if n_steps < 0:
            raise ValueError(f"negative step count {n_steps}")
        s = self.system
        if self.inblo is None:
            self.refresh_nonbonded_list()
            self._forces, self._pe = self.compute_forces()
        for step in range(n_steps):
            if step > 0 and step % self.update_every == 0:
                self.refresh_nonbonded_list()
                self._forces, self._pe = self.compute_forces()
            verlet_half_kick(s.velocities, self._forces, s.masses, self.dt)
            verlet_drift(s.positions, s.velocities, self.dt, s.box)
            self._forces, self._pe = self.compute_forces()
            verlet_half_kick(s.velocities, self._forces, s.masses, self.dt)
            if self.thermostat_temperature is not None:
                self._apply_thermostat()
            self.trace.potential_energy.append(self._pe)
            self.trace.kinetic_energy.append(s.kinetic_energy())
        return self.trace

    def _apply_thermostat(self) -> None:
        """Berendsen weak-coupling rescale toward the target temperature.

        Reduced units: temperature = 2 KE / (3 N).  The scale factor is
        ``sqrt(1 + (dt/tau)(T0/T - 1))``, clamped to keep early transients
        stable.
        """
        s = self.system
        ke = s.kinetic_energy()
        n = s.n_atoms
        if n == 0 or ke <= 0:
            return
        temperature = 2.0 * ke / (3.0 * n)
        t0 = self.thermostat_temperature
        factor = 1.0 + (self.dt / self.thermostat_tau) * (
            t0 / temperature - 1.0
        )
        scale = float(np.sqrt(np.clip(factor, 0.25, 4.0)))
        s.velocities *= scale
