"""Velocity-Verlet integration for the mini-CHARMM code."""

from __future__ import annotations

import numpy as np


def verlet_half_kick(velocities: np.ndarray, forces: np.ndarray,
                     masses: np.ndarray, dt: float) -> None:
    """v += (dt/2) F/m, in place."""
    velocities += (0.5 * dt) * forces / masses[:, None]


def verlet_drift(positions: np.ndarray, velocities: np.ndarray,
                 dt: float, box: float) -> None:
    """x += dt v, wrapped into the periodic box, in place."""
    positions += dt * velocities
    np.mod(positions, box, out=positions)


def verlet_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    masses: np.ndarray,
    forces_old: np.ndarray,
    compute_forces,
    dt: float,
    box: float,
) -> np.ndarray:
    """One full velocity-Verlet step; returns the new forces.

    ``compute_forces(positions) -> forces`` is called once, after the
    drift.  All arrays updated in place.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    verlet_half_kick(velocities, forces_old, masses, dt)
    verlet_drift(positions, velocities, dt, box)
    forces_new = compute_forces(positions)
    verlet_half_kick(velocities, forces_new, masses, dt)
    return forces_new
