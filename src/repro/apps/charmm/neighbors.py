"""Non-bonded list generation (the adaptive indirection of CHARMM).

Builds the CSR-style half neighbor list the paper's Figure 2 iterates:
``inblo(i) .. inblo(i+1)-1`` index into ``jnb``, listing atom ``i``'s
partners with index greater than ``i`` inside the cutoff.  A linked-cell
algorithm keeps list generation O(n) at fixed density; this is the
"non-bonded list update" whose cost Table 2 reports.
"""

from __future__ import annotations

import numpy as np


def _cell_index(coords: np.ndarray, n_cells: int, box: float) -> np.ndarray:
    """Flattened 3-D cell id per atom."""
    scaled = np.floor(coords / box * n_cells).astype(np.int64)
    np.clip(scaled, 0, n_cells - 1, out=scaled)
    return (scaled[:, 0] * n_cells + scaled[:, 1]) * n_cells + scaled[:, 2]


def build_nonbonded_list(
    positions: np.ndarray,
    cutoff: float,
    box: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(inblo, jnb)``: half neighbor list (j > i) within cutoff.

    ``inblo`` has length ``n_atoms + 1`` (CSR offsets); partners of atom
    ``i`` are ``jnb[inblo[i]:inblo[i+1]]``, sorted ascending.  Periodic
    minimum-image convention.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"positions must be (n, 3), got {pos.shape}")
    if cutoff <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff}")
    if box <= 2 * cutoff - 1e-12 and box <= 0:
        raise ValueError("invalid box")
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)

    n_cells = max(1, int(np.floor(box / cutoff)))
    wrapped = np.mod(pos, box)
    cells = _cell_index(wrapped, n_cells, box)
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    # start offset of each cell in the sorted order
    cell_starts = np.searchsorted(
        sorted_cells, np.arange(n_cells**3 + 1, dtype=np.int64)
    )

    cut2 = cutoff * cutoff
    pair_i: list[np.ndarray] = []
    pair_j: list[np.ndarray] = []

    # neighbor cell offsets (half-shell to avoid double visits)
    offsets = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                offsets.append((dx, dy, dz))

    occupied = np.unique(cells)
    for c in occupied.tolist():
        lo, hi = cell_starts[c], cell_starts[c + 1]
        atoms_c = order[lo:hi]
        cz = c % n_cells
        cy = (c // n_cells) % n_cells
        cx = c // (n_cells * n_cells)
        cand_list = [atoms_c]
        for dx, dy, dz in offsets:
            if (dx, dy, dz) == (0, 0, 0):
                continue
            nx, ny, nz = (cx + dx) % n_cells, (cy + dy) % n_cells, (cz + dz) % n_cells
            nc = (nx * n_cells + ny) * n_cells + nz
            if nc == c:
                continue
            lo2, hi2 = cell_starts[nc], cell_starts[nc + 1]
            if hi2 > lo2:
                cand_list.append(order[lo2:hi2])
        cand = np.unique(np.concatenate(cand_list))
        if cand.size < 2:
            continue
        # pairwise distances atoms_c x cand with minimum image
        d = wrapped[atoms_c][:, None, :] - wrapped[cand][None, :, :]
        d -= box * np.round(d / box)
        dist2 = np.einsum("ijk,ijk->ij", d, d)
        ii, jj = np.nonzero((dist2 <= cut2) & (atoms_c[:, None] < cand[None, :]))
        if ii.size:
            pair_i.append(atoms_c[ii])
            pair_j.append(cand[jj])

    if pair_i:
        ai = np.concatenate(pair_i)
        aj = np.concatenate(pair_j)
        # dedupe (a pair can be seen from both cells when n_cells is small)
        key = ai * n + aj
        _, uniq_idx = np.unique(key, return_index=True)
        ai, aj = ai[uniq_idx], aj[uniq_idx]
        order2 = np.lexsort((aj, ai))
        ai, aj = ai[order2], aj[order2]
    else:
        ai = np.zeros(0, dtype=np.int64)
        aj = np.zeros(0, dtype=np.int64)

    inblo = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ai, minlength=n), out=inblo[1:])
    return inblo, aj.astype(np.int64)


def list_stats(inblo: np.ndarray) -> dict:
    """Diagnostics: total pairs, mean/max partners per atom."""
    counts = np.diff(inblo)
    return {
        "n_pairs": int(inblo[-1]),
        "mean_partners": float(counts.mean()) if counts.size else 0.0,
        "max_partners": int(counts.max()) if counts.size else 0,
    }


def brute_force_nonbonded_list(
    positions: np.ndarray, cutoff: float, box: float
) -> tuple[np.ndarray, np.ndarray]:
    """O(n^2) reference implementation for testing the cell-list version."""
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    wrapped = np.mod(pos, box)
    d = wrapped[:, None, :] - wrapped[None, :, :]
    d -= box * np.round(d / box)
    dist2 = np.einsum("ijk,ijk->ij", d, d)
    mask = (dist2 <= cutoff * cutoff) & (
        np.arange(n)[:, None] < np.arange(n)[None, :]
    )
    ai, aj = np.nonzero(mask)
    inblo = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ai, minlength=n), out=inblo[1:])
    return inblo, aj.astype(np.int64)


def take_csr_rows(
    inblo: np.ndarray, jnb: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Extract selected rows of a CSR list, fully vectorized.

    Returns ``(i_expanded, j_values)``: the row id repeated per entry and
    the partner values, for exactly the rows requested (a rank pulls out
    the rows of the atoms it owns).
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = inblo[rows + 1] - inblo[rows]
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    starts = inblo[rows]
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.repeat(starts - shift, counts) + np.arange(total, dtype=np.int64)
    return np.repeat(rows, counts), jnb[flat]
