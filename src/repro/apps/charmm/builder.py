"""Synthetic solvated-macromolecule generator.

The paper's benchmark is "MbCO + 3830 water molecules" — myoglobin with
carbon monoxide in a water bath, 14026 atoms total, with the Fortran-D
figure (Figure 10) using ``DECOMPOSITION reg(14026)``.  We synthesize a
system with the same *parallelization-relevant* structure:

* a compact "protein": a folded chain of atoms with backbone bonds and
  occasional cross-links, spatially clustered (so spatial partitioners
  beat BLOCK),
* a bath of 3-atom "water" molecules (two O-H bonds each) filling the box,
* atom density tuned so a cutoff list has tens of partners per atom, with
  nearby atoms sharing most partners (so duplicate removal pays off, as
  the paper observes in §3.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.charmm.system import ForceField, MolecularSystem

#: atoms in the paper's benchmark case
PAPER_ATOM_COUNT = 14026
#: water molecules in the paper's benchmark case
PAPER_WATER_COUNT = 3830


def build_solvated_system(
    n_protein: int = PAPER_ATOM_COUNT - 3 * PAPER_WATER_COUNT,
    n_waters: int = PAPER_WATER_COUNT,
    density: float = 0.6,
    seed: int = 0,
    forcefield: ForceField | None = None,
) -> MolecularSystem:
    """Build the synthetic MbCO-in-water-like system.

    ``density`` is atoms per unit volume and controls neighbor-list
    length.  Defaults reproduce the paper's 14026-atom case
    (2536 protein atoms + 3830 * 3 water atoms).
    """
    if n_protein < 2:
        raise ValueError(f"need at least 2 protein atoms, got {n_protein}")
    if n_waters < 0:
        raise ValueError(f"negative water count {n_waters}")
    rng = np.random.default_rng(seed)
    ff = forcefield if forcefield is not None else ForceField()
    n_atoms = n_protein + 3 * n_waters
    box = float((n_atoms / density) ** (1.0 / 3.0))
    if box < 2 * ff.cutoff + 1e-9:
        box = 2 * ff.cutoff + 1e-6

    positions = np.zeros((n_atoms, 3))
    bonds: list[tuple[int, int]] = []

    # --- protein: self-avoiding-ish random walk folded near the center ---
    center = np.full(3, box / 2)
    radius = max(1.5, 0.18 * box)
    step = 0.45
    pos = center.copy()
    for i in range(n_protein):
        positions[i] = pos
        if i + 1 < n_protein:
            bonds.append((i, i + 1))  # backbone
        d = rng.standard_normal(3)
        d *= step / np.linalg.norm(d)
        pos = pos + d
        # fold back toward center when drifting out of the globule
        off = pos - center
        r = np.linalg.norm(off)
        if r > radius:
            pos = center + off * (radius / r) * 0.95
    # cross-links: ~4% of protein atoms bond to a spatially-near atom
    n_links = max(0, n_protein // 25)
    if n_links and n_protein > 10:
        cand = rng.choice(n_protein, size=(n_links, 2), replace=True)
        for a, b in cand:
            if a != b and abs(int(a) - int(b)) > 2:
                if np.linalg.norm(positions[a] - positions[b]) < 3 * step:
                    bonds.append((min(a, b), max(a, b)))

    # --- waters: O at random position, two H close by ---------------------
    for k in range(n_waters):
        o = n_protein + 3 * k
        positions[o] = rng.random(3) * box
        for h in (1, 2):
            d = rng.standard_normal(3)
            d *= 0.35 / np.linalg.norm(d)
            positions[o + h] = positions[o] + d
            bonds.append((o, o + h))

    np.mod(positions, box, out=positions)
    charges = np.where(
        np.arange(n_atoms) < n_protein,
        rng.uniform(-0.4, 0.4, n_atoms),
        0.0,
    )
    # waters: O slightly negative, H positive (net neutral per molecule)
    for k in range(n_waters):
        o = n_protein + 3 * k
        charges[o] = -0.8
        charges[o + 1] = 0.4
        charges[o + 2] = 0.4
    masses = np.where(np.arange(n_atoms) < n_protein, 12.0, 1.0)
    for k in range(n_waters):
        masses[n_protein + 3 * k] = 16.0
    velocities = rng.standard_normal((n_atoms, 3)) * 0.05

    bond_arr = (
        np.array(sorted(set(bonds)), dtype=np.int64)
        if bonds else np.zeros((0, 2), dtype=np.int64)
    )
    return MolecularSystem(
        positions=positions,
        velocities=velocities,
        masses=masses,
        charges=charges,
        bonds=bond_arr,
        box=box,
        forcefield=ff,
    )


def build_small_system(n_atoms: int = 300, seed: int = 0,
                       density: float = 0.5) -> MolecularSystem:
    """A scaled-down system for tests: same structure, ~n_atoms atoms."""
    n_waters = max(0, (n_atoms - max(20, n_atoms // 4)) // 3)
    n_protein = n_atoms - 3 * n_waters
    return build_solvated_system(
        n_protein=max(2, n_protein), n_waters=n_waters,
        density=density, seed=seed,
    )
