"""Force kernels: harmonic bonded terms, LJ + Coulomb non-bonded terms.

Pure numpy, written so the same pairwise kernel evaluates sequentially
(over global arrays) and in the parallel executor (over gathered local +
ghost arrays with localized indices) — bitwise-identical physics either
way, which is what the parallel-vs-sequential oracle tests rely on.

Abstract work-unit costs per interaction are exported so drivers charge
consistent virtual compute time.
"""

from __future__ import annotations

import numpy as np

from repro.apps.charmm.system import ForceField

#: abstract work units charged per interaction, used by both drivers
BOND_OPS = 15.0
NONBOND_OPS = 30.0
INTEGRATE_OPS = 10.0


def minimum_image(dx: np.ndarray, box: float) -> np.ndarray:
    return dx - box * np.round(dx / box)


def bond_pair_forces(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    ff: ForceField,
    box: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bond force on atom ``i`` (and its negation for ``j``) + energies.

    Harmonic: E = 1/2 k (r - r0)^2;  F_i = -k (r - r0) * (r_i - r_j)/r.
    Returns ``(forces_on_i, energies)`` with shapes ``(m, 3)`` and ``(m,)``.
    """
    d = minimum_image(pos_i - pos_j, box)
    r = np.linalg.norm(d, axis=1)
    r_safe = np.where(r > 1e-12, r, 1.0)
    mag = -ff.bond_k * (r - ff.bond_r0) / r_safe
    f_i = mag[:, None] * d
    energy = 0.5 * ff.bond_k * (r - ff.bond_r0) ** 2
    return f_i, energy


def nonbond_pair_forces(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    q_i: np.ndarray,
    q_j: np.ndarray,
    ff: ForceField,
    box: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair LJ + Coulomb force on atom ``i`` and pair energies.

    Truncated (not shifted) at the cutoff; pairs beyond the cutoff get
    exactly zero so a slightly-stale neighbor list still computes correct
    forces for in-range pairs.
    """
    d = minimum_image(pos_i - pos_j, box)
    r2 = np.einsum("ij,ij->i", d, d)
    cut2 = ff.cutoff * ff.cutoff
    in_range = r2 <= cut2
    # soft core: bounded forces even for overlapping synthetic coords
    r2_safe = r2 + ff.softening * ff.lj_sigma * ff.lj_sigma
    inv_r2 = 1.0 / r2_safe
    s2 = (ff.lj_sigma * ff.lj_sigma) * inv_r2
    s6 = s2 * s2 * s2
    s12 = s6 * s6
    # F = (24 eps (2 s12 - s6) / r^2 + k q_i q_j / r^3) * d
    lj_mag = 24.0 * ff.lj_epsilon * (2.0 * s12 - s6) * inv_r2
    inv_r = np.sqrt(inv_r2)
    coul_mag = ff.coulomb_k * q_i * q_j * inv_r * inv_r2
    mag = np.where(in_range, lj_mag + coul_mag, 0.0)
    f_i = mag[:, None] * d
    energy = np.where(
        in_range,
        4.0 * ff.lj_epsilon * (s12 - s6) + ff.coulomb_k * q_i * q_j * inv_r,
        0.0,
    )
    return f_i, energy


def compute_bonded_forces(
    positions: np.ndarray,
    bonds: np.ndarray,
    ff: ForceField,
    box: float,
) -> tuple[np.ndarray, float]:
    """Sequential bonded forces over the whole system."""
    forces = np.zeros_like(positions)
    if bonds.size == 0:
        return forces, 0.0
    ib, jb = bonds[:, 0], bonds[:, 1]
    f_i, energy = bond_pair_forces(positions[ib], positions[jb], ff, box)
    np.add.at(forces, ib, f_i)
    np.add.at(forces, jb, -f_i)
    return forces, float(energy.sum())


def compute_nonbonded_forces(
    positions: np.ndarray,
    charges: np.ndarray,
    inblo: np.ndarray,
    jnb: np.ndarray,
    ff: ForceField,
    box: float,
) -> tuple[np.ndarray, float]:
    """Sequential non-bonded forces from a CSR half list."""
    forces = np.zeros_like(positions)
    if jnb.size == 0:
        return forces, 0.0
    i_idx = np.repeat(
        np.arange(inblo.size - 1, dtype=np.int64), np.diff(inblo)
    )
    f_i, energy = nonbond_pair_forces(
        positions[i_idx], positions[jnb], charges[i_idx], charges[jnb],
        ff, box,
    )
    np.add.at(forces, i_idx, f_i)
    np.add.at(forces, jnb, -f_i)
    return forces, float(energy.sum())


def expand_csr_rows(inblo: np.ndarray) -> np.ndarray:
    """Row index per CSR entry: the ``i`` of each (i, jnb[k]) pair."""
    return np.repeat(np.arange(inblo.size - 1, dtype=np.int64), np.diff(inblo))
