"""Molecular system state for the mini-CHARMM application.

Holds the per-atom arrays the paper's loops index (coordinates,
velocities, forces, charges), the static bond list (the *bonded*
indirection arrays ``ib``/``jb`` of Figure 2), and simulation parameters.
Periodic cubic boundary conditions keep the geometry simple while
preserving everything the runtime system cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ForceField:
    """Force-field constants for the mini force laws.

    Lennard-Jones + screened Coulomb for non-bonded pairs inside the
    cutoff; harmonic springs for bonds.  Values are in reduced units —
    chemistry fidelity is not the point, loop structure is.
    """

    lj_epsilon: float = 0.2
    lj_sigma: float = 0.8
    coulomb_k: float = 1.0
    bond_k: float = 50.0
    bond_r0: float = 0.9
    cutoff: float = 2.5
    #: soft-core offset (fraction of sigma^2 added to r^2) keeping forces
    #: finite for overlapping synthetic configurations
    softening: float = 0.1

    def __post_init__(self):
        for name in ("lj_epsilon", "lj_sigma", "coulomb_k", "bond_k",
                     "bond_r0", "cutoff"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.softening < 0:
            raise ValueError("softening must be >= 0")


@dataclass
class MolecularSystem:
    """All mutable and static state of one MD simulation."""

    positions: np.ndarray          # (n, 3)
    velocities: np.ndarray         # (n, 3)
    masses: np.ndarray             # (n,)
    charges: np.ndarray            # (n,)
    bonds: np.ndarray              # (m, 2) int64, the static bonded pairs
    box: float                     # cubic box edge (periodic)
    forcefield: ForceField = field(default_factory=ForceField)

    def __post_init__(self):
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.velocities = np.asarray(self.velocities, dtype=np.float64)
        self.masses = np.asarray(self.masses, dtype=np.float64)
        self.charges = np.asarray(self.charges, dtype=np.float64)
        self.bonds = np.asarray(self.bonds, dtype=np.int64)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3):
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.velocities.shape != (n, 3):
            raise ValueError("velocities shape mismatch")
        if self.masses.shape != (n,) or self.charges.shape != (n,):
            raise ValueError("masses/charges shape mismatch")
        if np.any(self.masses <= 0):
            raise ValueError("non-positive mass")
        if self.bonds.size:
            if self.bonds.ndim != 2 or self.bonds.shape[1] != 2:
                raise ValueError(f"bonds must be (m, 2), got {self.bonds.shape}")
            if self.bonds.min() < 0 or self.bonds.max() >= n:
                raise IndexError("bond endpoint out of range")
            if np.any(self.bonds[:, 0] == self.bonds[:, 1]):
                raise ValueError("self-bond")
        if self.box <= 0:
            raise ValueError("box must be positive")
        if self.forcefield.cutoff > self.box / 2:
            raise ValueError(
                f"cutoff {self.forcefield.cutoff} exceeds half the box "
                f"{self.box / 2} (minimum-image would break)"
            )

    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def n_bonds(self) -> int:
        return self.bonds.shape[0]

    def wrap_positions(self) -> None:
        """Fold positions back into the periodic box, in place."""
        np.mod(self.positions, self.box, out=self.positions)

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Minimum-image displacement vectors (in place safe on a copy)."""
        return dx - self.box * np.round(dx / self.box)

    def kinetic_energy(self) -> float:
        return float(0.5 * np.sum(self.masses[:, None] * self.velocities**2))

    def copy(self) -> "MolecularSystem":
        return MolecularSystem(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            masses=self.masses.copy(),
            charges=self.charges.copy(),
            bonds=self.bonds.copy(),
            box=self.box,
            forcefield=self.forcefield,
        )
