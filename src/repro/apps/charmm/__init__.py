"""Mini-CHARMM: molecular dynamics with adaptive non-bonded lists."""

from repro.apps.charmm.system import ForceField, MolecularSystem
from repro.apps.charmm.builder import (
    PAPER_ATOM_COUNT,
    PAPER_WATER_COUNT,
    build_small_system,
    build_solvated_system,
)
from repro.apps.charmm.neighbors import (
    brute_force_nonbonded_list,
    build_nonbonded_list,
    list_stats,
    take_csr_rows,
)
from repro.apps.charmm.forces import (
    compute_bonded_forces,
    compute_nonbonded_forces,
)
from repro.apps.charmm.sequential import MDTrace, SequentialMD
from repro.apps.charmm.parallel import ParallelMD

__all__ = [
    "ForceField",
    "MolecularSystem",
    "PAPER_ATOM_COUNT",
    "PAPER_WATER_COUNT",
    "build_small_system",
    "build_solvated_system",
    "brute_force_nonbonded_list",
    "build_nonbonded_list",
    "list_stats",
    "take_csr_rows",
    "compute_bonded_forces",
    "compute_nonbonded_forces",
    "MDTrace",
    "SequentialMD",
    "ParallelMD",
]
