"""AST node classes for the mini Fortran D dialect.

Subscripts are 1-based as in Fortran; the code generator shifts to
0-based numpy indexing.  A ``:`` subscript (full-slice, used by the
paper's ``new_cells(icell(i,j), :)``) parses to :class:`FullSlice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union["Num", "VarRef", "ArrayRef", "BinOp", "UnaryOp", "FullSlice",
             "Call"]


@dataclass(frozen=True)
class Num:
    value: float
    line: int = 0

    def is_integer(self) -> bool:
        return float(self.value).is_integer()


@dataclass(frozen=True)
class VarRef:
    name: str
    line: int = 0


@dataclass(frozen=True)
class FullSlice:
    """A ``:`` subscript."""

    line: int = 0


@dataclass(frozen=True)
class ArrayRef:
    name: str
    subscripts: tuple[Expr, ...]
    line: int = 0


#: intrinsic functions usable in loop-body expressions
INTRINSIC_NAMES = ("abs", "sqrt", "exp", "log", "sin", "cos", "sign")


@dataclass(frozen=True)
class Call:
    """Elementwise intrinsic call: ``SQRT(x(jnb(j)))`` etc."""

    func: str  # lower-case member of INTRINSIC_NAMES
    args: tuple[Expr, ...]
    line: int = 0


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / **
    left: Expr
    right: Expr
    line: int = 0


@dataclass(frozen=True)
class UnaryOp:
    op: str  # -
    operand: Expr
    line: int = 0


# ---------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayDecl:
    """``REAL x(N), y(N)`` — one entry per declared array."""

    name: str
    dtype: str  # "real" | "integer"
    shape: tuple[int, ...]
    line: int = 0


@dataclass(frozen=True)
class DecompositionStmt:
    """``DECOMPOSITION reg(N)``"""

    name: str
    size: int
    line: int = 0


@dataclass(frozen=True)
class DistributeStmt:
    """``DISTRIBUTE reg(BLOCK)`` / ``DISTRIBUTE reg(map)``"""

    target: str
    scheme: str           # "BLOCK" | "CYCLIC" | "MAP"
    map_array: str | None  # array name for irregular distributions
    line: int = 0


@dataclass(frozen=True)
class AlignStmt:
    """``ALIGN x, y WITH reg`` — ``ragged[k]`` is True for ``(*,:)``-style
    alignment patterns (per-cell ragged arrays, Figure 11)."""

    arrays: tuple[str, ...]
    target: str
    ragged: tuple[bool, ...] = ()
    line: int = 0

    def __post_init__(self):
        if not self.ragged:
            object.__setattr__(self, "ragged",
                               tuple(False for _ in self.arrays))
        if len(self.ragged) != len(self.arrays):
            raise ValueError("ragged flags must match arrays")


@dataclass(frozen=True)
class Assign:
    target: ArrayRef
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Reduce:
    """``REDUCE(SUM, x(ia(i)), expr)`` — the Fortran D intrinsic, plus the
    paper's proposed ``REDUCE(APPEND, dest(idx, :), src)``."""

    op: str  # SUM | APPEND | MAX | MIN | PROD
    target: ArrayRef
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Forall:
    """``FORALL i = lo, hi`` with a body of statements/nested foralls."""

    var: str
    lower: Expr
    upper: Expr
    body: tuple["Statement", ...]
    line: int = 0


Statement = Union[
    ArrayDecl, DecompositionStmt, DistributeStmt, AlignStmt,
    Assign, Reduce, Forall,
]


@dataclass
class Program:
    statements: list[Statement] = field(default_factory=list)

    def declarations(self) -> list[ArrayDecl]:
        return [s for s in self.statements if isinstance(s, ArrayDecl)]

    def loops(self) -> list[Forall]:
        return [s for s in self.statements if isinstance(s, Forall)]


def walk_expr(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ArrayRef):
        for s in expr.subscripts:
            yield from walk_expr(s)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_expr(a)


def array_refs(expr: Expr) -> list[ArrayRef]:
    """All ArrayRef nodes in an expression."""
    return [n for n in walk_expr(expr) if isinstance(n, ArrayRef)]
