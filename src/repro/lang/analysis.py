"""Semantic analysis: symbol tables, loop classification, reduction
recognition.

The analyzer reproduces what the Fortran 90D compiler front end must
decide before it can generate inspector/executor code (paper §5.3):

* which arrays are distributed (via DECOMPOSITION/DISTRIBUTE/ALIGN),
* which subscripts are *indirections* (``x(jnb(j))``) versus direct loop
  references (``x(i)``),
* whether a loop nest is one of the irregular templates CHAOS handles:

  - ``flat``  — single FORALL of reductions (Figure 8),
  - ``csr``   — outer FORALL over a decomposition, inner FORALL over
    ``inblo(i) .. inblo(i+1)-1`` (Figure 10, the CHARMM non-bonded loop),
  - ``cell_append`` — nested FORALL whose body is a single
    ``REDUCE(APPEND, …)`` (Figure 11, the DSMC MOVE), lowered to
    light-weight schedules,
  - ``local_assign`` — loops that touch only directly-indexed aligned
    arrays (no communication).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    DecompositionStmt,
    DistributeStmt,
    Expr,
    Forall,
    Num,
    Program,
    Reduce,
    VarRef,
    array_refs,
)
from repro.lang.errors import AnalysisError


@dataclass
class ArrayInfo:
    name: str
    dtype: str
    shape: tuple[int, ...]
    decomposition: str | None = None  # via ALIGN
    ragged: bool = False              # aligned (*,:) cell arrays


@dataclass
class DecompInfo:
    name: str
    size: int


@dataclass
class SymbolTable:
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    decomps: dict[str, DecompInfo] = field(default_factory=dict)

    def array(self, name: str, line: int | None = None) -> ArrayInfo:
        info = self.arrays.get(name)
        if info is None:
            raise AnalysisError(f"undeclared array {name!r}", line)
        return info

    def decomp(self, name: str, line: int | None = None) -> DecompInfo:
        info = self.decomps.get(name)
        if info is None:
            raise AnalysisError(f"unknown decomposition {name!r}", line)
        return info


# ---------------------------------------------------------------------
# subscript classification
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SubscriptPattern:
    """Classified subscript of a distributed-array reference.

    ``kind``: ``"loopvar"`` (direct, e.g. ``x(i)``), ``"indirect"``
    (``x(jnb(j))``), or ``"indirect2"`` (ragged, ``new_size(icell(i,j))``);
    used as the inspector-hash grouping key.
    """

    kind: str
    loopvar: str
    indirection: str | None = None  # indirection array name
    loopvar2: str | None = None     # second var of ragged indirections

    def key(self) -> str:
        if self.kind == "loopvar":
            return f"var:{self.loopvar}"
        if self.kind == "indirect2":
            return f"ind:{self.indirection}({self.loopvar},{self.loopvar2})"
        return f"ind:{self.indirection}({self.loopvar})"


def classify_subscript(sub: Expr, loop_vars: set[str]) -> SubscriptPattern:
    """Classify one subscript expression; raises on unsupported shapes."""
    if isinstance(sub, VarRef):
        if sub.name in loop_vars:
            return SubscriptPattern("loopvar", sub.name)
        raise AnalysisError(
            f"subscript variable {sub.name!r} is not a loop variable",
            sub.line,
        )
    if isinstance(sub, ArrayRef):
        subs = sub.subscripts
        if len(subs) == 1 and isinstance(subs[0], VarRef):
            inner = subs[0]
            if inner.name in loop_vars:
                return SubscriptPattern("indirect", inner.name, sub.name)
        if (
            len(subs) == 2
            and all(isinstance(s, VarRef) for s in subs)
            and all(s.name in loop_vars for s in subs)
        ):
            return SubscriptPattern(
                "indirect2", subs[0].name, sub.name, subs[1].name
            )
        raise AnalysisError(
            f"unsupported indirection shape in subscript of {sub.name!r}",
            sub.line,
        )
    raise AnalysisError("unsupported subscript expression",
                        getattr(sub, "line", None))


# ---------------------------------------------------------------------
# loop classification
# ---------------------------------------------------------------------
@dataclass
class LoopNest:
    """One analyzed irregular loop nest."""

    kind: str                      # flat | csr | cell_append | local_assign
    outer: Forall
    inner: Forall | None
    statements: list               # Reduce / Assign bodies (flattened)
    decomposition: str | None      # owner-computes decomposition, if any
    indirections: list[str]        # names of indirection arrays used
    csr_offsets: str | None = None  # inblo-style offsets array (csr only)
    loop_id: str = ""


def _is_csr_bounds(inner: Forall, outer_var: str) -> str | None:
    """Detect ``FORALL j = inblo(i), inblo(i+1)-1``; returns offsets name."""
    lo, hi = inner.lower, inner.upper
    if not (isinstance(lo, ArrayRef) and len(lo.subscripts) == 1):
        return None
    if not (isinstance(lo.subscripts[0], VarRef)
            and lo.subscripts[0].name == outer_var):
        return None
    # upper must be  offsets(i+1) - 1
    if not (isinstance(hi, BinOp) and hi.op == "-"
            and isinstance(hi.right, Num) and hi.right.value == 1):
        return None
    up = hi.left
    if not (isinstance(up, ArrayRef) and up.name == lo.name
            and len(up.subscripts) == 1):
        return None
    s = up.subscripts[0]
    if (isinstance(s, BinOp) and s.op == "+"
            and isinstance(s.left, VarRef) and s.left.name == outer_var
            and isinstance(s.right, Num) and s.right.value == 1):
        return lo.name
    return None


def _is_size_bounds(inner: Forall) -> str | None:
    """Detect ``FORALL i = 1, size(j)``; returns the size array's name."""
    lo, hi = inner.lower, inner.upper
    if not (isinstance(lo, Num) and lo.value == 1):
        return None
    if isinstance(hi, ArrayRef) and len(hi.subscripts) == 1 \
            and isinstance(hi.subscripts[0], VarRef):
        return hi.name
    return None


class Analyzer:
    """Builds the symbol table and classifies every top-level loop."""

    def __init__(self, program: Program):
        self.program = program
        self.symbols = SymbolTable()
        self.loops: list[LoopNest] = []
        self._loop_counter = 0
        self._analyze()

    # ------------------------------------------------------------------
    def _analyze(self) -> None:
        for stmt in self.program.statements:
            if isinstance(stmt, ArrayDecl):
                if stmt.name in self.symbols.arrays:
                    raise AnalysisError(
                        f"array {stmt.name!r} declared twice", stmt.line
                    )
                self.symbols.arrays[stmt.name] = ArrayInfo(
                    stmt.name, stmt.dtype, stmt.shape
                )
            elif isinstance(stmt, DecompositionStmt):
                self.symbols.decomps[stmt.name] = DecompInfo(
                    stmt.name, stmt.size
                )
            elif isinstance(stmt, AlignStmt):
                decomp = self.symbols.decomp(stmt.target, stmt.line)
                for name, ragged in zip(stmt.arrays, stmt.ragged):
                    info = self.symbols.arrays.get(name)
                    if info is None:
                        # implicitly declared by alignment (paper figures
                        # omit declarations): create a real 1-D array
                        info = ArrayInfo(name, "real", (decomp.size,))
                        self.symbols.arrays[name] = info
                    info.decomposition = stmt.target
                    info.ragged = info.ragged or ragged
            elif isinstance(stmt, DistributeStmt):
                self.symbols.decomp(stmt.target, stmt.line)
            elif isinstance(stmt, Forall):
                self.loops.append(self._classify_loop(stmt))

    # ------------------------------------------------------------------
    def _classify_loop(self, loop: Forall) -> LoopNest:
        self._loop_counter += 1
        loop_id = f"loop{self._loop_counter}@{loop.line}"
        inner = None
        body = list(loop.body)
        if len(body) == 1 and isinstance(body[0], Forall):
            inner = body[0]
            body = list(inner.body)
        for s in body:
            if isinstance(s, Forall):
                raise AnalysisError(
                    "only two-level FORALL nests are supported", s.line
                )

        loop_vars = {loop.var} | ({inner.var} if inner else set())
        reduces = [s for s in body if isinstance(s, Reduce)]

        # cell-append template (Figure 11)
        if inner is not None and reduces and all(
            r.op == "APPEND" for r in reduces
        ):
            size_arr = _is_size_bounds(inner)
            if size_arr is None:
                raise AnalysisError(
                    "REDUCE(APPEND) loops must iterate FORALL i = 1, size(j)",
                    inner.line,
                )
            nest = LoopNest(
                kind="cell_append", outer=loop, inner=inner,
                statements=reduces, decomposition=None,
                indirections=[], loop_id=loop_id,
            )
            self._analyze_append(nest, size_arr, loop_vars)
            return nest
        if any(isinstance(s, Reduce) and s.op == "APPEND" for s in body):
            raise AnalysisError(
                "REDUCE(APPEND) must be the only statement of its nest",
                loop.line,
            )

        # csr reduction template (Figure 10)
        if inner is not None:
            offsets = _is_csr_bounds(inner, loop.var)
            if offsets is not None:
                nest = LoopNest(
                    kind="csr", outer=loop, inner=inner,
                    statements=body, decomposition=None,
                    indirections=[], csr_offsets=offsets, loop_id=loop_id,
                )
                self._finish_reduction_analysis(nest, loop_vars)
                return nest
            size_arr = _is_size_bounds(inner)
            if size_arr is not None:
                # ragged reduction (Figure 11's L3: recomputing new sizes)
                nest = LoopNest(
                    kind="ragged", outer=loop, inner=inner,
                    statements=body, decomposition=None,
                    indirections=[], csr_offsets=size_arr, loop_id=loop_id,
                )
                self._finish_reduction_analysis(nest, loop_vars)
                return nest
            raise AnalysisError(
                "unsupported inner loop bounds (expected CSR or size(j))",
                inner.line,
            )

        # flat loop: reductions and/or assignments
        kind = "flat" if reduces else "local_assign"
        nest = LoopNest(
            kind=kind, outer=loop, inner=None, statements=body,
            decomposition=None, indirections=[], loop_id=loop_id,
        )
        self._finish_reduction_analysis(nest, loop_vars)
        return nest

    # ------------------------------------------------------------------
    def _finish_reduction_analysis(self, nest: LoopNest,
                                   loop_vars: set[str]) -> None:
        """Collect indirections and the owner-computes decomposition."""
        indirections: list[str] = []
        decomp: str | None = None
        for stmt in nest.statements:
            refs = [stmt.target] if isinstance(stmt, (Reduce, Assign)) else []
            refs += array_refs(stmt.value)
            if isinstance(stmt, Reduce):
                refs += array_refs(stmt.target) or []
            for ref in refs:
                info = self.symbols.arrays.get(ref.name)
                if info is None:
                    raise AnalysisError(f"undeclared array {ref.name!r}",
                                        ref.line)
                if info.decomposition is None or info.ragged:
                    continue  # replicated or ragged (indirection) array
                if len(ref.subscripts) != 1:
                    raise AnalysisError(
                        f"distributed array {ref.name!r} must have one "
                        "subscript", ref.line,
                    )
                pat = classify_subscript(ref.subscripts[0], loop_vars)
                if pat.kind in ("indirect", "indirect2") \
                        and pat.indirection not in indirections:
                    indirections.append(pat.indirection)
                if decomp is None:
                    decomp = info.decomposition
                elif decomp != info.decomposition:
                    raise AnalysisError(
                        "loop mixes arrays from different decompositions",
                        ref.line,
                    )
        nest.indirections = indirections
        nest.decomposition = decomp
        if nest.kind == "flat" and not indirections:
            nest.kind = "local_assign" if not any(
                isinstance(s, Reduce) for s in nest.statements
            ) else nest.kind

    def _analyze_append(self, nest: LoopNest, size_arr: str,
                        loop_vars: set[str]) -> None:
        """Validate the cell-append body and record the routing array."""
        red = nest.statements[0]
        tgt = red.target
        # target: dest(i, icell(i,j)) or dest(icell(i,j), :) etc.; the
        # routing indirection is the ArrayRef subscript with both loop vars
        routing = None
        for sub in tgt.subscripts:
            if isinstance(sub, ArrayRef):
                routing = sub.name
        if routing is None:
            raise AnalysisError(
                "REDUCE(APPEND) target needs an indirection subscript "
                "(the new-cell array)", tgt.line,
            )
        nest.indirections = [routing]
        srcs = array_refs(red.value)
        if len(srcs) != 1:
            raise AnalysisError(
                "REDUCE(APPEND) source must be a single array reference",
                red.line,
            )
        info = self.symbols.arrays.get(tgt.name)
        if info is None:
            raise AnalysisError(f"undeclared array {tgt.name!r}", tgt.line)
        nest.decomposition = info.decomposition
        nest.csr_offsets = size_arr


def analyze(program: Program) -> Analyzer:
    return Analyzer(program)
