"""Lowering: analyzed loop nests → executable plans.

The code generator decides, per loop, what the inspector must hash and
what the executor must gather/scatter — the paper's compiler
transformation "embedding appropriate CHAOS runtime procedures" (§5.3).
"""

from __future__ import annotations

from repro.lang.analysis import (
    Analyzer,
    LoopNest,
    SubscriptPattern,
    classify_subscript,
)
from repro.lang.ast_nodes import Assign, Reduce, array_refs
from repro.lang.errors import AnalysisError
from repro.lang.plans import AppendPlan, LocalPlan, RefPlan, ReductionPlan


def _loop_vars(nest: LoopNest) -> set[str]:
    vs = {nest.outer.var}
    if nest.inner is not None:
        vs.add(nest.inner.var)
    return vs


def _collect_refs(analyzer: Analyzer, nest: LoopNest) -> list[RefPlan]:
    """Every distributed-array reference in the nest body, classified."""
    loop_vars = _loop_vars(nest)
    refs: list[RefPlan] = []
    for stmt in nest.statements:
        all_refs = []
        if isinstance(stmt, (Reduce, Assign)):
            all_refs.append(stmt.target)
            all_refs += array_refs(stmt.value)
        for ref in all_refs:
            info = analyzer.symbols.arrays.get(ref.name)
            if info is None or info.decomposition is None:
                continue
            pat = classify_subscript(ref.subscripts[0], loop_vars)
            refs.append(RefPlan(ref.name, pat))
    return refs


def lower_loop(analyzer: Analyzer, nest: LoopNest):
    """Lower one analyzed nest into its plan object."""
    if nest.kind == "cell_append":
        red = nest.statements[0]
        src_ref = array_refs(red.value)[0]
        return AppendPlan(
            nest=nest,
            routing=nest.indirections[0],
            size_array=nest.csr_offsets,
            source=src_ref.name,
            target=red.target.name,
        )
    if nest.kind == "local_assign":
        return LocalPlan(nest=nest)
    if nest.kind not in ("flat", "csr", "ragged"):
        raise AnalysisError(f"cannot lower loop kind {nest.kind!r}",
                            nest.outer.line)

    refs = _collect_refs(analyzer, nest)
    patterns: dict[str, SubscriptPattern] = {}
    gather_arrays: list[str] = []
    targets: list[RefPlan] = []
    for stmt in nest.statements:
        if isinstance(stmt, Reduce):
            loop_vars = _loop_vars(nest)
            info = analyzer.symbols.array(stmt.target.name, stmt.line)
            if info.decomposition is None:
                raise AnalysisError(
                    f"REDUCE target {stmt.target.name!r} must be distributed",
                    stmt.line,
                )
            pat = classify_subscript(stmt.target.subscripts[0], loop_vars)
            targets.append(RefPlan(stmt.target.name, pat))
    for rp in refs:
        patterns.setdefault(rp.key(), rp.pattern)
        # arrays read through indirection need gathering; direct refs are
        # owner-local under owner-computes iteration placement
        if rp.pattern.kind in ("indirect", "indirect2"):
            is_target = any(
                t.array == rp.array and t.key() == rp.key() for t in targets
            )
            if not is_target and rp.array not in gather_arrays:
                gather_arrays.append(rp.array)
    # arrays that are BOTH gathered and reduce targets must still be
    # gathered (read-modify-write): include them
    for t in targets:
        for rp in refs:
            if rp.array == t.array and rp.pattern.kind in ("indirect", "indirect2"):
                read_too = any(
                    r2.array == rp.array and not (
                        r2.key() == t.key() and r2.array == t.array
                    )
                    for r2 in refs
                )
                del read_too
    # estimated arithmetic per iteration: nodes in statement expressions
    n_ops = 0
    for stmt in nest.statements:
        if isinstance(stmt, (Reduce, Assign)):
            n_ops += 1 + sum(1 for _ in _expr_nodes(stmt.value))
    plan = ReductionPlan(
        nest=nest,
        index_patterns=list(patterns.values()),
        gather_arrays=gather_arrays,
        reduce_targets=targets,
        compute_ops_per_iter=float(max(1, n_ops)),
    )
    return plan


def _expr_nodes(expr):
    from repro.lang.ast_nodes import walk_expr

    yield from walk_expr(expr)


def lower_program(analyzer: Analyzer) -> dict[str, object]:
    """Lower every loop; returns plans keyed by loop id."""
    return {nest.loop_id: lower_loop(analyzer, nest)
            for nest in analyzer.loops}
