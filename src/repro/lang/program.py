"""Compiled-program runtime: execute mini-Fortran-D against a machine.

``compile_program`` runs the front end (parse → analyze → lower);
``ProgramInstance`` binds a compiled program to a simulated machine and
host arrays, then executes it with the same structure the paper's
compiler-generated code has:

* ``DISTRIBUTE`` statements build translation tables and (on
  redistribution) embed CHAOS ``remap`` calls for every aligned array;
* each irregular loop runs as inspector + executor, with a
  :class:`~repro.core.reuse.ScheduleCache` consulted first — the §5.3.1
  record of "whether any indirection array used in the loop has been
  modified since the last time the inspector was invoked";
* ``REDUCE(APPEND, …)`` nests lower to light-weight schedules and
  ``scatter_append`` (§5.2.1).

``interpret_sequential`` executes the same program on plain numpy arrays
— the oracle the parallel execution is tested against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.context import resolve_component
from repro.core.distribution import (
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    IrregularDistribution,
)
from repro.core.executor import gather, scatter_op, stack_local_ghost
from repro.core.inspector import chaos_hash, clear_stamp, make_hash_tables
from repro.core.iteration import partition_iterations, split_by_block
from repro.core.lightweight import build_lightweight_schedule, scatter_append
from repro.core.remap import remap, remap_array
from repro.core.reuse import CacheStats
from repro.core.schedule import build_schedule
from repro.core.translation import TranslationTable
from repro.lang.analysis import Analyzer, analyze
from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DecompositionStmt,
    DistributeStmt,
    Expr,
    Forall,
    FullSlice,
    Num,
    Program,
    Reduce,
    UnaryOp,
    VarRef,
)
from repro.lang.codegen import lower_program
from repro.lang.errors import ExecutionError
from repro.lang.parser import parse_program
from repro.lang.plans import AppendPlan, LocalPlan, ReductionPlan

#: monotonically increasing ProgramInstance ids for cache scoping
_PROGRAM_COUNTER = itertools.count()

_REDUCE_OPS = {
    "SUM": (np.add, 0.0),
    "MAX": (np.maximum, -np.inf),
    "MIN": (np.minimum, np.inf),
    "PROD": (np.multiply, 1.0),
}

_INTRINSICS = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "sign": np.sign,
}


@dataclass
class CompiledProgram:
    """Front-end output: AST + analysis + lowered plans."""

    source: str
    ast: Program
    analyzer: Analyzer
    plans: dict[str, Any]

    def loop_ids(self) -> list[str]:
        return [nest.loop_id for nest in self.analyzer.loops]


def compile_program(source: str) -> CompiledProgram:
    """Parse, analyze and lower a mini-Fortran-D program."""
    ast = parse_program(source)
    analyzer = analyze(ast)
    plans = lower_program(analyzer)
    return CompiledProgram(source=source, ast=ast, analyzer=analyzer,
                           plans=plans)


@dataclass
class _DecompState:
    size: int
    ttable: TranslationTable | None = None
    htables: list | None = None
    version: int = 0


class ProgramInstance:
    """One compiled program bound to a machine and data bindings.

    ``bindings`` supplies initial values: 1-D numpy arrays for declared /
    aligned arrays, list-of-arrays for ragged cell arrays, ints/floats for
    scalar loop bounds.  Distributed arrays may be given as global arrays;
    they are scattered when their decomposition is distributed.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        ctx,
        bindings: dict[str, Any] | None = None,
        ttable_storage: str = "replicated",
    ):
        ctx = resolve_component(ctx, "ProgramInstance")
        self.compiled = compiled
        #: the one execution context generated code runs against — its
        #: backend covers index analysis, schedule generation and
        #: executor data transport; its record/cache drive §5.3.1 reuse
        self.ctx = ctx
        self.machine = ctx.machine
        self.ttable_storage = ttable_storage
        self.symbols = compiled.analyzer.symbols
        self.host: dict[str, Any] = {}
        self.local: dict[str, list[np.ndarray]] = {}   # distributed 1-D
        self.ragged: dict[str, list[list[np.ndarray]]] = {}  # per-rank rows
        self.decomps: dict[str, _DecompState] = {
            name: _DecompState(size=d.size)
            for name, d in self.symbols.decomps.items()
        }
        self.record = ctx.record
        self.cache = ctx.schedule_cache
        #: unique cache namespace: loop ids are program-relative, so two
        #: instances sharing one context (and hence one ScheduleCache)
        #: must not collide on "loop1"-style keys; a process-wide counter
        #: (never recycled, unlike id()) keeps scopes distinct
        self._cache_scope = f"prog{next(_PROGRAM_COUNTER)}"
        if bindings:
            for k, v in bindings.items():
                self.host[k] = v
        # allocate declared-but-unbound arrays
        for name, info in self.symbols.arrays.items():
            if name not in self.host and not info.ragged:
                shape = info.shape if info.shape else (
                    (self.symbols.decomps[info.decomposition].size,)
                    if info.decomposition else (0,)
                )
                dtype = np.float64 if info.dtype == "real" else np.int64
                self.host[name] = np.zeros(shape, dtype=dtype)

    # ==================================================================
    # lifecycle
    # ==================================================================
    def close(self) -> None:
        """Tear down the context's backend resources (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "ProgramInstance":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ==================================================================
    # helpers
    # ==================================================================
    def _decomp_of(self, array: str) -> str:
        info = self.symbols.array(array)
        if info.decomposition is None:
            raise ExecutionError(f"array {array!r} is not distributed")
        return info.decomposition

    def _ttable(self, decomp: str) -> TranslationTable:
        st = self.decomps[decomp]
        if st.ttable is None:
            raise ExecutionError(
                f"decomposition {decomp!r} used before DISTRIBUTE"
            )
        return st.ttable

    def _htables(self, decomp: str):
        st = self.decomps[decomp]
        if st.htables is None:
            st.htables = make_hash_tables(self.ctx, st.ttable)
        return st.htables

    def _aligned_arrays(self, decomp: str) -> list[str]:
        return [
            n for n, info in self.symbols.arrays.items()
            if info.decomposition == decomp
        ]

    def get_array(self, name: str) -> Any:
        """Current global value (assembles distributed arrays host-side)."""
        info = self.symbols.arrays.get(name)
        if info is not None and info.ragged and name in self.ragged:
            dist = self._ttable(info.decomposition).dist
            rows: list[np.ndarray | None] = [None] * dist.n_global
            for p in self.machine.ranks():
                for c, row in zip(dist.global_indices(p).tolist(),
                                  self.ragged[name][p]):
                    rows[c] = row
            return [
                r if r is not None else np.zeros(0) for r in rows
            ]
        if name in self.local:
            dist = self._ttable(self._decomp_of(name)).dist
            first = self.local[name][0]
            out = np.zeros((dist.n_global,) + first.shape[1:],
                           dtype=first.dtype)
            for p in self.machine.ranks():
                out[dist.global_indices(p)] = self.local[name][p]
            return out
        if name in self.host:
            return self.host[name]
        raise ExecutionError(f"array {name!r} has no value")

    def set_array(self, name: str, value: Any) -> None:
        """Update an array's value and record the modification (§5.3.1)."""
        info = self.symbols.arrays.get(name)
        self.record.touch(name)
        if info is not None and info.ragged:
            self._set_ragged(name, value)
            return
        arr = np.asarray(value)
        self.host[name] = arr
        if name in self.local:
            dist = self._ttable(self._decomp_of(name)).dist
            if arr.shape[0] != dist.n_global:
                raise ExecutionError(
                    f"{name!r}: value has {arr.shape[0]} elements, "
                    f"distribution expects {dist.n_global}"
                )
            self.local[name] = [
                arr[dist.global_indices(p)] for p in self.machine.ranks()
            ]

    def _set_ragged(self, name: str, rows: list) -> None:
        info = self.symbols.array(name)
        self.host[name] = [np.asarray(r, dtype=np.float64) for r in rows]
        if info.decomposition and self.decomps[info.decomposition].ttable:
            dist = self.decomps[info.decomposition].ttable.dist
            self.ragged[name] = [
                [self.host[name][c] for c in dist.global_indices(p).tolist()]
                for p in self.machine.ranks()
            ]

    # ==================================================================
    # execution
    # ==================================================================
    def execute(self) -> None:
        """Run every statement of the program once, in order."""
        for stmt in self.compiled.ast.statements:
            if isinstance(stmt, (ArrayDecl, DecompositionStmt)):
                continue
            if isinstance(stmt, AlignStmt):
                self._exec_align(stmt)
            elif isinstance(stmt, DistributeStmt):
                self._exec_distribute(stmt)
            elif isinstance(stmt, Forall):
                nest = next(
                    n for n in self.compiled.analyzer.loops
                    if n.outer is stmt
                )
                self.run_loop(nest.loop_id)
            else:
                raise ExecutionError(
                    f"cannot execute statement {type(stmt).__name__}",
                    getattr(stmt, "line", None),
                )

    def redistribute(self, decomp: str, map_array: str) -> None:
        """Re-execute an irregular DISTRIBUTE for ``decomp`` using the
        current value of ``map_array`` — what the compiler-generated code
        does when the program reaches a DISTRIBUTE statement again
        (Table 6 redistributes every 25 iterations)."""
        self._exec_distribute(
            DistributeStmt(decomp, "MAP", map_array, 0)
        )

    def _exec_align(self, stmt: AlignStmt) -> None:
        st = self.decomps[stmt.target]
        if st.ttable is not None:
            for name in stmt.arrays:
                self._distribute_array(name, st.ttable.dist)

    def _exec_distribute(self, stmt: DistributeStmt) -> None:
        st = self.decomps[stmt.target]
        n = st.size
        m = self.machine
        if stmt.scheme == "BLOCK":
            dist: Distribution = BlockDistribution(n, m.n_ranks)
        elif stmt.scheme == "CYCLIC":
            dist = CyclicDistribution(n, m.n_ranks)
        else:
            map_values = np.asarray(self.get_array(stmt.map_array),
                                    dtype=np.int64)
            if map_values.shape[0] != n:
                raise ExecutionError(
                    f"map array {stmt.map_array!r} has {map_values.shape[0]}"
                    f" entries, decomposition {stmt.target!r} needs {n}",
                    stmt.line,
                )
            if map_values.size and (map_values.min() < 0
                                    or map_values.max() >= m.n_ranks):
                raise ExecutionError(
                    "map entries must be ranks in [0, n_ranks)", stmt.line
                )
            dist = IrregularDistribution(map_values, m.n_ranks)

        old = st.ttable
        st.ttable = TranslationTable(m, dist, storage=self.ttable_storage)
        st.version += 1
        st.htables = None
        self.record.touch(f"__decomp__:{stmt.target}")
        if old is None:
            for name in self._aligned_arrays(stmt.target):
                self._distribute_array(name, dist)
        else:
            # redistribution: one remap plan moves every aligned array
            plan = remap(self.ctx, old.dist, dist, category="remap")
            for name in self._aligned_arrays(stmt.target):
                info = self.symbols.array(name)
                if info.ragged:
                    self._set_ragged(name, self.host.get(name, []))
                elif name in self.local:
                    self.local[name] = remap_array(
                        self.ctx, plan, self.local[name], category="remap",
                    )

    def _distribute_array(self, name: str, dist: Distribution) -> None:
        info = self.symbols.array(name)
        if info.ragged:
            rows = self.host.get(name)
            if rows is not None:
                self._set_ragged(name, rows)
            return
        g = np.asarray(self.host.get(
            name, np.zeros(dist.n_global,
                           dtype=np.float64 if info.dtype == "real"
                           else np.int64)
        ))
        if g.shape[0] != dist.n_global:
            raise ExecutionError(
                f"array {name!r} has {g.shape[0]} elements, decomposition "
                f"expects {dist.n_global}"
            )
        self.local[name] = [g[dist.global_indices(p)]
                            for p in self.machine.ranks()]

    # ==================================================================
    # loops
    # ==================================================================
    def run_loop(self, loop_id: str) -> None:
        """Execute one loop (inspector reused when nothing changed)."""
        plan = self.compiled.plans[loop_id]
        if isinstance(plan, LocalPlan):
            self._exec_local(plan)
        elif isinstance(plan, AppendPlan):
            self._exec_append(plan)
        elif isinstance(plan, ReductionPlan):
            self._exec_reduction(plan)
        else:  # pragma: no cover - lowering guarantees the cases above
            raise ExecutionError(f"unknown plan type {type(plan).__name__}")

    # ---- bounds ------------------------------------------------------
    def _bound_value(self, expr: Expr) -> int:
        if isinstance(expr, Num):
            return int(expr.value)
        if isinstance(expr, VarRef):
            v = self.host.get(expr.name)
            if v is None or np.ndim(v) != 0:
                raise ExecutionError(
                    f"loop bound {expr.name!r} must be a bound scalar",
                    expr.line,
                )
            return int(v)
        raise ExecutionError("unsupported loop bound", getattr(expr, "line", None))

    # ---- index-space construction -------------------------------------
    def _iteration_space(self, plan: ReductionPlan) -> dict[str, Any]:
        """Per-rank global index arrays for every subscript pattern.

        Returns ``{"gidx": {pattern_key: [per-rank np arrays]},
        "n_iter": [per-rank iteration counts]}`` (0-based indices).
        """
        nest = plan.nest
        m = self.machine
        decomp = nest.decomposition
        tt = self._ttable(decomp)
        dist = tt.dist
        lo = self._bound_value(nest.outer.lower)
        hi = self._bound_value(nest.outer.upper)
        if lo != 1:
            raise ExecutionError("outer FORALL must start at 1",
                                 nest.outer.line)

        gidx: dict[str, list[np.ndarray]] = {}
        if nest.kind == "csr":
            if hi != dist.n_global:
                raise ExecutionError(
                    "CSR outer loop must span the decomposition",
                    nest.outer.line,
                )
            inblo = np.asarray(self.get_array(nest.csr_offsets),
                               dtype=np.int64)
            jname = None
            for pat in plan.index_patterns:
                if pat.kind == "indirect":
                    jname = pat.indirection
            offsets0 = inblo - 1  # 1-based positions -> 0-based CSR offsets
            i_per, jv_per = [], []
            for p in m.ranks():
                rows = dist.global_indices(p)
                counts = offsets0[rows + 1] - offsets0[rows]
                total = int(counts.sum())
                i_exp = np.repeat(rows, counts)
                if jname is not None and total:
                    jarr = np.asarray(self.get_array(jname), dtype=np.int64)
                    starts = offsets0[rows]
                    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
                    flat = (np.repeat(starts - shift, counts)
                            + np.arange(total, dtype=np.int64))
                    jv = jarr[flat] - 1
                else:
                    jv = np.zeros(total, dtype=np.int64)
                i_per.append(i_exp)
                jv_per.append(jv)
                m.charge_memops(p, 2 * total, "inspector")
            for pat in plan.index_patterns:
                if pat.kind == "loopvar" and pat.loopvar == nest.outer.var:
                    gidx[pat.key()] = i_per
                elif pat.kind == "indirect":
                    gidx[pat.key()] = jv_per
                else:
                    raise ExecutionError(
                        f"unsupported pattern {pat.key()} in CSR loop",
                        nest.outer.line,
                    )
            n_iter = [a.size for a in i_per]
        elif nest.kind == "ragged":
            if hi != dist.n_global:
                raise ExecutionError(
                    "ragged outer loop must span the decomposition",
                    nest.outer.line,
                )
            sizes = np.asarray(self.get_array(nest.csr_offsets),
                               dtype=np.int64)
            routing_rows = None
            for pat in plan.index_patterns:
                if pat.kind == "indirect2":
                    routing_rows = self.get_array(pat.indirection)
            cell_per, val_per = [], []
            for p in m.ranks():
                rows = dist.global_indices(p)
                counts = sizes[rows]
                cell_exp = np.repeat(rows, counts)
                if routing_rows is not None:
                    vals = (
                        np.concatenate(
                            [np.asarray(routing_rows[c][: sizes[c]],
                                        dtype=np.int64)
                             for c in rows.tolist()]
                        ) - 1
                        if rows.size and counts.sum()
                        else np.zeros(0, dtype=np.int64)
                    )
                else:
                    vals = np.zeros(cell_exp.size, dtype=np.int64)
                cell_per.append(cell_exp)
                val_per.append(vals)
                m.charge_memops(p, 2 * cell_exp.size, "inspector")
            for pat in plan.index_patterns:
                if pat.kind == "loopvar" and pat.loopvar == nest.outer.var:
                    gidx[pat.key()] = cell_per
                elif pat.kind == "indirect2":
                    gidx[pat.key()] = val_per
                else:
                    raise ExecutionError(
                        f"unsupported pattern {pat.key()} in ragged loop",
                        nest.outer.line,
                    )
            n_iter = [a.size for a in cell_per]
        else:  # flat
            n_total = hi - lo + 1
            ind_values: dict[str, np.ndarray] = {}
            for pat in plan.index_patterns:
                if pat.kind == "indirect":
                    arr = np.asarray(self.get_array(pat.indirection),
                                     dtype=np.int64)
                    if arr.shape[0] < n_total:
                        raise ExecutionError(
                            f"indirection {pat.indirection!r} shorter than "
                            "the loop range", nest.outer.line,
                        )
                    ind_values[pat.key()] = arr[:n_total] - 1
                elif pat.kind == "loopvar":
                    if n_total != dist.n_global:
                        raise ExecutionError(
                            "direct references require the loop to span "
                            "the decomposition", nest.outer.line,
                        )
                    ind_values[pat.key()] = np.arange(n_total, dtype=np.int64)
                else:
                    raise ExecutionError(
                        f"unsupported pattern {pat.key()} in flat loop",
                        nest.outer.line,
                    )
            # Phase C/D: almost-owner-computes over the accessed elements
            keys = list(ind_values)
            accesses = [
                [split_by_block(ind_values[k], m)[p] for k in keys]
                for p in m.ranks()
            ]
            assign = partition_iterations(
                self.ctx, tt, accesses, rule="almost-owner-computes",
                category="inspector",
            )
            for k in keys:
                gidx[k] = assign.remap_iteration_data(
                    self.ctx, split_by_block(ind_values[k], m),
                    category="inspector",
                )
            n_iter = [gidx[keys[0]][p].size for p in m.ranks()] if keys \
                else [0] * m.n_ranks
        return {"gidx": gidx, "n_iter": n_iter}

    # ---- inspector -----------------------------------------------------
    def _inspect(self, plan: ReductionPlan) -> dict[str, Any]:
        nest = plan.nest
        decomp = nest.decomposition
        deps = plan.dependency_names() + (f"__decomp__:{decomp}",)

        def build():
            tt = self._ttable(decomp)
            hts = self._htables(decomp)
            space = self._iteration_space(plan)
            loc: dict[str, list[np.ndarray]] = {}
            for pat in plan.index_patterns:
                stamp = plan.stamp_for(pat)
                if stamp in hts[0].registry:
                    clear_stamp(self.ctx, hts, stamp, category="inspector")
                loc[pat.key()] = chaos_hash(
                    self.ctx, hts, tt, space["gidx"][pat.key()], stamp,
                    category="inspector",
                )
            expr = hts[0].expr(*[plan.stamp_for(p)
                                 for p in plan.index_patterns])
            sched = build_schedule(self.ctx, hts, expr,
                                   category="inspector")
            return {
                "schedule": sched,
                "loc": loc,
                "gidx": space["gidx"],
                "n_iter": space["n_iter"],
            }

        value, _rebuilt = self.cache.get_or_build(
            self.cache_key(plan.loop_id), deps, build
        )
        return value

    def cache_key(self, loop_id: str) -> str:
        """This instance's ScheduleCache key for one of its loops (the
        cache is per context and shared, so keys are instance-scoped)."""
        return f"{self._cache_scope}:{loop_id}"

    def cache_stats(self, loop_id: str) -> "CacheStats":
        """Structured counters of this instance's cached value for a loop
        (a :class:`~repro.core.reuse.CacheStats`; compares equal to and
        unpacks as the historical ``(hits, builds)`` tuple)."""
        return self.cache.stats(self.cache_key(loop_id))

    def total_cache_stats(self) -> "CacheStats":
        """Aggregate :class:`CacheStats` over this instance's loops."""
        return self.cache.total_stats(prefix=f"{self._cache_scope}:")

    # ---- expression evaluation ------------------------------------------
    def _eval(self, expr: Expr, env: dict[str, Any], rank: int):
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Call):
            args = [self._eval(a, env, rank) for a in expr.args]
            return _INTRINSICS[expr.func](*args)
        if isinstance(expr, UnaryOp):
            v = self._eval(expr.operand, env, rank)
            return -v
        if isinstance(expr, BinOp):
            a = self._eval(expr.left, env, rank)
            b = self._eval(expr.right, env, rank)
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            if expr.op == "/":
                return a / b
            if expr.op == "**":
                return a ** b
            raise ExecutionError(f"unknown operator {expr.op!r}", expr.line)
        if isinstance(expr, VarRef):
            if expr.name in env["loop_vars"]:
                key = f"var:{expr.name}"
                if key in env["gidx"]:
                    return env["gidx"][key][rank].astype(np.float64) + 1.0
                raise ExecutionError(
                    f"loop variable {expr.name!r} not available as a value",
                    expr.line,
                )
            v = self.host.get(expr.name)
            if v is not None and np.ndim(v) == 0:
                return float(v)
            raise ExecutionError(f"unbound scalar {expr.name!r}", expr.line)
        if isinstance(expr, ArrayRef):
            info = self.symbols.arrays.get(expr.name)
            if info is None:
                raise ExecutionError(f"undeclared array {expr.name!r}",
                                     expr.line)
            pat_key = env["pattern_of"](expr)
            if info.decomposition is not None and expr.name in env["stacked"]:
                idx = env["loc"][pat_key][rank]
                return env["stacked"][expr.name][rank][idx]
            # replicated array: index by global values
            g = np.asarray(self.get_array(expr.name))
            idx = env["gidx"][pat_key][rank]
            return g[idx]
        if isinstance(expr, FullSlice):
            raise ExecutionError("':' only allowed in REDUCE(APPEND) targets",
                                 expr.line)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    # ---- reduction executor ----------------------------------------------
    def _exec_reduction(self, plan: ReductionPlan) -> None:
        nest = plan.nest
        m = self.machine
        decomp = nest.decomposition
        if decomp is None:
            raise ExecutionError("reduction loop touches no distributed array",
                                 nest.outer.line)
        state = self._inspect(plan)
        sched = state["schedule"]
        loop_vars = {nest.outer.var} | (
            {nest.inner.var} if nest.inner else set()
        )

        def pattern_of(ref: ArrayRef) -> str:
            from repro.lang.analysis import classify_subscript
            return classify_subscript(ref.subscripts[0], loop_vars).key()

        # gather every distributed array read in the loop
        stacked: dict[str, list[np.ndarray]] = {}
        read_arrays = set(plan.gather_arrays)
        for stmt in nest.statements:
            from repro.lang.ast_nodes import array_refs
            for ref in array_refs(stmt.value):
                info = self.symbols.arrays.get(ref.name)
                if info is not None and info.decomposition == decomp \
                        and not info.ragged:
                    read_arrays.add(ref.name)
        ghosts_of: dict[str, list[np.ndarray]] = {}
        for name in sorted(read_arrays):
            if name not in self.local:
                raise ExecutionError(f"array {name!r} not distributed yet",
                                     nest.outer.line)
            g = gather(self.ctx, sched, self.local[name], category="comm")
            ghosts_of[name] = g
            stacked[name] = stack_local_ghost(self.local[name], g)

        env = {
            "stacked": stacked,
            "loc": state["loc"],
            "gidx": state["gidx"],
            "pattern_of": pattern_of,
            "loop_vars": loop_vars,
        }

        # accumulate per target array (zero/identity-initialized stacked)
        target_names = {t.array for t in plan.reduce_targets}
        acc: dict[str, list[np.ndarray]] = {}
        ops: dict[str, Any] = {}
        for stmt in nest.statements:
            if isinstance(stmt, Reduce):
                if stmt.op not in _REDUCE_OPS:
                    raise ExecutionError(f"unsupported REDUCE op {stmt.op}",
                                         stmt.line)
                prev = ops.get(stmt.target.name)
                if prev is not None and prev is not _REDUCE_OPS[stmt.op][0]:
                    raise ExecutionError(
                        "mixed reduction ops on one target", stmt.line
                    )
                ops[stmt.target.name] = _REDUCE_OPS[stmt.op][0]
        for name in target_names:
            ufunc = ops[name]
            identity = next(v for u, v in _REDUCE_OPS.values() if u is ufunc)
            locs = self.local[name]
            acc[name] = [
                np.full(locs[p].shape[0] + sched.ghost_size[p], identity,
                        dtype=np.float64)
                for p in m.ranks()
            ]

        for p in m.ranks():
            for stmt in nest.statements:
                if isinstance(stmt, Reduce):
                    contrib = self._eval(stmt.value, env, p)
                    key = pattern_of(stmt.target)
                    idx = state["loc"][key][p]
                    if np.ndim(contrib) == 0:
                        contrib = np.full(idx.size, float(contrib))
                    ops[stmt.target.name].at(acc[stmt.target.name][p], idx,
                                             contrib)
                elif isinstance(stmt, Assign):
                    value = self._eval(stmt.value, env, p)
                    key = pattern_of(stmt.target)
                    idx = state["loc"][key][p]
                    tgt = stacked.get(stmt.target.name)
                    if tgt is None:
                        raise ExecutionError(
                            "assignment target must be gathered", stmt.line
                        )
                    tgt[p][idx] = value
            m.charge_compute(
                p, plan.compute_ops_per_iter * state["n_iter"][p], "compute"
            )

        # fold accumulators into owners: local part elementwise, ghost part
        # via scatter_op
        for name in target_names:
            ufunc = ops[name]
            ghost_acc = []
            for p in m.ranks():
                n_local = self.local[name][p].shape[0]
                local_acc = acc[name][p][:n_local]
                self.local[name][p][...] = ufunc(
                    self.local[name][p], local_acc.astype(
                        self.local[name][p].dtype, copy=False
                    )
                )
                ghost_acc.append(acc[name][p][n_local:].astype(
                    self.local[name][p].dtype, copy=False
                ))
            scatter_op(self.ctx, sched, self.local[name], ghost_acc, ufunc,
                       category="comm")
        m.barrier()

    # ---- local loops ------------------------------------------------------
    def _exec_local(self, plan: LocalPlan) -> None:
        nest = plan.nest
        m = self.machine
        decomp = nest.decomposition
        if decomp is None:
            # purely replicated loop: run host-side on rank 0's budget
            raise ExecutionError(
                "local loops must touch a distributed array", nest.outer.line
            )
        dist = self._ttable(decomp).dist
        hi = self._bound_value(nest.outer.upper)
        if hi != dist.n_global:
            raise ExecutionError(
                "local loop must span the decomposition", nest.outer.line
            )
        for p in m.ranks():
            for stmt in nest.statements:
                if not isinstance(stmt, Assign):
                    raise ExecutionError("local loops support assignments only",
                                         stmt.line)
                if not (len(stmt.target.subscripts) == 1
                        and isinstance(stmt.target.subscripts[0], VarRef)):
                    raise ExecutionError(
                        "local assignment must use the loop variable",
                        stmt.line,
                    )
                if isinstance(stmt.value, Num):
                    self.local[stmt.target.name][p][...] = stmt.value.value
                else:
                    raise ExecutionError(
                        "only constant local assignments are supported",
                        stmt.line,
                    )
            m.charge_compute(p, dist.local_size(p), "compute")
        m.barrier()

    # ---- append loops -------------------------------------------------------
    def _exec_append(self, plan: AppendPlan) -> None:
        """REDUCE(APPEND): light-weight-schedule data movement (§5.2.1)."""
        nest = plan.nest
        m = self.machine
        decomp = self._decomp_of(plan.target)
        tt = self._ttable(decomp)
        dist = tt.dist
        sizes = np.asarray(self.get_array(plan.size_array), dtype=np.int64)
        routing = self.get_array(plan.routing)
        source = self.get_array(plan.source)

        dest_cell_per, values_per = [], []
        for p in m.ranks():
            rows = dist.global_indices(p)
            cells_vals = []
            vals = []
            for c in rows.tolist():
                k = int(sizes[c])
                if k == 0:
                    continue
                cells_vals.append(np.asarray(routing[c][:k],
                                             dtype=np.int64) - 1)
                vals.append(np.asarray(source[c][:k], dtype=np.float64))
            dest_cell = (np.concatenate(cells_vals) if cells_vals
                         else np.zeros(0, dtype=np.int64))
            value = (np.concatenate(vals) if vals
                     else np.zeros(0, dtype=np.float64))
            if dest_cell.size and (
                dest_cell.min() < 0 or dest_cell.max() >= dist.n_global
            ):
                raise ExecutionError(
                    f"routing array {plan.routing!r} holds out-of-range cells",
                    nest.outer.line,
                )
            dest_cell_per.append(dest_cell)
            values_per.append(value)
            m.charge_memops(p, 2 * dest_cell.size, "inspector")

        dest_rank = [tt.owner_local(d) if d.size else d
                     for d in dest_cell_per]
        sched = build_lightweight_schedule(self.ctx, dest_rank,
                                           category="inspector")
        arrived_vals = scatter_append(self.ctx, sched, values_per,
                                      category="comm")
        arrived_cells = scatter_append(self.ctx, sched, dest_cell_per,
                                       category="comm")
        # regroup arrivals into ragged rows of the target
        new_rows_global: list[np.ndarray | None] = [None] * dist.n_global
        for p in m.ranks():
            cells = arrived_cells[p]
            vals = arrived_vals[p]
            rows = dist.global_indices(p)
            order = np.argsort(cells, kind="stable")
            sc = cells[order]
            sv = vals[order]
            bounds = np.searchsorted(sc, rows)
            bounds_hi = np.searchsorted(sc, rows, side="right")
            for c, lo, hi2 in zip(rows.tolist(), bounds.tolist(),
                                  bounds_hi.tolist()):
                new_rows_global[c] = sv[lo:hi2]
            m.charge_memops(p, vals.size, "comm")
        m.barrier()
        self.host[plan.target] = [
            r if r is not None else np.zeros(0) for r in new_rows_global
        ]
        self.record.touch(plan.target)
        self._set_ragged(plan.target, self.host[plan.target])


# =====================================================================
# sequential oracle
# =====================================================================
def interpret_sequential(compiled: CompiledProgram,
                         bindings: dict[str, Any]) -> dict[str, Any]:
    """Execute the program on plain numpy arrays (no machine, no CHAOS).

    Distribution directives are no-ops; loops run in order with
    ``np.ufunc.at`` semantics.  Returns the final value of every array.
    """
    symbols = compiled.analyzer.symbols
    state: dict[str, Any] = {}
    for k, v in bindings.items():
        if isinstance(v, list):
            state[k] = [np.asarray(r).copy() for r in v]
        elif np.ndim(v) == 0:
            state[k] = v
        else:
            state[k] = np.asarray(v).copy()
    for name, info in symbols.arrays.items():
        if name not in state and not info.ragged:
            shape = info.shape if info.shape else (
                (symbols.decomps[info.decomposition].size,)
                if info.decomposition else (0,)
            )
            state[name] = np.zeros(
                shape, dtype=np.float64 if info.dtype == "real" else np.int64
            )

    def bound(expr) -> int:
        if isinstance(expr, Num):
            return int(expr.value)
        if isinstance(expr, VarRef):
            return int(state[expr.name])
        raise ExecutionError("unsupported loop bound")

    def eval_expr(expr, idx_env):
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Call):
            return _INTRINSICS[expr.func](
                *[eval_expr(a, idx_env) for a in expr.args]
            )
        if isinstance(expr, UnaryOp):
            return -eval_expr(expr.operand, idx_env)
        if isinstance(expr, BinOp):
            a, b = eval_expr(expr.left, idx_env), eval_expr(expr.right, idx_env)
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            if expr.op == "/":
                return a / b
            return a ** b
        if isinstance(expr, VarRef):
            if expr.name in idx_env:
                return idx_env[expr.name].astype(np.float64) + 1.0
            return float(state[expr.name])
        if isinstance(expr, ArrayRef):
            idx = ref_index(expr, idx_env)
            return np.asarray(state[expr.name])[idx]
        raise ExecutionError("cannot evaluate expression")

    def ref_index(ref: ArrayRef, idx_env):
        sub = ref.subscripts[0]
        if isinstance(sub, VarRef):
            return idx_env[sub.name]
        if isinstance(sub, ArrayRef):
            inner_idx = tuple(
                idx_env[s.name] for s in sub.subscripts
                if isinstance(s, VarRef)
            )
            arr = state[sub.name]
            if isinstance(arr, list):  # ragged routing: (slot, cell)
                slot, cell = inner_idx
                vals = np.array(
                    [arr[c][s] for s, c in zip(slot.tolist(), cell.tolist())],
                    dtype=np.int64,
                )
                return vals - 1
            return np.asarray(arr, dtype=np.int64)[inner_idx[0]] - 1
        raise ExecutionError("unsupported subscript")

    for nest in compiled.analyzer.loops:
        hi = bound(nest.outer.upper)
        if nest.kind == "local_assign":
            for stmt in nest.statements:
                state[stmt.target.name][:hi] = stmt.value.value
            continue
        if nest.kind == "cell_append":
            plan = compiled.plans[nest.loop_id]
            sizes = np.asarray(state[plan.size_array], dtype=np.int64)
            routing = state[plan.routing]
            source = state[plan.source]
            new_rows = [[] for _ in range(hi)]
            for c in range(hi):
                for s in range(int(sizes[c])):
                    dest = int(routing[c][s]) - 1
                    new_rows[dest].append(float(source[c][s]))
            state[plan.target] = [np.asarray(r, dtype=np.float64)
                                  for r in new_rows]
            continue
        # flat / csr / ragged reductions
        if nest.kind == "csr":
            inblo = np.asarray(state[nest.csr_offsets], dtype=np.int64) - 1
            rows = np.arange(hi, dtype=np.int64)
            counts = inblo[rows + 1] - inblo[rows]
            i_exp = np.repeat(rows, counts)
            total = int(counts.sum())
            starts = inblo[rows]
            shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
            flat = (np.repeat(starts - shift, counts)
                    + np.arange(total, dtype=np.int64))
            idx_env = {nest.outer.var: i_exp,
                       "__csr_flat__": flat}
            if nest.inner is not None:
                idx_env[nest.inner.var] = flat  # positions into jnb
        elif nest.kind == "ragged":
            sizes = np.asarray(state[nest.csr_offsets], dtype=np.int64)
            rows = np.arange(hi, dtype=np.int64)
            cell_exp = np.repeat(rows, sizes[rows])
            slot_exp = (np.arange(cell_exp.size, dtype=np.int64)
                        - np.repeat(np.concatenate(
                            ([0], np.cumsum(sizes[rows])[:-1])), sizes[rows]))
            idx_env = {nest.outer.var: cell_exp}
            if nest.inner is not None:
                idx_env[nest.inner.var] = slot_exp
        else:  # flat
            idx_env = {nest.outer.var: np.arange(hi, dtype=np.int64)}

        # In CSR loops, jnb(j) means "value at position j of jnb": our
        # ref_index handles ArrayRef subscripts by indexing the indirection
        # with the inner variable's positions.
        for stmt in nest.statements:
            if isinstance(stmt, Reduce):
                ufunc, _ = _REDUCE_OPS[stmt.op]
                tgt_idx = ref_index(stmt.target, idx_env)
                contrib = eval_expr(stmt.value, idx_env)
                if np.ndim(contrib) == 0:
                    contrib = np.full(np.size(tgt_idx), float(contrib))
                ufunc.at(state[stmt.target.name], tgt_idx, contrib)
            elif isinstance(stmt, Assign):
                tgt_idx = ref_index(stmt.target, idx_env)
                state[stmt.target.name][tgt_idx] = eval_expr(stmt.value,
                                                             idx_env)
    return state
