"""Tokenizer for the mini Fortran D dialect.

Line-oriented like Fortran: the lexer produces one token list per logical
line, skipping blank lines and full-line comments (``C ...``, ``! ...``)
while recognizing ``C$``/``!$`` *directive* lines (DECOMPOSITION,
DISTRIBUTE, ALIGN live there in the paper's figures, but we also accept
them as plain statements).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.lang.errors import LexError


class TokKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    OP = auto()
    EOL = auto()


KEYWORDS = {
    "REAL", "INTEGER", "DECOMPOSITION", "DISTRIBUTE", "ALIGN", "WITH",
    "FORALL", "REDUCE", "END", "DO", "ENDDO", "ENDFORALL",
    "BLOCK", "CYCLIC", "SUM", "APPEND", "MAX", "MIN", "PROD",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<num>\d+(\.\d*)?([eEdD][+-]?\d+)?)   |
    (?P<ident>[A-Za-z_][A-Za-z0-9_]*)       |
    (?P<op>\*\*|[-+*/=(),:])                |
    (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def is_kw(self, *names: str) -> bool:
        return self.kind is TokKind.IDENT and self.text.upper() in names

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokKind.OP and self.text in ops


@dataclass(frozen=True)
class Line:
    """One logical source line: its tokens and directive flag."""

    tokens: tuple[Token, ...]
    number: int
    is_directive: bool


def _strip_label(text: str) -> str:
    """Remove Fortran statement labels like ``L1:`` or ``S1`` prefixes."""
    m = re.match(r"^\s*[A-Za-z]\d*\s*:\s*", text)
    if m:
        return " " * m.end() + text[m.end():]
    return text


def tokenize(source: str) -> list[Line]:
    """Tokenize a program into logical lines."""
    lines: list[Line] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = raw.rstrip()
        if not text.strip():
            continue
        stripped = text.lstrip()
        is_directive = False
        if stripped.upper().startswith(("C$", "!$")):
            is_directive = True
            text = stripped[2:]
        elif stripped.startswith("!") or re.match(r"^[Cc](\s|$)", stripped):
            continue  # comment line
        text = _strip_label(text)
        # inline ! comment
        bang = text.find("!")
        if bang >= 0:
            text = text[:bang]
        if not text.strip():
            continue
        toks: list[Token] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise LexError(f"unexpected character {text[pos]!r}", lineno)
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            kind = {
                "num": TokKind.NUMBER,
                "ident": TokKind.IDENT,
                "op": TokKind.OP,
            }[m.lastgroup]
            toks.append(Token(kind, m.group(), lineno, m.start()))
        if toks:
            toks.append(Token(TokKind.EOL, "", lineno, len(text)))
            lines.append(Line(tuple(toks), lineno, is_directive))
    return lines
