"""Mini Fortran D front end and compiler (paper §5).

Parses the paper's language subset (DECOMPOSITION / DISTRIBUTE / ALIGN
directives, FORALL + REDUCE loops, the proposed REDUCE(APPEND) intrinsic),
analyzes distributions and indirection patterns, and lowers irregular
loop nests to inspector/executor plans over the CHAOS runtime.
"""

from repro.lang.errors import (
    AnalysisError,
    ExecutionError,
    FortranDError,
    LexError,
    ParseError,
)
from repro.lang.tokens import tokenize
from repro.lang.parser import parse_program
from repro.lang.analysis import Analyzer, analyze
from repro.lang.codegen import lower_loop, lower_program
from repro.lang.plans import AppendPlan, LocalPlan, ReductionPlan
from repro.lang.program import (
    CompiledProgram,
    ProgramInstance,
    compile_program,
    interpret_sequential,
)

__all__ = [
    "FortranDError",
    "LexError",
    "ParseError",
    "AnalysisError",
    "ExecutionError",
    "tokenize",
    "parse_program",
    "Analyzer",
    "analyze",
    "lower_loop",
    "lower_program",
    "AppendPlan",
    "LocalPlan",
    "ReductionPlan",
    "CompiledProgram",
    "ProgramInstance",
    "compile_program",
    "interpret_sequential",
]
