"""Compiler diagnostics."""

from __future__ import annotations


class FortranDError(Exception):
    """Base class for all mini-Fortran-D front-end errors."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class LexError(FortranDError):
    """Tokenization failure."""


class ParseError(FortranDError):
    """Syntax error."""


class AnalysisError(FortranDError):
    """Semantic error: undeclared arrays, bad distributions, unsupported
    loop shapes, ..."""


class ExecutionError(FortranDError):
    """Runtime failure while executing a compiled program."""
