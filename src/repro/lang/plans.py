"""Lowered loop plans: what the compiler emits for each irregular nest.

A plan records the CHAOS calls a loop needs — which indirection arrays to
hash (and under which stamps), which schedule to build, which arrays to
gather and scatter — separated from the state of any particular run so the
same compiled program can execute against different machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.analysis import LoopNest, SubscriptPattern


@dataclass(frozen=True)
class RefPlan:
    """One distributed-array reference inside a loop body."""

    array: str
    pattern: SubscriptPattern

    def key(self) -> str:
        return self.pattern.key()


@dataclass
class ReductionPlan:
    """Inspector/executor plan for flat, csr and ragged reduction loops.

    ``gather_arrays`` are read via indirection (need ghost prefetch);
    ``reduce_targets`` maps each REDUCE statement index to its target ref.
    ``stamps`` name the hash-table stamps this loop owns — one per distinct
    indirection pattern — so adaptivity clears/rehashes only what changed.
    """

    nest: LoopNest
    index_patterns: list[SubscriptPattern] = field(default_factory=list)
    gather_arrays: list[str] = field(default_factory=list)
    reduce_targets: list[RefPlan] = field(default_factory=list)
    compute_ops_per_iter: float = 3.0

    @property
    def loop_id(self) -> str:
        return self.nest.loop_id

    def stamp_for(self, pattern: SubscriptPattern) -> str:
        return f"{self.loop_id}:{pattern.key()}"

    def dependency_names(self) -> tuple[str, ...]:
        """Arrays whose modification forces schedule regeneration."""
        deps = list(self.nest.indirections)
        if self.nest.csr_offsets:
            deps.append(self.nest.csr_offsets)
        return tuple(dict.fromkeys(deps))


@dataclass
class AppendPlan:
    """Light-weight-schedule plan for REDUCE(APPEND, ...) nests.

    ``routing`` is the indirection giving each element's destination cell;
    ``size_array`` bounds the inner loop; ``source``/``target`` are the
    moved ragged array names (Figure 11 moves ``vel`` onto itself).
    """

    nest: LoopNest
    routing: str
    size_array: str
    source: str
    target: str

    @property
    def loop_id(self) -> str:
        return self.nest.loop_id


@dataclass
class LocalPlan:
    """Loops with only direct (owner-local) references: no communication."""

    nest: LoopNest

    @property
    def loop_id(self) -> str:
        return self.nest.loop_id
