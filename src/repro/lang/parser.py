"""Recursive-descent parser for the mini Fortran D dialect.

Parses the statement forms the paper's figures use (Figures 7-11):
declarations, DECOMPOSITION/DISTRIBUTE/ALIGN directives, nested FORALL
loops with REDUCE intrinsics, and plain assignments.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    INTRINSIC_NAMES,
    AlignStmt,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    DecompositionStmt,
    DistributeStmt,
    Expr,
    Forall,
    FullSlice,
    Num,
    Program,
    Reduce,
    Statement,
    UnaryOp,
    VarRef,
)
from repro.lang.errors import ParseError
from repro.lang.tokens import Line, TokKind, Token, tokenize


class _LineParser:
    """Token cursor over one logical line."""

    def __init__(self, line: Line):
        self.toks = line.tokens
        self.i = 0
        self.lineno = line.number

    def peek(self) -> Token:
        return self.toks[self.i]

    def next(self) -> Token:
        t = self.toks[self.i]
        if t.kind is not TokKind.EOL:
            self.i += 1
        return t

    def expect_op(self, op: str) -> Token:
        t = self.next()
        if not t.is_op(op):
            raise ParseError(f"expected {op!r}, found {t.text!r}", self.lineno)
        return t

    def expect_ident(self, *names: str) -> Token:
        t = self.next()
        if t.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found {t.text!r}", self.lineno)
        if names and t.text.upper() not in names:
            raise ParseError(
                f"expected one of {names}, found {t.text!r}", self.lineno
            )
        return t

    def at_end(self) -> bool:
        return self.peek().kind is TokKind.EOL

    def expect_end(self) -> None:
        if not self.at_end():
            raise ParseError(
                f"trailing tokens starting at {self.peek().text!r}", self.lineno
            )

    # ---- expressions (precedence climbing) ---------------------------
    _PREC = {"+": 10, "-": 10, "*": 20, "/": 20, "**": 30}

    def parse_expr(self, min_prec: int = 0) -> Expr:
        left = self._parse_atom()
        while True:
            t = self.peek()
            if t.kind is TokKind.OP and t.text in self._PREC \
                    and self._PREC[t.text] >= min_prec:
                self.next()
                prec = self._PREC[t.text]
                # ** is right-associative
                nxt = prec if t.text == "**" else prec + 1
                right = self.parse_expr(nxt)
                left = BinOp(t.text, left, right, t.line)
            else:
                return left

    def _parse_atom(self) -> Expr:
        t = self.peek()
        if t.is_op("-"):
            self.next()
            return UnaryOp("-", self._parse_atom(), t.line)
        if t.is_op("+"):
            self.next()
            return self._parse_atom()
        if t.is_op("("):
            self.next()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if t.is_op(":"):
            self.next()
            return FullSlice(t.line)
        if t.kind is TokKind.NUMBER:
            self.next()
            text = t.text.lower().replace("d", "e")
            return Num(float(text), t.line)
        if t.kind is TokKind.IDENT:
            self.next()
            if self.peek().is_op("("):
                self.next()
                subs = [self.parse_expr()]
                while self.peek().is_op(","):
                    self.next()
                    subs.append(self.parse_expr())
                self.expect_op(")")
                name = t.text.lower()
                if name in INTRINSIC_NAMES:
                    return Call(name, tuple(subs), t.line)
                return ArrayRef(name, tuple(subs), t.line)
            return VarRef(t.text.lower(), t.line)
        raise ParseError(f"unexpected token {t.text!r}", self.lineno)


class Parser:
    """Parses a full program from source text."""

    def __init__(self, source: str):
        self.lines = tokenize(source)
        self.i = 0

    def _peek_line(self) -> Line | None:
        return self.lines[self.i] if self.i < len(self.lines) else None

    def _next_line(self) -> Line:
        line = self.lines[self.i]
        self.i += 1
        return line

    # ------------------------------------------------------------------
    def parse(self) -> Program:
        prog = Program()
        while self._peek_line() is not None:
            stmts = self._parse_statement()
            prog.statements.extend(stmts)
        return prog

    def _parse_statement(self) -> list[Statement]:
        line = self._next_line()
        lp = _LineParser(line)
        t = lp.peek()
        u = t.text.upper() if t.kind is TokKind.IDENT else ""
        if u == "REAL" or u == "INTEGER":
            return self._parse_decl(lp)
        if u == "DECOMPOSITION":
            return self._parse_decomposition(lp)
        if u == "DISTRIBUTE":
            return [self._parse_distribute(lp)]
        if u == "ALIGN":
            return [self._parse_align(lp)]
        if u == "FORALL":
            return [self._parse_forall(lp)]
        if u in ("END", "ENDDO", "ENDFORALL"):
            raise ParseError("unmatched END", line.number)
        if u == "REDUCE":
            return [self._parse_reduce(lp)]
        return [self._parse_assign(lp)]

    # ------------------------------------------------------------------
    def _parse_decl(self, lp: _LineParser) -> list[Statement]:
        kw = lp.next().text.upper()
        dtype = "real" if kw == "REAL" else "integer"
        # optional *8 width suffix
        if lp.peek().is_op("*"):
            lp.next()
            width = lp.next()
            if width.kind is not TokKind.NUMBER:
                raise ParseError("expected width after *", lp.lineno)
        out: list[Statement] = []
        while True:
            name = lp.expect_ident()
            shape: tuple[int, ...] = ()
            if lp.peek().is_op("("):
                lp.next()
                dims = [self._const_dim(lp)]
                while lp.peek().is_op(","):
                    lp.next()
                    dims.append(self._const_dim(lp))
                lp.expect_op(")")
                shape = tuple(dims)
            out.append(ArrayDecl(name.text.lower(), dtype, shape, lp.lineno))
            if lp.peek().is_op(","):
                lp.next()
                continue
            break
        lp.expect_end()
        return out

    def _const_dim(self, lp: _LineParser) -> int:
        t = lp.next()
        if t.kind is not TokKind.NUMBER or not float(t.text).is_integer():
            raise ParseError(
                f"array dimensions must be integer literals, got {t.text!r}",
                lp.lineno,
            )
        return int(float(t.text))

    def _parse_decomposition(self, lp: _LineParser) -> list[Statement]:
        lp.expect_ident("DECOMPOSITION")
        out: list[Statement] = []
        while True:
            name = lp.expect_ident()
            lp.expect_op("(")
            size = self._const_dim(lp)
            lp.expect_op(")")
            out.append(DecompositionStmt(name.text.lower(), size, lp.lineno))
            if lp.peek().is_op(","):
                lp.next()
                continue
            break
        lp.expect_end()
        return out

    def _parse_distribute(self, lp: _LineParser) -> Statement:
        lp.expect_ident("DISTRIBUTE")
        target = lp.expect_ident().text.lower()
        lp.expect_op("(")
        scheme_tok = lp.expect_ident()
        lp.expect_op(")")
        lp.expect_end()
        up = scheme_tok.text.upper()
        if up in ("BLOCK", "CYCLIC"):
            return DistributeStmt(target, up, None, lp.lineno)
        return DistributeStmt(target, "MAP", scheme_tok.text.lower(), lp.lineno)

    def _parse_align(self, lp: _LineParser) -> Statement:
        lp.expect_ident("ALIGN")
        arrays: list[str] = []
        ragged: list[bool] = []
        while True:
            name = lp.expect_ident()
            is_ragged = False
            # alignment subscript patterns: (:) plain, (*,:) ragged
            if lp.peek().is_op("("):
                depth = 0
                while True:
                    t = lp.next()
                    if t.is_op("("):
                        depth += 1
                    elif t.is_op(")"):
                        depth -= 1
                        if depth == 0:
                            break
                    elif t.is_op("*"):
                        is_ragged = True
                    elif t.kind is TokKind.EOL:
                        raise ParseError("unterminated ALIGN pattern", lp.lineno)
            arrays.append(name.text.lower())
            ragged.append(is_ragged)
            if lp.peek().is_op(","):
                lp.next()
                continue
            break
        lp.expect_ident("WITH")
        target = lp.expect_ident().text.lower()
        lp.expect_end()
        return AlignStmt(tuple(arrays), target, tuple(ragged), lp.lineno)

    # ------------------------------------------------------------------
    def _parse_forall(self, lp: _LineParser) -> Forall:
        lp.expect_ident("FORALL")
        var = lp.expect_ident().text.lower()
        lp.expect_op("=")
        lower = lp.parse_expr()
        lp.expect_op(",")
        upper = lp.parse_expr()
        lp.expect_end()
        body: list[Statement] = []
        while True:
            line = self._peek_line()
            if line is None:
                raise ParseError("FORALL without END", lp.lineno)
            first = line.tokens[0]
            u = first.text.upper() if first.kind is TokKind.IDENT else ""
            if u in ("END", "ENDDO", "ENDFORALL"):
                endlp = _LineParser(self._next_line())
                endlp.next()
                if u == "END" and not endlp.at_end():
                    endlp.expect_ident("DO", "FORALL")
                break
            body.extend(self._parse_statement())
        return Forall(var, lower, upper, tuple(body), lp.lineno)

    def _parse_reduce(self, lp: _LineParser) -> Reduce:
        lp.expect_ident("REDUCE")
        lp.expect_op("(")
        op = lp.expect_ident("SUM", "APPEND", "MAX", "MIN", "PROD").text.upper()
        lp.expect_op(",")
        target = lp.parse_expr()
        if not isinstance(target, ArrayRef):
            raise ParseError("REDUCE target must be an array reference",
                             lp.lineno)
        lp.expect_op(",")
        value = lp.parse_expr()
        lp.expect_op(")")
        lp.expect_end()
        return Reduce(op, target, value, lp.lineno)

    def _parse_assign(self, lp: _LineParser) -> Assign:
        target = lp.parse_expr()
        if not isinstance(target, ArrayRef):
            raise ParseError("assignment target must be an array reference",
                             lp.lineno)
        lp.expect_op("=")
        value = lp.parse_expr()
        lp.expect_end()
        return Assign(target, value, lp.lineno)


def parse_program(source: str) -> Program:
    """Parse mini-Fortran-D source text into a :class:`Program`."""
    return Parser(source).parse()
