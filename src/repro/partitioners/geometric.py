"""Geometric partitioners: recursive coordinate and inertial bisection.

RCB (Berger & Bokhari) recursively splits the element set at the weighted
median along the longest coordinate axis.  RIB (Nour-Omid et al.) splits
along the principal inertia axis (dominant eigenvector of the weighted
covariance), which adapts to diagonally-elongated geometries.  Both honor
computational weights, as the paper requires for CHARMM (atom cost ~
non-bonded list length).

Both support arbitrary (non-power-of-two) part counts by splitting target
part counts unevenly: a 6-way partition bisects into 3+3, then 2+1 / 2+1.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner, PartitionResult
from repro.sim.machine import Machine


def _weighted_split_value(x: np.ndarray, w: np.ndarray, frac: float) -> float:
    """Value v such that weight({x <= v}) ~= frac * total (weighted quantile)."""
    order = np.argsort(x, kind="stable")
    cw = np.cumsum(w[order])
    total = cw[-1]
    if total <= 0:
        return float(x[order[len(order) // 2]])
    k = int(np.searchsorted(cw, frac * total))
    k = min(k, len(order) - 1)
    return float(x[order[k]])


def _split_indices(
    x: np.ndarray, w: np.ndarray, idx: np.ndarray, frac: float
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``idx`` into (left, right) at the weighted ``frac`` quantile
    of ``x``; guarantees neither side is empty when both could be."""
    v = _weighted_split_value(x, w, frac)
    left_mask = x <= v
    n_left = int(np.count_nonzero(left_mask))
    if n_left == 0 or n_left == x.size:
        order = np.argsort(x, kind="stable")
        k = max(1, min(x.size - 1, int(round(frac * x.size))))
        left = idx[order[:k]]
        right = idx[order[k:]]
        return left, right
    return idx[left_mask], idx[~left_mask]


class RecursiveBisection(Partitioner):
    """Common driver for RCB/RIB; subclasses choose the split direction."""

    name = "recursive-bisection"

    def _axis_values(self, coords: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, w = self._validate(coords, n_parts, weights)
        n = c.shape[0]
        labels = np.zeros(n, dtype=np.int64)
        if n_parts == 1 or n == 0:
            return PartitionResult(labels=labels, n_parts=n_parts)

        # stack of (element indices, first part id, part count)
        stack: list[tuple[np.ndarray, int, int]] = [
            (np.arange(n, dtype=np.int64), 0, n_parts)
        ]
        while stack:
            idx, part0, k = stack.pop()
            if k == 1 or idx.size == 0:
                labels[idx] = part0
                continue
            k_left = k // 2
            k_right = k - k_left
            frac = k_left / k
            vals = self._axis_values(c[idx], w[idx])
            left, right = _split_indices(vals, w[idx], idx, frac)
            stack.append((left, part0, k_left))
            stack.append((right, part0 + k_left, k_right))
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(
        self, n_elements: int, n_parts: int, machine: Machine
    ) -> tuple[float, float]:
        """Parallel recursive bisection: log2(P) levels; each level does a
        distributed weighted-median search (several all-reduce rounds) and
        exchanges roughly half the local elements.

        The median searches and element exchanges are why the paper sees
        recursive bisection *degrade* at high P (Table 5): levels grow as
        log P and each level pays latency-bound collectives.
        """
        cm = machine.cost_model
        p = machine.n_ranks
        levels = max(1, int(np.ceil(np.log2(max(2, n_parts)))))
        local = n_elements / p
        compute = cm.compute_time(8.0 * local * levels)
        median_rounds = 12  # binary-search iterations per level
        logp = max(1, int(np.ceil(np.log2(max(2, p)))))
        comm = levels * median_rounds * logp * cm.message_time(16)
        comm += levels * cm.message_time(max(8.0, local / 2 * 8))
        return compute, comm


class RecursiveCoordinateBisection(RecursiveBisection):
    """RCB: split along the longest bounding-box axis."""

    name = "rcb"

    def _axis_values(self, coords: np.ndarray, w: np.ndarray) -> np.ndarray:
        extents = coords.max(axis=0) - coords.min(axis=0)
        axis = int(np.argmax(extents))
        return coords[:, axis]


class RecursiveInertialBisection(RecursiveBisection):
    """RIB: split along the principal axis of the weighted inertia tensor."""

    name = "rib"

    def _axis_values(self, coords: np.ndarray, w: np.ndarray) -> np.ndarray:
        total = w.sum()
        if total <= 0 or coords.shape[0] < 2:
            return coords[:, 0]
        center = (coords * w[:, None]).sum(axis=0) / total
        d = coords - center
        cov = (d * w[:, None]).T @ d / total
        # principal axis = eigenvector of the largest eigenvalue
        vals, vecs = np.linalg.eigh(cov)
        axis = vecs[:, -1]
        return d @ axis


# Short aliases matching the paper's names
RCB = RecursiveCoordinateBisection
RIB = RecursiveInertialBisection
