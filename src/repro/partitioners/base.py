"""Partitioner protocol and the charged parallel-execution wrapper.

CHAOS "supports a number of parallel partitioners that partition data
arrays using heuristics based on spatial positions, computational load,
connectivity, etc." (§3.1).  Each partitioner here computes an assignment
of elements to ranks from positions and weights; the
:func:`run_partitioner` wrapper additionally charges the *parallel cost*
of running it on the simulated machine, using each partitioner's declared
cost model — this is what makes Table 5's "recursive bisection gets
expensive at high P" effect reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.distribution import IrregularDistribution
from repro.sim.machine import Machine


@dataclass
class PartitionResult:
    """Labels plus quality diagnostics."""

    labels: np.ndarray  # rank per element
    n_parts: int

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.n_parts
        ):
            raise ValueError("labels outside [0, n_parts)")

    def part_weights(self, weights: np.ndarray | None = None) -> np.ndarray:
        w = (
            np.ones(self.labels.size)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        return np.bincount(self.labels, weights=w, minlength=self.n_parts)

    def imbalance(self, weights: np.ndarray | None = None) -> float:
        """max part weight / mean part weight (1.0 = perfect)."""
        pw = self.part_weights(weights)
        mean = pw.mean()
        return float(pw.max() / mean) if mean > 0 else 1.0

    def to_distribution(self, n_ranks: int | None = None) -> IrregularDistribution:
        return IrregularDistribution(self.labels, n_ranks or self.n_parts)


class Partitioner(ABC):
    """Computes an element→rank assignment from geometry and load."""

    name: str = "abstract"

    @abstractmethod
    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """Partition elements at ``coords`` (n, d) into ``n_parts`` parts.

        ``weights`` are per-element computational loads (uniform if None).
        """

    # -- parallel cost model -------------------------------------------
    def parallel_cost(
        self, n_elements: int, n_parts: int, machine: Machine
    ) -> tuple[float, float]:
        """(per-rank compute seconds, per-rank comm seconds) estimate for
        running this partitioner *in parallel* on ``machine``.

        Default model: work is divided over ranks; coordination costs one
        small all-reduce per bisection level.  Subclasses override to match
        their actual structure.
        """
        cm = machine.cost_model
        p = machine.n_ranks
        levels = max(1, int(np.ceil(np.log2(max(2, n_parts)))))
        compute = cm.compute_time(5.0 * n_elements / p * levels)
        comm = levels * 3 * cm.message_time(64) * max(1, int(np.log2(max(2, p))))
        return compute, comm

    @staticmethod
    def _validate(coords: np.ndarray, n_parts: int,
                  weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
        c = np.asarray(coords, dtype=float)
        if c.ndim == 1:
            c = c[:, None]
        if c.ndim != 2:
            raise ValueError(f"coords must be (n, d), got shape {c.shape}")
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {n_parts}")
        if weights is None:
            w = np.ones(c.shape[0], dtype=float)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (c.shape[0],):
                raise ValueError(
                    f"weights shape {w.shape} != ({c.shape[0]},)"
                )
            if np.any(w < 0):
                raise ValueError("negative weights")
        return c, w


def run_partitioner(
    machine: Machine,
    partitioner: Partitioner,
    coords: np.ndarray,
    weights: np.ndarray | None = None,
    category: str = "partition",
) -> PartitionResult:
    """Run a partitioner 'in parallel' on the machine, charging its cost.

    The assignment itself is computed host-side (deterministically); the
    machine's clocks advance by the partitioner's parallel cost model and
    a final all-gather distributes the new map array (the translation
    table build charges separately when the caller constructs it).
    """
    coords = np.asarray(coords, dtype=float)
    n = coords.shape[0]
    result = partitioner.partition(coords, machine.n_ranks, weights)
    compute, comm = partitioner.parallel_cost(n, machine.n_ranks, machine)
    for p in machine.ranks():
        machine.charge_time(p, compute, category)
        machine.charge_time(p, comm, category)
    machine.barrier()
    return result
