"""Space-filling-curve (Morton/Z-order) partitioner.

A third family of spatial partitioners alongside RCB/RIB and the chain:
elements are ordered along a Morton (Z-order) curve through their
quantized coordinates, then split into contiguous weight-balanced chains
(reusing the chain partitioner's optimal 1-D split).  SFC partitions are
nearly as compact as RCB's but cost one sort instead of recursive
median searches — an intermediate point on Table 5's quality/cost
trade-off curve.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner, PartitionResult
from repro.partitioners.chain import chain_boundaries
from repro.sim.machine import Machine

#: bits of resolution per coordinate axis
_BITS = 16


def _spread_bits(x: np.ndarray, dim: int) -> np.ndarray:
    """Interleave zeros between the bits of ``x`` (dim-1 zeros per bit)."""
    out = np.zeros_like(x, dtype=np.uint64)
    for b in range(_BITS):
        out |= ((x >> np.uint64(b)) & np.uint64(1)) << np.uint64(b * dim)
    return out


def morton_keys(coords: np.ndarray, bits: int = _BITS) -> np.ndarray:
    """Z-order key per point: coordinates quantized to ``bits`` levels and
    bit-interleaved.  Works for 1-3 dimensions."""
    c = np.asarray(coords, dtype=float)
    if c.ndim == 1:
        c = c[:, None]
    n, dim = c.shape
    if dim > 3:
        raise ValueError(f"Morton keys support up to 3-D, got {dim}-D")
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    lo = c.min(axis=0)
    span = c.max(axis=0) - lo
    span[span <= 0] = 1.0
    levels = (1 << bits) - 1
    q = np.clip(((c - lo) / span * levels).astype(np.uint64), 0, levels)
    key = np.zeros(n, dtype=np.uint64)
    for k in range(dim):
        key |= _spread_bits(q[:, k], dim) << np.uint64(k)
    return key


class MortonPartitioner(Partitioner):
    """Weight-balanced contiguous split along the Morton curve."""

    name = "morton"

    def __init__(self, bits: int = _BITS):
        if not 1 <= bits <= 21:
            raise ValueError(f"bits must be in [1, 21], got {bits}")
        self.bits = bits

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, w = self._validate(coords, n_parts, weights)
        n = c.shape[0]
        labels = np.zeros(n, dtype=np.int64)
        if n == 0 or n_parts == 1:
            return PartitionResult(labels=labels, n_parts=n_parts)
        keys = morton_keys(c, self.bits)
        order = np.argsort(keys, kind="stable")
        bounds = chain_boundaries(w[order], n_parts)
        for k in range(n_parts):
            labels[order[bounds[k]:bounds[k + 1]]] = k
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(
        self, n_elements: int, n_parts: int, machine: Machine
    ) -> tuple[float, float]:
        """One local sort + a parallel sample-sort style key exchange:
        cheaper than recursive bisection, costlier than the plain chain."""
        cm = machine.cost_model
        p = machine.n_ranks
        local = max(1.0, n_elements / p)
        compute = cm.compute_time(4.0 * local * max(1.0, np.log2(local)))
        logp = max(1, int(np.ceil(np.log2(max(2, p)))))
        comm = 3 * logp * cm.message_time(64) + cm.message_time(local * 8)
        return compute, comm
