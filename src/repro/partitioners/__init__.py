"""Data partitioners: RCB, RIB, chain, block/cyclic, graph-based."""

from repro.partitioners.base import Partitioner, PartitionResult, run_partitioner
from repro.partitioners.geometric import (
    RCB,
    RIB,
    RecursiveCoordinateBisection,
    RecursiveInertialBisection,
)
from repro.partitioners.chain import ChainPartitioner, chain_boundaries
from repro.partitioners.regular import BlockPartitioner, CyclicPartitioner
from repro.partitioners.sfc import MortonPartitioner, morton_keys
from repro.partitioners.graph import (
    GreedyGraphGrowing,
    SpectralBisection,
    edge_cut,
    edges_to_csr,
)
from repro.partitioners.util import (
    communication_volume,
    degree_weights,
    imbalance,
    part_weights,
)

__all__ = [
    "Partitioner",
    "PartitionResult",
    "run_partitioner",
    "RCB",
    "RIB",
    "RecursiveCoordinateBisection",
    "RecursiveInertialBisection",
    "ChainPartitioner",
    "chain_boundaries",
    "BlockPartitioner",
    "CyclicPartitioner",
    "MortonPartitioner",
    "morton_keys",
    "GreedyGraphGrowing",
    "SpectralBisection",
    "edge_cut",
    "edges_to_csr",
    "communication_volume",
    "degree_weights",
    "imbalance",
    "part_weights",
]
