"""Connectivity-based partitioning (paper §3.1: "heuristics based on ...
connectivity").

Two methods over an undirected interaction graph:

* :class:`GreedyGraphGrowing` — seeds one region per part and grows by
  smallest-boundary-increase, a classic cheap edge-cut heuristic.
* :class:`SpectralBisection` — recursive bisection by the Fiedler vector
  of the graph Laplacian (scipy sparse eigensolver), higher quality at
  higher cost.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.partitioners.base import Partitioner, PartitionResult
from repro.sim.machine import Machine


def edges_to_csr(n: int, edges: np.ndarray) -> sp.csr_matrix:
    """Symmetric CSR adjacency from an (m, 2) edge array."""
    e = np.asarray(edges, dtype=np.int64)
    if e.ndim != 2 or e.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {e.shape}")
    if e.size and (e.min() < 0 or e.max() >= n):
        raise IndexError("edge endpoint out of range")
    keep = e[:, 0] != e[:, 1]  # drop self-loops
    e = e[keep]
    rows = np.concatenate([e[:, 0], e[:, 1]])
    cols = np.concatenate([e[:, 1], e[:, 0]])
    data = np.ones(rows.size)
    a = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    a.sum_duplicates()
    a.data[:] = 1.0
    return a


def edge_cut(labels: np.ndarray, edges: np.ndarray) -> int:
    """Number of edges whose endpoints land in different parts."""
    e = np.asarray(edges, dtype=np.int64)
    lab = np.asarray(labels, dtype=np.int64)
    if e.size == 0:
        return 0
    return int(np.count_nonzero(lab[e[:, 0]] != lab[e[:, 1]]))


class GreedyGraphGrowing(Partitioner):
    """Grow one region per part from spread-out seeds, balancing weight."""

    name = "greedy-graph"

    def __init__(self, edges: np.ndarray):
        self.edges = np.asarray(edges, dtype=np.int64)

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, w = self._validate(coords, n_parts, weights)
        n = c.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return PartitionResult(labels=np.zeros(0, dtype=np.int64),
                                   n_parts=n_parts)
        if n_parts == 1:
            return PartitionResult(labels=np.zeros(n, dtype=np.int64),
                                   n_parts=1)
        adj = edges_to_csr(n, self.edges)
        # seeds: spread by coordinate-sorted strides (deterministic)
        order = np.lexsort(c.T[::-1])
        seeds = order[np.linspace(0, n - 1, n_parts).astype(np.int64)]
        part_w = np.zeros(n_parts)
        # frontier heaps per part: (tie_breaker, node)
        frontiers: list[list[tuple[int, int]]] = [[] for _ in range(n_parts)]
        for k, s in enumerate(seeds.tolist()):
            if labels[s] == -1:
                labels[s] = k
                part_w[k] += w[s]
                for nb in adj.indices[adj.indptr[s]:adj.indptr[s + 1]]:
                    heapq.heappush(frontiers[k], (int(nb), int(nb)))
        unassigned = int(np.count_nonzero(labels == -1))
        while unassigned:
            # expand the lightest part that still has a frontier
            k = int(np.argsort(part_w)[0])
            tried = 0
            while tried < n_parts:
                if frontiers[k]:
                    break
                k = (k + 1) % n_parts
                tried += 1
            node = -1
            while frontiers[k]:
                _, cand = heapq.heappop(frontiers[k])
                if labels[cand] == -1:
                    node = cand
                    break
            if node == -1:
                # disconnected remainder: take the first unassigned node
                node = int(np.flatnonzero(labels == -1)[0])
            labels[node] = k
            part_w[k] += w[node]
            unassigned -= 1
            for nb in adj.indices[adj.indptr[node]:adj.indptr[node + 1]]:
                if labels[nb] == -1:
                    heapq.heappush(frontiers[k], (int(nb), int(nb)))
        return PartitionResult(labels=labels, n_parts=n_parts)


class SpectralBisection(Partitioner):
    """Recursive spectral bisection via the Fiedler vector."""

    name = "spectral"

    def __init__(self, edges: np.ndarray, seed: int = 0):
        self.edges = np.asarray(edges, dtype=np.int64)
        self.seed = seed

    def _fiedler_values(self, adj: sp.csr_matrix, idx: np.ndarray) -> np.ndarray:
        sub = adj[idx][:, idx]
        deg = np.asarray(sub.sum(axis=1)).ravel()
        lap = sp.diags(deg) - sub
        n = idx.size
        if n <= 2:
            return np.arange(n, dtype=float)
        try:
            rng = np.random.default_rng(self.seed)
            v0 = rng.standard_normal(n)
            vals, vecs = spla.eigsh(lap.asfptype(), k=2, sigma=-1e-6,
                                    which="LM", v0=v0, maxiter=500)
            order = np.argsort(vals)
            return vecs[:, order[1]]
        except Exception:
            # eigensolver failure on tiny/odd graphs: fall back to index order
            return np.arange(n, dtype=float)

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, w = self._validate(coords, n_parts, weights)
        n = c.shape[0]
        labels = np.zeros(n, dtype=np.int64)
        if n == 0 or n_parts == 1:
            return PartitionResult(labels=labels, n_parts=n_parts)
        adj = edges_to_csr(n, self.edges)
        stack = [(np.arange(n, dtype=np.int64), 0, n_parts)]
        while stack:
            idx, part0, k = stack.pop()
            if k == 1 or idx.size == 0:
                labels[idx] = part0
                continue
            k_left = k // 2
            frac = k_left / k
            vals = self._fiedler_values(adj, idx)
            order = np.argsort(vals, kind="stable")
            cw = np.cumsum(w[idx][order])
            split = int(np.searchsorted(cw, frac * cw[-1]))
            split = max(1, min(idx.size - 1, split))
            stack.append((idx[order[:split]], part0, k_left))
            stack.append((idx[order[split:]], part0 + k_left, k - k_left))
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(self, n_elements, n_parts, machine: Machine):
        """Spectral methods are far costlier: many SpMV iterations/level."""
        cm = machine.cost_model
        p = machine.n_ranks
        levels = max(1, int(np.ceil(np.log2(max(2, n_parts)))))
        iters = 50
        compute = cm.compute_time(iters * 10.0 * n_elements / p * levels)
        logp = max(1, int(np.ceil(np.log2(max(2, p)))))
        comm = levels * iters * logp * cm.message_time(
            max(8.0, n_elements / p * 8)
        )
        return compute, comm
