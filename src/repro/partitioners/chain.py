"""The 1-D chain partitioner (Nicol & O'Hallaron; paper §4.2.1).

Splits a *linearly ordered* weight sequence into contiguous chains, one
per rank, minimizing the bottleneck (maximum chain weight).  CHAOS uses it
for DSMC because particle flow is highly directional — "more than 70
percent of the molecules were found moving along the positive x-axis" —
so partitioning along the flow direction keeps both load balance and
communication locality, at a tiny fraction of recursive bisection's cost.

The optimal-bottleneck split is found by binary search over candidate
bottleneck values with a greedy feasibility check — O(n log(W/eps))
overall, and embarrassingly cheap in parallel (one prefix-sum).
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import Partitioner, PartitionResult
from repro.sim.machine import Machine


def _greedy_chain_count(prefix: np.ndarray, cap: float) -> int:
    """Minimum number of chains with weight <= cap (greedy, via prefix sums).

    ``prefix`` is the inclusive prefix-sum of weights.  Returns a count
    possibly exceeding any bound; caller compares with n_parts.  Assumes no
    single element exceeds ``cap``.
    """
    n = prefix.size
    chains = 0
    start_weight = 0.0
    i = 0
    while i < n:
        # furthest j with prefix[j] - start_weight <= cap
        j = int(np.searchsorted(prefix, start_weight + cap, side="right")) - 1
        if j < i:  # single element exceeds cap
            return n + 1
        chains += 1
        start_weight = prefix[j]
        i = j + 1
    return chains


def chain_boundaries(weights: np.ndarray, n_parts: int) -> np.ndarray:
    """Optimal contiguous split points: returns ``bounds`` of length
    ``n_parts + 1`` with part k = elements [bounds[k], bounds[k+1])."""
    w = np.asarray(weights, dtype=float)
    n = w.size
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    if np.any(w < 0):
        raise ValueError("negative weights")
    if n == 0:
        return np.zeros(n_parts + 1, dtype=np.int64)
    prefix = np.cumsum(w)
    total = float(prefix[-1])
    lo = max(float(w.max()), total / n_parts)
    hi = total
    # binary search on the bottleneck value
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if _greedy_chain_count(prefix, mid) <= n_parts:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-12 * max(1.0, total):
            break
    cap = hi
    bounds = np.zeros(n_parts + 1, dtype=np.int64)
    start_weight = 0.0
    i = 0
    for k in range(n_parts):
        bounds[k] = i
        if i >= n:
            continue
        remaining_parts = n_parts - k
        j = int(np.searchsorted(prefix, start_weight + cap, side="right")) - 1
        j = max(j, i)  # always take at least one element
        # don't starve later parts of elements if fewer elements than parts
        j = min(j, n - remaining_parts) if n - i >= remaining_parts else j
        start_weight = prefix[j]
        i = j + 1
    bounds[n_parts] = n
    return bounds


class ChainPartitioner(Partitioner):
    """1-D weighted chain partitioning along a chosen axis.

    Elements are ordered by their coordinate along ``axis`` (default: the
    axis of greatest extent — for DSMC's directional flow, the flow axis),
    then split into contiguous weight-balanced chains.
    """

    name = "chain"

    def __init__(self, axis: int | None = None):
        self.axis = axis

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, w = self._validate(coords, n_parts, weights)
        n = c.shape[0]
        labels = np.zeros(n, dtype=np.int64)
        if n == 0 or n_parts == 1:
            return PartitionResult(labels=labels, n_parts=n_parts)
        if self.axis is None:
            extents = c.max(axis=0) - c.min(axis=0)
            axis = int(np.argmax(extents))
        else:
            axis = self.axis
            if not 0 <= axis < c.shape[1]:
                raise ValueError(f"axis {axis} out of range for {c.shape[1]}-D")
        order = np.argsort(c[:, axis], kind="stable")
        bounds = chain_boundaries(w[order], n_parts)
        for k in range(n_parts):
            labels[order[bounds[k]:bounds[k + 1]]] = k
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(
        self, n_elements: int, n_parts: int, machine: Machine
    ) -> tuple[float, float]:
        """One parallel prefix-sum + a short boundary search: the paper's
        "dramatically" cheaper partitioner, cost nearly flat in P."""
        cm = machine.cost_model
        p = machine.n_ranks
        local = n_elements / p
        compute = cm.compute_time(3.0 * local)
        logp = max(1, int(np.ceil(np.log2(max(2, p)))))
        comm = 2 * logp * cm.message_time(16)  # prefix-sum up/down sweeps
        return compute, comm
