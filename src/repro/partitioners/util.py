"""Partition quality metrics and weight helpers."""

from __future__ import annotations

import numpy as np

from repro.partitioners.graph import edge_cut  # re-export


def part_weights(labels: np.ndarray, n_parts: int,
                 weights: np.ndarray | None = None) -> np.ndarray:
    lab = np.asarray(labels, dtype=np.int64)
    w = np.ones(lab.size) if weights is None else np.asarray(weights, float)
    if w.shape != lab.shape:
        raise ValueError(f"weights shape {w.shape} != labels shape {lab.shape}")
    return np.bincount(lab, weights=w, minlength=n_parts)


def imbalance(labels: np.ndarray, n_parts: int,
              weights: np.ndarray | None = None) -> float:
    """max/mean part weight; 1.0 is perfect balance."""
    pw = part_weights(labels, n_parts, weights)
    mean = pw.mean()
    return float(pw.max() / mean) if mean > 0 else 1.0


def communication_volume(labels: np.ndarray, edges: np.ndarray) -> int:
    """Distinct (element, remote part) pairs across cut edges — the number
    of ghost copies a halo exchange would move (tighter than edge cut)."""
    lab = np.asarray(labels, dtype=np.int64)
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        return 0
    cut = lab[e[:, 0]] != lab[e[:, 1]]
    ce = e[cut]
    pairs = np.concatenate([
        np.stack([ce[:, 0], lab[ce[:, 1]]], axis=1),
        np.stack([ce[:, 1], lab[ce[:, 0]]], axis=1),
    ])
    return int(np.unique(pairs, axis=0).shape[0])


def degree_weights(n: int, edges: np.ndarray,
                   base: float = 1.0, per_edge: float = 1.0) -> np.ndarray:
    """Per-element computational weights ~ interaction count.

    The paper's CHARMM weighting: "the amount of computation associated
    with an atom depends on the number of atoms with which it interacts".
    """
    e = np.asarray(edges, dtype=np.int64)
    w = np.full(n, float(base))
    if e.size:
        w += per_edge * np.bincount(e.ravel(), minlength=n).astype(float)
    return w


__all__ = [
    "part_weights",
    "imbalance",
    "communication_volume",
    "degree_weights",
    "edge_cut",
]
