"""Regular partitioners: BLOCK and CYCLIC as Partitioner objects.

These wrap the closed-form distributions so benchmarks can swap "naive
BLOCK" against RCB/RIB/chain uniformly (the paper's §4.1 comparison point:
spatial+load partitioners "perform significantly better than naive BLOCK
or CYCLIC distributions").
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import BlockDistribution, CyclicDistribution
from repro.partitioners.base import Partitioner, PartitionResult
from repro.sim.machine import Machine


class BlockPartitioner(Partitioner):
    """Contiguous index blocks, ignoring geometry and load."""

    name = "block"

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, _ = self._validate(coords, n_parts, weights)
        dist = BlockDistribution(c.shape[0], n_parts)
        labels = dist.owner(np.arange(c.shape[0], dtype=np.int64)) \
            if c.shape[0] else np.zeros(0, dtype=np.int64)
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(self, n_elements, n_parts, machine: Machine):
        return 0.0, machine.cost_model.message_time(16)


class CyclicPartitioner(Partitioner):
    """Round-robin by index, ignoring geometry and load."""

    name = "cyclic"

    def partition(
        self,
        coords: np.ndarray,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        c, _ = self._validate(coords, n_parts, weights)
        dist = CyclicDistribution(c.shape[0], n_parts)
        labels = dist.owner(np.arange(c.shape[0], dtype=np.int64)) \
            if c.shape[0] else np.zeros(0, dtype=np.int64)
        return PartitionResult(labels=labels, n_parts=n_parts)

    def parallel_cost(self, n_elements, n_parts, machine: Machine):
        return 0.0, machine.cost_model.message_time(16)
