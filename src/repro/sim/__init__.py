"""Simulated distributed-memory machine substrate.

The paper's experiments ran on an Intel iPSC/860 hypercube.  This package
provides a deterministic, single-process stand-in: a :class:`Machine` with
per-rank local state, per-rank virtual clocks, a message cost model, and the
bulk-synchronous collective operations (all-to-all-v, all-gather, reductions)
that the CHAOS runtime layer is built on.

The simulator measures communication *exactly* (message counts, byte
volumes) and converts them to virtual time through a linear
``alpha + beta * bytes`` cost model, so the relative shapes reported in the
paper (message aggregation wins, merged schedules cut message counts,
partition quality moves the slowest-rank clock) are reproduced faithfully
even though absolute seconds differ from 1994 hardware.
"""

from repro.sim.cost_model import CostModel, IPSC860, PARAGON, MODERN_CLUSTER
from repro.sim.topology import Topology, Hypercube, Mesh2D, FullCrossbar
from repro.sim.clock import Clock, ClockArray
from repro.sim.message import Message, TrafficStats
from repro.sim.machine import Machine
from repro.sim.metrics import (
    load_balance_index,
    TimeBreakdown,
    PhaseTimer,
)

__all__ = [
    "CostModel",
    "IPSC860",
    "PARAGON",
    "MODERN_CLUSTER",
    "Topology",
    "Hypercube",
    "Mesh2D",
    "FullCrossbar",
    "Clock",
    "ClockArray",
    "Message",
    "TrafficStats",
    "Machine",
    "load_balance_index",
    "TimeBreakdown",
    "PhaseTimer",
]
