"""Per-rank virtual clocks.

Each simulated processor owns a :class:`Clock` that accumulates virtual
time in named categories (``compute``, ``comm``, ``inspector``, ...).  A
:class:`ClockArray` groups the clocks of one machine and implements barrier
semantics: at a synchronization point every clock jumps to the maximum,
which is how load imbalance turns into wall-clock time on a real machine.
"""

from __future__ import annotations

from collections import defaultdict


class Clock:
    """Accumulates virtual seconds, split by category."""

    __slots__ = ("time", "categories")

    def __init__(self) -> None:
        self.time: float = 0.0
        self.categories: dict[str, float] = defaultdict(float)

    def advance(self, dt: float, category: str = "compute") -> None:
        """Add ``dt`` virtual seconds under ``category``."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time {dt}")
        self.time += dt
        self.categories[category] += dt

    def wait_until(self, t: float) -> float:
        """Advance to absolute time ``t`` (idle time); no-op if already past.

        Returns the idle time added, recorded under ``"idle"``.
        """
        idle = t - self.time
        if idle > 0:
            self.time = t
            self.categories["idle"] += idle
            return idle
        return 0.0

    def category(self, name: str) -> float:
        return self.categories.get(name, 0.0)

    def busy_time(self) -> float:
        """Total time excluding idle (i.e. actual work + communication)."""
        return self.time - self.categories.get("idle", 0.0)

    def snapshot(self) -> dict[str, float]:
        out = dict(self.categories)
        out["total"] = self.time
        return out

    def reset(self) -> None:
        self.time = 0.0
        self.categories.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cats = ", ".join(f"{k}={v:.6f}" for k, v in sorted(self.categories.items()))
        return f"Clock(t={self.time:.6f}, {cats})"


class ClockArray:
    """The clocks of all ranks of one machine."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        self.clocks = [Clock() for _ in range(n_ranks)]

    def __len__(self) -> int:
        return len(self.clocks)

    def __getitem__(self, rank: int) -> Clock:
        return self.clocks[rank]

    def __iter__(self):
        return iter(self.clocks)

    def barrier(self) -> float:
        """Synchronize: every clock advances to the global maximum.

        Returns the post-barrier time.  The gap each rank spends waiting is
        charged to its ``"idle"`` category — this is where load imbalance
        becomes visible.
        """
        t = self.max_time()
        for c in self.clocks:
            c.wait_until(t)
        return t

    def max_time(self) -> float:
        return max(c.time for c in self.clocks)

    def min_time(self) -> float:
        return min(c.time for c in self.clocks)

    def mean_time(self) -> float:
        return sum(c.time for c in self.clocks) / len(self.clocks)

    def category_times(self, name: str) -> list[float]:
        return [c.category(name) for c in self.clocks]

    def mean_category(self, name: str) -> float:
        return sum(self.category_times(name)) / len(self.clocks)

    def max_category(self, name: str) -> float:
        return max(self.category_times(name))

    def reset(self) -> None:
        for c in self.clocks:
            c.reset()
