"""Message records and traffic statistics.

Every simulated message is recorded so that tests and benchmarks can make
*exact* claims about what the CHAOS optimizations do: software caching must
shrink total bytes, communication vectorization must shrink message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """One point-to-point message in the simulated network."""

    src: int
    dst: int
    nbytes: int
    tag: str = ""

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative rank in message {self.src}->{self.dst}")


@dataclass
class TrafficStats:
    """Aggregate network counters for one machine.

    ``record=True`` additionally keeps the individual :class:`Message`
    objects (useful in tests; off by default to stay light in long runs).
    """

    n_messages: int = 0
    total_bytes: int = 0
    by_tag: dict = field(default_factory=dict)
    record: bool = False
    messages: list = field(default_factory=list)

    def add(self, msg: Message) -> None:
        self.n_messages += 1
        self.total_bytes += msg.nbytes
        tag = msg.tag or "untagged"
        cnt, byt = self.by_tag.get(tag, (0, 0))
        self.by_tag[tag] = (cnt + 1, byt + msg.nbytes)
        if self.record:
            self.messages.append(msg)

    def add_bulk(self, count: int, total_bytes: int, tag: str = "",
                 messages=None) -> None:
        """Accumulate ``count`` messages totalling ``total_bytes`` at once.

        The bulk path of :meth:`repro.sim.machine.Machine.exchange_compiled`:
        counters update in O(1) instead of once per message.  ``messages``
        (an iterable of :class:`Message`) is only consumed when individual
        records are kept (``record=True``) and must list the same messages
        in the same order the pairwise path would record them.
        """
        if count < 0 or total_bytes < 0:
            raise ValueError(
                f"negative bulk traffic: {count} messages, {total_bytes} bytes"
            )
        if count == 0:
            return
        self.n_messages += count
        self.total_bytes += total_bytes
        key = tag or "untagged"
        cnt, byt = self.by_tag.get(key, (0, 0))
        self.by_tag[key] = (cnt + count, byt + total_bytes)
        if self.record and messages is not None:
            self.messages.extend(messages)

    def tag_messages(self, tag: str) -> int:
        return self.by_tag.get(tag, (0, 0))[0]

    def tag_bytes(self, tag: str) -> int:
        return self.by_tag.get(tag, (0, 0))[1]

    def reset(self) -> None:
        self.n_messages = 0
        self.total_bytes = 0
        self.by_tag.clear()
        self.messages.clear()

    def snapshot(self) -> dict:
        return {
            "n_messages": self.n_messages,
            "total_bytes": self.total_bytes,
            "by_tag": dict(self.by_tag),
        }

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        """Difference of two snapshots (for measuring one phase)."""
        diff = TrafficStats(
            n_messages=self.n_messages - other.n_messages,
            total_bytes=self.total_bytes - other.total_bytes,
        )
        tags = set(self.by_tag) | set(other.by_tag)
        for t in tags:
            c1, b1 = self.by_tag.get(t, (0, 0))
            c0, b0 = other.by_tag.get(t, (0, 0))
            if c1 - c0 or b1 - b0:
                diff.by_tag[t] = (c1 - c0, b1 - b0)
        return diff

    def copy(self) -> "TrafficStats":
        c = TrafficStats(
            n_messages=self.n_messages,
            total_bytes=self.total_bytes,
            by_tag=dict(self.by_tag),
        )
        return c
