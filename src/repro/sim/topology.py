"""Network topologies for the simulated machine.

A topology answers one question the cost model needs: how many hops
separate two ranks.  The iPSC/860 is a binary hypercube; we also provide a
2-D mesh (Paragon-style) and an idealized full crossbar for ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Topology(ABC):
    """Abstract interconnect topology over ``n_ranks`` processors."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between ``src`` and ``dst`` (0 if equal)."""

    def _check(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")
        return int(rank)

    def neighbors(self, rank: int) -> list[int]:
        """Ranks exactly one hop away."""
        self._check(rank)
        return [r for r in range(self.n_ranks) if r != rank and self.hops(rank, r) == 1]

    def diameter(self) -> int:
        """Maximum hop count over all rank pairs."""
        return max(
            (self.hops(a, b) for a in range(self.n_ranks) for b in range(self.n_ranks)),
            default=0,
        )

    def hop_matrix(self) -> np.ndarray:
        """Dense (n_ranks, n_ranks) matrix of hop counts."""
        m = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        for a in range(self.n_ranks):
            for b in range(self.n_ranks):
                m[a, b] = self.hops(a, b)
        return m


class Hypercube(Topology):
    """Binary hypercube (the iPSC/860 interconnect).

    Requires a power-of-two rank count; the hop distance between two ranks
    is the Hamming distance of their binary labels.
    """

    def __init__(self, n_ranks: int):
        super().__init__(n_ranks)
        if n_ranks & (n_ranks - 1):
            raise ValueError(f"hypercube needs a power-of-two rank count, got {n_ranks}")
        self.dimension = n_ranks.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        src = self._check(src)
        dst = self._check(dst)
        return int(src ^ dst).bit_count()

    def neighbors(self, rank: int) -> list[int]:
        rank = self._check(rank)
        return [rank ^ (1 << d) for d in range(self.dimension)]

    def diameter(self) -> int:
        return self.dimension

    @staticmethod
    def gray_code(i: int) -> int:
        """Binary-reflected Gray code — adjacent codes differ in one bit.

        Used to embed rings/chains in the hypercube so that the chain
        partitioner's neighbor exchanges stay single-hop, the classic
        iPSC-era embedding trick.
        """
        if i < 0:
            raise ValueError(f"gray code undefined for negative {i}")
        return i ^ (i >> 1)

    def ring_embedding(self) -> list[int]:
        """Rank order forming a Hamiltonian ring (consecutive = 1 hop)."""
        return [self.gray_code(i) for i in range(self.n_ranks)]


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered (Manhattan) routing."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError(f"mesh dims must be positive, got {rows}x{cols}")
        super().__init__(rows * cols)
        self.rows = int(rows)
        self.cols = int(cols)

    def coords(self, rank: int) -> tuple[int, int]:
        rank = self._check(rank)
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row},{col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        r1, c1 = self.coords(src)
        r2, c2 = self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)


class FullCrossbar(Topology):
    """Idealized single-hop network between every pair of ranks."""

    def hops(self, src: int, dst: int) -> int:
        src = self._check(src)
        dst = self._check(dst)
        return 0 if src == dst else 1

    def diameter(self) -> int:
        return 0 if self.n_ranks == 1 else 1


def default_topology(n_ranks: int) -> Topology:
    """Hypercube when the rank count allows it, else a crossbar."""
    if n_ranks & (n_ranks - 1) == 0:
        return Hypercube(n_ranks)
    return FullCrossbar(n_ranks)
