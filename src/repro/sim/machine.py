"""The simulated distributed-memory machine.

A :class:`Machine` stands in for the paper's Intel iPSC/860: ``n_ranks``
processors, each with its own virtual clock, connected by a topology with a
linear message cost model.  The CHAOS runtime layer above is written in a
*rank-major collective* style: distributed objects hold one component per
rank, and communication happens through the machine's bulk-synchronous
collectives (``alltoallv``, ``allgather``, reductions).  This keeps the
whole system single-process and deterministic while measuring communication
exactly.

Timing semantics
----------------
Local work is charged to one rank's clock via :meth:`charge_compute` /
:meth:`charge_memops`.  A collective charges each participating rank the
cost of the messages it sends and receives, then (by default) executes a
barrier so that every clock advances to the slowest rank — mirroring the
loosely-synchronous execution model of CHAOS applications.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.clock import ClockArray
from repro.sim.cost_model import CostModel, IPSC860
from repro.sim.message import Message, TrafficStats
from repro.sim.topology import Topology, default_topology


def _payload_bytes(obj: Any) -> int:
    """Best-effort byte size of a message payload.

    Arrays report their true buffer size; other objects get a small
    flat-rate estimate (they only appear in metadata exchanges).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (tuple, list)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(k) + _payload_bytes(v) for k, v in obj.items())
    return 64


class Machine:
    """A simulated multiprocessor.

    Parameters
    ----------
    n_ranks:
        Number of simulated processors.
    cost_model:
        :class:`~repro.sim.cost_model.CostModel` converting messages and
        work units into virtual time.  Defaults to iPSC/860 constants.
    topology:
        Interconnect; defaults to a hypercube for power-of-two rank
        counts, otherwise a single-hop crossbar.
    record_messages:
        Keep individual :class:`Message` records in ``traffic.messages``
        (useful for tests).
    """

    def __init__(
        self,
        n_ranks: int,
        cost_model: CostModel = IPSC860,
        topology: Topology | None = None,
        record_messages: bool = False,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.cost_model = cost_model
        self.topology = topology if topology is not None else default_topology(n_ranks)
        if self.topology.n_ranks != self.n_ranks:
            raise ValueError(
                f"topology is sized for {self.topology.n_ranks} ranks, "
                f"machine has {self.n_ranks}"
            )
        self.clocks = ClockArray(self.n_ranks)
        self.traffic = TrafficStats(record=record_messages)
        self._hop_matrix_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def ranks(self) -> range:
        """Iterable over rank ids."""
        return range(self.n_ranks)

    def check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self.n_ranks})")
        return int(rank)

    def check_per_rank(self, seq: Sequence, what: str = "argument") -> None:
        """Validate that ``seq`` has exactly one entry per rank."""
        if len(seq) != self.n_ranks:
            raise ValueError(
                f"per-rank {what} has length {len(seq)}, expected {self.n_ranks}"
            )

    # ------------------------------------------------------------------
    # charging local work
    # ------------------------------------------------------------------
    def charge_compute(self, rank: int, ops: float, category: str = "compute") -> None:
        """Charge ``ops`` abstract work units to ``rank``'s clock."""
        self.check_rank(rank)
        self.clocks[rank].advance(self.cost_model.compute_time(ops), category)

    def charge_memops(self, rank: int, ops: float, category: str = "inspector") -> None:
        """Charge ``ops`` local memory operations (hashing, copies, ...)."""
        self.check_rank(rank)
        self.clocks[rank].advance(self.cost_model.memory_time(ops), category)

    def charge_copyops(self, rank: int, ops: float, category: str = "comm") -> None:
        """Charge ``ops`` bulk-copy element moves (pack/unpack buffers)."""
        self.check_rank(rank)
        self.clocks[rank].advance(self.cost_model.copy_time(ops), category)

    def charge_time(self, rank: int, seconds: float, category: str) -> None:
        """Charge raw virtual seconds (partitioner models etc.)."""
        self.check_rank(rank)
        self.clocks[rank].advance(seconds, category)

    def barrier(self, category: str = "comm") -> float:
        """Synchronize all clocks to the slowest rank."""
        del category  # idle time is recorded under "idle" by the clocks
        return self.clocks.barrier()

    # ------------------------------------------------------------------
    # message accounting
    # ------------------------------------------------------------------
    def _deliver(
        self, src: int, dst: int, payload: Any, tag: str, category: str
    ) -> None:
        """Record one message and charge both endpoints."""
        nbytes = _payload_bytes(payload)
        self.traffic.add(Message(src=src, dst=dst, nbytes=nbytes, tag=tag))
        hops = max(1, self.topology.hops(src, dst))
        dt = self.cost_model.message_time(nbytes, hops)
        self.clocks[src].advance(dt, category)
        self.clocks[dst].advance(dt, category)

    def hop_matrix(self) -> np.ndarray:
        """Dense hop-count matrix of the topology, computed once."""
        if self._hop_matrix_cache is None:
            self._hop_matrix_cache = self.topology.hop_matrix()
        return self._hop_matrix_cache

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def exchange_compiled(
        self,
        counts,
        elem_nbytes,
        tag: str = "exchange",
        category: str = "comm",
        sync: bool = True,
    ) -> None:
        """Charge clocks and traffic for one compiled flat exchange.

        The array-native counterpart of :meth:`alltoallv`: instead of
        materializing nested per-pair payload lists, the caller supplies
        ``counts[p][q]`` (elements rank ``p`` sends to rank ``q``) and the
        per-sender row size ``elem_nbytes`` (scalar, or one value per
        rank).  Every non-empty off-rank pair is charged exactly as
        :meth:`alltoallv` would charge the equivalent array payload —
        same message count, bytes, tags, and per-rank time — followed by
        the same barrier.  The data itself moves inside the executor
        backend with fused numpy operations; this method only performs
        the accounting.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n_ranks, self.n_ranks):
            raise ValueError(
                f"counts must be ({self.n_ranks}, {self.n_ranks}), "
                f"got {counts.shape}"
            )
        if counts.size and counts.min() < 0:
            raise ValueError("negative element count in compiled exchange")
        eb = np.broadcast_to(
            np.asarray(elem_nbytes, dtype=np.int64), (self.n_ranks,)
        )
        if eb.size and eb.min() < 0:
            raise ValueError("negative element size in compiled exchange")
        mask = counts > 0
        np.fill_diagonal(mask, False)  # self-deliveries are free local copies
        src, dst = np.nonzero(mask)  # row-major: same order as alltoallv
        if src.size:
            nbytes = counts[src, dst] * eb[src]
            hops = np.maximum(1, self.hop_matrix()[src, dst])
            cm = self.cost_model
            dts = (cm.alpha + cm.beta * nbytes.astype(np.float64)
                   + cm.gamma * (hops - 1).astype(np.float64))
            per_rank = np.zeros(self.n_ranks)
            np.add.at(per_rank, src, dts)
            np.add.at(per_rank, dst, dts)
            for p in np.nonzero(per_rank)[0]:
                self.clocks[int(p)].advance(float(per_rank[p]), category)
            records = None
            if self.traffic.record:
                records = [
                    Message(src=int(s), dst=int(d), nbytes=int(b), tag=tag)
                    for s, d, b in zip(src, dst, nbytes)
                ]
            self.traffic.add_bulk(
                int(src.size), int(nbytes.sum()), tag, records
            )
        if sync:
            self.barrier()

    def alltoallv(
        self,
        sendbufs: Sequence[Sequence[Any]],
        tag: str = "alltoallv",
        category: str = "comm",
        sync: bool = True,
    ) -> list[list[Any]]:
        """All-to-all exchange of arbitrary per-pair payloads.

        ``sendbufs[p][q]`` is what rank ``p`` sends to rank ``q`` (``None``
        or an empty array means "no message" and costs nothing).  Returns
        ``recv`` with ``recv[q][p]`` = payload received by ``q`` from ``p``.
        Self-deliveries (``p == q``) are local copies: free of network cost.
        """
        self.check_per_rank(sendbufs, "sendbufs")
        for p in self.ranks():
            self.check_per_rank(sendbufs[p], f"sendbufs[{p}]")
        recv: list[list[Any]] = [[None] * self.n_ranks for _ in self.ranks()]
        for p in self.ranks():
            for q in self.ranks():
                payload = sendbufs[p][q]
                if payload is None:
                    continue
                if isinstance(payload, np.ndarray) and payload.size == 0:
                    recv[q][p] = payload
                    continue
                recv[q][p] = payload
                if p != q:
                    self._deliver(p, q, payload, tag, category)
        if sync:
            self.barrier()
        return recv

    def alltoall_lengths(
        self,
        lengths: Sequence[Sequence[int]],
        tag: str = "sizes",
        category: str = "comm",
        sync: bool = True,
    ) -> list[list[int]]:
        """Exchange message-size metadata (one small int per pair).

        This is the schedule-setup exchange CHAOS performs to learn how
        much each rank will receive; it is charged as one small message per
        non-empty pair.
        """
        self.check_per_rank(lengths, "lengths")
        recv = [[0] * self.n_ranks for _ in self.ranks()]
        for p in self.ranks():
            self.check_per_rank(lengths[p], f"lengths[{p}]")
            for q in self.ranks():
                n = int(lengths[p][q])
                if n < 0:
                    raise ValueError(f"negative length {n} from {p} to {q}")
                recv[q][p] = n
                if n > 0 and p != q:
                    self._deliver(p, q, 8, tag, category)
        if sync:
            self.barrier()
        return recv

    def alltoall_lengths_compiled(
        self,
        counts,
        tag: str = "sizes",
        category: str = "comm",
        sync: bool = True,
    ) -> None:
        """Charge a message-size exchange straight from a count matrix.

        The array-native counterpart of :meth:`alltoall_lengths`, used by
        the CSR-native schedule builders: each non-empty off-rank pair of
        ``counts`` is charged one 8-byte size message — identical
        messages, bytes, tags, and clock charges to the nested-list
        form, with no per-pair Python payload lists materialized.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ValueError("negative length in compiled size exchange")
        self.exchange_compiled(
            (counts > 0).astype(np.int64), 8, tag=tag, category=category,
            sync=sync,
        )

    def allgather(
        self,
        items: Sequence[Any],
        tag: str = "allgather",
        category: str = "comm",
        sync: bool = True,
    ) -> list[list[Any]]:
        """Every rank contributes one item; every rank receives all items.

        Modeled as a hypercube-style exchange: each rank is charged
        ``log2(P)`` messages of (roughly) doubling size rather than ``P``
        point-to-point sends, matching efficient collective algorithms.
        Returns the same gathered list for each rank.
        """
        self.check_per_rank(items, "items")
        gathered = list(items)
        if self.n_ranks > 1:
            nbytes = max(1, sum(_payload_bytes(x) for x in items) // self.n_ranks)
            rounds = max(1, (self.n_ranks - 1).bit_length())
            for r in range(rounds):
                step_bytes = nbytes * (1 << r)
                dt = self.cost_model.message_time(step_bytes)
                for p in self.ranks():
                    self.clocks[p].advance(dt, category)
                    self.traffic.add(
                        Message(src=p, dst=p ^ 1 if self.n_ranks > 1 else p,
                                nbytes=step_bytes, tag=tag)
                    )
        if sync:
            self.barrier()
        return [list(gathered) for _ in self.ranks()]

    def bcast(
        self,
        item: Any,
        root: int = 0,
        tag: str = "bcast",
        category: str = "comm",
        sync: bool = True,
    ) -> list[Any]:
        """Broadcast ``item`` from ``root``; returns one copy per rank.

        Charged as a binomial tree: ``log2(P)`` rounds.
        """
        self.check_rank(root)
        if self.n_ranks > 1:
            nbytes = _payload_bytes(item)
            rounds = max(1, (self.n_ranks - 1).bit_length())
            dt = self.cost_model.message_time(max(1, nbytes))
            for _ in range(rounds):
                for p in self.ranks():
                    self.clocks[p].advance(dt, category)
            self.traffic.add(
                Message(src=root, dst=(root + 1) % self.n_ranks,
                        nbytes=nbytes * (self.n_ranks - 1), tag=tag)
            )
        if sync:
            self.barrier()
        return [item for _ in self.ranks()]

    def allreduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any],
        tag: str = "allreduce",
        category: str = "comm",
        sync: bool = True,
    ) -> list[Any]:
        """Reduce one value per rank with ``op``; all ranks get the result.

        Charged as ``log2(P)`` exchange rounds of the value size.
        """
        self.check_per_rank(values, "values")
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        if self.n_ranks > 1:
            nbytes = max(8, _payload_bytes(values[0]))
            rounds = max(1, (self.n_ranks - 1).bit_length())
            dt = self.cost_model.message_time(nbytes)
            for _ in range(rounds):
                for p in self.ranks():
                    self.clocks[p].advance(dt, category)
            self.traffic.add(Message(src=0, dst=0, nbytes=nbytes * rounds, tag=tag))
        if sync:
            self.barrier()
        return [acc for _ in self.ranks()]

    def allreduce_sum(self, values: Sequence[Any], **kw) -> list[Any]:
        return self.allreduce(values, lambda a, b: a + b, tag="allreduce_sum", **kw)

    def allreduce_max(self, values: Sequence[Any], **kw) -> list[Any]:
        return self.allreduce(values, max, tag="allreduce_max", **kw)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def reset_clocks(self) -> None:
        self.clocks.reset()

    def reset_traffic(self) -> None:
        self.traffic.reset()

    def execution_time(self) -> float:
        """Paper convention: maximum of net execution time over ranks."""
        return self.clocks.max_time()

    def mean_category_time(self, category: str) -> float:
        """Paper convention: computation/communication averaged over ranks."""
        return self.clocks.mean_category(category)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Machine(n_ranks={self.n_ranks}, cost_model={self.cost_model.name}, "
            f"topology={type(self.topology).__name__})"
        )
