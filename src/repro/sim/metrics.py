"""Performance metrics used throughout the paper's evaluation.

The load-balance index is the paper's own formula (Section 4.1.1):

    LB = max_i(computation time of processor i) * n / sum_i(computation time)

LB == 1.0 is perfect balance; the paper reports 1.03-1.08 for CHARMM.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


def load_balance_index(computation_times: Sequence[float]) -> float:
    """The paper's load-balance index over per-rank computation times."""
    times = np.asarray(computation_times, dtype=float)
    if times.size == 0:
        raise ValueError("need at least one rank's time")
    if np.any(times < 0):
        raise ValueError("negative computation time")
    total = times.sum()
    if total == 0:
        return 1.0
    return float(times.max() * times.size / total)


def imbalance_from_weights(weights: Sequence[float]) -> float:
    """Load-balance index computed directly from per-rank work weights."""
    return load_balance_index(weights)


@dataclass
class TimeBreakdown:
    """A labelled breakdown of virtual time, mirroring the paper's tables.

    Keys follow the paper's row names: ``execution``, ``computation``,
    ``communication``, ``partition``, ``remap``, ``inspector``,
    ``executor``, ...
    """

    entries: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.entries.get(key, 0.0)

    def __setitem__(self, key: str, value: float) -> None:
        self.entries[key] = float(value)

    def add(self, key: str, value: float) -> None:
        self.entries[key] = self.entries.get(key, 0.0) + float(value)

    def total(self) -> float:
        return sum(self.entries.values())

    def as_row(self, keys: Sequence[str]) -> list[float]:
        return [self[k] for k in keys]

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown(dict(self.entries))
        for k, v in other.entries.items():
            out.add(k, v)
        return out


class PhaseTimer:
    """Measures *wall-clock* time per named phase (host-side, not virtual).

    Benchmarks use this alongside the virtual clocks: virtual time gives
    the paper-shaped numbers, wall time shows what the Python implementation
    actually costs.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)
        self._starts: dict[str, float] = {}

    def start(self, phase: str) -> None:
        if phase in self._starts:
            raise RuntimeError(f"phase {phase!r} already running")
        self._starts[phase] = time.perf_counter()

    def stop(self, phase: str) -> float:
        t0 = self._starts.pop(phase, None)
        if t0 is None:
            raise RuntimeError(f"phase {phase!r} was not started")
        dt = time.perf_counter() - t0
        self.totals[phase] += dt
        self.counts[phase] += 1
        return dt

    class _Ctx:
        def __init__(self, timer: "PhaseTimer", phase: str):
            self.timer, self.phase = timer, phase

        def __enter__(self):
            self.timer.start(self.phase)
            return self

        def __exit__(self, *exc):
            self.timer.stop(self.phase)
            return False

    def phase(self, name: str) -> "_Ctx":
        """Context manager: ``with timer.phase('inspector'): ...``"""
        return PhaseTimer._Ctx(self, name)

    def mean(self, phase: str) -> float:
        n = self.counts.get(phase, 0)
        return self.totals[phase] / n if n else 0.0

    def snapshot(self) -> dict[str, float]:
        return dict(self.totals)
