"""Message and computation cost models for the simulated machine.

The paper's timings come from an Intel iPSC/860: a hypercube of i860
processors with a circuit-switched network.  A linear model

    t(message of n bytes over h hops) = alpha + beta * n + gamma * (h - 1)

captures the dominant effects that the paper's optimizations target:

* *communication vectorization* (message aggregation) attacks the per-
  message ``alpha`` term — fewer, larger messages;
* *software caching* (duplicate removal) attacks the per-byte ``beta``
  term — less data on the wire;
* load balance moves the slowest rank's clock, which the linear model
  leaves untouched — exactly as on real hardware.

``flop`` converts abstract work units (one inner-loop iteration of an
irregular kernel, one pairwise force evaluation, ...) into virtual seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Linear communication + computation cost model.

    Parameters
    ----------
    alpha:
        Message startup latency in seconds.  Dominates small messages;
        the term that communication vectorization amortizes away.
    beta:
        Per-byte transfer time in seconds (1 / bandwidth).
    gamma:
        Additional per-hop latency in seconds for multi-hop routes.
        Circuit-switched hypercubes like the iPSC/860 have small but
        non-zero per-hop costs.
    flop:
        Virtual seconds per abstract work unit.
    memop:
        Virtual seconds per local memory operation (hash-table insert,
        index translation step).  Used to charge inspector-phase work.
    copyop:
        Virtual seconds per element for bulk buffer copies
        (pack/unpack in gather/scatter, remap placement).  Much cheaper
        than ``memop``: sequential streaming access vs. hash probing.
    name:
        Human-readable name, used in benchmark reports.
    """

    alpha: float = 75e-6
    beta: float = 0.36e-6
    gamma: float = 10e-6
    flop: float = 0.1e-6
    memop: float = 0.05e-6
    copyop: float = 0.02e-6
    name: str = "generic"

    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """Virtual time to deliver one message of ``nbytes`` over ``hops``."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        return self.alpha + self.beta * float(nbytes) + self.gamma * (hops - 1)

    def compute_time(self, ops: float) -> float:
        """Virtual time for ``ops`` abstract work units."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        return self.flop * float(ops)

    def memory_time(self, ops: float) -> float:
        """Virtual time for ``ops`` local memory operations."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        return self.memop * float(ops)

    def copy_time(self, ops: float) -> float:
        """Virtual time for ``ops`` bulk-copied elements."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        return self.copyop * float(ops)

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with some parameters replaced."""
        return replace(self, **kwargs)


#: Intel iPSC/860 era constants: ~75 us startup, ~2.8 MB/s effective
#: point-to-point bandwidth, i860 doing ~10 MFLOP/s on irregular code.
#: ``memop`` reflects hash-probe/insert cost on a 40 MHz part with no
#: cache-friendly access pattern (~20 cycles per operation) — the paper
#: notes even "customized memory allocators" leave index analysis costly.
IPSC860 = CostModel(
    alpha=75e-6,
    beta=0.36e-6,
    gamma=10e-6,
    flop=0.1e-6,
    memop=0.5e-6,
    copyop=0.05e-6,
    name="iPSC/860",
)

#: Intel Paragon-ish constants (successor machine): lower latency,
#: higher bandwidth.  Useful for sensitivity studies.
PARAGON = CostModel(
    alpha=30e-6,
    beta=0.012e-6,
    gamma=3e-6,
    flop=0.05e-6,
    memop=0.02e-6,
    name="Paragon",
)

#: A modern commodity cluster: ~2 us latency, ~10 GB/s.  The paper's
#: optimizations still help, but crossover points move; exposing this
#: preset lets benchmarks show how conclusions shift with hardware.
MODERN_CLUSTER = CostModel(
    alpha=2e-6,
    beta=0.0001e-6,
    gamma=0.2e-6,
    flop=0.0005e-6,
    memop=0.0002e-6,
    name="modern-cluster",
)
