"""Submit-friendly job specifications and their solo execution path.

A :class:`JobSpec` is the unit of admission: *what* to run (the
``run(ctx, control)`` hook), *where* (simulated machine size + backend
choice), and *how* (RNG seed, per-job timeout).  The server executes a
spec on a worker thread under a fresh per-tenant
:class:`~repro.core.context.ExecutionContext`; the same code path is
exposed as :func:`run_job_inline` so tests can compare a tenant's
served result bitwise against a solo run.

Cooperative cancellation rides :class:`JobControl`: the server flips
the control's stop flag on timeout or cancellation, and well-behaved
specs call ``control.check()`` between steps (the CHARMM/DSMC specs in
:mod:`repro.apps.jobs` do) so abandoned worker threads wind down
quickly instead of running their remaining steps.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.context import ExecutionContext
from repro.sim.machine import Machine


class JobCancelled(Exception):
    """Raised inside a job when its control was asked to stop."""


class JobControl:
    """Thread-safe stop flag shared between the server and one job."""

    __slots__ = ("_stop",)

    def __init__(self):
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the job to wind down (idempotent)."""
        self._stop.set()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def check(self) -> None:
        """Cooperative cancellation point: raise if a stop was requested."""
        if self._stop.is_set():
            raise JobCancelled("job asked to stop")

    def sleep(self, seconds: float) -> None:
        """Sleep that wakes (and raises) as soon as a stop is requested."""
        if self._stop.wait(seconds):
            raise JobCancelled("job asked to stop")


@dataclass(kw_only=True)
class JobSpec(ABC):
    """One submittable unit of work.

    Subclasses implement :meth:`run`; everything else — building the
    per-job machine and context, closing it, stats collection, failure
    isolation — is the server's job.  ``backend=None`` falls through
    the usual default chain (``set_default_backend`` →
    ``REPRO_BACKEND`` → ``"vectorized"``), so one deployment-wide
    environment variable retargets every job that doesn't pin one.
    """

    name: str = "job"
    tenant: str = "default"
    n_ranks: int = 4
    backend: str | None = None
    seed: int = 0
    timeout: float | None = None

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive, got {self.timeout}"
            )

    @abstractmethod
    def run(self, ctx: ExecutionContext, control: JobControl) -> Any:
        """Execute against a context the caller owns and will close.

        Implementations must *not* close ``ctx`` (lifecycle belongs to
        the server / :func:`run_job_inline`) and should call
        ``control.check()`` at natural step boundaries so timeouts and
        cancellations take effect promptly.
        """


@dataclass(kw_only=True)
class CallableJob(JobSpec):
    """Wrap any ``fn(ctx, control) -> result`` as a job."""

    fn: Callable[[ExecutionContext, JobControl], Any]

    def run(self, ctx: ExecutionContext, control: JobControl) -> Any:
        return self.fn(ctx, control)


@dataclass(kw_only=True)
class ProgramJob(JobSpec):
    """A mini-Fortran-D program: source + bindings, returns ``fetch``.

    The source is compiled inside the job (compilation errors are
    tenant failures, not server failures), bindings are copied so one
    spec can be executed many times — served and solo — from identical
    initial state, and the arrays named in ``fetch`` are assembled
    host-side as the job's result.
    """

    source: str
    bindings: dict[str, Any] = field(default_factory=dict)
    fetch: tuple[str, ...] = ()

    def run(self, ctx: ExecutionContext, control: JobControl) -> dict:
        from repro.lang.program import ProgramInstance, compile_program

        control.check()
        compiled = compile_program(self.source)
        bindings = {
            k: (v.copy() if hasattr(v, "copy") else v)
            for k, v in self.bindings.items()
        }
        inst = ProgramInstance(compiled, ctx, bindings)
        control.check()
        inst.execute()
        names = self.fetch or tuple(sorted(inst.local))
        return {n: np.asarray(inst.get_array(n)) for n in names}


# ----------------------------------------------------------------------
# execution plumbing shared by the server and solo runs
# ----------------------------------------------------------------------
def build_job_context(spec: JobSpec) -> ExecutionContext:
    """Fresh machine + context for one job, per the spec's knobs."""
    machine = Machine(spec.n_ranks)
    return ExecutionContext.resolve(machine, spec.backend, seed=spec.seed)


def collect_stats(ctx: ExecutionContext) -> dict:
    """The per-tenant machine's accounting for the job's verdict."""
    return {
        "traffic": ctx.traffic.snapshot(),
        "clock": {
            "execution": ctx.machine.execution_time(),
            "max_time": ctx.clocks.max_time(),
        },
        "cache": {
            "entries": len(ctx.schedule_cache),
            **ctx.schedule_cache.total_stats().as_dict(),
        },
        "backend": ctx.backend.name,
        "n_ranks": ctx.n_ranks,
    }


def shm_segment_names(ctx: ExecutionContext) -> tuple[str, ...]:
    """Shared-memory segments owned by the context's backend, if any.

    Non-empty only for resource handles exposing an ``arena`` (the
    multiprocess backend); recorded on the verdict before close so
    tests can verify the segments were unlinked from ``/dev/shm``.
    """
    arena = getattr(ctx.resources, "arena", None)
    if arena is None:
        return ()
    return tuple(arena.segment_names)


def run_job_inline(spec: JobSpec, control: JobControl | None = None) -> Any:
    """Execute a spec solo — same context plumbing the server uses.

    The reference path for isolation tests: a tenant's served result
    must be bitwise-identical to ``run_job_inline`` of the same spec,
    whatever its neighbours did.
    """
    control = control if control is not None else JobControl()
    ctx = build_job_context(spec)
    try:
        return spec.run(ctx, control)
    finally:
        ctx.close()
