"""Job lifecycle states and the per-job verdict record."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class JobStatus(str, enum.Enum):
    """Lifecycle: queued → running → one terminal state."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - display aid
        return self.value


#: states a job never leaves once recorded
TERMINAL_STATES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED,
     JobStatus.TIMEOUT}
)


@dataclass
class JobVerdict:
    """Everything the server recorded about one finished job.

    A verdict exists for every admitted job that reached a terminal
    state — including tenants that raised (``FAILED`` carries the
    exception repr and traceback), exceeded their deadline
    (``TIMEOUT``), or were cancelled.  ``stats`` holds the per-tenant
    machine's accounting at completion: the traffic snapshot
    (message/byte counters by tag), virtual-clock totals, and schedule-
    cache occupancy — each tenant has its own machine, so the numbers
    are exact and unpolluted by neighbours.

    The resource-audit fields close the isolation loop: after
    ``drain()`` the server guarantees ``resources_closed`` is true for
    every job, and ``shm_segments`` names the shared-memory segments
    the job's backend created (multiprocess backend) so tests can
    verify they were unlinked from ``/dev/shm``.
    """

    job_id: int
    name: str
    tenant: str
    status: JobStatus
    backend: str | None = None
    seed: int = 0
    result: Any = None
    error: str | None = None
    traceback: str | None = None
    stats: dict = field(default_factory=dict)
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    resources_closed: bool = False
    shm_segments: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.DONE

    @property
    def duration(self) -> float | None:
        """Wall-clock seconds from start to the verdict, if it ran."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> str:
        """One log-friendly line (used by the demo and the server log)."""
        extra = ""
        if self.error:
            extra = f" error={self.error}"
        elif self.ok and self.stats:
            tr = self.stats.get("traffic", {})
            extra = (f" msgs={tr.get('n_messages', 0)}"
                     f" bytes={tr.get('total_bytes', 0)}")
        dur = f" {self.duration:.3f}s" if self.duration is not None else ""
        return (f"[{self.tenant}/{self.name}#{self.job_id}] "
                f"{self.status.value}{dur}{extra}")
