"""Server tuning knobs, collected in one frozen dataclass."""

from __future__ import annotations

from dataclasses import dataclass

#: admission policies for a full queue
ADMISSION_POLICIES = ("reject", "wait")


@dataclass(frozen=True)
class ServerConfig:
    """Configuration for a :class:`~repro.serve.server.ProgramServer`.

    Parameters
    ----------
    max_concurrency:
        Jobs executing simultaneously across all tenants.  Each running
        job occupies one worker thread, so this also sizes the thread
        pool unless ``thread_workers`` overrides it.
    per_tenant:
        Jobs one tenant may have running at once; excess jobs from the
        same tenant wait in the queue while other tenants proceed.
    queue_limit:
        Bound on *pending* jobs (queued + running).  Admission beyond
        the bound follows ``admission``.
    admission:
        ``"reject"`` makes :meth:`ProgramServer.submit` raise
        :class:`~repro.serve.server.AdmissionFull` when the queue is at
        its bound; ``"wait"`` applies backpressure — the submitting
        coroutine suspends until a slot frees up (or the server starts
        draining, which rejects it).
    default_timeout:
        Per-job wall-clock timeout in seconds applied when a
        :class:`~repro.serve.job.JobSpec` does not carry its own;
        ``None`` means no timeout.
    thread_workers:
        Size of the executor thread pool; defaults to
        ``max_concurrency``.  Raising it above ``max_concurrency``
        leaves headroom for straggler threads (timed-out or cancelled
        jobs still winding down cooperatively).
    """

    max_concurrency: int = 4
    per_tenant: int = 1
    queue_limit: int = 64
    admission: str = "wait"
    default_timeout: float | None = None
    thread_workers: int | None = None

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.per_tenant < 1:
            raise ValueError(
                f"per_tenant must be >= 1, got {self.per_tenant}"
            )
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive, got {self.default_timeout}"
            )
        if self.thread_workers is not None and self.thread_workers < 1:
            raise ValueError(
                f"thread_workers must be >= 1, got {self.thread_workers}"
            )

    @property
    def pool_size(self) -> int:
        """Executor thread-pool width (``thread_workers`` or the cap)."""
        return (self.thread_workers if self.thread_workers is not None
                else self.max_concurrency)
