"""Chaos-as-a-service: an async multi-tenant program server.

The runtime below this package is a *library*: one caller builds one
:class:`~repro.core.context.ExecutionContext` and drives one program.
``repro.serve`` wraps it in a long-lived service that hosts many
concurrent programs the way a production deployment would:

* :class:`ProgramServer` — an asyncio admission/work queue over
  submitted :class:`JobSpec`\\ s.  Every job runs under its own
  per-tenant :class:`~repro.core.context.ExecutionContext` (own
  simulated machine, own backend resources, own RNG seed) inside a
  soft-failure wrapper: a tenant that raises, times out, or is
  cancelled produces a recorded :class:`JobVerdict` and never takes
  down the event loop or perturbs another tenant's bitwise results.
* :class:`JobSpec` — the submit-friendly unit of work (program +
  machine size + backend choice + seed + timeout).  Ships with
  :class:`CallableJob` (any ``fn(ctx, control)``) and
  :class:`ProgramJob` (mini-Fortran-D source + bindings); the
  application-shaped specs (CHARMM, DSMC) live in
  :mod:`repro.apps.jobs`.
* :class:`JobVerdict` — the per-job record: terminal status, result or
  error + traceback, traffic/virtual-clock/cache statistics, and the
  resource audit (context closed, shared-memory segments unlinked).

Backend work executes on a thread pool via ``run_in_executor`` so the
event loop stays responsive; admission is bounded with configurable
backpressure; ``drain()``/``close()`` finish running jobs, reject new
submissions, and deterministically close every context's backend
resources — worker pools and shared-memory arenas included — riding
the backend lifecycle hooks (``open``/``close``).
"""

from repro.serve.config import ServerConfig
from repro.serve.job import (
    CallableJob,
    JobCancelled,
    JobControl,
    JobSpec,
    ProgramJob,
    build_job_context,
    run_job_inline,
)
from repro.serve.server import (
    AdmissionFull,
    JobHandle,
    ProgramServer,
    ServerClosed,
)
from repro.serve.verdict import TERMINAL_STATES, JobStatus, JobVerdict

__all__ = [
    "AdmissionFull",
    "CallableJob",
    "JobCancelled",
    "JobControl",
    "JobHandle",
    "JobSpec",
    "JobStatus",
    "JobVerdict",
    "ProgramJob",
    "ProgramServer",
    "ServerClosed",
    "ServerConfig",
    "TERMINAL_STATES",
    "build_job_context",
    "run_job_inline",
]
