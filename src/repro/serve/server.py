"""The asyncio multi-tenant program server.

:class:`ProgramServer` owns an admission queue of submitted
:class:`~repro.serve.job.JobSpec`\\ s and runs each under its own
per-tenant :class:`~repro.core.context.ExecutionContext` inside a
soft-failure wrapper (:meth:`ProgramServer._soft_run`): one tenant's
exception, deadline overrun, or cancellation produces a recorded
:class:`~repro.serve.verdict.JobVerdict` and never takes down the
event loop or another tenant.  Backend work executes on a dedicated
thread pool via ``run_in_executor`` so the loop stays responsive while
kernels (and the pooled backends' own workers) grind.

Concurrency structure
---------------------
* admission is bounded by ``config.queue_limit`` over *pending* jobs
  (queued + running); a full queue rejects
  (:class:`AdmissionFull`) or applies backpressure — the submitting
  coroutine suspends — per ``config.admission``;
* each job is one asyncio task that first acquires its tenant's
  semaphore (``config.per_tenant``), then the global one
  (``config.max_concurrency``) — tenant-first ordering keeps one
  flooding tenant's queued jobs from camping on global slots other
  tenants could use;
* timeouts and cancellations never kill the worker thread (Python
  cannot); they flip the job's cooperative
  :class:`~repro.serve.job.JobControl`, record the verdict
  immediately, and park the thread's future as a *straggler* that
  ``drain()`` awaits so its context still closes deterministically.

Shutdown rides the backend lifecycle hooks: ``drain()`` rejects new
admissions, lets admitted jobs finish (or hit their deadline), awaits
stragglers, then force-closes any context a crashed path left open —
worker pools and shared-memory arenas included.  ``close()`` drains
and then shuts the server's own thread pool down.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.context import ExecutionContext
from repro.serve.config import ServerConfig
from repro.serve.job import (
    JobCancelled,
    JobControl,
    JobSpec,
    build_job_context,
    collect_stats,
    shm_segment_names,
)
from repro.serve.verdict import TERMINAL_STATES, JobStatus, JobVerdict


class ServerClosed(RuntimeError):
    """Submission rejected: the server is draining or closed."""


class AdmissionFull(RuntimeError):
    """Submission rejected: the bounded admission queue is at capacity."""


@dataclass(eq=False)
class _Job:
    """Server-internal state for one admitted job."""

    id: int
    spec: JobSpec
    submitted_at: float
    status: JobStatus = JobStatus.QUEUED
    control: JobControl = field(default_factory=JobControl)
    cancel_event: asyncio.Event = field(default_factory=asyncio.Event)
    done: asyncio.Event = field(default_factory=asyncio.Event)
    task: asyncio.Task | None = None
    thread_future: asyncio.Future | None = None
    started_at: float | None = None
    verdict: JobVerdict | None = None
    #: set from the worker thread once the per-job context exists
    ctx: ExecutionContext | None = None
    #: set from the worker thread after the run, before the context closes
    shm_segments: tuple[str, ...] = ()


class JobHandle:
    """Caller-side view of one admitted job (status / wait / cancel)."""

    __slots__ = ("_server", "job_id")

    def __init__(self, server: "ProgramServer", job_id: int):
        self._server = server
        self.job_id = job_id

    @property
    def spec(self) -> JobSpec:
        return self._server._job(self.job_id).spec

    @property
    def status(self) -> JobStatus:
        return self._server.status(self.job_id)

    @property
    def verdict(self) -> JobVerdict | None:
        return self._server.verdict(self.job_id)

    async def wait(self) -> JobVerdict:
        """Suspend until the job reaches a terminal state."""
        job = self._server._job(self.job_id)
        await job.done.wait()
        assert job.verdict is not None
        return job.verdict

    def cancel(self) -> bool:
        """Request cancellation; False if the job already finished."""
        return self._server.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobHandle(id={self.job_id}, status={self.status.value})"


class ProgramServer:
    """Async multi-tenant host for CHAOS programs.

    Use inside one event loop, ideally as an async context manager::

        async with ProgramServer(ServerConfig(max_concurrency=8)) as srv:
            handle = await srv.submit(spec)
            verdict = await handle.wait()

    The ``async with`` exit calls :meth:`close` — drain plus thread-pool
    shutdown.  A server is single-shot: once draining starts, new
    submissions are rejected forever (build a new server to reopen).
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self._jobs: dict[int, _Job] = {}
        self._ids = itertools.count(1)
        self._pending = 0
        self._closing = False
        self._closed = False
        self._global_sem = asyncio.Semaphore(self.config.max_concurrency)
        self._tenant_sems: dict[str, asyncio.Semaphore] = {}
        self._room = asyncio.Event()
        self._stragglers: dict[int, asyncio.Future] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.pool_size,
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; returns a handle for status/wait/cancel.

        Raises :class:`ServerClosed` once draining started and
        :class:`AdmissionFull` when the queue is at its bound under the
        ``"reject"`` admission policy; under ``"wait"`` the call
        suspends until a pending job finishes (backpressure) or the
        server starts draining.
        """
        if not isinstance(spec, JobSpec):
            raise TypeError(f"submit() takes a JobSpec, got {spec!r}")
        self._check_open()
        limit = self.config.queue_limit
        if self._pending >= limit and self.config.admission == "reject":
            raise AdmissionFull(
                f"admission queue at capacity ({limit} pending jobs)"
            )
        while self._pending >= limit:
            self._room.clear()
            await self._room.wait()
            self._check_open()
        job = _Job(id=next(self._ids), spec=spec,
                   submitted_at=time.monotonic())
        self._jobs[job.id] = job
        self._pending += 1
        job.task = asyncio.create_task(
            self._run_job(job), name=f"repro-serve-job-{job.id}"
        )
        job.task.add_done_callback(
            lambda t, job=job: self._task_done(job, t)
        )
        return JobHandle(self, job.id)

    def _task_done(self, job: _Job, task: asyncio.Task) -> None:
        """Backstop for tasks torn down before ``_run_job`` ever ran.

        A task cancelled before its first step never enters the
        coroutine, so ``_run_job``'s own finally cannot record the
        verdict; this callback closes that gap (and any other path
        that kills the task without running it).
        """
        if job.done.is_set():
            return
        job.control.stop()
        if task.cancelled():
            self._record(job, JobStatus.CANCELLED,
                         error="cancelled while queued")
        self._finish(job)  # records FAILED if still verdict-less

    def _check_open(self) -> None:
        if self._closing:
            raise ServerClosed(
                "server is draining; new admissions are rejected"
            )

    # ------------------------------------------------------------------
    # status queries
    # ------------------------------------------------------------------
    def _job(self, job_id: int) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id}")
        return job

    def status(self, job_id: int) -> JobStatus:
        return self._job(job_id).status

    def verdict(self, job_id: int) -> JobVerdict | None:
        """The job's verdict, or ``None`` while it is still pending."""
        return self._job(job_id).verdict

    def jobs(self, tenant: str | None = None) -> list[JobHandle]:
        """Handles of every admitted job, optionally one tenant's."""
        return [
            JobHandle(self, j.id) for j in self._jobs.values()
            if tenant is None or j.spec.tenant == tenant
        ]

    def stats(self) -> dict:
        """Server-level counters (admissions, per-status counts)."""
        by_status: dict[str, int] = {}
        for j in self._jobs.values():
            by_status[j.status.value] = by_status.get(j.status.value, 0) + 1
        return {
            "admitted": len(self._jobs),
            "pending": self._pending,
            "stragglers": len(self._stragglers),
            "draining": self._closing,
            "by_status": by_status,
        }

    @property
    def draining(self) -> bool:
        return self._closing

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: int) -> bool:
        """Request cancellation of one job.

        Queued jobs are cancelled before they start; running jobs get a
        cooperative stop (their worker thread winds down as a straggler
        if the spec ignores the control).  Returns ``False`` when the
        job already reached a terminal state.
        """
        job = self._job(job_id)
        if job.status in TERMINAL_STATES:
            return False
        job.control.stop()
        job.cancel_event.set()
        if job.status is JobStatus.QUEUED and job.task is not None:
            job.task.cancel()
        return True

    # ------------------------------------------------------------------
    # the per-job task
    # ------------------------------------------------------------------
    def _tenant_sem(self, tenant: str) -> asyncio.Semaphore:
        sem = self._tenant_sems.get(tenant)
        if sem is None:
            sem = self._tenant_sems[tenant] = asyncio.Semaphore(
                self.config.per_tenant
            )
        return sem

    async def _run_job(self, job: _Job) -> None:
        try:
            # tenant-first ordering: a flooding tenant's queued jobs wait
            # on their own semaphore without camping on global slots
            async with self._tenant_sem(job.spec.tenant):
                async with self._global_sem:
                    if job.cancel_event.is_set():
                        self._record(job, JobStatus.CANCELLED,
                                     error="cancelled while queued")
                        return
                    await self._soft_run(job)
        except asyncio.CancelledError:
            # task cancelled while queued (waiting on a semaphore)
            job.control.stop()
            self._record(job, JobStatus.CANCELLED,
                         error="cancelled while queued")
        finally:
            self._finish(job)

    async def _soft_run(self, job: _Job) -> None:
        """Run one job's thread under the soft-failure contract.

        Every exit of this coroutine leaves a recorded verdict and
        never propagates a tenant failure: exceptions become ``FAILED``
        verdicts, deadline overruns ``TIMEOUT``, cancellations
        ``CANCELLED``.  Threads that outlive their verdict (timeout /
        cancel) are parked in ``self._stragglers`` for ``drain()``.
        """
        loop = asyncio.get_running_loop()
        job.status = JobStatus.RUNNING
        job.started_at = time.monotonic()
        fut = loop.run_in_executor(self._pool, self._execute_in_thread, job)
        job.thread_future = fut
        cancel_waiter = asyncio.ensure_future(job.cancel_event.wait())
        timeout = (job.spec.timeout if job.spec.timeout is not None
                   else self.config.default_timeout)
        hard_cancel = False
        try:
            done, _ = await asyncio.wait(
                {fut, cancel_waiter}, timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
        except asyncio.CancelledError:
            # hard task cancellation raced the queued→running transition
            # (or the surrounding loop is tearing down): same treatment
            # as a cooperative cancel, thread parked as a straggler
            done, hard_cancel = set(), True
        finally:
            cancel_waiter.cancel()
        if fut in done:
            self._settle(job, fut)
            return
        job.control.stop()
        self._stragglers[job.id] = fut
        fut.add_done_callback(
            lambda f, job=job: self._straggler_done(job, f)
        )
        if hard_cancel or job.cancel_event.is_set():
            self._record(job, JobStatus.CANCELLED,
                         error="cancelled while running")
        else:
            self._record(job, JobStatus.TIMEOUT,
                         error=f"exceeded {timeout}s deadline")

    def _settle(self, job: _Job, fut: asyncio.Future) -> None:
        """Record the verdict for a thread that ran to completion."""
        try:
            status, result, error, tb, stats = fut.result()
        except BaseException as exc:  # defensive: thread surface broke
            self._record(job, JobStatus.FAILED, error=repr(exc),
                         tb=_traceback.format_exc())
            return
        self._record(job, status, result=result, error=error, tb=tb,
                     stats=stats)

    def _straggler_done(self, job: _Job, fut: asyncio.Future) -> None:
        """A timed-out/cancelled job's thread finally exited."""
        self._stragglers.pop(job.id, None)
        if fut.cancelled():
            return
        fut.exception()  # consume, isolation already recorded the verdict
        self._audit_job(job)

    def _finish(self, job: _Job) -> None:
        if job.verdict is None:  # belt and braces: every path records
            self._record(job, JobStatus.FAILED,
                         error="job task exited without a verdict")
        self._pending -= 1
        job.done.set()
        self._room.set()

    # ------------------------------------------------------------------
    # worker-thread side
    # ------------------------------------------------------------------
    def _execute_in_thread(self, job: _Job):
        """Build the per-job context, run the spec, close deterministically.

        Runs on the server's thread pool.  Never raises: the outcome
        tuple ``(status, result, error, traceback, stats)`` carries
        tenant failures back to the loop.  The context is closed in the
        ``finally`` even when the verdict was already recorded (timeout
        / cancel), so straggler threads still release their backend
        resources.
        """
        spec = job.spec
        try:
            ctx = build_job_context(spec)
        except Exception as exc:
            return (JobStatus.FAILED, None, repr(exc),
                    _traceback.format_exc(), {})
        job.ctx = ctx
        try:
            try:
                result = spec.run(ctx, job.control)
                status, error, tb = JobStatus.DONE, None, None
            except JobCancelled as exc:
                result, status = None, JobStatus.CANCELLED
                error, tb = repr(exc), None
            except Exception as exc:
                result, status = None, JobStatus.FAILED
                error, tb = repr(exc), _traceback.format_exc()
            stats = collect_stats(ctx)
            job.shm_segments = shm_segment_names(ctx)
            return (status, result, error, tb, stats)
        finally:
            ctx.close()

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def _record(self, job: _Job, status: JobStatus, *, result: Any = None,
                error: str | None = None, tb: str | None = None,
                stats: dict | None = None) -> None:
        """Record the job's terminal verdict exactly once."""
        if job.verdict is not None:
            return
        job.status = status
        ctx = job.ctx
        job.verdict = JobVerdict(
            job_id=job.id,
            name=job.spec.name,
            tenant=job.spec.tenant,
            status=status,
            backend=(ctx.backend.name if ctx is not None
                     else job.spec.backend),
            seed=job.spec.seed,
            result=result,
            error=error,
            traceback=tb,
            stats=stats or {},
            submitted_at=job.submitted_at,
            started_at=job.started_at,
            finished_at=time.monotonic(),
            resources_closed=(ctx is not None and ctx.closed),
            shm_segments=job.shm_segments,
        )

    def _audit_job(self, job: _Job) -> None:
        """Refresh a verdict's resource audit after its thread exited."""
        if job.verdict is None:
            return
        ctx = job.ctx
        job.verdict.resources_closed = ctx is None or ctx.closed
        if not job.verdict.shm_segments:
            job.verdict.shm_segments = job.shm_segments

    def leaked_contexts(self) -> list[int]:
        """Ids of jobs whose backend resources are still open."""
        return [
            j.id for j in self._jobs.values()
            if j.ctx is not None and not j.ctx.closed
        ]

    # ------------------------------------------------------------------
    # drain / shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Graceful wind-down: reject new admissions, finish the rest.

        Admitted jobs run to completion (or their deadline); straggler
        threads from timed-out/cancelled jobs are awaited so their
        contexts close; finally every per-job context is verified (and,
        defensively, forced) closed and each verdict's resource audit
        is refreshed.  Idempotent.
        """
        self._closing = True
        self._room.set()  # wake backpressured submitters → ServerClosed
        tasks = [j.task for j in self._jobs.values() if j.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for fut in list(self._stragglers.values()):
            try:
                await fut
            except BaseException:
                pass  # verdicts were recorded when the jobs were abandoned
        self._stragglers.clear()
        for job in self._jobs.values():
            if job.ctx is not None and not job.ctx.closed:
                job.ctx.close()
            self._audit_job(job)

    async def close(self) -> None:
        """Drain, then shut the server's worker thread pool down."""
        await self.drain()
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "ProgramServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ProgramServer(admitted={len(self._jobs)}, "
                f"pending={self._pending}, draining={self._closing})")
