"""CHAOS reborn: run-time and compile-time support for adaptive irregular
problems (SC'94 reproduction).

Subpackages
-----------
``repro.sim``
    Simulated distributed-memory machine (the iPSC/860 stand-in).
``repro.core``
    The CHAOS runtime: inspector/executor, stamped hash tables,
    communication schedules, translation tables, remapping.
``repro.partitioners``
    RCB, RIB, chain, Morton, block/cyclic, graph partitioners.
``repro.apps``
    The paper's evaluation applications: mini-CHARMM and DSMC.
``repro.lang``
    Mini Fortran D compiler (parser → analysis → CHAOS plans).
``repro.serve``
    Async multi-tenant program server (admission queue, per-tenant
    contexts, soft-failure isolation, graceful drain).
``repro.util``
    Counter-based PRNG and report formatting.
"""

__version__ = "1.0.0"
