"""Schedule reuse records (paper §5.3.1).

The compiler-generated code "maintains a record of when statements or
array intrinsics of loops may have modified indirection arrays.  Before
executing an irregular loop, the inspector checks this record to see
whether any indirection array used in the loop has been modified since the
last time the inspector was invoked."

:class:`ModificationRecord` is that record — a version counter per named
array.  :class:`ScheduleCache` keys built schedules (or any preprocessing
artifact) by loop id and remembers the dependency versions they were built
against; ``get_or_build`` rebuilds only when a dependency moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: suffix appended to a loop id to key its fused-plan cache entry —
#: fusion effectiveness stays observable per loop without changing the
#: shape of :meth:`ScheduleCache.stats`
FUSED_SUFFIX = "::fused"


class ModificationRecord:
    """Version counters for named (indirection) arrays."""

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}

    def touch(self, name: str) -> int:
        """Record that ``name`` may have been modified; bump its version."""
        v = self._versions.get(name, 0) + 1
        self._versions[name] = v
        return v

    def version(self, name: str) -> int:
        return self._versions.get(name, 0)

    def versions_of(self, names: tuple[str, ...]) -> dict[str, int]:
        return {n: self.version(n) for n in names}

    def names(self) -> list[str]:
        return sorted(self._versions)


@dataclass
class _CacheEntry:
    value: Any
    dep_versions: dict[str, int]
    hits: int = 0
    builds: int = 0


class ScheduleCache:
    """Caches preprocessing results keyed by loop id + dependency versions."""

    def __init__(self, record: ModificationRecord | None = None):
        self.record = record if record is not None else ModificationRecord()
        self._entries: dict[str, _CacheEntry] = {}

    def get_or_build(
        self,
        loop_id: str,
        deps: tuple[str, ...],
        builder: Callable[[], Any],
    ) -> tuple[Any, bool]:
        """Return ``(value, rebuilt)``.

        ``builder`` runs only when ``loop_id`` has no cached value or one of
        its dependency arrays has been touched since the value was built.
        """
        current = self.record.versions_of(deps)
        entry = self._entries.get(loop_id)
        if entry is not None and entry.dep_versions == current:
            entry.hits += 1
            return entry.value, False
        value = builder()
        builds = entry.builds + 1 if entry else 1
        hits = entry.hits if entry else 0
        self._entries[loop_id] = _CacheEntry(
            value=value, dep_versions=current, hits=hits, builds=builds
        )
        return value, True

    def peek(self, loop_id: str) -> Any | None:
        """The cached value without counting a hit; ``None`` if absent."""
        e = self._entries.get(loop_id)
        return e.value if e else None

    def invalidate(self, loop_id: str) -> bool:
        """Drop one loop's cached value; True if it existed."""
        return self._entries.pop(loop_id, None) is not None

    def invalidate_all(self) -> None:
        self._entries.clear()

    def stats(self, loop_id: str) -> tuple[int, int]:
        """(hits, builds) for one loop id."""
        e = self._entries.get(loop_id)
        return (e.hits, e.builds) if e else (0, 0)

    def fused_stats(self, loop_id: str) -> tuple[int, int]:
        """(hits, builds) of the loop's *fused-plan* cache entry.

        Fused pipelines keyed by ``loop_id`` cache their
        :class:`~repro.core.compiled.FusedPlan` under
        ``loop_id + FUSED_SUFFIX``; a hit means the whole stage chain was
        reused as-is, a build means some stage's schedule changed."""
        return self.stats(loop_id + FUSED_SUFFIX)

    def __contains__(self, loop_id: str) -> bool:
        return loop_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)
