"""Schedule reuse records (paper §5.3.1).

The compiler-generated code "maintains a record of when statements or
array intrinsics of loops may have modified indirection arrays.  Before
executing an irregular loop, the inspector checks this record to see
whether any indirection array used in the loop has been modified since the
last time the inspector was invoked."

:class:`ModificationRecord` is that record — a version counter per named
array.  :class:`ScheduleCache` keys built schedules (or any preprocessing
artifact) by loop id and remembers the dependency versions they were built
against; ``get_or_build`` rebuilds only when a dependency moved.

Adaptive applications rarely rewrite a whole indirection array: the paper's
premise is that most entries survive between inspector invocations.  The
cache therefore supports *incremental* rebuilds: a ``touch`` may carry a
*delta payload* describing exactly which positions changed, an entry may
record the stamp mask each dependency was hashed under, and
``get_or_build`` hands a contiguous chain of such payloads to a
``delta_builder`` instead of running the full ``builder``.  Delta rebuilds
are counted separately (:class:`CacheStats`) so reuse effectiveness stays
observable — and gateable in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

#: suffix appended to a loop id to key its fused-plan cache entry —
#: fusion effectiveness stays observable per loop without changing the
#: shape of :meth:`ScheduleCache.stats`
FUSED_SUFFIX = "::fused"


@dataclass(frozen=True, eq=False)
class CacheStats:
    """Structured cache counters.

    Compares equal to, and unpacks as, the historical ``(hits, builds)``
    tuple so every caller written against the two-counter shape keeps
    working; the richer counters ride along:

    ``hits``            entries served without any rebuild,
    ``builds``          full builder runs,
    ``delta_rebuilds``  incremental rebuilds from touch deltas,
    ``evictions``       values dropped by ``invalidate``/``invalidate_all``,
    ``resident_bytes``  bytes of live cached values.
    """

    hits: int = 0
    builds: int = 0
    delta_rebuilds: int = 0
    evictions: int = 0
    resident_bytes: int = 0

    def __iter__(self):
        # tuple-unpacking compatibility: ``hits, builds = cache.stats(k)``
        yield self.hits
        yield self.builds

    def __eq__(self, other):
        if isinstance(other, CacheStats):
            return (
                self.hits == other.hits
                and self.builds == other.builds
                and self.delta_rebuilds == other.delta_rebuilds
                and self.evictions == other.evictions
                and self.resident_bytes == other.resident_bytes
            )
        if isinstance(other, tuple):
            return (self.hits, self.builds) == other
        return NotImplemented

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            builds=self.builds + other.builds,
            delta_rebuilds=self.delta_rebuilds + other.delta_rebuilds,
            evictions=self.evictions + other.evictions,
            resident_bytes=self.resident_bytes + other.resident_bytes,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "builds": self.builds,
            "delta_rebuilds": self.delta_rebuilds,
            "evictions": self.evictions,
            "resident_bytes": self.resident_bytes,
        }


class DeltaFallback(Exception):
    """Raised by a ``delta_builder`` to decline the incremental path.

    ``get_or_build`` catches it and runs the full ``builder`` instead
    (counted as a build, not a delta rebuild).  Use it when the cached
    value's substrate turned out to be unusable — e.g. the hash tables
    were purged since the schedule was cached, so a splice would target
    recycled ghost slots.
    """


def value_nbytes(value: Any) -> int:
    """Approximate resident bytes of a cached value.

    Counts ndarray buffers, recursing through lists/tuples/dicts and
    through objects exposing CSR schedule buffers (``send_indices`` et
    al.); scalars and opaque objects count as zero — the figure feeds an
    observability counter, not an allocator.
    """
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(value_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(value_nbytes(v) for v in value.values())
    total = 0
    for attr in ("send_indices", "send_offsets", "recv_slots",
                 "recv_offsets"):
        arrs = getattr(value, attr, None)
        if arrs is not None:
            total += value_nbytes(arrs)
    return total


class ModificationRecord:
    """Version counters for named (indirection) arrays.

    A ``touch`` may attach a *delta payload* — an opaque description of
    exactly what changed (the adaptive caching layer passes per-rank
    ``(positions, old_values, new_values)`` triples).  Payloads are kept
    per version so a cache entry lagging several versions behind can
    replay the contiguous chain; a payload-less touch (meaning "anything
    may have changed") breaks the chain and forces full rebuilds.
    """

    #: per-name payload history bound — older deltas age out, breaking
    #: chains for entries that lag far behind (they full-rebuild anyway)
    MAX_DELTA_HISTORY = 16

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        self._deltas: dict[str, dict[int, Any]] = {}

    def touch(self, name: str, delta: Any = None) -> int:
        """Record that ``name`` may have been modified; bump its version.

        ``delta`` (optional) describes the modification precisely enough
        for an incremental rebuild; ``None`` invalidates any recorded
        chain for ``name``.
        """
        v = self._versions.get(name, 0) + 1
        self._versions[name] = v
        if delta is None:
            self._deltas.pop(name, None)
        else:
            hist = self._deltas.setdefault(name, {})
            hist[v] = delta
            while len(hist) > self.MAX_DELTA_HISTORY:
                del hist[min(hist)]
        return v

    def version(self, name: str) -> int:
        return self._versions.get(name, 0)

    def versions_of(self, names: tuple[str, ...]) -> dict[str, int]:
        return {n: self.version(n) for n in names}

    def delta_chain(self, name: str, since: int,
                    until: int | None = None) -> list[Any] | None:
        """Payloads covering versions ``since+1 .. until``, oldest first.

        ``None`` when any version in the range lacks a payload (a
        payload-less touch happened, or history aged out) — the caller
        must fall back to a full rebuild.
        """
        if until is None:
            until = self.version(name)
        if until <= since:
            return []
        hist = self._deltas.get(name)
        if hist is None:
            return None
        chain = []
        for v in range(since + 1, until + 1):
            if v not in hist:
                return None
            chain.append(hist[v])
        return chain

    def names(self) -> list[str]:
        return sorted(self._versions)


@dataclass
class _CacheEntry:
    value: Any
    dep_versions: dict[str, int]
    dep_masks: dict[str, int] = field(default_factory=dict)
    hits: int = 0
    builds: int = 0
    delta_rebuilds: int = 0
    evictions: int = 0
    value_bytes: int = 0
    live: bool = True


class ScheduleCache:
    """Caches preprocessing results keyed by loop id + dependency versions."""

    def __init__(self, record: ModificationRecord | None = None):
        self.record = record if record is not None else ModificationRecord()
        self._entries: dict[str, _CacheEntry] = {}

    def get_or_build(
        self,
        loop_id: str,
        deps: tuple[str, ...],
        builder: Callable[[], Any],
        delta_builder: Callable[[Any, dict[str, tuple[int, list]]], Any]
        | None = None,
        dep_masks: dict[str, int] | None = None,
    ) -> tuple[Any, bool]:
        """Return ``(value, rebuilt)``.

        ``builder`` runs only when ``loop_id`` has no cached value or one
        of its dependency arrays has been touched since the value was
        built.  When a ``delta_builder`` is given and *every* moved
        dependency (a) was registered with a stamp mask via ``dep_masks``
        on the build that produced the entry and (b) has a contiguous
        chain of touch payloads in the modification record, the stale
        value is repaired incrementally instead:
        ``delta_builder(old_value, {dep: (mask, [payload, ...])})`` must
        return the equivalent of a full rebuild.  ``rebuilt`` is ``True``
        for both full and delta rebuilds.
        """
        current = self.record.versions_of(deps)
        entry = self._entries.get(loop_id)
        if entry is not None and entry.live \
                and entry.dep_versions == current:
            entry.hits += 1
            return entry.value, False
        if entry is not None and entry.live and delta_builder is not None:
            deltas = self._movable_deltas(entry, current)
            if deltas is not None:
                try:
                    value = delta_builder(entry.value, deltas)
                except DeltaFallback:
                    pass  # builder declined; run the full build below
                else:
                    entry.value = value
                    entry.dep_versions = current
                    entry.delta_rebuilds += 1
                    entry.value_bytes = value_nbytes(value)
                    return value, True
        value = builder()
        self._entries[loop_id] = _CacheEntry(
            value=value,
            dep_versions=current,
            dep_masks=dict(dep_masks) if dep_masks else {},
            hits=entry.hits if entry else 0,
            builds=entry.builds + 1 if entry else 1,
            delta_rebuilds=entry.delta_rebuilds if entry else 0,
            evictions=entry.evictions if entry else 0,
            value_bytes=value_nbytes(value),
        )
        return value, True

    def _movable_deltas(
        self, entry: _CacheEntry, current: dict[str, int]
    ) -> dict[str, tuple[int, list]] | None:
        """Per-dep ``(stamp mask, payload chain)`` for every moved dep,
        or ``None`` when any moved dep is chain-less or mask-less."""
        moved: dict[str, tuple[int, list]] = {}
        for name, version in current.items():
            built_at = entry.dep_versions.get(name)
            if built_at is None:
                return None  # dependency set itself changed
            if version == built_at:
                continue
            if version < built_at:
                return None  # record was replaced/rewound
            mask = entry.dep_masks.get(name)
            if mask is None:
                return None
            chain = self.record.delta_chain(name, built_at, version)
            if chain is None:
                return None
            moved[name] = (mask, chain)
        if set(entry.dep_versions) != set(current):
            return None
        return moved if moved else None

    def peek(self, loop_id: str) -> Any | None:
        """The cached value without counting a hit; ``None`` if absent."""
        e = self._entries.get(loop_id)
        return e.value if e is not None and e.live else None

    def invalidate(self, loop_id: str) -> bool:
        """Drop one loop's cached value; True if a live value existed.

        Cumulative hit/build/delta counters survive the eviction (the CI
        reuse-rate gate cannot be dodged by invalidating an entry).
        """
        e = self._entries.get(loop_id)
        if e is None or not e.live:
            return False
        e.live = False
        e.value = None
        e.value_bytes = 0
        e.evictions += 1
        return True

    def invalidate_all(self) -> None:
        for loop_id in list(self._entries):
            self.invalidate(loop_id)

    def stats(self, loop_id: str) -> CacheStats:
        """Counters for one loop id (tuple-compatible, see
        :class:`CacheStats`)."""
        e = self._entries.get(loop_id)
        if e is None:
            return CacheStats()
        return CacheStats(
            hits=e.hits,
            builds=e.builds,
            delta_rebuilds=e.delta_rebuilds,
            evictions=e.evictions,
            resident_bytes=e.value_bytes if e.live else 0,
        )

    def fused_stats(self, loop_id: str) -> CacheStats:
        """Counters of the loop's *fused-plan* cache entry.

        Fused pipelines keyed by ``loop_id`` cache their
        :class:`~repro.core.compiled.FusedPlan` under
        ``loop_id + FUSED_SUFFIX``; a hit means the whole stage chain was
        reused as-is, a build means some stage's schedule changed."""
        return self.stats(loop_id + FUSED_SUFFIX)

    def total_stats(self, prefix: str | None = None) -> CacheStats:
        """Aggregate counters over all entries (or ids starting with
        ``prefix``)."""
        total = CacheStats()
        for loop_id in self._entries:
            if prefix is None or loop_id.startswith(prefix):
                total = total + self.stats(loop_id)
        return total

    def __contains__(self, loop_id: str) -> bool:
        e = self._entries.get(loop_id)
        return e is not None and e.live

    def __len__(self) -> int:
        return sum(1 for e in self._entries.values() if e.live)
