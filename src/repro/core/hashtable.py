"""The stamped index-analysis hash table (paper §3.2.2).

For each global index hashed in, the table stores: the global index, its
translated address (owner processor + offset), the local ghost-buffer slot
assigned if the element is off-processor, and a *stamp* bitmask recording
which indirection arrays entered it.  Keeping the table across adaptive
steps is the paper's central inspector optimization: when an indirection
array changes, most entries are already present and index analysis becomes
a cheap lookup instead of a translation-table round trip.

Schedules are built from *stamp expressions* — logical combinations of
stamps (Figure 6):

* ``stamp_a | stamp_b``  → merged schedule (gathers the union),
* ``stamp_b - stamp_a``  → incremental schedule (only what earlier
  schedules did not fetch).

The *key store* — the global-index → slot map at the heart of index
analysis — is pluggable: :class:`DictKeyStore` is the reference
(one Python dict operation per key, used by the serial backend) and
:class:`OpenAddressedKeyStore` is a batched open-addressed int64 table
(used by the vectorized backend).  Both assign identical slots, so the
choice is invisible to everything above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_GROW = 1024


class StampRegistry:
    """Assigns stamp bits to names; shared by the ranks of one table group.

    At most 63 live stamps (bits of an int64 mask).  Clearing a stamp
    frees its bit for reuse — the paper reuses the non-bonded list's stamp
    after clearing it on each list regeneration.  Free bits are kept in a
    single int bitmask; acquire always hands out the lowest free bit.
    """

    MAX_STAMPS = 63

    def __init__(self) -> None:
        self._bits: dict[str, int] = {}
        self._free_mask: int = (1 << self.MAX_STAMPS) - 1

    def acquire(self, name: str) -> int:
        """Get (or create) the bit for stamp ``name``; returns the mask."""
        if name in self._bits:
            return 1 << self._bits[name]
        if not self._free_mask:
            raise RuntimeError(
                f"out of stamp bits ({self.MAX_STAMPS} in use); "
                "release stamps you no longer need"
            )
        bit = (self._free_mask & -self._free_mask).bit_length() - 1
        self._free_mask &= ~(1 << bit)
        self._bits[name] = bit
        return 1 << bit

    def mask_of(self, name: str) -> int:
        if name not in self._bits:
            raise KeyError(f"unknown stamp {name!r}")
        return 1 << self._bits[name]

    def release(self, name: str) -> int:
        """Forget ``name`` and free its bit; returns the freed mask."""
        bit = self._bits.pop(name, None)
        if bit is None:
            raise KeyError(f"unknown stamp {name!r}")
        self._free_mask |= 1 << bit
        return 1 << bit

    def names(self) -> list[str]:
        return sorted(self._bits)

    def __contains__(self, name: str) -> bool:
        return name in self._bits


@dataclass(frozen=True)
class StampExpr:
    """A selection over hash-table entries: include-any minus exclude-any.

    An entry with stamp mask ``m`` matches iff ``(m & include) != 0`` and
    ``(m & exclude) == 0``.
    """

    include: int
    exclude: int = 0

    def __or__(self, other: "StampExpr") -> "StampExpr":
        """Union of selections → merged schedules."""
        return StampExpr(self.include | other.include,
                         self.exclude | other.exclude)

    def __sub__(self, other: "StampExpr") -> "StampExpr":
        """Difference → incremental schedules (mine, minus theirs)."""
        return StampExpr(self.include, self.exclude | other.include)

    def matches(self, masks: np.ndarray) -> np.ndarray:
        """Boolean match vector over an array of entry masks."""
        m = np.asarray(masks, dtype=np.int64)
        sel = (m & self.include) != 0
        if self.exclude:
            sel &= (m & self.exclude) == 0
        return sel


class DictKeyStore:
    """Reference key store: one Python dict operation per key.

    This is the historical (interpreter-bound) index-analysis path; the
    serial backend keeps it as the semantics oracle.
    """

    kind = "dict"

    def __init__(self) -> None:
        self._slot_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, key: int) -> bool:
        return int(key) in self._slot_of

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Slot of each key, -1 where absent."""
        get = self._slot_of.get
        return np.fromiter(
            (get(int(k), -1) for k in keys), dtype=np.int64, count=keys.size
        )

    def missing(self, sorted_uniques: np.ndarray) -> np.ndarray:
        """Subset of (already unique, sorted) keys not in the store."""
        has = self._slot_of
        return np.array(
            [k for k in sorted_uniques.tolist() if k not in has],
            dtype=np.int64,
        )

    def insert(self, keys: np.ndarray, slots: np.ndarray) -> None:
        """Map each key to its slot; duplicates are an error."""
        slot_of = self._slot_of
        for k, s in zip(keys.tolist(), slots.tolist()):
            if k in slot_of:
                raise ValueError(f"duplicate insert of global index {k}")
            slot_of[k] = s

    def delete(self, keys: np.ndarray) -> int:
        """Forget the given keys; returns how many were present."""
        slot_of = self._slot_of
        removed = 0
        for k in np.unique(np.asarray(keys, dtype=np.int64)).tolist():
            if slot_of.pop(k, None) is not None:
                removed += 1
        return removed

    def compact(self) -> None:
        """No-op: a dict never holds tombstones."""

    @property
    def capacity(self) -> int:
        return len(self._slot_of)

    @property
    def tombstones(self) -> int:
        return 0

    def nbytes(self) -> int:
        """Approximate table bytes (key + value words per entry)."""
        return 16 * len(self._slot_of)


class OpenAddressedKeyStore:
    """Batched open-addressed int64 hash table (linear probing).

    All operations are vectorized: a lookup of ``m`` keys runs a handful
    of numpy passes (expected O(1) probe rounds at load factor <= 1/2)
    instead of ``m`` dict operations.  Keys must be non-negative (-1 is
    the empty-slot sentinel, -2 the tombstone left by :meth:`delete`);
    global array indices always are.  Slot assignment is identical to
    :class:`DictKeyStore` — callers choose the slots, the store only maps
    keys to them.

    Deletion writes tombstones so probe chains through the deleted key
    stay intact; tombstones count toward the load factor (probing must
    still terminate) and are swept out by :meth:`compact`, which runs
    automatically once they outnumber the live entries — the table
    *shrinks* back toward its live size instead of leaking slots across
    adaptive steps.
    """

    kind = "open-addressed"
    MIN_CAP = 64  # power of two
    _TOMB = -2  # deleted-slot sentinel (probe skips, insert never reuses)

    def __init__(self) -> None:
        self._cap = self.MIN_CAP
        self._keys = np.full(self._cap, -1, dtype=np.int64)
        self._vals = np.zeros(self._cap, dtype=np.int64)
        self._n = 0
        self._tombs = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: int) -> bool:
        k = np.asarray([key], dtype=np.int64)
        return bool(k[0] >= 0 and self.lookup(k)[0] >= 0)

    @staticmethod
    def _hash(keys: np.ndarray) -> np.ndarray:
        # splitmix64 finalizer: avalanches low/high bits so sequential
        # global indices spread uniformly; uint64 arithmetic wraps.
        h = keys.astype(np.uint64)
        h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return h ^ (h >> np.uint64(31))

    def _probe(self, keys: np.ndarray) -> np.ndarray:
        """Position of each key's slot, or of the first empty slot hit.

        Tombstones are passed over (the sought key may live beyond
        them).  Live entries plus tombstones never exceed half the
        capacity, so probing terminates.
        """
        capmask = self._cap - 1
        pos = (self._hash(keys) & np.uint64(capmask)).astype(np.int64)
        pending = np.arange(keys.size, dtype=np.int64)
        while pending.size:
            tk = self._keys[pos[pending]]
            done = (tk == keys[pending]) | (tk == -1)
            pending = pending[~done]
            pos[pending] = (pos[pending] + 1) & capmask
        return pos

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Slot of each key, -1 where absent."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0 or self._n == 0:
            return np.full(keys.size, -1, dtype=np.int64)
        if keys.min() < 0:
            # negative keys can never be stored (-1 is the empty-slot
            # sentinel, which a probe for -1 would match); report them
            # absent and probe only the rest
            neg = keys < 0
            out = np.full(keys.size, -1, dtype=np.int64)
            out[~neg] = self.lookup(keys[~neg])
            return out
        pos = self._probe(keys)
        return np.where(self._keys[pos] == keys, self._vals[pos],
                        np.int64(-1))

    def missing(self, sorted_uniques: np.ndarray) -> np.ndarray:
        """Subset of (already unique, sorted) keys not in the store."""
        uniq = np.asarray(sorted_uniques, dtype=np.int64)
        return uniq[self.lookup(uniq) < 0]

    def insert(self, keys: np.ndarray, slots: np.ndarray) -> None:
        """Map each key to its slot; duplicates are an error."""
        keys = np.asarray(keys, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if keys.size == 0:
            return
        if keys.min() < 0:
            raise ValueError(
                "open-addressed key store requires non-negative keys"
            )
        # intra-batch uniqueness: adjacent check (the inspector always
        # passes sorted uniques, so the sort below rarely runs)
        if keys.size > 1:
            srt = keys if np.all(keys[:-1] < keys[1:]) else np.sort(keys)
            dup = srt[:-1][srt[:-1] == srt[1:]]
            if dup.size:
                raise ValueError(
                    f"duplicate insert of global index {int(dup[0])}"
                )
        # tombstones occupy probe positions, so they count toward the
        # load factor; rehashing (grow) sweeps them out
        need = self._n + self._tombs + keys.size
        if need * 2 > self._cap:
            self._grow(self._n + keys.size)
        self._scatter_insert(keys, slots)
        self._n += keys.size

    def delete(self, keys: np.ndarray) -> int:
        """Tombstone the given keys; returns how many were present.

        Compacts automatically when tombstones outnumber live entries.
        """
        keys = np.unique(np.asarray(keys, dtype=np.int64))
        keys = keys[keys >= 0]
        if keys.size == 0 or self._n == 0:
            return 0
        pos = self._probe(keys)
        hit = pos[self._keys[pos] == keys]
        if hit.size == 0:
            return 0
        self._keys[hit] = self._TOMB
        removed = int(hit.size)
        self._n -= removed
        self._tombs += removed
        if self._tombs > max(self._n, self.MIN_CAP // 2):
            self.compact()
        return removed

    def compact(self) -> None:
        """Rehash live entries into the smallest adequate table.

        Drops every tombstone and shrinks capacity back toward the live
        size (never below ``MIN_CAP``) — the release half of the
        adaptive clear/rehash cycle.
        """
        cap = self.MIN_CAP
        while self._n * 2 > cap:
            cap *= 2
        old_keys, old_vals = self._keys, self._vals
        live = old_keys >= 0
        self._cap = cap
        self._keys = np.full(cap, -1, dtype=np.int64)
        self._vals = np.zeros(cap, dtype=np.int64)
        self._tombs = 0
        if live.any():
            self._scatter_insert(old_keys[live], old_vals[live])

    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def tombstones(self) -> int:
        return self._tombs

    def nbytes(self) -> int:
        """Table bytes (key + value int64 words per capacity slot)."""
        return self._cap * 16

    def _grow(self, need: int) -> None:
        cap = self._cap
        while need * 2 > cap:
            cap *= 2
        old_keys, old_vals = self._keys, self._vals
        live = old_keys >= 0  # skips both empties (-1) and tombstones (-2)
        self._cap = cap
        self._keys = np.full(cap, -1, dtype=np.int64)
        self._vals = np.zeros(cap, dtype=np.int64)
        self._tombs = 0
        if live.any():
            self._scatter_insert(old_keys[live], old_vals[live])

    def _scatter_insert(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Place unique keys; resolves intra-batch collisions by
        write-then-verify rounds (losers of a contended slot re-probe).
        Meeting an equal stored key while probing means the key is
        already present — the duplicate-insert error, detected for free.
        """
        capmask = self._cap - 1
        pos = (self._hash(keys) & np.uint64(capmask)).astype(np.int64)
        pending = np.arange(keys.size, dtype=np.int64)
        while pending.size:
            tk = self._keys[pos[pending]]
            clash = tk == keys[pending]
            if clash.any():
                raise ValueError(
                    "duplicate insert of global index "
                    f"{int(keys[pending[clash][0]])}"
                )
            occupied = tk != -1
            blocked = pending[occupied]
            pos[blocked] = (pos[blocked] + 1) & capmask
            cand = pending[~occupied]
            if cand.size:
                self._keys[pos[cand]] = keys[cand]  # last write wins
                won = self._keys[pos[cand]] == keys[cand]
                winners = cand[won]
                self._vals[pos[winners]] = vals[winners]
                losers = cand[~won]
                pos[losers] = (pos[losers] + 1) & capmask
                pending = np.concatenate([blocked, losers])
            else:
                pending = blocked


class IndexHashTable:
    """One rank's index-analysis table.

    Entry attributes (global index, owner, offset, ghost slot, stamp
    mask) live in parallel numpy arrays; the global-index → slot map is a
    pluggable *key store* (see module docstring).  The store only affects
    wall-clock speed — slot assignment and every observable result are
    identical across stores.

    Parameters
    ----------
    rank:
        The owning rank (entries whose translated owner equals ``rank``
        are *on-processor* and get no ghost-buffer slot).
    n_local:
        Local size of the data array this table indexes; localized
        off-processor references are numbered ``n_local + buffer_slot``.
    store:
        Key store instance; defaults to the :class:`DictKeyStore`
        reference.  Backends choose via ``Backend.make_key_store()``.
    """

    def __init__(self, rank: int, n_local: int,
                 registry: StampRegistry | None = None, store=None):
        if rank < 0:
            raise ValueError(f"negative rank {rank}")
        if n_local < 0:
            raise ValueError(f"negative local size {n_local}")
        self.rank = int(rank)
        self.n_local = int(n_local)
        self.registry = registry if registry is not None else StampRegistry()
        self.store = store if store is not None else DictKeyStore()
        self.n_entries = 0
        self._cap = _GROW
        self.g = np.zeros(self._cap, dtype=np.int64)       # global index
        self.proc = np.zeros(self._cap, dtype=np.int64)    # translated owner
        self.off = np.zeros(self._cap, dtype=np.int64)     # translated offset
        self.buf = np.full(self._cap, -1, dtype=np.int64)  # ghost slot or -1
        self.mask = np.zeros(self._cap, dtype=np.int64)    # stamp bits
        self.n_ghost = 0                                    # slots assigned
        # per-stamp per-slot reference counts (how many *positions* of the
        # indirection array reference the slot) — maintained only for
        # stamps hashed with counts; the basis of exact delta restamping
        self._stamp_refs: dict[str, np.ndarray] = {}
        # rows/ghost-slots freed by a purging clear_stamp, recycled
        # (ascending) before fresh ones are appended
        self._free_slots = np.zeros(0, dtype=np.int64)
        self._free_bufs = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    def _grow_to(self, n: int) -> None:
        if n <= self._cap:
            return
        new_cap = max(n, self._cap * 2)
        for name in ("g", "proc", "off", "buf", "mask"):
            old = getattr(self, name)
            fill = -1 if name == "buf" else 0
            arr = np.full(new_cap, fill, dtype=np.int64)
            arr[: self._cap] = old[: self._cap]
            setattr(self, name, arr)
        for name, old in self._stamp_refs.items():
            arr = np.zeros(new_cap, dtype=np.int64)
            arr[: self._cap] = old[: self._cap]
            self._stamp_refs[name] = arr
        self._cap = new_cap

    # ------------------------------------------------------------------
    def lookup_slots(self, gidx: np.ndarray) -> np.ndarray:
        """Slot of each global index, or -1 if absent."""
        return self.store.lookup(np.asarray(gidx, dtype=np.int64))

    def missing_uniques(self, gidx: np.ndarray) -> np.ndarray:
        """Unique global indices from ``gidx`` not yet in the table."""
        uniq = np.unique(np.asarray(gidx, dtype=np.int64))
        return self.store.missing(uniq)

    def insert_translated(
        self, gidx: np.ndarray, owners: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Insert new (already-translated) entries; returns their slots.

        Off-processor entries receive ghost-buffer slots in insertion
        order.  Duplicate keys in ``gidx`` are an error (pass uniques).
        """
        gidx = np.asarray(gidx, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if not (gidx.size == owners.size == offsets.size):
            raise ValueError("gidx/owners/offsets length mismatch")
        n_new = gidx.size
        if n_new == 0:
            return np.zeros(0, dtype=np.int64)
        # recycle purged rows (ascending) before appending fresh ones
        take = min(self._free_slots.size, n_new)
        n_append = n_new - take
        self._grow_to(self.n_entries + n_append)
        if take:
            reused = self._free_slots[:take]
            self._free_slots = self._free_slots[take:]
            slots = np.concatenate([reused, np.arange(
                self.n_entries, self.n_entries + n_append, dtype=np.int64)])
        else:
            slots = np.arange(self.n_entries, self.n_entries + n_new,
                              dtype=np.int64)
        self.g[slots] = gidx
        self.proc[slots] = owners
        self.off[slots] = offsets
        self.mask[slots] = 0
        for refs in self._stamp_refs.values():
            refs[slots] = 0
        offproc = owners != self.rank
        n_off = int(np.count_nonzero(offproc))
        takeb = min(self._free_bufs.size, n_off)
        fresh = np.arange(self.n_ghost, self.n_ghost + n_off - takeb,
                          dtype=np.int64)
        if takeb:
            bufs = np.concatenate([self._free_bufs[:takeb], fresh])
            self._free_bufs = self._free_bufs[takeb:]
        else:
            bufs = fresh
        self.buf[slots[offproc]] = bufs
        self.n_ghost += n_off - takeb
        self.store.insert(gidx, slots)
        self.n_entries += n_append
        return slots

    def stamp_slots(self, slots: np.ndarray, stamp_name: str,
                    counts: np.ndarray | None = None) -> None:
        """Mark entries at ``slots`` with the stamp's bit.

        ``counts`` (aligned with ``slots``) records how many positions of
        the indirection array reference each slot; passing it maintains
        per-slot reference counts, the book-keeping that makes exact
        *delta* restamping (:meth:`stamp_delta`) possible.  Stamping
        without counts drops any refcounts held for the stamp — the stamp
        falls back to full clear/rehash semantics.
        """
        bit = self.registry.acquire(stamp_name)
        slots = np.asarray(slots, dtype=np.int64)
        self.mask[slots] |= bit
        if counts is None:
            self._stamp_refs.pop(stamp_name, None)
        else:
            refs = self._stamp_refs.get(stamp_name)
            if refs is None:
                refs = np.zeros(self._cap, dtype=np.int64)
                self._stamp_refs[stamp_name] = refs
            refs[slots] += np.asarray(counts, dtype=np.int64)

    def has_stamp_counts(self, stamp_name: str) -> bool:
        """Whether per-slot refcounts are maintained for the stamp."""
        return stamp_name in self._stamp_refs

    def stamp_delta(
        self,
        stamp_name: str,
        add_slots: np.ndarray,
        add_counts: np.ndarray,
        sub_slots: np.ndarray,
        sub_counts: np.ndarray,
    ) -> np.ndarray:
        """Reconcile a stamp's refcounts after an aligned subset update.

        Adds references for the new values at touched positions and drops
        references for the old ones; the stamp bit is set wherever the
        count became positive and cleared wherever it reached zero — the
        resulting mask is exactly what a full clear + rehash of the
        updated indirection array would produce.  Returns the slots whose
        count dropped to zero (entries leaving the stamp's selection).
        """
        bit = self.registry.mask_of(stamp_name)
        refs = self._stamp_refs.get(stamp_name)
        if refs is None:
            raise ValueError(
                f"stamp {stamp_name!r} has no reference counts (hashed "
                "without counts); delta restamping needs a counted hash"
            )
        add_slots = np.asarray(add_slots, dtype=np.int64)
        sub_slots = np.asarray(sub_slots, dtype=np.int64)
        if add_slots.size:
            refs[add_slots] += np.asarray(add_counts, dtype=np.int64)
            self.mask[add_slots] |= bit
        dropped = np.zeros(0, dtype=np.int64)
        if sub_slots.size:
            refs[sub_slots] -= np.asarray(sub_counts, dtype=np.int64)
            after = refs[sub_slots]
            if np.any(after < 0):
                bad = sub_slots[after < 0][0]
                raise ValueError(
                    f"stamp {stamp_name!r} refcount underflow at slot "
                    f"{int(bad)} — old values do not match the recorded "
                    "references"
                )
            dropped = sub_slots[after == 0]
            self.mask[dropped] &= ~bit
        return dropped

    def clear_stamp(self, stamp_name: str, release: bool = False,
                    purge: bool | None = None) -> int:
        """Remove a stamp's bit from every entry.

        With ``release=True`` the bit itself is freed for reuse (the paper
        reuses the cleared stamp when re-hashing a regenerated non-bonded
        list).  ``purge`` (default: follows ``release``) additionally
        *deletes* entries left with an empty stamp mask — their key-store
        keys are tombstoned (the store compacts itself) and their rows and
        ghost-buffer slots are recycled by later inserts, so releasing a
        stamp shrinks the table instead of leaking slots.  Returns the
        number of entries that carried the stamp.
        """
        if purge is None:
            purge = release
        bit = self.registry.mask_of(stamp_name)
        live = self.mask[: self.n_entries]
        carried = (live & bit) != 0
        n = int(np.count_nonzero(carried))
        live &= ~bit
        self._stamp_refs.pop(stamp_name, None)
        if purge:
            dead = np.flatnonzero(carried & (live == 0)).astype(np.int64)
            self._purge_slots(dead)
        if release:
            self.registry.release(stamp_name)
        return n

    def _purge_slots(self, slots: np.ndarray) -> int:
        """Delete fully-unstamped rows; recycle their slots and bufs."""
        if slots.size == 0:
            return 0
        self.store.delete(self.g[slots])
        bufs = self.buf[slots]
        bufs = bufs[bufs >= 0]
        self.g[slots] = -1
        self.proc[slots] = -1
        self.off[slots] = -1
        self.buf[slots] = -1
        self.mask[slots] = 0
        for refs in self._stamp_refs.values():
            refs[slots] = 0
        self._free_slots = np.sort(
            np.concatenate([self._free_slots, slots]))
        self._free_bufs = np.sort(np.concatenate([self._free_bufs, bufs]))
        return int(slots.size)

    # ------------------------------------------------------------------
    def localize(self, gidx: np.ndarray) -> np.ndarray:
        """Translate global indices to local/localized indices.

        Owned elements map to their local offset; off-processor elements
        map to ``n_local + buffer_slot``.  All indices must already be in
        the table (hash first).
        """
        slots = self.lookup_slots(gidx)
        if np.any(slots < 0):
            missing = np.asarray(gidx, dtype=np.int64)[slots < 0][0]
            raise KeyError(f"global index {missing} not hashed yet")
        out = np.where(
            self.proc[slots] == self.rank,
            self.off[slots],
            self.n_local + self.buf[slots],
        )
        return out.astype(np.int64)

    def select(self, expr: StampExpr, off_processor_only: bool = True
               ) -> np.ndarray:
        """Slots matching a stamp expression (optionally off-proc only)."""
        sel = expr.matches(self.mask[: self.n_entries])
        if off_processor_only:
            sel &= self.proc[: self.n_entries] != self.rank
        return np.flatnonzero(sel).astype(np.int64)

    def expr(self, *names: str) -> StampExpr:
        """Union stamp expression over named stamps."""
        inc = 0
        for n in names:
            inc |= self.registry.mask_of(n)
        return StampExpr(inc)

    # ------------------------------------------------------------------
    def ghost_capacity(self) -> int:
        """Ghost-buffer slots assigned so far (size the ghost region)."""
        return self.n_ghost

    def nbytes(self) -> int:
        """Resident bytes: entry columns, refcount planes, key store."""
        n = 5 * self._cap * 8  # g/proc/off/buf/mask
        n += len(self._stamp_refs) * self._cap * 8
        store_bytes = getattr(self.store, "nbytes", None)
        if callable(store_bytes):
            n += store_bytes()
        return n

    def __len__(self) -> int:
        # live entries: the high-water row count minus purged rows
        # awaiting recycling
        return self.n_entries - int(self._free_slots.size)

    def __contains__(self, gidx: int) -> bool:
        return int(gidx) in self.store

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IndexHashTable(rank={self.rank}, entries={self.n_entries}, "
            f"ghost={self.n_ghost}, store={self.store.kind!r}, "
            f"stamps={self.registry.names()})"
        )
