"""The execution context: one carrier object for per-run runtime state.

The CHAOS runtime of the paper is a *library* with ambient state: every
primitive (hash, localize, schedule build, gather/scatter, remap) runs
against the machine, its translation caches, and its traffic accounting.
Earlier revisions of this reproduction threaded that state by hand — a
loose ``(machine, ..., backend=)`` tail on every primitive, with each
layer re-resolving defaults independently.  :class:`ExecutionContext`
collapses the plumbing:

* ``machine`` — the simulated distributed-memory machine (clocks,
  traffic statistics, collectives);
* ``backend`` — the *resolved* :class:`~repro.core.backends.Backend`
  executing every pipeline phase (never ``None``, never a bare name);
* ``resources`` — the backend's per-context
  :class:`~repro.core.backends.base.BackendResources` handle (worker
  pools, scratch buffers), opened once at context construction and torn
  down deterministically by :meth:`ExecutionContext.close`;
* per-run services — a :class:`~repro.core.reuse.ModificationRecord`,
  the :class:`~repro.core.reuse.ScheduleCache` built over it, and the
  run's RNG ``seed``.

Default resolution happens in exactly one place,
:meth:`ExecutionContext.resolve`: an explicit ``backend`` argument wins,
then the process-wide runtime default
(:func:`~repro.core.backends.set_default_backend`), then the
``REPRO_BACKEND`` environment variable, then ``"vectorized"``.

Every core primitive takes a context as its first argument::

    ctx = ExecutionContext.resolve(machine)            # default backend
    ctx = ExecutionContext.resolve(machine, "serial")  # explicit
    ghosts = gather(ctx, sched, data)

The runtime components (:class:`~repro.core.api.ChaosRuntime`,
``ProgramInstance``, ``ParallelMD``, ``ParallelDSMC``) construct one
context at init and *own its lifecycle*: their ``close()`` (or use as a
``with`` block) releases the backend resources.  The pre-context
machine-first signatures with a ``backend`` keyword, deprecated for one
release, have been removed.

Concurrency contract (audited for the multi-tenant server)
----------------------------------------------------------
The carrier is a *frozen* dataclass: every field rebind — including
new attribute names — raises ``FrozenInstanceError``, so a context can
be handed to another thread without defensive copying.  Backend
resolution is thread-safe (the registry and the process default live
behind a module lock, see :mod:`repro.core.backends.base`) and backend
instances are process-wide singletons compared by identity.  What is
**not** shareable across concurrently-running tenants are the mutable
services a context carries — the machine's clocks/traffic, the
modification record, the schedule cache, the backend resource handle.
The server therefore gives every job its own machine + context
(:func:`repro.serve.job.build_job_context`); sharing one context
between sequential runs remains fine (instance-scoped cache keys keep
programs from cross-hitting).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.backends.base import (
    Backend,
    BackendResources,
    resolve_backend,
)
from repro.core.reuse import ModificationRecord, ScheduleCache
from repro.sim.machine import Machine


@dataclass(frozen=True, eq=False)
class ExecutionContext:
    """Frozen bundle of machine + resolved backend + per-run services.

    The carrier itself is immutable (fields cannot be rebound); the
    services it carries — the machine's clocks/traffic, the modification
    record, the schedule cache, the backend's resource handle — are of
    course mutable objects.  Use :meth:`with_backend` / :meth:`derive`
    to obtain variants sharing the same machine and services; variants
    that keep the backend share its resource handle too, while
    retargeting to a different backend opens a fresh handle (closing one
    context never tears down a sibling running on another backend).
    """

    machine: Machine
    backend: Backend
    seed: int = 0
    record: ModificationRecord | None = None
    schedule_cache: ScheduleCache | None = None
    resources: BackendResources | None = None
    #: per-rank byte budget for paged translation caches (``None`` =
    #: unbounded); carried frozen so every lookup in a run sees one policy
    page_budget_bytes: int | None = None

    def __post_init__(self):
        if not isinstance(self.machine, Machine):
            raise TypeError(
                f"machine must be a Machine, got {self.machine!r}"
            )
        if self.page_budget_bytes is not None \
                and self.page_budget_bytes < 0:
            raise ValueError(
                f"page_budget_bytes must be >= 0 or None, got "
                f"{self.page_budget_bytes}"
            )
        if not isinstance(self.backend, Backend):
            raise TypeError(
                f"backend must be a resolved Backend, got {self.backend!r}"
                " (use ExecutionContext.resolve to accept names/None)"
            )
        if self.record is None:
            object.__setattr__(self, "record", ModificationRecord())
        if self.schedule_cache is None:
            object.__setattr__(
                self, "schedule_cache", ScheduleCache(self.record)
            )
        if (self.resources is None
                or self.resources.backend is not self.backend):
            object.__setattr__(self, "resources", self.backend.open(self))

    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        machine: "Machine | ExecutionContext",
        backend=None,
        *,
        seed: int | None = None,
        record: ModificationRecord | None = None,
        schedule_cache: ScheduleCache | None = None,
        page_budget_bytes: int | None = None,
    ) -> "ExecutionContext":
        """The one place defaults are resolved.

        ``machine`` may be a :class:`Machine` (a fresh context is built
        for it) or an existing context (returned as-is, or re-targeted
        with :meth:`with_backend` when ``backend`` names a different
        one; combining a context with ``seed``/``record``/
        ``schedule_cache``/``page_budget_bytes`` is an error — use
        :meth:`derive`).  ``backend`` may be ``None``, a registered name,
        or a :class:`Backend` instance; ``None`` falls through the
        default chain — runtime default (:func:`set_default_backend`),
        then the ``REPRO_BACKEND`` environment variable, then
        ``"vectorized"``.
        """
        if isinstance(machine, ExecutionContext):
            if seed is not None or record is not None \
                    or schedule_cache is not None \
                    or page_budget_bytes is not None:
                raise TypeError(
                    "resolve: cannot combine an existing ExecutionContext "
                    "with seed/record/schedule_cache/page_budget_bytes "
                    "overrides; use ctx.derive(...) instead"
                )
            ctx = machine
            if backend is None or resolve_backend(backend) is ctx.backend:
                return ctx
            return ctx.with_backend(backend)
        return cls(
            machine=machine,
            backend=resolve_backend(backend),
            seed=0 if seed is None else seed,
            record=record,
            schedule_cache=schedule_cache,
            page_budget_bytes=page_budget_bytes,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the backend's per-context resources (idempotent).

        Derived variants sharing this context's backend share the handle
        too, so closing any one of them closes it for all — deterministic
        teardown belongs to whichever component owns the context.
        """
        self.backend.close(self.resources)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run on this context's resources."""
        return self.resources.closed

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def with_backend(self, backend) -> "ExecutionContext":
        """Variant running on ``backend``, sharing machine + services.

        Same backend returns ``self``; a different backend opens its own
        fresh :class:`BackendResources` handle (``__post_init__`` sees
        the stale handle's backend mismatch and re-opens).
        """
        be = resolve_backend(backend)
        if be is self.backend:
            return self
        return replace(self, backend=be)

    def derive(self, **changes) -> "ExecutionContext":
        """``dataclasses.replace`` with backend names resolved."""
        if "backend" in changes:
            changes["backend"] = resolve_backend(changes["backend"])
        return replace(self, **changes)

    def fresh_services(self) -> "ExecutionContext":
        """Same machine/backend/seed, new modification record + cache."""
        rec = ModificationRecord()
        return replace(self, record=rec, schedule_cache=ScheduleCache(rec))

    # ------------------------------------------------------------------
    # machine conveniences
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.machine.n_ranks

    def ranks(self):
        return self.machine.ranks()

    @property
    def clocks(self):
        """The machine's per-rank virtual clocks (per-run accounting)."""
        return self.machine.clocks

    @property
    def traffic(self):
        """The machine's traffic statistics (per-run accounting)."""
        return self.machine.traffic

    def rng(self) -> np.random.Generator:
        """Fresh deterministic generator from this context's seed."""
        return np.random.default_rng(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionContext(ranks={self.machine.n_ranks}, "
            f"backend={self.backend.name!r}, seed={self.seed})"
        )


def resolve_component(ctx, who: str = "this component") -> ExecutionContext:
    """Constructor-side resolution for runtime components.

    Components (:class:`ChaosRuntime`, ``ProgramInstance``,
    ``ParallelMD``, ``ParallelDSMC``) accept an :class:`ExecutionContext`
    (preferred) or a bare :class:`Machine` — constructing one context at
    init is exactly their job.  Either way, the component owns the
    resulting context's lifecycle (``component.close()`` closes it).
    """
    if isinstance(ctx, (ExecutionContext, Machine)):
        return ExecutionContext.resolve(ctx)
    raise TypeError(
        f"{who}: first argument must be an ExecutionContext or a Machine, "
        f"got {ctx!r}"
    )


def ensure_context(ctx, who: str = "this primitive") -> ExecutionContext:
    """Require a primitive's first argument to be an :class:`ExecutionContext`.

    The machine-first compatibility shims (and their ``backend=``
    keyword) were removed after their one-release deprecation window;
    passing a bare :class:`Machine` here is now a :class:`TypeError`
    pointing at :meth:`ExecutionContext.resolve`.
    """
    if isinstance(ctx, ExecutionContext):
        return ctx
    raise TypeError(
        f"{who}: first argument must be an ExecutionContext "
        f"(the deprecated machine-first signatures were removed; build "
        f"one with ExecutionContext.resolve(machine[, backend])), "
        f"got {ctx!r}"
    )
