"""The execution context: one carrier object for per-run runtime state.

The CHAOS runtime of the paper is a *library* with ambient state: every
primitive (hash, localize, schedule build, gather/scatter, remap) runs
against the machine, its translation caches, and its traffic accounting.
Earlier revisions of this reproduction threaded that state by hand — a
loose ``(machine, ..., backend=)`` tail on every primitive, with each
layer re-resolving defaults independently.  :class:`ExecutionContext`
collapses the plumbing:

* ``machine`` — the simulated distributed-memory machine (clocks,
  traffic statistics, collectives);
* ``backend`` — the *resolved* :class:`~repro.core.backends.Backend`
  executing every pipeline phase (never ``None``, never a bare name);
* per-run services — a :class:`~repro.core.reuse.ModificationRecord`,
  the :class:`~repro.core.reuse.ScheduleCache` built over it, and the
  run's RNG ``seed``.

Default resolution happens in exactly one place,
:meth:`ExecutionContext.resolve`: an explicit ``backend`` argument wins,
then the process-wide runtime default
(:func:`~repro.core.backends.set_default_backend`), then the
``REPRO_BACKEND`` environment variable, then ``"vectorized"``.

Every core primitive takes a context as its first argument::

    ctx = ExecutionContext.resolve(machine)            # default backend
    ctx = ExecutionContext.resolve(machine, "serial")  # explicit
    ghosts = gather(ctx, sched, data)

The old ``(machine, ..., backend=)`` signatures still work for one
release through thin shims that emit :class:`DeprecationWarning`
(:func:`ensure_context`); the test suite runs with
``-W error::DeprecationWarning`` so no in-tree code regresses onto them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.core.backends.base import Backend, resolve_backend
from repro.core.reuse import ModificationRecord, ScheduleCache
from repro.sim.machine import Machine

#: sentinel distinguishing "keyword not passed" from an explicit ``None``
#: in the deprecated compatibility shims
_UNSET = object()


@dataclass(frozen=True, eq=False)
class ExecutionContext:
    """Frozen bundle of machine + resolved backend + per-run services.

    The carrier itself is immutable (fields cannot be rebound); the
    services it carries — the machine's clocks/traffic, the modification
    record, the schedule cache — are of course mutable objects.  Use
    :meth:`with_backend` / :meth:`derive` to obtain variants sharing the
    same machine and services.
    """

    machine: Machine
    backend: Backend
    seed: int = 0
    record: ModificationRecord | None = None
    schedule_cache: ScheduleCache | None = None

    def __post_init__(self):
        if not isinstance(self.machine, Machine):
            raise TypeError(
                f"machine must be a Machine, got {self.machine!r}"
            )
        if not isinstance(self.backend, Backend):
            raise TypeError(
                f"backend must be a resolved Backend, got {self.backend!r}"
                " (use ExecutionContext.resolve to accept names/None)"
            )
        if self.record is None:
            object.__setattr__(self, "record", ModificationRecord())
        if self.schedule_cache is None:
            object.__setattr__(
                self, "schedule_cache", ScheduleCache(self.record)
            )

    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        machine: "Machine | ExecutionContext",
        backend=None,
        *,
        seed: int | None = None,
        record: ModificationRecord | None = None,
        schedule_cache: ScheduleCache | None = None,
    ) -> "ExecutionContext":
        """The one place defaults are resolved.

        ``machine`` may be a :class:`Machine` (a fresh context is built
        for it) or an existing context (returned as-is, or re-targeted
        with :meth:`with_backend` when ``backend`` names a different
        one; combining a context with ``seed``/``record``/
        ``schedule_cache`` is an error — use :meth:`derive`).
        ``backend`` may be ``None``, a registered name, or a
        :class:`Backend` instance; ``None`` falls through the default
        chain — runtime default (:func:`set_default_backend`), then the
        ``REPRO_BACKEND`` environment variable, then ``"vectorized"``.
        """
        if isinstance(machine, ExecutionContext):
            if seed is not None or record is not None \
                    or schedule_cache is not None:
                raise TypeError(
                    "resolve: cannot combine an existing ExecutionContext "
                    "with seed/record/schedule_cache overrides; use "
                    "ctx.derive(...) instead"
                )
            ctx = machine
            if backend is None or resolve_backend(backend) is ctx.backend:
                return ctx
            return ctx.with_backend(backend)
        return cls(
            machine=machine,
            backend=resolve_backend(backend),
            seed=0 if seed is None else seed,
            record=record,
            schedule_cache=schedule_cache,
        )

    # ------------------------------------------------------------------
    def with_backend(self, backend) -> "ExecutionContext":
        """Variant running on ``backend``, sharing machine + services."""
        return replace(self, backend=resolve_backend(backend))

    def derive(self, **changes) -> "ExecutionContext":
        """``dataclasses.replace`` with backend names resolved."""
        if "backend" in changes:
            changes["backend"] = resolve_backend(changes["backend"])
        return replace(self, **changes)

    def fresh_services(self) -> "ExecutionContext":
        """Same machine/backend/seed, new modification record + cache."""
        rec = ModificationRecord()
        return replace(self, record=rec, schedule_cache=ScheduleCache(rec))

    # ------------------------------------------------------------------
    # machine conveniences
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return self.machine.n_ranks

    def ranks(self):
        return self.machine.ranks()

    @property
    def clocks(self):
        """The machine's per-rank virtual clocks (per-run accounting)."""
        return self.machine.clocks

    @property
    def traffic(self):
        """The machine's traffic statistics (per-run accounting)."""
        return self.machine.traffic

    def rng(self) -> np.random.Generator:
        """Fresh deterministic generator from this context's seed."""
        return np.random.default_rng(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionContext(ranks={self.machine.n_ranks}, "
            f"backend={self.backend.name!r}, seed={self.seed})"
        )


def _warn_legacy(who: str) -> None:
    warnings.warn(
        f"{who}(machine, ..., backend=...) is deprecated; pass an "
        f"ExecutionContext as the first argument "
        f"(ExecutionContext.resolve(machine, backend))",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_component(ctx, backend=_UNSET, who: str = "this component"
                      ) -> ExecutionContext:
    """Constructor-side resolution for runtime components.

    Components (:class:`ChaosRuntime`, ``ProgramInstance``,
    ``ParallelMD``, ``ParallelDSMC``) accept an :class:`ExecutionContext`
    (preferred) or a bare :class:`Machine` — constructing one context at
    init is exactly their job, so no warning for the latter.  The legacy
    ``backend`` keyword still works for one release but warns.
    """
    if backend is not _UNSET:
        _warn_legacy(who)
        return ExecutionContext.resolve(ctx, backend)
    return ExecutionContext.resolve(ctx)


def ensure_context(ctx, backend=_UNSET, who: str = "this primitive"
                   ) -> ExecutionContext:
    """Coerce a primitive's first argument to an :class:`ExecutionContext`.

    New-style calls pass a context (returned unchanged; combining it
    with a legacy ``backend=`` keyword is an error).  Old-style calls
    pass a :class:`Machine` — still accepted for one release through
    this shim, which emits a :class:`DeprecationWarning` and resolves a
    context from the machine plus the legacy keyword.
    """
    if isinstance(ctx, ExecutionContext):
        if backend is not _UNSET and backend is not None:
            raise TypeError(
                f"{who}: cannot combine an ExecutionContext with a legacy "
                f"backend= keyword; use ctx.with_backend(...) instead"
            )
        return ctx
    if isinstance(ctx, Machine):
        _warn_legacy(who)
        return ExecutionContext.resolve(
            ctx, None if backend is _UNSET else backend
        )
    raise TypeError(
        f"{who}: first argument must be an ExecutionContext (or, "
        f"deprecated, a Machine), got {ctx!r}"
    )
