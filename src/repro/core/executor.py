"""Executor-phase data transportation: gather, scatter, scatter-with-op.

These are the CHAOS primitives that *use* a built schedule (paper Phase F).
Data arrays live one-per-rank; each may be 1-D (scalars per element) or
2-D (``(n, k)`` — e.g. xyz coordinates), moved row-wise.  Ghost regions are
separate arrays sized ``schedule.ghost_size[p]`` so the same local array
can serve many schedules.

``gather``   — owners push copies of requested elements into requesters'
               ghost buffers (prefetch before a loop).
``scatter``  — ghost values return to their owners, overwriting.
``scatter_op`` — ghost values return and are *combined* (np.add etc.),
               the irregular-reduction path for ``x(ia(i)) += ...``.

Every function takes an :class:`~repro.core.context.ExecutionContext`
first; the context's *backend* (:mod:`repro.core.backends`) executes the
transport: ``serial`` reproduces the historical pair-loop semantics,
``vectorized`` (the default) executes a compiled flat plan with fused
numpy operations, ``threaded`` fans the per-rank loops out over the
context's worker pool.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.compiled import compile_schedule
from repro.core.context import ensure_context
from repro.core.schedule import Schedule


def _ghost_like(local: np.ndarray, n_ghost: int) -> np.ndarray:
    shape = (n_ghost,) + local.shape[1:]
    return np.zeros(shape, dtype=local.dtype)


def allocate_ghosts(
    sched: Schedule, data: list[np.ndarray]
) -> list[np.ndarray]:
    """Fresh ghost buffers matching ``data``'s dtype/row-shape."""
    return [_ghost_like(d, g) for d, g in zip(data, sched.ghost_size)]


def gather(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray] | None = None,
    category: str = "comm",
) -> list[np.ndarray]:
    """Fetch off-processor elements into ghost buffers.

    Returns the ghost arrays (newly allocated unless ``ghosts`` given).
    After the call, rank ``p``'s copy of remote element with buffer slot
    ``s`` is at ``ghosts[p][s]``; localized indices ``n_local + s`` from
    the inspector address it directly when local and ghost arrays are
    stacked (see :func:`stack_local_ghost`).
    """
    ctx = ensure_context(ctx, "gather")
    machine = ctx.machine
    machine.check_per_rank(data, "data")
    if ghosts is None:
        ghosts = allocate_ghosts(sched, data)
    machine.check_per_rank(ghosts, "ghosts")
    plan = compile_schedule(sched)
    for p in machine.ranks():
        if plan.send_max[p] >= np.asarray(data[p]).shape[0]:
            raise IndexError(
                f"rank {p}: schedule wants element {int(plan.send_max[p])} "
                f"but local array has {np.asarray(data[p]).shape[0]}"
            )
        g = np.asarray(ghosts[p])
        if g.shape[0] < sched.ghost_size[p]:
            raise ValueError(
                f"rank {p}: ghost buffer {g.shape[0]} < required "
                f"{sched.ghost_size[p]}"
            )
    return ctx.backend.gather(ctx, sched, data, ghosts, category)


def scatter(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
    category: str = "comm",
) -> None:
    """Return ghost values to their owners, overwriting local elements.

    The exact reverse of :func:`gather`: rank ``p`` sends
    ``ghosts[p][sched.recv_view(p, q)]`` back to ``q``, which writes them
    at ``sched.send_view(q, p)``.
    """
    ctx = ensure_context(ctx, "scatter")
    ctx.machine.check_per_rank(data, "data")
    ctx.machine.check_per_rank(ghosts, "ghosts")
    ctx.backend.scatter(ctx, sched, data, ghosts, None, category)


def scatter_op(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
    op: Callable = np.add,
    category: str = "comm",
) -> None:
    """Return ghost contributions and combine with ``op`` at the owner.

    ``op`` must be a numpy ufunc with an ``.at`` method (``np.add``,
    ``np.maximum``, ...); accumulation order across sources is by source
    rank, deterministic.  This implements irregular reductions: each rank
    accumulates into its ghost copy during the executor loop, then one
    ``scatter_op(np.add)`` folds all contributions into the owners.
    """
    ctx = ensure_context(ctx, "scatter_op")
    if not hasattr(op, "at"):
        raise TypeError(f"op {op!r} must be a ufunc with an .at method")
    ctx.machine.check_per_rank(data, "data")
    ctx.machine.check_per_rank(ghosts, "ghosts")
    ctx.backend.scatter(ctx, sched, data, ghosts, op, category)


def stack_local_ghost(
    data: list[np.ndarray], ghosts: list[np.ndarray]
) -> list[np.ndarray]:
    """Concatenate local and ghost regions per rank.

    The inspector numbers off-processor references ``n_local + slot``, so
    an executor loop can fancy-index one stacked array with localized
    indices.  (Copies; write results back explicitly if mutated.)
    """
    if len(data) != len(ghosts):
        raise ValueError("data/ghosts rank-count mismatch")
    return [np.concatenate([d, g], axis=0) for d, g in zip(data, ghosts)]


def split_local_ghost(
    stacked: list[np.ndarray], n_locals: list[int]
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Inverse of :func:`stack_local_ghost`."""
    if len(stacked) != len(n_locals):
        raise ValueError("stacked/n_locals rank-count mismatch")
    data = [s[:n] for s, n in zip(stacked, n_locals)]
    ghosts = [s[n:] for s, n in zip(stacked, n_locals)]
    return data, ghosts
