"""Executor-phase data transportation: gather, scatter, scatter-with-op.

These are the CHAOS primitives that *use* a built schedule (paper Phase F).
Data arrays live one-per-rank; each may be 1-D (scalars per element) or
2-D (``(n, k)`` — e.g. xyz coordinates), moved row-wise.  Ghost regions are
separate arrays sized ``schedule.ghost_size[p]`` so the same local array
can serve many schedules.

``gather``   — owners push copies of requested elements into requesters'
               ghost buffers (prefetch before a loop).
``scatter``  — ghost values return to their owners, overwriting.
``scatter_op`` — ghost values return and are *combined* (np.add etc.),
               the irregular-reduction path for ``x(ia(i)) += ...``.

Every function takes an :class:`~repro.core.context.ExecutionContext`
first; the context's *backend* (:mod:`repro.core.backends`) executes the
transport: ``serial`` reproduces the historical pair-loop semantics,
``vectorized`` (the default) executes a compiled flat plan with fused
numpy operations, ``threaded`` fans the per-rank loops out over the
context's worker pool.

**Fused pipelines.**  Consecutive collectives in one loop body can run
as a single fused pass: wrap each in a phase constructor
(:func:`gather_phase`, :func:`scatter_phase`, :func:`scatter_op_phase`,
plus :func:`~repro.core.lightweight.append_phase` and
:func:`~repro.core.remap.remap_phase`) and hand the chain to
:func:`run_pipeline`.  When the chain is legal to fuse
(:func:`fusable`: no stage reads an array another stage writes, only
named-ufunc combiners) the backend executes one combined
pack → permute → apply pipeline over the compiled plans
(:func:`~repro.core.compiled.compile_fused`); otherwise — and on any
backend without a one-pass implementation — it falls back to the
reference phase-by-phase path.  Results, traffic and clocks are
bitwise-identical either way.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.compiled import (
    FusedPlan,
    FusedStage,
    StageBind,
    compile_fused,
    compile_lightweight_schedule,
    compile_remap_plan,
    compile_schedule,
)
from repro.core.context import ensure_context
from repro.core.reuse import FUSED_SUFFIX
from repro.core.schedule import Schedule


def _ghost_like(local: np.ndarray, n_ghost: int) -> np.ndarray:
    shape = (n_ghost,) + local.shape[1:]
    return np.zeros(shape, dtype=local.dtype)


def allocate_ghosts(
    sched: Schedule, data: list[np.ndarray]
) -> list[np.ndarray]:
    """Fresh ghost buffers matching ``data``'s dtype/row-shape."""
    return [_ghost_like(d, g) for d, g in zip(data, sched.ghost_size)]


def gather(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray] | None = None,
    category: str = "comm",
) -> list[np.ndarray]:
    """Fetch off-processor elements into ghost buffers.

    Returns the ghost arrays (newly allocated unless ``ghosts`` given).
    After the call, rank ``p``'s copy of remote element with buffer slot
    ``s`` is at ``ghosts[p][s]``; localized indices ``n_local + s`` from
    the inspector address it directly when local and ghost arrays are
    stacked (see :func:`stack_local_ghost`).
    """
    ctx = ensure_context(ctx, "gather")
    machine = ctx.machine
    machine.check_per_rank(data, "data")
    if ghosts is None:
        ghosts = allocate_ghosts(sched, data)
    machine.check_per_rank(ghosts, "ghosts")
    plan = compile_schedule(sched)
    for p in machine.ranks():
        if plan.send_max[p] >= np.asarray(data[p]).shape[0]:
            raise IndexError(
                f"rank {p}: schedule wants element {int(plan.send_max[p])} "
                f"but local array has {np.asarray(data[p]).shape[0]}"
            )
        g = np.asarray(ghosts[p])
        if g.shape[0] < sched.ghost_size[p]:
            raise ValueError(
                f"rank {p}: ghost buffer {g.shape[0]} < required "
                f"{sched.ghost_size[p]}"
            )
    return ctx.backend.gather(ctx, sched, data, ghosts, category)


def scatter(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
    category: str = "comm",
) -> None:
    """Return ghost values to their owners, overwriting local elements.

    The exact reverse of :func:`gather`: rank ``p`` sends
    ``ghosts[p][sched.recv_view(p, q)]`` back to ``q``, which writes them
    at ``sched.send_view(q, p)``.
    """
    ctx = ensure_context(ctx, "scatter")
    ctx.machine.check_per_rank(data, "data")
    ctx.machine.check_per_rank(ghosts, "ghosts")
    ctx.backend.scatter(ctx, sched, data, ghosts, None, category)


def scatter_op(
    ctx,
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
    op: Callable = np.add,
    category: str = "comm",
) -> None:
    """Return ghost contributions and combine with ``op`` at the owner.

    ``op`` must be a numpy ufunc with an ``.at`` method (``np.add``,
    ``np.maximum``, ...); accumulation order across sources is by source
    rank, deterministic.  This implements irregular reductions: each rank
    accumulates into its ghost copy during the executor loop, then one
    ``scatter_op(np.add)`` folds all contributions into the owners.
    """
    ctx = ensure_context(ctx, "scatter_op")
    if not hasattr(op, "at"):
        raise TypeError(f"op {op!r} must be a ufunc with an .at method")
    ctx.machine.check_per_rank(data, "data")
    ctx.machine.check_per_rank(ghosts, "ghosts")
    ctx.backend.scatter(ctx, sched, data, ghosts, op, category)


def stack_local_ghost(
    data: list[np.ndarray], ghosts: list[np.ndarray]
) -> list[np.ndarray]:
    """Concatenate local and ghost regions per rank.

    The inspector numbers off-processor references ``n_local + slot``, so
    an executor loop can fancy-index one stacked array with localized
    indices.  (Copies; write results back explicitly if mutated.)
    """
    if len(data) != len(ghosts):
        raise ValueError("data/ghosts rank-count mismatch")
    return [np.concatenate([d, g], axis=0) for d, g in zip(data, ghosts)]


def split_local_ghost(
    stacked: list[np.ndarray], n_locals: list[int]
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Inverse of :func:`stack_local_ghost`."""
    if len(stacked) != len(n_locals):
        raise ValueError("stacked/n_locals rank-count mismatch")
    data = [s[:n] for s, n in zip(stacked, n_locals)]
    ghosts = [s[n:] for s, n in zip(stacked, n_locals)]
    return data, ghosts


# ----------------------------------------------------------------------
# fused pipelines
# ----------------------------------------------------------------------
class PipelinePhase:
    """One collective inside a :func:`run_pipeline` chain.

    Built by the phase constructors (:func:`gather_phase`,
    :func:`scatter_phase`, :func:`scatter_op_phase`,
    :func:`~repro.core.lightweight.append_phase`,
    :func:`~repro.core.remap.remap_phase`); ``sources`` are the arrays
    the stage reads, ``dests`` the arrays it writes (``None`` for the
    value-returning kinds, whose outputs the backend allocates).
    """

    __slots__ = ("kind", "sched", "sources", "dests", "op")

    def __init__(self, kind, sched, sources, dests=None, op=None):
        self.kind = kind
        self.sched = sched
        self.sources = sources
        self.dests = dests
        self.op = op

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PipelinePhase({self.kind!r})"

    def _prepare(self, ctx) -> tuple[FusedStage, StageBind]:
        """Validate like the unfused wrapper; compile the stage plan."""
        machine = ctx.machine
        if self.kind == "gather":
            machine.check_per_rank(self.sources, "data")
            if self.dests is None:
                self.dests = allocate_ghosts(self.sched, self.sources)
            machine.check_per_rank(self.dests, "ghosts")
            plan = compile_schedule(self.sched)
            for p in machine.ranks():
                if plan.send_max[p] >= np.asarray(self.sources[p]).shape[0]:
                    raise IndexError(
                        f"rank {p}: schedule wants element "
                        f"{int(plan.send_max[p])} but local array has "
                        f"{np.asarray(self.sources[p]).shape[0]}"
                    )
                g = np.asarray(self.dests[p])
                if g.shape[0] < self.sched.ghost_size[p]:
                    raise ValueError(
                        f"rank {p}: ghost buffer {g.shape[0]} < required "
                        f"{self.sched.ghost_size[p]}"
                    )
            return (FusedStage("gather", self.sched, plan),
                    StageBind(self.sources, self.dests))
        if self.kind == "scatter":
            if self.op is not None and not hasattr(self.op, "at"):
                raise TypeError(
                    f"op {self.op!r} must be a ufunc with an .at method"
                )
            machine.check_per_rank(self.dests, "data")
            machine.check_per_rank(self.sources, "ghosts")
            plan = compile_schedule(self.sched)
            return (FusedStage("scatter", self.sched, plan, op=self.op),
                    StageBind(self.sources, self.dests))
        if self.kind == "append":
            machine.check_per_rank(self.sources, "values")
            plan = compile_lightweight_schedule(self.sched)
            for p in machine.ranks():
                v = np.asarray(self.sources[p])
                expected = plan.send_idx[p].size
                if v.shape[0] != expected:
                    raise ValueError(
                        f"rank {p}: values has {v.shape[0]} elements, "
                        f"schedule covers {expected}"
                    )
            return (FusedStage("append", self.sched, plan),
                    StageBind(self.sources))
        if self.kind == "remap":
            machine.check_per_rank(self.sources, "data")
            plan = compile_remap_plan(self.sched)
            for p in machine.ranks():
                if plan.send_max[p] >= np.asarray(self.sources[p]).shape[0]:
                    raise IndexError(
                        f"rank {p}: remap plan wants element "
                        f"{int(plan.send_max[p])} but local array has "
                        f"{np.asarray(self.sources[p]).shape[0]} rows"
                    )
            return (FusedStage("remap", self.sched, plan),
                    StageBind(self.sources))
        raise ValueError(f"unknown pipeline phase kind {self.kind!r}")


def gather_phase(
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray] | None = None,
) -> PipelinePhase:
    """A :func:`gather` as a pipeline phase (ghosts allocated if None)."""
    return PipelinePhase("gather", sched, data, dests=ghosts)


def scatter_phase(
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
) -> PipelinePhase:
    """A :func:`scatter` (overwrite) as a pipeline phase."""
    return PipelinePhase("scatter", sched, ghosts, dests=data)


def scatter_op_phase(
    sched: Schedule,
    data: list[np.ndarray],
    ghosts: list[np.ndarray],
    op: Callable = np.add,
) -> PipelinePhase:
    """A :func:`scatter_op` (combining) as a pipeline phase."""
    return PipelinePhase("scatter", sched, ghosts, dests=data, op=op)


def _root(a: np.ndarray) -> np.ndarray:
    """The array owning ``a``'s memory (follows the view chain)."""
    if not isinstance(a, np.ndarray):
        a = np.asarray(a)
    base = a.base
    while isinstance(base, np.ndarray):
        a = base
        base = a.base
    return a


def fusable(phases) -> tuple[bool, str]:
    """Whether a phase chain is legal to fuse; ``(ok, reason)``.

    Legality rules (conservative — a ``False`` here only means the
    chain runs phase-by-phase instead):

    * combiners must be *named numpy ufuncs* (``np.add``, ...), the only
      ops every backend can apply — and ship across process boundaries;
    * no stage may *read* an array any stage *writes* (compared by
      owning memory): the fused executor packs every stage's sources
      before applying any stage, so a later stage reading an earlier
      stage's output would see stale data.  Stages may freely *write*
      the same target (even all of them): the apply pass runs ranks
      outer, stages inner, preserving the sequential stage order per
      array.
    """
    writes = set()
    for phase in phases:
        if phase.op is not None and not (
            isinstance(phase.op, np.ufunc)
            and getattr(np, phase.op.__name__, None) is phase.op
        ):
            return False, "combiner is not a named numpy ufunc"
        for d in phase.dests or ():
            writes.add(id(_root(d)))
    for phase in phases:
        for s in phase.sources:
            if id(_root(s)) in writes:
                return False, "a stage reads an array another stage writes"
    return True, ""


def _fused_for(ctx, stages, loop_id) -> FusedPlan:
    """The chain's :class:`FusedPlan`, through the context's
    :class:`~repro.core.reuse.ScheduleCache` when a loop id is given."""
    if loop_id is None:
        return compile_fused(stages)
    cache = ctx.schedule_cache
    key = loop_id + FUSED_SUFFIX
    cached = cache.peek(key)
    if cached is not None and cached.matches(stages):
        # genuine reuse: route through get_or_build so the hit counts
        # (the entry's only dep is its own key, so this cannot rebuild)
        fused, _ = cache.get_or_build(key, (key,), lambda: cached)
        return fused
    # first build, or some stage's schedule was rebuilt under the same
    # loop id: bump the entry's own dep key so get_or_build rebuilds
    # (builds += 1) without resetting the hit counter the way
    # invalidate() would — and without the stale probe counting a hit
    cache.record.touch(key)
    fused, _ = cache.get_or_build(key, (key,),
                                  lambda: compile_fused(stages))
    return fused


def run_pipeline(
    ctx,
    phases,
    category: str = "comm",
    loop_id: str | None = None,
) -> list:
    """Run a chain of collectives, fused into one pass where legal.

    Returns one result per phase, matching the unfused primitives:
    the ghost arrays for gather, ``None`` for scatter/scatter_op, fresh
    per-rank arrays for append/remap.  When :func:`fusable` rejects the
    chain the phases run through their ordinary primitives in order —
    results, traffic and clocks are identical either way; fusion only
    changes how fast the data moves.

    ``loop_id`` keys the chain's :class:`~repro.core.compiled.FusedPlan`
    through the context's schedule cache (under
    ``loop_id + FUSED_SUFFIX``), so adaptive loops reuse the fused plan
    across iterations and its hit/build counters are observable via
    ``ScheduleCache.fused_stats`` / ``ChaosRuntime.cache_stats``.
    """
    ctx = ensure_context(ctx, "run_pipeline")
    phases = list(phases)
    if not phases:
        return []
    stages = []
    binds = []
    for phase in phases:
        stage, bind = phase._prepare(ctx)
        stages.append(stage)
        binds.append(bind)
    ok, _reason = fusable(phases)
    if ok:
        fused = _fused_for(ctx, stages, loop_id)
        return ctx.backend.run_fused(ctx, fused, binds, category)
    # illegal chain: the reference multi-pass path, explicitly through
    # the base implementation so one-pass overrides are bypassed
    from repro.core.backends.base import Backend
    return Backend.run_fused(ctx.backend, ctx,
                             FusedPlan(stages=tuple(stages)), binds,
                             category)
