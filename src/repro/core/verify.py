"""Consistency validators for CHAOS data structures.

Debugging aids a runtime-library user reaches for when a parallel loop
produces wrong answers: each function checks the internal invariants of
one artifact and returns a list of human-readable problems (empty = OK).
They are pure inspections — no communication is charged.
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import Distribution
from repro.core.hashtable import IndexHashTable
from repro.core.lightweight import LightweightSchedule
from repro.core.remap import RemapPlan
from repro.core.schedule import Schedule
from repro.core.translation import TranslationTable


def check_distribution(dist: Distribution) -> list[str]:
    """Every global element owned exactly once; offsets bijective."""
    problems: list[str] = []
    n = dist.n_global
    if n == 0:
        return problems
    idx = np.arange(n, dtype=np.int64)
    owners = dist.owner(idx)
    offsets = dist.local_index(idx)
    if owners.min() < 0 or owners.max() >= dist.n_ranks:
        problems.append("owner outside rank range")
    total = 0
    for p in range(dist.n_ranks):
        mine = offsets[owners == p]
        size = dist.local_size(p)
        if mine.size != size:
            problems.append(
                f"rank {p}: local_size() = {size} but {mine.size} elements "
                "map to it"
            )
        if mine.size and (
            sorted(mine.tolist()) != list(range(mine.size))
        ):
            problems.append(f"rank {p}: local offsets are not 0..{mine.size - 1}")
        g = dist.global_indices(p)
        if g.size != mine.size:
            problems.append(f"rank {p}: global_indices length mismatch")
        elif g.size and not np.all(dist.owner(g) == p):
            problems.append(f"rank {p}: global_indices contains foreign elements")
        total += mine.size
    if total != n:
        problems.append(f"{total} elements assigned, expected {n}")
    return problems


def check_schedule(sched: Schedule, dist: Distribution | None = None
                   ) -> list[str]:
    """Send/recv symmetry, slot uniqueness, ghost bounds, index ranges."""
    problems: list[str] = []
    n = sched.n_ranks
    for p in range(n):
        seen_slots: set[int] = set()
        for q in range(n):
            ns = sched.send_view(p, q).size
            nr = sched.recv_view(q, p).size
            if ns != nr:
                problems.append(
                    f"{p}->{q}: sends {ns} but receiver expects {nr}"
                )
            slots = sched.recv_view(p, q)
            if slots.size:
                if slots.min() < 0 or slots.max() >= sched.ghost_size[p]:
                    problems.append(
                        f"rank {p}: ghost slot out of range from {q}"
                    )
                dup = set(slots.tolist()) & seen_slots
                if dup:
                    problems.append(
                        f"rank {p}: ghost slots reused across sources: "
                        f"{sorted(dup)[:5]}"
                    )
                seen_slots.update(slots.tolist())
        sel = sched.send_indices[p]
        if dist is not None and sel.size:
            if sel.min() < 0 or sel.max() >= dist.local_size(p):
                problems.append(
                    f"rank {p}: send index beyond local size "
                    f"{dist.local_size(p)}"
                )
    return problems


def check_schedule_against_hash_tables(
    sched: Schedule, htables: list[IndexHashTable]
) -> list[str]:
    """Every ghost slot the schedule fills must exist in the hash table
    (i.e. some localized reference can read it)."""
    problems: list[str] = []
    for p, ht in enumerate(htables):
        cap = ht.ghost_capacity()
        if sched.ghost_size[p] > cap:
            problems.append(
                f"rank {p}: schedule ghost size {sched.ghost_size[p]} "
                f"exceeds hash-table capacity {cap}"
            )
        filled = set(sched.recv_slots[p].tolist())
        valid = set(ht.buf[: ht.n_entries][ht.buf[: ht.n_entries] >= 0].tolist())
        orphan = filled - valid
        if orphan:
            problems.append(
                f"rank {p}: schedule fills slots no entry references: "
                f"{sorted(orphan)[:5]}"
            )
    return problems


def check_lightweight(sched: LightweightSchedule) -> list[str]:
    """Counts symmetric; selections disjoint and covering."""
    problems: list[str] = []
    n = sched.n_ranks
    for p in range(n):
        total = int(sched.send_sizes(p).sum())
        seen: set[int] = set()
        for q in range(n):
            sel = sched.send_view(p, q)
            if sel.size:
                if sel.min() < 0 or sel.max() >= total:
                    problems.append(f"rank {p}: selection out of range")
                dup = set(sel.tolist()) & seen
                if dup:
                    problems.append(
                        f"rank {p}: element sent to multiple destinations"
                    )
                seen.update(sel.tolist())
            if sel.size != sched.recv_counts[q][p]:
                problems.append(f"{p}->{q}: count mismatch")
        if len(seen) != total:
            problems.append(
                f"rank {p}: {total - len(seen)} elements have no destination"
            )
    return problems


def check_remap_plan(plan: RemapPlan) -> list[str]:
    """Every new slot filled exactly once; no slot out of range."""
    problems: list[str] = []
    n = plan.n_ranks
    for p in range(n):
        for q in range(n):
            if plan.send_view(p, q).size != plan.place_view(q, p).size:
                problems.append(f"{p}->{q}: plan asymmetry")
        filled = plan.place_sel[p].tolist()
        if filled:
            sel = plan.place_sel[p]
            if sel.min() < 0 or sel.max() >= plan.new_sizes[p]:
                problems.append(f"rank {p}: placement out of range")
        if len(filled) != plan.new_sizes[p] or \
                len(set(filled)) != plan.new_sizes[p]:
            problems.append(
                f"rank {p}: {len(set(filled))} distinct slots filled, "
                f"need {plan.new_sizes[p]}"
            )
    return problems


def check_translation_table(tt: TranslationTable) -> list[str]:
    """Table content consistent with its distribution."""
    problems = check_distribution(tt.dist)
    n = tt.dist.n_global
    if n:
        idx = np.arange(n, dtype=np.int64)
        if not np.array_equal(tt.owner_local(idx), tt.dist.owner(idx)):
            problems.append("table owners diverge from distribution")
        if not np.array_equal(tt.offset_local(idx), tt.dist.local_index(idx)):
            problems.append("table offsets diverge from distribution")
    return problems
