"""Consistency validators for CHAOS data structures.

Debugging aids a runtime-library user reaches for when a parallel loop
produces wrong answers: each function checks the internal invariants of
one artifact and returns a list of human-readable problems (empty = OK).
They are pure inspections — no communication is charged — and they walk
the plans' native flat CSR buffers directly (offset-vector arithmetic
and ``np.unique``), never the deprecated nested per-pair views.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled import csr_counts
from repro.core.distribution import Distribution
from repro.core.hashtable import IndexHashTable
from repro.core.lightweight import LightweightSchedule
from repro.core.remap import RemapPlan
from repro.core.schedule import Schedule
from repro.core.translation import TranslationTable


def check_distribution(dist: Distribution) -> list[str]:
    """Every global element owned exactly once; offsets bijective."""
    problems: list[str] = []
    n = dist.n_global
    if n == 0:
        return problems
    idx = np.arange(n, dtype=np.int64)
    owners = dist.owner(idx)
    offsets = dist.local_index(idx)
    if owners.min() < 0 or owners.max() >= dist.n_ranks:
        problems.append("owner outside rank range")
    total = 0
    for p in range(dist.n_ranks):
        mine = offsets[owners == p]
        size = dist.local_size(p)
        if mine.size != size:
            problems.append(
                f"rank {p}: local_size() = {size} but {mine.size} elements "
                "map to it"
            )
        if mine.size and (
            sorted(mine.tolist()) != list(range(mine.size))
        ):
            problems.append(f"rank {p}: local offsets are not 0..{mine.size - 1}")
        g = dist.global_indices(p)
        if g.size != mine.size:
            problems.append(f"rank {p}: global_indices length mismatch")
        elif g.size and not np.all(dist.owner(g) == p):
            problems.append(f"rank {p}: global_indices contains foreign elements")
        total += mine.size
    if total != n:
        problems.append(f"{total} elements assigned, expected {n}")
    return problems


def check_schedule(sched: Schedule, dist: Distribution | None = None
                   ) -> list[str]:
    """Send/recv symmetry, slot uniqueness, ghost bounds, index ranges."""
    problems: list[str] = []
    n = sched.n_ranks
    send_counts = csr_counts(sched.send_offsets)
    recv_counts = csr_counts(sched.recv_offsets)
    for p, q in np.argwhere(send_counts != recv_counts.T):
        problems.append(
            f"{p}->{q}: sends {send_counts[p, q]} but receiver expects "
            f"{recv_counts[q, p]}"
        )
    for p in range(n):
        slots = sched.recv_slots[p]
        if slots.size:
            if slots.min() < 0 or slots.max() >= sched.ghost_size[p]:
                problems.append(f"rank {p}: ghost slot out of range")
            # a slot may legally repeat *within* one source's segment
            # (merged schedules keep duplicates), but never across two
            # sources: encode (slot, src), dedup, then count per slot
            src_of = np.repeat(np.arange(n, dtype=np.int64),
                               recv_counts[p])
            key = np.unique(slots * np.int64(n) + src_of)
            slot_of_key, per_slot = np.unique(key // n, return_counts=True)
            dup = slot_of_key[per_slot > 1]
            if dup.size:
                problems.append(
                    f"rank {p}: ghost slots reused across sources: "
                    f"{dup[:5].tolist()}"
                )
        sel = sched.send_indices[p]
        if dist is not None and sel.size:
            if sel.min() < 0 or sel.max() >= dist.local_size(p):
                problems.append(
                    f"rank {p}: send index beyond local size "
                    f"{dist.local_size(p)}"
                )
    return problems


def check_schedule_against_hash_tables(
    sched: Schedule, htables: list[IndexHashTable]
) -> list[str]:
    """Every ghost slot the schedule fills must exist in the hash table
    (i.e. some localized reference can read it)."""
    problems: list[str] = []
    for p, ht in enumerate(htables):
        cap = ht.ghost_capacity()
        if sched.ghost_size[p] > cap:
            problems.append(
                f"rank {p}: schedule ghost size {sched.ghost_size[p]} "
                f"exceeds hash-table capacity {cap}"
            )
        filled = np.unique(sched.recv_slots[p])
        valid = ht.buf[: ht.n_entries]
        valid = valid[valid >= 0]
        orphan = filled[~np.isin(filled, valid)]
        if orphan.size:
            problems.append(
                f"rank {p}: schedule fills slots no entry references: "
                f"{orphan[:5].tolist()}"
            )
    return problems


def check_lightweight(sched: LightweightSchedule) -> list[str]:
    """Counts symmetric; selections disjoint and covering."""
    problems: list[str] = []
    n = sched.n_ranks
    send_counts = csr_counts(sched.send_offsets)
    for p, q in np.argwhere(send_counts != sched.recv_counts.T):
        problems.append(f"{p}->{q}: count mismatch")
    for p in range(n):
        total = int(send_counts[p].sum())
        sel = sched.send_sel[p]
        if sel.size != total:
            problems.append(
                f"rank {p}: count mismatch — selection holds {sel.size} "
                f"elements, offsets delimit {total}"
            )
        covered = np.unique(sel).size
        if sel.size:
            if sel.min() < 0 or sel.max() >= total:
                problems.append(f"rank {p}: selection out of range")
            if covered != sel.size:
                problems.append(
                    f"rank {p}: element sent to multiple destinations"
                )
        if covered != total:
            problems.append(
                f"rank {p}: {total - covered} elements have no destination"
            )
    return problems


def check_remap_plan(plan: RemapPlan) -> list[str]:
    """Every new slot filled exactly once; no slot out of range."""
    problems: list[str] = []
    n = plan.n_ranks
    send_counts = csr_counts(plan.send_offsets)
    place_counts = csr_counts(plan.place_offsets)
    for p, q in np.argwhere(send_counts != place_counts.T):
        problems.append(f"{p}->{q}: plan asymmetry")
    for p in range(n):
        sel = plan.place_sel[p]
        if sel.size:
            if sel.min() < 0 or sel.max() >= plan.new_sizes[p]:
                problems.append(f"rank {p}: placement out of range")
        distinct = np.unique(sel).size
        if sel.size != plan.new_sizes[p] or distinct != plan.new_sizes[p]:
            problems.append(
                f"rank {p}: {distinct} distinct slots filled, "
                f"need {plan.new_sizes[p]}"
            )
    return problems


def check_translation_table(tt: TranslationTable) -> list[str]:
    """Table content consistent with its distribution."""
    problems = check_distribution(tt.dist)
    n = tt.dist.n_global
    if n:
        idx = np.arange(n, dtype=np.int64)
        if not np.array_equal(tt.owner_local(idx), tt.dist.owner(idx)):
            problems.append("table owners diverge from distribution")
        if not np.array_equal(tt.offset_local(idx), tt.dist.local_index(idx)):
            problems.append("table offsets diverge from distribution")
    return problems
