"""Data remapping (paper Phase B): move arrays between distributions.

``remap`` builds an optimized move plan from one distribution to another
(the paper's ``remap`` procedure); ``remap_array`` applies it to any number
of identically-distributed arrays.  The plan is the analogue of a
communication schedule specialized for a full redistribution: every element
has exactly one source and one destination.

Like :class:`~repro.core.schedule.Schedule`, the plan is CSR-native: flat
int64 selection/placement vectors per rank plus per-partner offset
vectors.  The placement side is assembled by permuting the global
sender-major placement stream receiver-major
(:func:`repro.core.compiled.stream_perm`) — no per-pair list assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiled import (
    compile_remap_plan,
    csr_counts,
    normalize_csr,
    offsets_from_counts,
    stream_perm,
)
from repro.core.context import ensure_context
from repro.core.distribution import Distribution


@dataclass
class RemapPlan:
    """A built redistribution plan, CSR-native and rank-major.

    ``send_sel[p]`` — *old* local offsets on ``p`` of every element,
    concatenated destination-ascending (``q == p`` for stay-local
    elements), delimited by ``send_offsets[p]``; ``place_sel[p]`` — *new*
    local offsets on ``p`` where arrivals land, concatenated
    source-ascending (aligned element-wise with the senders' segments),
    delimited by ``place_offsets[p]``.  ``new_sizes[p]`` — new local
    array length.
    """

    n_ranks: int
    send_sel: list[np.ndarray]
    send_offsets: list[np.ndarray]
    place_sel: list[np.ndarray]
    place_offsets: list[np.ndarray]
    new_sizes: list[int]

    def __post_init__(self):
        n = self.n_ranks
        if len(self.send_sel) != n or len(self.place_sel) != n:
            raise ValueError("remap buffers must have one entry per rank")
        self.send_sel, self.send_offsets, send_counts = normalize_csr(
            self.send_sel, self.send_offsets, n, "send_sel"
        )
        self.place_sel, self.place_offsets, place_counts = normalize_csr(
            self.place_sel, self.place_offsets, n, "place_sel"
        )
        if not np.array_equal(send_counts, place_counts.T):
            p, q = np.argwhere(send_counts != place_counts.T)[0]
            raise ValueError(
                f"remap plan inconsistent between ranks {p} and {q}"
            )

    # -- flat layout accessors ------------------------------------------
    def send_view(self, rank: int, dest: int) -> np.ndarray:
        """Zero-copy view of ``rank``'s selection for ``dest``."""
        off = self.send_offsets[rank]
        return self.send_sel[rank][int(off[dest]):int(off[dest + 1])]

    def place_view(self, rank: int, src: int) -> np.ndarray:
        """Zero-copy view of ``rank``'s placement slots for ``src``."""
        off = self.place_offsets[rank]
        return self.place_sel[rank][int(off[src]):int(off[src + 1])]

    def elements_moved(self) -> int:
        """Elements that change ranks (excludes stay-local)."""
        off_diag = csr_counts(self.send_offsets)
        np.fill_diagonal(off_diag, 0)
        return int(off_diag.sum())

    def total_messages(self) -> int:
        off_diag = csr_counts(self.send_offsets)
        np.fill_diagonal(off_diag, 0)
        return int(np.count_nonzero(off_diag))


def remap(
    ctx,
    old_dist: Distribution,
    new_dist: Distribution,
    category: str = "remap",
) -> RemapPlan:
    """Build the move plan from ``old_dist`` to ``new_dist``.

    Both distributions must describe the same global array on the same
    machine.  Cost: one pass over owned elements per rank plus a
    message-size exchange.
    """
    ctx = ensure_context(ctx, "remap")
    machine = ctx.machine
    if old_dist.n_global != new_dist.n_global:
        raise ValueError(
            f"distributions disagree on size: {old_dist.n_global} vs "
            f"{new_dist.n_global}"
        )
    if old_dist.n_ranks != machine.n_ranks or new_dist.n_ranks != machine.n_ranks:
        raise ValueError("distributions sized for a different machine")
    n = machine.n_ranks
    counts = np.zeros((n, n), dtype=np.int64)
    send_sel: list[np.ndarray] = []
    send_offsets: list[np.ndarray] = []
    place_by_sender: list[np.ndarray] = []

    for p in machine.ranks():
        g = old_dist.global_indices(p)
        machine.charge_memops(p, g.size, category)
        if g.size == 0:
            send_sel.append(np.zeros(0, dtype=np.int64))
            send_offsets.append(offsets_from_counts(counts[p]))
            place_by_sender.append(np.zeros(0, dtype=np.int64))
            continue
        new_owner = new_dist.owner(g)
        new_off = new_dist.local_index(g)
        order = np.argsort(new_owner, kind="stable")
        counts[p] = np.bincount(new_owner, minlength=n)
        send_sel.append(np.asarray(order, dtype=np.int64))
        send_offsets.append(offsets_from_counts(counts[p]))
        # new local offsets, aligned with the send stream (dest-ascending)
        place_by_sender.append(np.asarray(new_off[order], dtype=np.int64))

    machine.alltoall_lengths_compiled(counts, tag="remap_sizes",
                                      category=category)

    # receiver-major reorder of the placement stream: place_sel[q] is the
    # concatenation (sources ascending) of what each sender computed
    perm = stream_perm(counts)
    place_stream = (np.concatenate(place_by_sender)[perm]
                    if perm.size else np.zeros(0, dtype=np.int64))
    recv_base = offsets_from_counts(counts.sum(axis=0))
    place_sel = [place_stream[int(recv_base[q]):int(recv_base[q + 1])]
                 for q in machine.ranks()]
    place_offsets = [offsets_from_counts(counts[:, q])
                     for q in machine.ranks()]

    new_sizes = [new_dist.local_size(p) for p in machine.ranks()]
    return RemapPlan(n_ranks=n, send_sel=send_sel,
                     send_offsets=send_offsets, place_sel=place_sel,
                     place_offsets=place_offsets, new_sizes=new_sizes)


def remap_array(
    ctx,
    plan: RemapPlan,
    data: list[np.ndarray],
    category: str = "remap",
) -> list[np.ndarray]:
    """Apply a remap plan to one per-rank array set; returns new arrays.

    Rows (axis 0) move; trailing dimensions are preserved.  The plan can
    be reused for every array aligned with the remapped distribution —
    the paper remaps all atom-associated arrays with one plan.
    """
    ctx = ensure_context(ctx, "remap_array")
    machine = ctx.machine
    machine.check_per_rank(data, "data")
    cp = compile_remap_plan(plan)
    for p in machine.ranks():
        if cp.send_max[p] >= np.asarray(data[p]).shape[0]:
            raise IndexError(
                f"rank {p}: remap plan wants element {int(cp.send_max[p])}"
                f" but local array has {np.asarray(data[p]).shape[0]} rows"
            )
    return ctx.backend.remap_array(ctx, plan, data, category)


def remap_phase(plan: RemapPlan, data: list[np.ndarray]):
    """A :func:`remap_array` as a phase for
    :func:`~repro.core.executor.run_pipeline` — the paper remaps all
    atom-associated arrays with one plan, which fuses into a single
    pack/permute/apply pass.  The phase's result slot holds the new
    per-rank arrays."""
    from repro.core.executor import PipelinePhase

    return PipelinePhase("remap", plan, data)


def remap_global_values(
    ctx,
    old_dist: Distribution,
    new_dist: Distribution,
    data: list[np.ndarray],
    category: str = "remap",
) -> list[np.ndarray]:
    """Convenience: build a plan and move one array set in one call."""
    ctx = ensure_context(ctx, "remap_global_values")
    plan = remap(ctx, old_dist, new_dist, category=category)
    return remap_array(ctx, plan, data, category=category)
