"""Data remapping (paper Phase B): move arrays between distributions.

``remap`` builds an optimized move plan from one distribution to another
(the paper's ``remap`` procedure); ``remap_array`` applies it to any number
of identically-distributed arrays.  The plan is the analogue of a
communication schedule specialized for a full redistribution: every element
has exactly one source and one destination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import resolve_backend
from repro.core.compiled import compile_remap_plan
from repro.core.distribution import Distribution
from repro.sim.machine import Machine


@dataclass
class RemapPlan:
    """A built redistribution plan, rank-major.

    ``send_sel[p][q]`` — *old* local offsets on ``p`` of elements moving to
    ``q`` (``q == p`` for stay-local elements); ``place_sel[p][q]`` — *new*
    local offsets on ``p`` where elements arriving from ``q`` land (aligned
    with ``send_sel[q][p]``).  ``new_sizes[p]`` — new local array length.
    """

    n_ranks: int
    send_sel: list[list[np.ndarray]]
    place_sel: list[list[np.ndarray]]
    new_sizes: list[int]

    def __post_init__(self):
        # index arrays are int64 by contract, whatever the caller built
        self.send_sel = [
            [np.asarray(a, dtype=np.int64) for a in row]
            for row in self.send_sel
        ]
        self.place_sel = [
            [np.asarray(a, dtype=np.int64) for a in row]
            for row in self.place_sel
        ]
        for p in range(self.n_ranks):
            for q in range(self.n_ranks):
                if self.send_sel[p][q].size != self.place_sel[q][p].size:
                    raise ValueError(
                        f"remap plan inconsistent between ranks {p} and {q}"
                    )

    def elements_moved(self) -> int:
        """Elements that change ranks (excludes stay-local)."""
        return int(
            sum(
                self.send_sel[p][q].size
                for p in range(self.n_ranks)
                for q in range(self.n_ranks)
                if p != q
            )
        )

    def total_messages(self) -> int:
        return sum(
            1
            for p in range(self.n_ranks)
            for q in range(self.n_ranks)
            if p != q and self.send_sel[p][q].size
        )


def remap(
    machine: Machine,
    old_dist: Distribution,
    new_dist: Distribution,
    category: str = "remap",
) -> RemapPlan:
    """Build the move plan from ``old_dist`` to ``new_dist``.

    Both distributions must describe the same global array on the same
    machine.  Cost: one pass over owned elements per rank plus a
    message-size exchange.
    """
    if old_dist.n_global != new_dist.n_global:
        raise ValueError(
            f"distributions disagree on size: {old_dist.n_global} vs "
            f"{new_dist.n_global}"
        )
    if old_dist.n_ranks != machine.n_ranks or new_dist.n_ranks != machine.n_ranks:
        raise ValueError("distributions sized for a different machine")
    n = machine.n_ranks
    z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
    send_sel: list[list[np.ndarray]] = [[z() for _ in range(n)] for _ in range(n)]
    place_sel: list[list[np.ndarray]] = [[z() for _ in range(n)] for _ in range(n)]

    for p in machine.ranks():
        g = old_dist.global_indices(p)
        machine.charge_memops(p, g.size, category)
        if g.size == 0:
            continue
        new_owner = new_dist.owner(g)
        new_off = new_dist.local_index(g)
        order = np.argsort(new_owner, kind="stable")
        so = new_owner[order]
        bounds = np.searchsorted(so, np.arange(n + 1, dtype=np.int64))
        for q in machine.ranks():
            lo, hi = bounds[q], bounds[q + 1]
            if lo == hi:
                continue
            sel = order[lo:hi]
            send_sel[p][q] = sel.astype(np.int64)
            place_sel[q][p] = new_off[sel].astype(np.int64)

    lengths = [
        [send_sel[p][q].size if p != q else 0 for q in machine.ranks()]
        for p in machine.ranks()
    ]
    machine.alltoall_lengths(lengths, tag="remap_sizes", category=category)
    new_sizes = [new_dist.local_size(p) for p in machine.ranks()]
    return RemapPlan(n_ranks=n, send_sel=send_sel, place_sel=place_sel,
                     new_sizes=new_sizes)


def remap_array(
    machine: Machine,
    plan: RemapPlan,
    data: list[np.ndarray],
    category: str = "remap",
    backend=None,
) -> list[np.ndarray]:
    """Apply a remap plan to one per-rank array set; returns new arrays.

    Rows (axis 0) move; trailing dimensions are preserved.  The plan can
    be reused for every array aligned with the remapped distribution —
    the paper remaps all atom-associated arrays with one plan.
    """
    machine.check_per_rank(data, "data")
    cp = compile_remap_plan(plan)
    for p in machine.ranks():
        if cp.send_max[p] >= np.asarray(data[p]).shape[0]:
            raise IndexError(
                f"rank {p}: remap plan wants element {int(cp.send_max[p])}"
                f" but local array has {np.asarray(data[p]).shape[0]} rows"
            )
    return resolve_backend(backend).remap_array(machine, plan, data,
                                                category)


def remap_global_values(
    machine: Machine,
    old_dist: Distribution,
    new_dist: Distribution,
    data: list[np.ndarray],
    category: str = "remap",
    backend=None,
) -> list[np.ndarray]:
    """Convenience: build a plan and move one array set in one call."""
    plan = remap(machine, old_dist, new_dist, category=category)
    return remap_array(machine, plan, data, category=category,
                       backend=backend)
