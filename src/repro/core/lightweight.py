"""Light-weight communication schedules (paper §3.2.1, §4.2).

For placement-order-insensitive data movement — particle codes appending
molecules to their new cells — CHAOS skips index translation and the
permutation list entirely.  A light-weight schedule is built directly from
a per-element *destination rank* array: one bucketing pass plus a message-
size exchange.  It is both cheaper to construct (no hash table, no
translation-table lookups) and cheaper to use (receivers append, never
reorder), which is why ``scatter_append`` beats ``gather``/``scatter`` by
large factors in DSMC (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.machine import Machine


@dataclass
class LightweightSchedule:
    """Destination-bucketed move plan, rank-major.

    ``send_sel[p][q]`` holds positions (into rank ``p``'s source arrays)
    of elements destined for rank ``q`` — including ``q == p`` for
    elements that stay local.  ``recv_counts[p][q]`` is how many elements
    ``p`` receives from ``q``.
    """

    n_ranks: int
    send_sel: list[list[np.ndarray]]
    recv_counts: np.ndarray  # (n_ranks, n_ranks): [p][q] = p receives from q

    def __post_init__(self):
        if len(self.send_sel) != self.n_ranks:
            raise ValueError("send_sel must have one row per rank")
        self.recv_counts = np.asarray(self.recv_counts, dtype=np.int64)
        if self.recv_counts.shape != (self.n_ranks, self.n_ranks):
            raise ValueError("recv_counts must be (n_ranks, n_ranks)")
        for p in range(self.n_ranks):
            for q in range(self.n_ranks):
                if self.send_sel[p][q].size != self.recv_counts[q][p]:
                    raise ValueError(
                        f"inconsistent: {p} sends {self.send_sel[p][q].size} "
                        f"to {q}, which expects {self.recv_counts[q][p]}"
                    )

    def recv_total(self, rank: int) -> int:
        """Total elements rank will hold after the move (incl. kept)."""
        return int(self.recv_counts[rank].sum())

    def send_sizes(self, rank: int) -> np.ndarray:
        return np.array(
            [self.send_sel[rank][q].size for q in range(self.n_ranks)],
            dtype=np.int64,
        )

    def total_messages(self) -> int:
        return sum(
            1
            for p in range(self.n_ranks)
            for q in range(self.n_ranks)
            if p != q and self.send_sel[p][q].size
        )

    def total_moved(self) -> int:
        """Elements crossing rank boundaries (excludes kept-local)."""
        return int(
            sum(
                self.send_sel[p][q].size
                for p in range(self.n_ranks)
                for q in range(self.n_ranks)
                if p != q
            )
        )


def build_lightweight_schedule(
    machine: Machine,
    dest_ranks: list[np.ndarray],
    category: str = "inspector",
) -> LightweightSchedule:
    """Build a light-weight schedule from per-element destination ranks.

    ``dest_ranks[p][i]`` is the rank that element ``i`` of rank ``p``'s
    local arrays must move to.  Cost: one local bucketing pass per rank
    plus a single message-size exchange — no translation table, no hash
    table, no permutation list.
    """
    machine.check_per_rank(dest_ranks, "dest_ranks")
    n = machine.n_ranks
    z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
    send_sel: list[list[np.ndarray]] = [[z() for _ in range(n)] for _ in range(n)]

    for p in machine.ranks():
        d = np.asarray(dest_ranks[p], dtype=np.int64)
        if d.size and (d.min() < 0 or d.max() >= n):
            bad = d[(d < 0) | (d >= n)][0]
            raise ValueError(f"destination rank {bad} out of range on rank {p}")
        machine.charge_memops(p, d.size, category)
        if d.size == 0:
            continue
        order = np.argsort(d, kind="stable")
        sorted_d = d[order]
        bounds = np.searchsorted(sorted_d, np.arange(n + 1, dtype=np.int64))
        for q in machine.ranks():
            lo, hi = bounds[q], bounds[q + 1]
            if lo != hi:
                send_sel[p][q] = order[lo:hi].astype(np.int64)

    lengths = [
        [send_sel[p][q].size if p != q else 0 for q in machine.ranks()]
        for p in machine.ranks()
    ]
    machine.alltoall_lengths(lengths, tag="lw_sizes", category=category)
    recv_counts = np.zeros((n, n), dtype=np.int64)
    for p in machine.ranks():
        for q in machine.ranks():
            recv_counts[q][p] = send_sel[p][q].size
    return LightweightSchedule(n_ranks=n, send_sel=send_sel,
                               recv_counts=recv_counts)


def scatter_append(
    machine: Machine,
    sched: LightweightSchedule,
    values: list[np.ndarray],
    category: str = "comm",
) -> list[np.ndarray]:
    """Move elements to their destinations, appending in arrival order.

    ``values[p]`` is rank ``p``'s source array (1-D, or 2-D with one row
    per element).  Returns the new per-rank arrays: kept-local elements
    first (in original relative order), then arrivals ordered by source
    rank — an arbitrary but deterministic order, which is exactly what
    "unordered append" semantics permit.

    Multiple aligned arrays (e.g. velocity components) can be moved with
    the same schedule by calling this once per array — the schedule is the
    expensive part, reusing it is free.
    """
    machine.check_per_rank(values, "values")
    n = machine.n_ranks
    send = [[None] * n for _ in machine.ranks()]
    for p in machine.ranks():
        v = np.asarray(values[p])
        expected = int(sched.send_sizes(p).sum())
        if v.shape[0] != expected:
            raise ValueError(
                f"rank {p}: values has {v.shape[0]} elements, schedule "
                f"covers {expected}"
            )
        for q in machine.ranks():
            sel = sched.send_sel[p][q]
            if sel.size:
                send[p][q] = v[sel]
        machine.charge_copyops(p, v.shape[0], category)
    received = machine.alltoallv(send, tag="scatter_append", category=category)
    out: list[np.ndarray] = []
    for p in machine.ranks():
        parts = []
        # kept-local first, then arrivals by source rank:
        if received[p][p] is not None and np.size(received[p][p]):
            parts.append(np.asarray(received[p][p]))
        for q in machine.ranks():
            if q == p:
                continue
            got = received[p][q]
            if got is not None and np.size(got):
                parts.append(np.asarray(got))
                machine.charge_copyops(p, np.shape(got)[0], category)
        if parts:
            out.append(np.concatenate(parts, axis=0))
        else:
            v = np.asarray(values[p])
            out.append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
    return out


def scatter_append_multi(
    machine: Machine,
    sched: LightweightSchedule,
    arrays: list[list[np.ndarray]],
    category: str = "comm",
) -> list[list[np.ndarray]]:
    """Move several aligned array sets with ONE set of messages.

    ``arrays[k][p]`` is the k-th attribute of rank ``p``'s elements (ids,
    positions, velocities, ...).  Attribute rows for one destination are
    packed into a single message, so the per-message latency is paid once
    instead of once per attribute — the way a real particle code ships
    molecule records.  Returns ``out[k][p]`` with the same arrival order
    as :func:`scatter_append`.
    """
    if not arrays:
        return []
    for k, vs in enumerate(arrays):
        machine.check_per_rank(vs, f"arrays[{k}]")
    n = machine.n_ranks
    n_attr = len(arrays)
    send = [[None] * n for _ in machine.ranks()]
    for p in machine.ranks():
        expected = int(sched.send_sizes(p).sum())
        for k in range(n_attr):
            v = np.asarray(arrays[k][p])
            if v.shape[0] != expected:
                raise ValueError(
                    f"rank {p}, attribute {k}: {v.shape[0]} elements, "
                    f"schedule covers {expected}"
                )
        for q in machine.ranks():
            sel = sched.send_sel[p][q]
            if sel.size:
                send[p][q] = tuple(
                    np.asarray(arrays[k][p])[sel] for k in range(n_attr)
                )
        machine.charge_copyops(p, n_attr * expected, category)
    received = machine.alltoallv(send, tag="scatter_append", category=category)
    out: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
    for p in machine.ranks():
        parts: list[list[np.ndarray]] = [[] for _ in range(n_attr)]
        source_order = [p] + [q for q in machine.ranks() if q != p]
        got_any = False
        for q in source_order:
            got = received[p][q]
            if got is None:
                continue
            got_any = True
            for k in range(n_attr):
                parts[k].append(np.asarray(got[k]))
            if q != p:
                machine.charge_copyops(p, n_attr * np.shape(got[0])[0],
                                       category)
        for k in range(n_attr):
            if got_any and parts[k]:
                out[k].append(np.concatenate(parts[k], axis=0))
            else:
                v = np.asarray(arrays[k][p])
                out[k].append(np.zeros((0,) + v.shape[1:], dtype=v.dtype))
    return out
