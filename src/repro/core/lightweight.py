"""Light-weight communication schedules (paper §3.2.1, §4.2).

For placement-order-insensitive data movement — particle codes appending
molecules to their new cells — CHAOS skips index translation and the
permutation list entirely.  A light-weight schedule is built directly from
a per-element *destination rank* array: one bucketing pass plus a message-
size exchange.  It is both cheaper to construct (no hash table, no
translation-table lookups) and cheaper to use (receivers append, never
reorder), which is why ``scatter_append`` beats ``gather``/``scatter`` by
large factors in DSMC (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends.base import resolve_backend
from repro.core.compiled import compile_lightweight_schedule
from repro.sim.machine import Machine


@dataclass
class LightweightSchedule:
    """Destination-bucketed move plan, rank-major.

    ``send_sel[p][q]`` holds positions (into rank ``p``'s source arrays)
    of elements destined for rank ``q`` — including ``q == p`` for
    elements that stay local.  ``recv_counts[p][q]`` is how many elements
    ``p`` receives from ``q``.
    """

    n_ranks: int
    send_sel: list[list[np.ndarray]]
    recv_counts: np.ndarray  # (n_ranks, n_ranks): [p][q] = p receives from q

    def __post_init__(self):
        if len(self.send_sel) != self.n_ranks:
            raise ValueError("send_sel must have one row per rank")
        # index arrays are int64 by contract, whatever the caller built
        self.send_sel = [
            [np.asarray(a, dtype=np.int64) for a in row]
            for row in self.send_sel
        ]
        self.recv_counts = np.asarray(self.recv_counts, dtype=np.int64)
        if self.recv_counts.shape != (self.n_ranks, self.n_ranks):
            raise ValueError("recv_counts must be (n_ranks, n_ranks)")
        for p in range(self.n_ranks):
            for q in range(self.n_ranks):
                if self.send_sel[p][q].size != self.recv_counts[q][p]:
                    raise ValueError(
                        f"inconsistent: {p} sends {self.send_sel[p][q].size} "
                        f"to {q}, which expects {self.recv_counts[q][p]}"
                    )

    def recv_total(self, rank: int) -> int:
        """Total elements rank will hold after the move (incl. kept)."""
        return int(self.recv_counts[rank].sum())

    def send_sizes(self, rank: int) -> np.ndarray:
        return np.array(
            [self.send_sel[rank][q].size for q in range(self.n_ranks)],
            dtype=np.int64,
        )

    def total_messages(self) -> int:
        return sum(
            1
            for p in range(self.n_ranks)
            for q in range(self.n_ranks)
            if p != q and self.send_sel[p][q].size
        )

    def total_moved(self) -> int:
        """Elements crossing rank boundaries (excludes kept-local)."""
        return int(
            sum(
                self.send_sel[p][q].size
                for p in range(self.n_ranks)
                for q in range(self.n_ranks)
                if p != q
            )
        )


def build_lightweight_schedule(
    machine: Machine,
    dest_ranks: list[np.ndarray],
    category: str = "inspector",
) -> LightweightSchedule:
    """Build a light-weight schedule from per-element destination ranks.

    ``dest_ranks[p][i]`` is the rank that element ``i`` of rank ``p``'s
    local arrays must move to.  Cost: one local bucketing pass per rank
    plus a single message-size exchange — no translation table, no hash
    table, no permutation list.
    """
    machine.check_per_rank(dest_ranks, "dest_ranks")
    n = machine.n_ranks
    z = lambda: np.zeros(0, dtype=np.int64)  # noqa: E731
    send_sel: list[list[np.ndarray]] = [[z() for _ in range(n)] for _ in range(n)]

    for p in machine.ranks():
        d = np.asarray(dest_ranks[p], dtype=np.int64)
        if d.size and (d.min() < 0 or d.max() >= n):
            bad = d[(d < 0) | (d >= n)][0]
            raise ValueError(f"destination rank {bad} out of range on rank {p}")
        machine.charge_memops(p, d.size, category)
        if d.size == 0:
            continue
        order = np.argsort(d, kind="stable")
        sorted_d = d[order]
        bounds = np.searchsorted(sorted_d, np.arange(n + 1, dtype=np.int64))
        for q in machine.ranks():
            lo, hi = bounds[q], bounds[q + 1]
            if lo != hi:
                send_sel[p][q] = order[lo:hi].astype(np.int64)

    lengths = [
        [send_sel[p][q].size if p != q else 0 for q in machine.ranks()]
        for p in machine.ranks()
    ]
    machine.alltoall_lengths(lengths, tag="lw_sizes", category=category)
    recv_counts = np.zeros((n, n), dtype=np.int64)
    for p in machine.ranks():
        for q in machine.ranks():
            recv_counts[q][p] = send_sel[p][q].size
    return LightweightSchedule(n_ranks=n, send_sel=send_sel,
                               recv_counts=recv_counts)


def scatter_append(
    machine: Machine,
    sched: LightweightSchedule,
    values: list[np.ndarray],
    category: str = "comm",
    backend=None,
) -> list[np.ndarray]:
    """Move elements to their destinations, appending in arrival order.

    ``values[p]`` is rank ``p``'s source array (1-D, or 2-D with one row
    per element).  Returns the new per-rank arrays: kept-local elements
    first (in original relative order), then arrivals ordered by source
    rank — an arbitrary but deterministic order, which is exactly what
    "unordered append" semantics permit.

    Multiple aligned arrays (e.g. velocity components) can be moved with
    the same schedule by calling this once per array — the schedule is the
    expensive part, reusing it is free.
    """
    machine.check_per_rank(values, "values")
    plan = compile_lightweight_schedule(sched)
    for p in machine.ranks():
        v = np.asarray(values[p])
        expected = plan.send_idx[p].size
        if v.shape[0] != expected:
            raise ValueError(
                f"rank {p}: values has {v.shape[0]} elements, schedule "
                f"covers {expected}"
            )
    return resolve_backend(backend).scatter_append(machine, sched, values,
                                                   category)


def scatter_append_multi(
    machine: Machine,
    sched: LightweightSchedule,
    arrays: list[list[np.ndarray]],
    category: str = "comm",
    backend=None,
) -> list[list[np.ndarray]]:
    """Move several aligned array sets with ONE set of messages.

    ``arrays[k][p]`` is the k-th attribute of rank ``p``'s elements (ids,
    positions, velocities, ...).  Attribute rows for one destination are
    packed into a single message, so the per-message latency is paid once
    instead of once per attribute — the way a real particle code ships
    molecule records.  Returns ``out[k][p]`` with the same arrival order
    as :func:`scatter_append`.
    """
    if not arrays:
        return []
    for k, vs in enumerate(arrays):
        machine.check_per_rank(vs, f"arrays[{k}]")
    plan = compile_lightweight_schedule(sched)
    for p in machine.ranks():
        expected = plan.send_idx[p].size
        for k in range(len(arrays)):
            v = np.asarray(arrays[k][p])
            if v.shape[0] != expected:
                raise ValueError(
                    f"rank {p}, attribute {k}: {v.shape[0]} elements, "
                    f"schedule covers {expected}"
                )
    return resolve_backend(backend).scatter_append_multi(machine, sched,
                                                         arrays, category)
