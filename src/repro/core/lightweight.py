"""Light-weight communication schedules (paper §3.2.1, §4.2).

For placement-order-insensitive data movement — particle codes appending
molecules to their new cells — CHAOS skips index translation and the
permutation list entirely.  A light-weight schedule is built directly from
a per-element *destination rank* array: one bucketing pass plus a message-
size exchange.  It is both cheaper to construct (no hash table, no
translation-table lookups) and cheaper to use (receivers append, never
reorder), which is why ``scatter_append`` beats ``gather``/``scatter`` by
large factors in DSMC (Table 4).

Like :class:`~repro.core.schedule.Schedule`, the plan is CSR-native: one
flat int64 selection vector per rank plus a per-destination offset
vector — the bucketing argsort's output *is* the storage, no per-pair
list assembly happens at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiled import (
    compile_lightweight_schedule,
    csr_counts,
    normalize_csr,
    offsets_from_counts,
)
from repro.core.context import ensure_context


@dataclass
class LightweightSchedule:
    """Destination-bucketed move plan, CSR-native and rank-major.

    ``send_sel[p]`` holds positions (into rank ``p``'s source arrays) of
    every element, concatenated destination-ascending — including the
    kept-local segment for ``q == p``; ``send_offsets[p]`` is the
    ``(n_ranks + 1,)`` delimiter vector (the segment for ``q`` is
    ``send_sel[p][send_offsets[p][q]:send_offsets[p][q + 1]]``).
    ``recv_counts[p][q]`` is how many elements ``p`` receives from ``q``.
    """

    n_ranks: int
    send_sel: list[np.ndarray]
    send_offsets: list[np.ndarray]
    recv_counts: np.ndarray  # (n_ranks, n_ranks): [p][q] = p receives from q

    def __post_init__(self):
        if len(self.send_sel) != self.n_ranks:
            raise ValueError("send_sel must have one flat array per rank")
        self.send_sel, self.send_offsets, send_counts = normalize_csr(
            self.send_sel, self.send_offsets, self.n_ranks, "send_sel"
        )
        self.recv_counts = np.asarray(self.recv_counts, dtype=np.int64)
        if self.recv_counts.shape != (self.n_ranks, self.n_ranks):
            raise ValueError("recv_counts must be (n_ranks, n_ranks)")
        if not np.array_equal(send_counts, self.recv_counts.T):
            p, q = np.argwhere(send_counts != self.recv_counts.T)[0]
            raise ValueError(
                f"inconsistent: {p} sends {send_counts[p, q]} "
                f"to {q}, which expects {self.recv_counts[q, p]}"
            )

    # -- flat layout accessors ------------------------------------------
    def send_view(self, rank: int, dest: int) -> np.ndarray:
        """Zero-copy view of ``rank``'s selection for ``dest``."""
        off = self.send_offsets[rank]
        return self.send_sel[rank][int(off[dest]):int(off[dest + 1])]

    def recv_total(self, rank: int) -> int:
        """Total elements rank will hold after the move (incl. kept)."""
        return int(self.recv_counts[rank].sum())

    def send_sizes(self, rank: int) -> np.ndarray:
        return np.diff(self.send_offsets[rank])

    def total_messages(self) -> int:
        off_diag = csr_counts(self.send_offsets)
        np.fill_diagonal(off_diag, 0)
        return int(np.count_nonzero(off_diag))

    def total_moved(self) -> int:
        """Elements crossing rank boundaries (excludes kept-local)."""
        off_diag = csr_counts(self.send_offsets)
        np.fill_diagonal(off_diag, 0)
        return int(off_diag.sum())


def build_lightweight_schedule(
    ctx,
    dest_ranks: list[np.ndarray],
    category: str = "inspector",
) -> LightweightSchedule:
    """Build a light-weight schedule from per-element destination ranks.

    ``dest_ranks[p][i]`` is the rank that element ``i`` of rank ``p``'s
    local arrays must move to.  Cost: one local bucketing pass per rank
    plus a single message-size exchange — no translation table, no hash
    table, no permutation list.  The stable bucketing argsort is emitted
    directly as the CSR selection vector.
    """
    ctx = ensure_context(ctx, "build_lightweight_schedule")
    machine = ctx.machine
    machine.check_per_rank(dest_ranks, "dest_ranks")
    n = machine.n_ranks
    counts = np.zeros((n, n), dtype=np.int64)
    send_sel: list[np.ndarray] = []
    send_offsets: list[np.ndarray] = []

    for p in machine.ranks():
        d = np.asarray(dest_ranks[p], dtype=np.int64)
        if d.size and (d.min() < 0 or d.max() >= n):
            bad = d[(d < 0) | (d >= n)][0]
            raise ValueError(f"destination rank {bad} out of range on rank {p}")
        machine.charge_memops(p, d.size, category)
        if d.size == 0:
            send_sel.append(np.zeros(0, dtype=np.int64))
            send_offsets.append(offsets_from_counts(counts[p]))
            continue
        # destinations are ranks < n: a narrow dtype makes the stable
        # radix argsort several times cheaper than on int64
        if n <= np.iinfo(np.uint16).max:
            order = np.argsort(d.astype(np.uint16), kind="stable")
        else:
            order = np.argsort(d, kind="stable")
        counts[p] = np.bincount(d, minlength=n)
        send_sel.append(np.asarray(order, dtype=np.int64))
        send_offsets.append(offsets_from_counts(counts[p]))

    machine.alltoall_lengths_compiled(counts, tag="lw_sizes",
                                      category=category)
    return LightweightSchedule(n_ranks=n, send_sel=send_sel,
                               send_offsets=send_offsets,
                               recv_counts=counts.T.copy())


def scatter_append(
    ctx,
    sched: LightweightSchedule,
    values: list[np.ndarray],
    category: str = "comm",
) -> list[np.ndarray]:
    """Move elements to their destinations, appending in arrival order.

    ``values[p]`` is rank ``p``'s source array (1-D, or 2-D with one row
    per element).  Returns the new per-rank arrays: kept-local elements
    first (in original relative order), then arrivals ordered by source
    rank — an arbitrary but deterministic order, which is exactly what
    "unordered append" semantics permit.

    Multiple aligned arrays (e.g. velocity components) can be moved with
    the same schedule by calling this once per array — the schedule is the
    expensive part, reusing it is free.
    """
    ctx = ensure_context(ctx, "scatter_append")
    machine = ctx.machine
    machine.check_per_rank(values, "values")
    plan = compile_lightweight_schedule(sched)
    for p in machine.ranks():
        v = np.asarray(values[p])
        expected = plan.send_idx[p].size
        if v.shape[0] != expected:
            raise ValueError(
                f"rank {p}: values has {v.shape[0]} elements, schedule "
                f"covers {expected}"
            )
    return ctx.backend.scatter_append(ctx, sched, values, category)


def scatter_append_multi(
    ctx,
    sched: LightweightSchedule,
    arrays: list[list[np.ndarray]],
    category: str = "comm",
) -> list[list[np.ndarray]]:
    """Move several aligned array sets with ONE set of messages.

    ``arrays[k][p]`` is the k-th attribute of rank ``p``'s elements (ids,
    positions, velocities, ...).  Attribute rows for one destination are
    packed into a single message, so the per-message latency is paid once
    instead of once per attribute — the way a real particle code ships
    molecule records.  Returns ``out[k][p]`` with the same arrival order
    as :func:`scatter_append`.
    """
    ctx = ensure_context(ctx, "scatter_append_multi")
    machine = ctx.machine
    if not arrays:
        return []
    for k, vs in enumerate(arrays):
        machine.check_per_rank(vs, f"arrays[{k}]")
    plan = compile_lightweight_schedule(sched)
    for p in machine.ranks():
        expected = plan.send_idx[p].size
        for k in range(len(arrays)):
            v = np.asarray(arrays[k][p])
            if v.shape[0] != expected:
                raise ValueError(
                    f"rank {p}, attribute {k}: {v.shape[0]} elements, "
                    f"schedule covers {expected}"
                )
    return ctx.backend.scatter_append_multi(ctx, sched, arrays, category)


def append_phase(sched: LightweightSchedule, values: list[np.ndarray]):
    """A :func:`scatter_append` as a phase for
    :func:`~repro.core.executor.run_pipeline` — e.g. migrating several
    aligned particle attributes over one schedule in a single fused
    pass.  The phase's result slot holds the new per-rank arrays."""
    from repro.core.executor import PipelinePhase

    return PipelinePhase("append", sched, values)
