"""High-level CHAOS facade: distributed arrays and the six-phase loop flow.

This module wires the lower-level pieces (translation tables, hash tables,
schedules, executors) into the workflow of Figure 4:

  A. data partitioning      → :meth:`ChaosRuntime.irregular_table` et al.
  B. data remapping         → :meth:`DistributedArray.redistribute`
  C. iteration partitioning → :func:`repro.core.iteration.partition_iterations`
  D. iteration remapping    → :meth:`IterationAssignment.remap_iteration_data`
  E. inspector              → :meth:`ChaosRuntime.hash_indirection` /
                              :meth:`ChaosRuntime.build_schedule`
  F. executor               → :meth:`ChaosRuntime.gather` /
                              :meth:`ChaosRuntime.scatter_add` / ...

Applications with special structure (CHARMM, DSMC) use the pieces directly;
the facade keeps simple irregular loops (Figure 1) to a few lines — see
``examples/quickstart.py``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.context import ExecutionContext, resolve_component
from repro.core.distribution import (
    BlockDistribution,
    CyclicDistribution,
    Distribution,
)
from repro.core.executor import (
    allocate_ghosts,
    gather,
    scatter,
    scatter_op,
    stack_local_ghost,
)
from repro.core.hashtable import IndexHashTable, StampExpr
from repro.core.inspector import (
    chaos_hash,
    clear_stamp,
    delta_rebuild_schedule,
    localize_only,
    make_hash_tables,
    rehash_delta,
)
from repro.core.lightweight import build_lightweight_schedule, scatter_append
from repro.core.remap import remap, remap_array
from repro.core.reuse import CacheStats, DeltaFallback
from repro.core.schedule import Schedule, build_schedule
from repro.core.translation import TranslationTable
from repro.sim.machine import Machine


class DistributedArray:
    """A global array partitioned across the machine's ranks.

    ``local[p]`` holds rank ``p``'s elements in local-offset order; rows
    (axis 0) are distributed, trailing dimensions ride along (so an
    ``(n, 3)`` coordinate array distributes by atom).
    """

    def __init__(self, machine: Machine, ttable: TranslationTable,
                 local: list[np.ndarray]):
        machine.check_per_rank(local, "local arrays")
        for p in machine.ranks():
            expect = ttable.dist.local_size(p)
            if np.asarray(local[p]).shape[0] != expect:
                raise ValueError(
                    f"rank {p}: local array has {np.asarray(local[p]).shape[0]}"
                    f" rows, distribution owns {expect}"
                )
        self.machine = machine
        self.ttable = ttable
        self.local = [np.asarray(a) for a in local]

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, machine: Machine, ttable: TranslationTable,
                    global_array: np.ndarray) -> "DistributedArray":
        """Scatter a host-side global array out to the ranks."""
        g = np.asarray(global_array)
        if g.shape[0] != ttable.dist.n_global:
            raise ValueError(
                f"global array has {g.shape[0]} rows, distribution expects "
                f"{ttable.dist.n_global}"
            )
        local = [g[ttable.dist.global_indices(p)] for p in machine.ranks()]
        return cls(machine, ttable, local)

    def to_global(self) -> np.ndarray:
        """Assemble the global array on the host (test/verification aid)."""
        dist = self.ttable.dist
        shape = (dist.n_global,) + self.local[0].shape[1:]
        out = np.zeros(shape, dtype=self.local[0].dtype)
        for p in self.machine.ranks():
            out[dist.global_indices(p)] = self.local[p]
        return out

    # ------------------------------------------------------------------
    @property
    def dtype(self):
        return self.local[0].dtype

    @property
    def n_global(self) -> int:
        return self.ttable.dist.n_global

    def local_sizes(self) -> np.ndarray:
        return self.ttable.dist.local_sizes()

    def redistribute(self, new_ttable: TranslationTable,
                     category: str = "remap", ctx=None
                     ) -> "DistributedArray":
        """Phase B: move to a new distribution (charged remap).

        ``ctx`` defaults to a context resolved from this array's
        machine with the process default backend; a context created
        here is also closed here, so the backend's per-context
        resources cannot outlive the call.
        """
        owned = ctx is None
        if owned:
            ctx = ExecutionContext.resolve(self.machine)
        elif not isinstance(ctx, ExecutionContext):
            raise TypeError(
                f"redistribute: ctx must be an ExecutionContext, got "
                f"{ctx!r}"
            )
        try:
            plan = remap(ctx, self.ttable.dist, new_ttable.dist,
                         category=category)
            new_local = remap_array(ctx, plan, self.local,
                                    category=category)
        finally:
            if owned:
                ctx.close()
        return DistributedArray(self.machine, new_ttable, new_local)

    def copy(self) -> "DistributedArray":
        return DistributedArray(
            self.machine, self.ttable, [a.copy() for a in self.local]
        )


class ChaosRuntime:
    """Convenience binding of an execution context to the CHAOS primitives.

    Owns one hash-table group per translation table and exposes the
    context's modification record + schedule cache, so adaptive
    applications get stamp reuse and schedule reuse without extra
    bookkeeping.

    Construct from an :class:`~repro.core.context.ExecutionContext`
    (``ChaosRuntime(ExecutionContext.resolve(machine, "serial"))``) or
    directly from a :class:`Machine`, in which case one context with the
    default backend is resolved at init.  The context's backend runs
    every phase — index analysis, schedule generation, translation
    lookups, and executor data transport; hash tables are created with
    its key store, so serial vs vectorized vs threaded is selectable
    end-to-end.

    The runtime *owns the context's lifecycle*: :meth:`close` (or use
    as a ``with`` block) tears down the backend's per-context resources
    — the threaded backend's worker pool first of all.  Closing is
    idempotent; runtimes sharing one context share its resources, so
    whichever owner closes first closes for all.

    Note that the schedule cache is *per context*: two runtimes built
    from the same context share it, so cache keys (caller-chosen loop
    ids) must be distinct across them — pass ``ctx.fresh_services()`` to
    a runtime that needs isolated caches.
    """

    def __init__(self, ctx):
        ctx = resolve_component(ctx, "ChaosRuntime")
        self.ctx = ctx
        self.machine = ctx.machine
        self._htables: dict[int, list[IndexHashTable]] = {}
        self.modification_record = ctx.record
        self.schedule_cache = ctx.schedule_cache

    @property
    def backend(self):
        """The resolved backend this runtime executes with."""
        return self.ctx.backend

    # ---- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Tear down the context's backend resources (idempotent)."""
        self.ctx.close()

    def __enter__(self) -> "ChaosRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def cache_stats(self, key: str, fused: bool = False) -> CacheStats:
        """Structured counters of the context's :class:`ScheduleCache` entry.

        Mirrors :meth:`repro.lang.program.ProgramInstance.cache_stats`
        so both entry points report schedule-reuse counters uniformly;
        ``key`` is the caller-chosen loop id handed to the cache.  The
        returned :class:`~repro.core.reuse.CacheStats` compares equal to
        and unpacks as the historical ``(hits, builds)`` tuple, and
        additionally carries ``delta_rebuilds``, ``evictions`` and
        ``resident_bytes``.  With ``fused=True`` it reports the loop's
        *fused-plan* entry instead (the chain cached by
        ``run_pipeline(..., loop_id=key)``), so fusion effectiveness is
        observable per loop id.
        """
        if fused:
            return self.schedule_cache.fused_stats(key)
        return self.schedule_cache.stats(key)

    def total_cache_stats(self, prefix: str | None = None) -> CacheStats:
        """Aggregate :class:`CacheStats` over every cached loop id."""
        return self.schedule_cache.total_stats(prefix)

    # ---- Phase A: distributions/translation tables --------------------
    def block_table(self, n_global: int, storage: str = "replicated"
                    ) -> TranslationTable:
        return TranslationTable(
            self.machine, BlockDistribution(n_global, self.machine.n_ranks),
            storage=storage,
        )

    def cyclic_table(self, n_global: int, storage: str = "replicated"
                     ) -> TranslationTable:
        return TranslationTable(
            self.machine, CyclicDistribution(n_global, self.machine.n_ranks),
            storage=storage,
        )

    def irregular_table(self, map_array, storage: str = "replicated",
                        page_size: int = 1024) -> TranslationTable:
        return TranslationTable.from_map(
            self.machine, map_array, storage=storage, page_size=page_size
        )

    def table_for(self, dist: Distribution, storage: str = "replicated"
                  ) -> TranslationTable:
        return TranslationTable(self.machine, dist, storage=storage)

    # ---- distributed arrays -------------------------------------------
    def distribute(self, global_array: np.ndarray, ttable: TranslationTable
                   ) -> DistributedArray:
        return DistributedArray.from_global(self.machine, ttable, global_array)

    def zeros_like_table(self, ttable: TranslationTable, dtype=np.float64,
                         trailing: tuple = ()) -> DistributedArray:
        local = [
            np.zeros((ttable.dist.local_size(p),) + trailing, dtype=dtype)
            for p in self.machine.ranks()
        ]
        return DistributedArray(self.machine, ttable, local)

    # ---- Phase E: inspector --------------------------------------------
    def hash_tables(self, ttable: TranslationTable) -> list[IndexHashTable]:
        key = id(ttable)
        if key not in self._htables:
            self._htables[key] = make_hash_tables(self.ctx, ttable)
        return self._htables[key]

    def drop_hash_tables(self, ttable: TranslationTable) -> None:
        self._htables.pop(id(ttable), None)

    def hash_indirection(
        self,
        ttable: TranslationTable,
        indices: list[np.ndarray | None],
        stamp: str,
    ) -> list[np.ndarray]:
        """``CHAOS_hash``: hash + translate + localize one indirection array."""
        return chaos_hash(self.ctx, self.hash_tables(ttable), ttable,
                          indices, stamp)

    def localize(self, ttable: TranslationTable,
                 indices: list[np.ndarray | None]) -> list[np.ndarray]:
        return localize_only(self.ctx, self.hash_tables(ttable), indices)

    def clear_stamp(self, ttable: TranslationTable, stamp: str,
                    release: bool = False,
                    purge: bool | None = None) -> int:
        return clear_stamp(self.ctx, self.hash_tables(ttable), stamp,
                           release=release, purge=purge)

    def build_schedule(self, ttable: TranslationTable,
                       expr: StampExpr | str) -> Schedule:
        """``CHAOS_schedule``: build from stamped hash-table entries."""
        return build_schedule(self.ctx, self.hash_tables(ttable), expr)

    def stamp_expr(self, ttable: TranslationTable, *names: str) -> StampExpr:
        """Union stamp expression (merged schedules) by name."""
        return self.hash_tables(ttable)[0].expr(*names)

    # ---- Phase F: executor ----------------------------------------------
    def gather(self, sched: Schedule, x: DistributedArray,
               ghosts: list[np.ndarray] | None = None) -> list[np.ndarray]:
        return gather(self.ctx, sched, x.local, ghosts)

    def scatter(self, sched: Schedule, x: DistributedArray,
                ghosts: list[np.ndarray]) -> None:
        scatter(self.ctx, sched, x.local, ghosts)

    def scatter_add(self, sched: Schedule, x: DistributedArray,
                    ghosts: list[np.ndarray]) -> None:
        scatter_op(self.ctx, sched, x.local, ghosts, np.add)

    def scatter_reduce(self, sched: Schedule, x: DistributedArray,
                       ghosts: list[np.ndarray], op) -> None:
        scatter_op(self.ctx, sched, x.local, ghosts, op)

    def ghosts_for(self, sched: Schedule, x: DistributedArray
                   ) -> list[np.ndarray]:
        return allocate_ghosts(sched, x.local)

    # ---- light-weight path ----------------------------------------------
    def lightweight_schedule(self, dest_ranks: list[np.ndarray]):
        return build_lightweight_schedule(self.ctx, dest_ranks)

    def scatter_append(self, lw_sched, values: list[np.ndarray]
                       ) -> list[np.ndarray]:
        return scatter_append(self.ctx, lw_sched, values)


class IrregularReduction:
    """The canonical Figure-1 loop, fully orchestrated.

    Represents ``forall i: lhs[A[i]] op= kernel(rhs0[B0[i]], rhs1[B1[i]], …)``
    where ``A``/``Bk`` are per-rank slices of indirection arrays holding
    *global* indices into arrays distributed like ``ttable``.

    ``setup()`` runs the inspector once (hash + schedule); ``execute()``
    runs the executor any number of times; ``adapt()`` re-hashes a changed
    indirection array, reusing unchanged index analysis.  Both route
    through the context's :class:`~repro.core.reuse.ScheduleCache` under
    loop id ``name``: an ``adapt`` that names the *touched positions*
    records a delta payload and repairs the cached schedule incrementally
    (``rehash_delta`` + ``delta_rebuild_schedule`` — bitwise-identical to
    a full rebuild, cost proportional to the touched subset); an
    untargeted ``adapt`` falls back to the full clear/rehash/rebuild.
    """

    def __init__(self, runtime: ChaosRuntime, ttable: TranslationTable,
                 name: str = "loop"):
        self.rt = runtime
        self.ttable = ttable
        self.name = name
        self._indirections: dict[str, list[np.ndarray]] = {}
        self._localized: dict[str, list[np.ndarray]] = {}
        self._schedule: Schedule | None = None
        self._stamps: list[str] = []

    def _stamp_of(self, name: str) -> str:
        return f"{self.name}:{name}"

    def bind(self, **indirections: list[np.ndarray]) -> "IrregularReduction":
        """Bind named indirection arrays (per-rank global-index slices)."""
        for nm, per_rank in indirections.items():
            self.rt.machine.check_per_rank(per_rank, f"indirection {nm!r}")
            self._indirections[nm] = [np.asarray(a, dtype=np.int64)
                                      for a in per_rank]
            # payload-less touch: a (re)bound array invalidates any
            # cached schedule and breaks pending delta chains
            self.rt.modification_record.touch(self._stamp_of(nm))
        return self

    def setup(self) -> Schedule:
        """Inspector: hash every indirection array, build merged schedule."""
        if not self._indirections:
            raise RuntimeError("bind() indirection arrays before setup()")
        self._stamps = [self._stamp_of(nm) for nm in self._indirections]
        return self._rebuild()

    def adapt(
        self,
        name: str,
        new_per_rank: list[np.ndarray],
        touched: list[np.ndarray] | None = None,
    ) -> Schedule:
        """One indirection array changed: re-hash it, repair the schedule.

        ``touched`` (optional) gives per-rank *positions* into the
        array's slices that may differ from the currently bound values;
        all other positions must be unchanged.  With it, the update is
        recorded as a delta payload and the cached schedule is repaired
        incrementally; without it the whole array is re-hashed and the
        schedule rebuilt from scratch.  Either way the result is
        identical to a cold inspector run over the new values.
        """
        if name not in self._indirections:
            raise KeyError(f"unknown indirection array {name!r}")
        m = self.rt.machine
        stamp = self._stamp_of(name)
        old = self._indirections[name]
        new = [np.asarray(a, dtype=np.int64) for a in new_per_rank]
        m.check_per_rank(new, f"indirection {name!r}")
        if touched is None:
            self.rt.modification_record.touch(stamp)
        else:
            m.check_per_rank(touched, f"touched positions for {name!r}")
            pos = [np.asarray(t, dtype=np.int64) for t in touched]
            payload = (
                pos,
                [old[p][pos[p]] for p in m.ranks()],
                [new[p][pos[p]] for p in m.ranks()],
            )
            self.rt.modification_record.touch(stamp, delta=payload)
        self._indirections[name] = new
        return self._rebuild()

    # -- cached inspector ------------------------------------------------
    def _rebuild(self) -> Schedule:
        registry = self.rt.hash_tables(self.ttable)[0].registry
        for s in self._stamps:
            registry.acquire(s)
        masks = {s: registry.mask_of(s) for s in self._stamps}
        sched, _ = self.rt.schedule_cache.get_or_build(
            self.name,
            tuple(self._stamps),
            builder=self._build_full,
            delta_builder=self._apply_deltas,
            dep_masks=masks,
        )
        self._schedule = sched
        return sched

    def _build_full(self) -> Schedule:
        """Cold inspector: clear + re-hash every array, build merged."""
        registry = self.rt.hash_tables(self.ttable)[0].registry
        for nm in self._indirections:
            stamp = self._stamp_of(nm)
            if stamp in registry:
                self.rt.clear_stamp(self.ttable, stamp)
            self._localized[nm] = self.rt.hash_indirection(
                self.ttable, self._indirections[nm], stamp
            )
        expr = self.rt.stamp_expr(self.ttable, *self._stamps)
        return self.rt.build_schedule(self.ttable, expr)

    def _apply_deltas(self, base: Schedule, moved) -> Schedule:
        """Replay touch payloads: subset re-hash + schedule splice."""
        htables = self.rt.hash_tables(self.ttable)
        expr = self.rt.stamp_expr(self.ttable, *self._stamps)
        sched = base
        for stamp, (_mask, chain) in moved.items():
            # stamp is f"{self.name}:{nm}" — strip the loop-name prefix
            # wholesale (the loop name itself may contain colons)
            nm = stamp[len(self.name) + 1:]
            for positions, old_vals, new_vals in chain:
                try:
                    rehash = rehash_delta(
                        self.rt.ctx, htables, self.ttable, stamp,
                        old_vals, new_vals,
                    )
                    sched = delta_rebuild_schedule(
                        self.rt.ctx, htables, expr, sched, rehash
                    )
                except (KeyError, ValueError, RuntimeError) as e:
                    # e.g. the stamp lost its reference counts (tables
                    # purged/manipulated outside this loop) — the full
                    # inspector is always a correct recovery
                    raise DeltaFallback(str(e)) from e
                loc = self._localized[nm]
                for p in self.rt.machine.ranks():
                    if positions[p].size:
                        loc[p][positions[p]] = rehash.localized[p]
        return sched

    @property
    def schedule(self) -> Schedule:
        if self._schedule is None:
            raise RuntimeError("setup() has not been run")
        return self._schedule

    def localized(self, name: str) -> list[np.ndarray]:
        """Per-rank localized indices for one indirection array."""
        if name not in self._localized:
            raise KeyError(f"indirection array {name!r} not hashed")
        return self._localized[name]

    def execute(
        self,
        lhs: DistributedArray,
        lhs_index: str,
        kernel: Callable[..., np.ndarray],
        rhs: dict[str, tuple[DistributedArray, str]],
        op=np.add,
        compute_ops_per_iter: float = 1.0,
    ) -> None:
        """Executor: gather, compute per rank, scatter-reduce.

        ``kernel(*rhs_values)`` receives the gathered right-hand-side
        element values (one array per entry of ``rhs``, in dict order) and
        must return the per-iteration contribution to
        ``lhs[lhs_index[i]]``.
        """
        m = self.rt.machine
        sched = self.schedule
        # gather every distinct rhs array once
        stacked: dict[int, list[np.ndarray]] = {}
        ghost_of: dict[int, list[np.ndarray]] = {}
        for da, _ in rhs.values():
            if id(da) not in stacked:
                g = self.rt.gather(sched, da)
                ghost_of[id(da)] = g
                stacked[id(da)] = stack_local_ghost(da.local, g)
        lhs_ghosts = self.rt.ghosts_for(sched, lhs)
        lhs_stacked = stack_local_ghost(lhs.local, lhs_ghosts)
        lhs_idx = self.localized(lhs_index)
        for p in m.ranks():
            args = [stacked[id(da)][p][self.localized(idx_name)[p]]
                    for da, idx_name in rhs.values()]
            contrib = kernel(*args) if args else kernel()
            n_iter = lhs_idx[p].size
            op.at(lhs_stacked[p], lhs_idx[p], contrib)
            m.charge_compute(p, compute_ops_per_iter * n_iter, "compute")
        # write back: local part mutated in place via views? stacking copies,
        # so split explicitly:
        for p in m.ranks():
            n_local = lhs.local[p].shape[0]
            lhs.local[p][...] = lhs_stacked[p][:n_local]
            lhs_ghosts[p][...] = lhs_stacked[p][n_local:]
        self.rt.scatter_reduce(sched, lhs, lhs_ghosts, op)
