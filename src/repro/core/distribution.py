"""Data distributions: BLOCK, CYCLIC, BLOCK_CYCLIC and irregular.

A distribution maps each global array index to an *owner* rank and a
*local offset* within that rank's partition.  Regular distributions
(BLOCK/CYCLIC) are closed-form; irregular distributions are defined by a
``map`` array (the Fortran D convention of §5.1.1: ``map(i) == p`` assigns
element ``i`` to rank ``p``) with local offsets given by ascending global
index within each owner.

All index math is vectorized over ``numpy`` int64 arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def _as_index_array(indices) -> np.ndarray:
    arr = np.asarray(indices, dtype=np.int64)
    return arr


class Distribution(ABC):
    """Mapping from global indices to (owner rank, local offset)."""

    def __init__(self, n_global: int, n_ranks: int):
        if n_global < 0:
            raise ValueError(f"negative array size {n_global}")
        if n_ranks < 1:
            raise ValueError(f"need at least one rank, got {n_ranks}")
        self.n_global = int(n_global)
        self.n_ranks = int(n_ranks)

    # -- core queries ---------------------------------------------------
    @abstractmethod
    def owner(self, indices) -> np.ndarray:
        """Owner rank of each global index."""

    @abstractmethod
    def local_index(self, indices) -> np.ndarray:
        """Local offset of each global index within its owner."""

    @abstractmethod
    def local_size(self, rank: int) -> int:
        """Number of elements owned by ``rank``."""

    @abstractmethod
    def global_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank`` in local-offset order."""

    # -- derived helpers ------------------------------------------------
    def check_indices(self, indices) -> np.ndarray:
        arr = _as_index_array(indices)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_global):
            bad = arr[(arr < 0) | (arr >= self.n_global)][0]
            raise IndexError(
                f"global index {bad} out of range [0, {self.n_global})"
            )
        return arr

    def owner_and_offset(self, indices) -> tuple[np.ndarray, np.ndarray]:
        return self.owner(indices), self.local_index(indices)

    def local_sizes(self) -> np.ndarray:
        return np.array([self.local_size(p) for p in range(self.n_ranks)],
                        dtype=np.int64)

    def to_map_array(self) -> np.ndarray:
        """The Fortran D ``map`` array: owner of each global element."""
        return self.owner(np.arange(self.n_global, dtype=np.int64))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return (
            self.n_global == other.n_global
            and self.n_ranks == other.n_ranks
            and bool(np.array_equal(self.to_map_array(), other.to_map_array()))
        )

    def __hash__(self):  # distributions are mutable-free but big; id-hash
        return id(self)


class BlockDistribution(Distribution):
    """Contiguous equal-as-possible blocks (HPF BLOCK).

    The first ``n_global % n_ranks`` ranks get one extra element, matching
    the usual convention.
    """

    def __init__(self, n_global: int, n_ranks: int):
        super().__init__(n_global, n_ranks)
        base, extra = divmod(self.n_global, self.n_ranks)
        counts = np.full(self.n_ranks, base, dtype=np.int64)
        counts[:extra] += 1
        self._counts = counts
        self._starts = np.zeros(self.n_ranks + 1, dtype=np.int64)
        np.cumsum(counts, out=self._starts[1:])

    def owner(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return np.searchsorted(self._starts[1:], arr, side="right").astype(np.int64)

    def local_index(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return arr - self._starts[self.owner(arr)]

    def local_size(self, rank: int) -> int:
        return int(self._counts[rank])

    def global_indices(self, rank: int) -> np.ndarray:
        return np.arange(self._starts[rank], self._starts[rank + 1], dtype=np.int64)

    def block_start(self, rank: int) -> int:
        return int(self._starts[rank])


class CyclicDistribution(Distribution):
    """Round-robin assignment (HPF CYCLIC)."""

    def owner(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return arr % self.n_ranks

    def local_index(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return arr // self.n_ranks

    def local_size(self, rank: int) -> int:
        if rank < 0 or rank >= self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        full, rem = divmod(self.n_global, self.n_ranks)
        return full + (1 if rank < rem else 0)

    def global_indices(self, rank: int) -> np.ndarray:
        return np.arange(rank, self.n_global, self.n_ranks, dtype=np.int64)


class BlockCyclicDistribution(Distribution):
    """CYCLIC(k): blocks of size ``k`` dealt round-robin."""

    def __init__(self, n_global: int, n_ranks: int, block_size: int):
        super().__init__(n_global, n_ranks)
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        self.block_size = int(block_size)

    def owner(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return (arr // self.block_size) % self.n_ranks

    def local_index(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        block = arr // self.block_size
        round_ = block // self.n_ranks
        return round_ * self.block_size + arr % self.block_size

    def local_size(self, rank: int) -> int:
        if rank < 0 or rank >= self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        return int(np.count_nonzero(
            self.owner(np.arange(self.n_global, dtype=np.int64)) == rank
        ))

    def global_indices(self, rank: int) -> np.ndarray:
        all_idx = np.arange(self.n_global, dtype=np.int64)
        return all_idx[self.owner(all_idx) == rank]


class IrregularDistribution(Distribution):
    """Distribution defined by an explicit per-element owner map.

    Local offsets follow ascending global index within each owner, the
    CHAOS/PARTI convention.  Owner and offset lookups are O(1) via
    precomputed arrays (this class is the *content* of a translation
    table; the :class:`~repro.core.translation.TranslationTable` decides
    how that content is physically stored and what lookups cost).
    """

    def __init__(self, map_array, n_ranks: int):
        owners = np.asarray(map_array, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError(f"map array must be 1-D, got shape {owners.shape}")
        super().__init__(owners.size, n_ranks)
        if owners.size and (owners.min() < 0 or owners.max() >= n_ranks):
            bad = owners[(owners < 0) | (owners >= n_ranks)][0]
            raise ValueError(f"map entry {bad} outside rank range [0, {n_ranks})")
        self._owners = owners.copy()
        # local offset of element g = its position among owner's elements
        # in ascending global order.  One stable counting pass:
        self._offsets = np.zeros(self.n_global, dtype=np.int64)
        self._globals_by_rank: list[np.ndarray] = []
        for p in range(n_ranks):
            mine = np.flatnonzero(owners == p)
            self._globals_by_rank.append(mine)
            self._offsets[mine] = np.arange(mine.size, dtype=np.int64)
        self._sizes = np.array([g.size for g in self._globals_by_rank],
                               dtype=np.int64)

    def owner(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return self._owners[arr]

    def local_index(self, indices) -> np.ndarray:
        arr = self.check_indices(indices)
        return self._offsets[arr]

    def local_size(self, rank: int) -> int:
        return int(self._sizes[rank])

    def global_indices(self, rank: int) -> np.ndarray:
        return self._globals_by_rank[rank]

    def to_map_array(self) -> np.ndarray:
        return self._owners.copy()

    @classmethod
    def from_partition_lists(cls, parts: list[np.ndarray], n_global: int
                             ) -> "IrregularDistribution":
        """Build from per-rank lists of global indices (a partitioner's
        natural output).  Every global index must appear exactly once."""
        owners = np.full(n_global, -1, dtype=np.int64)
        for p, idx in enumerate(parts):
            arr = np.asarray(idx, dtype=np.int64)
            if arr.size and (arr.min() < 0 or arr.max() >= n_global):
                raise IndexError(f"partition {p} contains out-of-range indices")
            if np.any(owners[arr] != -1):
                dup = arr[owners[arr] != -1][0]
                raise ValueError(f"element {dup} assigned to multiple ranks")
            owners[arr] = p
        if np.any(owners == -1):
            missing = int(np.flatnonzero(owners == -1)[0])
            raise ValueError(f"element {missing} not assigned to any rank")
        return cls(owners, len(parts))
