"""The inspector phase: index analysis (``CHAOS_hash``) and localization.

``chaos_hash`` is the paper's two-step inspector front half (§3.2.2): it
enters an indirection array's global indices into the per-rank hash
tables, translating only the indices *not already present* (the adaptive
reuse win), assigns ghost-buffer slots to new off-processor references,
marks every touched entry with the indirection array's stamp, and returns
the indirection array rewritten to localized indices.

The back half — schedule generation from stamped entries — lives in
:mod:`repro.core.schedule`.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashtable import IndexHashTable, StampRegistry
from repro.core.translation import TranslationTable
from repro.sim.machine import Machine

#: memops charged per hash probe / per new-entry insert
_PROBE_COST = 1
_INSERT_COST = 3


def make_hash_tables(
    machine: Machine, ttable: TranslationTable
) -> list[IndexHashTable]:
    """One hash table per rank for arrays distributed like ``ttable``.

    All tables share one :class:`StampRegistry` so stamp names mean the
    same thing on every rank.
    """
    registry = StampRegistry()
    return [
        IndexHashTable(
            rank=p,
            n_local=ttable.dist.local_size(p),
            registry=registry,
        )
        for p in machine.ranks()
    ]


def chaos_hash(
    machine: Machine,
    htables: list[IndexHashTable],
    ttable: TranslationTable,
    indices: list[np.ndarray | None],
    stamp: str,
    category: str = "inspector",
) -> list[np.ndarray]:
    """Hash one indirection array into the tables; return localized copy.

    ``indices[p]`` is rank ``p``'s slice of the indirection array (global
    indices into the data array described by ``ttable``).  Only indices
    absent from the hash table are translated through the translation
    table — re-hashing a mostly-unchanged indirection array is cheap.

    Returns per-rank localized index arrays: owned references become local
    offsets, off-processor references become ``n_local + buffer_slot``.
    """
    machine.check_per_rank(htables, "hash tables")
    machine.check_per_rank(indices, "indices")
    idx = [
        np.zeros(0, dtype=np.int64) if x is None else np.asarray(x, dtype=np.int64)
        for x in indices
    ]

    # Step 1: probe; find the uniques each rank has never seen.
    new_per_rank: list[np.ndarray] = []
    for p in machine.ranks():
        machine.charge_memops(p, _PROBE_COST * idx[p].size, category)
        new_per_rank.append(htables[p].missing_uniques(idx[p]))

    # Step 2: translate only the new uniques (collective; the expensive
    # part the hash table amortizes away in adaptive runs).
    owners, offsets = ttable.dereference(new_per_rank, category=category)

    # Step 3: insert and stamp.
    localized: list[np.ndarray] = []
    for p in machine.ranks():
        ht = htables[p]
        new = new_per_rank[p]
        machine.charge_memops(p, _INSERT_COST * new.size, category)
        ht.insert_translated(new, owners[p], offsets[p])
        if idx[p].size:
            uniq = np.unique(idx[p])
            slots = ht.lookup_slots(uniq)
            ht.stamp_slots(slots, stamp)
            machine.charge_memops(p, uniq.size, category)
            localized.append(ht.localize(idx[p]))
        else:
            ht.registry.acquire(stamp)  # stamp exists even if rank is empty
            localized.append(np.zeros(0, dtype=np.int64))
    return localized


def clear_stamp(
    machine: Machine,
    htables: list[IndexHashTable],
    stamp: str,
    release: bool = False,
    category: str = "inspector",
) -> int:
    """Clear a stamp on every rank (paper: before re-hashing a regenerated
    non-bonded list, its old entries are cleared and the stamp reused).

    Returns the total number of entries that carried the stamp.
    """
    machine.check_per_rank(htables, "hash tables")
    total = 0
    for p in machine.ranks():
        ht = htables[p]
        machine.charge_memops(p, ht.n_entries, category)
        if stamp in ht.registry:
            total += ht.clear_stamp(stamp, release=False)
    if release and htables and stamp in htables[0].registry:
        htables[0].registry.release(stamp)
    return total


def localize_only(
    machine: Machine,
    htables: list[IndexHashTable],
    indices: list[np.ndarray | None],
    category: str = "inspector",
) -> list[np.ndarray]:
    """Localize indirection arrays already fully present in the tables.

    This is the fast path for *unchanged* indirection arrays: a pure
    lookup, no translation-table traffic at all.
    """
    machine.check_per_rank(htables, "hash tables")
    machine.check_per_rank(indices, "indices")
    out = []
    for p in machine.ranks():
        x = indices[p]
        arr = np.zeros(0, dtype=np.int64) if x is None else np.asarray(x, dtype=np.int64)
        machine.charge_memops(p, _PROBE_COST * arr.size, category)
        out.append(htables[p].localize(arr) if arr.size else arr)
    return out
