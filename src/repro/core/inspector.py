"""The inspector phase: index analysis (``CHAOS_hash``) and localization.

``chaos_hash`` is the paper's two-step inspector front half (§3.2.2): it
enters an indirection array's global indices into the per-rank hash
tables, translating only the indices *not already present* (the adaptive
reuse win), assigns ghost-buffer slots to new off-processor references,
marks every touched entry with the indirection array's stamp, and returns
the indirection array rewritten to localized indices.

The back half — schedule generation from stamped entries — lives in
:mod:`repro.core.schedule`.

Every function takes an :class:`~repro.core.context.ExecutionContext`
first: the context carries the machine and the resolved *backend*
(:mod:`repro.core.backends`) executing the analysis — ``serial``
analyses indices one dict operation at a time (the reference semantics),
``vectorized`` (the default) probes and inserts whole arrays through a
batched open-addressed key store.  The same backend also performs the
translation-table lookups ``chaos_hash`` triggers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ensure_context
from repro.core.hashtable import IndexHashTable, StampExpr, StampRegistry
from repro.core.translation import TranslationTable

#: memops charged per hash probe / per new-entry insert
_PROBE_COST = 1
_INSERT_COST = 3

#: scratch stamp used to build delta schedules; acquired and released
#: within one delta_rebuild_schedule call
_DELTA_STAMP = "__delta__"


def make_hash_tables(
    ctx, ttable: TranslationTable
) -> list[IndexHashTable]:
    """One hash table per rank for arrays distributed like ``ttable``.

    All tables share one :class:`StampRegistry` so stamp names mean the
    same thing on every rank.  The context's backend selects the key
    store backing each table (dict reference vs batched open
    addressing); every store assigns identical slots, so the choice only
    affects wall-clock speed.
    """
    ctx = ensure_context(ctx, "make_hash_tables")
    registry = StampRegistry()
    return [
        IndexHashTable(
            rank=p,
            n_local=ttable.dist.local_size(p),
            registry=registry,
            store=ctx.backend.make_key_store(),
        )
        for p in ctx.machine.ranks()
    ]


def _normalize(indices: list[np.ndarray | None]) -> list[np.ndarray]:
    return [
        np.zeros(0, dtype=np.int64) if x is None
        else np.asarray(x, dtype=np.int64)
        for x in indices
    ]


def chaos_hash(
    ctx,
    htables: list[IndexHashTable],
    ttable: TranslationTable,
    indices: list[np.ndarray | None],
    stamp: str,
    category: str = "inspector",
) -> list[np.ndarray]:
    """Hash one indirection array into the tables; return localized copy.

    ``indices[p]`` is rank ``p``'s slice of the indirection array (global
    indices into the data array described by ``ttable``).  Only indices
    absent from the hash table are translated through the translation
    table — re-hashing a mostly-unchanged indirection array is cheap.

    Returns per-rank localized index arrays: owned references become local
    offsets, off-processor references become ``n_local + buffer_slot``.
    """
    ctx = ensure_context(ctx, "chaos_hash")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    m.check_per_rank(indices, "indices")
    idx = _normalize(indices)
    return ctx.backend.chaos_hash(ctx, htables, ttable, idx, stamp, category)


def clear_stamp(
    ctx,
    htables: list[IndexHashTable],
    stamp: str,
    release: bool = False,
    purge: bool | None = None,
    category: str = "inspector",
) -> int:
    """Clear a stamp on every rank (paper: before re-hashing a regenerated
    non-bonded list, its old entries are cleared and the stamp reused).

    ``purge`` (default: follows ``release``) deletes entries whose stamp
    mask becomes empty — their key-store keys are tombstoned and their
    rows/ghost slots recycled, so releasing a stamp shrinks the tables
    instead of growing them monotonically across adaptive steps.
    Returns the total number of entries that carried the stamp.
    """
    ctx = ensure_context(ctx, "clear_stamp")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    if purge is None:
        purge = release
    total = 0
    for p in m.ranks():
        ht = htables[p]
        m.charge_memops(p, ht.n_entries, category)
        if stamp in ht.registry:
            total += ht.clear_stamp(stamp, release=False, purge=purge)
    if release and htables and stamp in htables[0].registry:
        htables[0].registry.release(stamp)
    return total


@dataclass
class DeltaRehash:
    """Result of :func:`rehash_delta`: what a subset update touched.

    ``affected_slots[p]`` — hash-table slots whose stamp state may have
    changed on rank ``p`` (union of old and new value slots);
    ``pre_masks[p]`` — those slots' stamp masks *before* the update;
    ``localized[p]`` — the new values at the touched positions, already
    localized.  Feed into :func:`delta_rebuild_schedule` to repair a
    cached schedule.
    """

    affected_slots: list[np.ndarray]
    pre_masks: list[np.ndarray]
    localized: list[np.ndarray]


def rehash_delta(
    ctx,
    htables: list[IndexHashTable],
    ttable: TranslationTable,
    stamp: str,
    old_indices: list[np.ndarray | None],
    new_indices: list[np.ndarray | None],
    category: str = "inspector",
) -> DeltaRehash:
    """Re-hash only the *touched subset* of an indirection array.

    ``old_indices[p]`` / ``new_indices[p]`` are the previous and new
    global-index values at the touched positions of rank ``p``'s slice
    (aligned, same length).  Never-seen new values are translated and
    inserted exactly as a cold :func:`chaos_hash` would (sorted-unique
    order, so slot/ghost assignment is identical), and the stamp's
    per-slot reference counts are reconciled — the resulting stamp masks
    match a full clear + rehash of the updated array bit for bit.  Cost
    scales with the touched subset, not the array.

    Requires the stamp to have been hashed with reference counts
    (:func:`chaos_hash` always does) — a stamp manipulated through
    uncounted :meth:`IndexHashTable.stamp_slots` calls must fall back to
    the full clear/rehash path.
    """
    ctx = ensure_context(ctx, "rehash_delta")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    m.check_per_rank(old_indices, "old indices")
    m.check_per_rank(new_indices, "new indices")
    old = _normalize(old_indices)
    new = _normalize(new_indices)
    uniq_old: list[np.ndarray] = []
    cnt_old: list[np.ndarray] = []
    uniq_new: list[np.ndarray] = []
    inv_new: list[np.ndarray] = []
    cnt_new: list[np.ndarray] = []
    pre_slots: list[np.ndarray] = []
    missing: list[np.ndarray] = []
    for p in m.ranks():
        ht = htables[p]
        if old[p].size != new[p].size:
            raise ValueError(
                f"rank {p}: old/new touched values must be aligned "
                f"({old[p].size} vs {new[p].size})"
            )
        m.charge_memops(
            p, _PROBE_COST * (old[p].size + new[p].size), category
        )
        uo, co = np.unique(old[p], return_counts=True)
        un, iv, cn = np.unique(new[p], return_inverse=True,
                               return_counts=True)
        if not ht.has_stamp_counts(stamp):
            if uo.size:
                raise ValueError(
                    f"stamp {stamp!r} has no reference counts on rank "
                    f"{p}; hash it with chaos_hash before delta updates"
                )
            # the original hash saw an empty slice on this rank: start
            # the stamp's refcount plane at zero
            ht.stamp_slots(np.zeros(0, dtype=np.int64), stamp,
                           counts=np.zeros(0, dtype=np.int64))
        slots = ht.lookup_slots(un)
        uniq_old.append(uo)
        cnt_old.append(co)
        uniq_new.append(un)
        inv_new.append(iv)
        cnt_new.append(cn)
        pre_slots.append(slots)
        missing.append(un[slots < 0])

    # translate only the never-seen values (collective)
    owners, offsets = ttable.dereference(ctx, missing, category=category)

    affected: list[np.ndarray] = []
    pre_masks: list[np.ndarray] = []
    localized: list[np.ndarray] = []
    for p in m.ranks():
        ht = htables[p]
        m.charge_memops(p, _INSERT_COST * missing[p].size, category)
        # insert_translated assigns slots in sorted-unique key order —
        # exactly the order ``missing[p]`` is in — so the fresh slots
        # drop straight into the probe results without a second lookup
        fresh = ht.insert_translated(missing[p], owners[p], offsets[p])
        slots_new = pre_slots[p]
        if fresh.size:
            slots_new = slots_new.copy()
            slots_new[slots_new < 0] = fresh
        slots_old = ht.lookup_slots(uniq_old[p])
        if np.any(slots_old < 0):
            bad = uniq_old[p][slots_old < 0][0]
            raise KeyError(
                f"rank {p}: old value {int(bad)} was never hashed"
            )
        aff = np.unique(np.concatenate([slots_old, slots_new]))
        pre = ht.mask[aff].copy()
        ht.stamp_delta(stamp, slots_new, cnt_new[p], slots_old,
                       cnt_old[p])
        m.charge_memops(p, aff.size, category)
        affected.append(aff)
        pre_masks.append(pre)
        # localize through the unique inverse: owned -> local offset,
        # off-processor -> n_local + ghost buf (matches ht.localize)
        loc_un = np.where(
            ht.proc[slots_new] == ht.rank,
            ht.off[slots_new],
            ht.n_local + ht.buf[slots_new],
        ).astype(np.int64)
        localized.append(loc_un[inv_new[p]] if new[p].size
                         else np.zeros(0, dtype=np.int64))
    return DeltaRehash(affected_slots=affected, pre_masks=pre_masks,
                       localized=localized)


def delta_rebuild_schedule(
    ctx,
    htables: list[IndexHashTable],
    expr: StampExpr | str,
    base_schedule,
    rehash: DeltaRehash,
    category: str = "inspector",
):
    """Repair a cached schedule after a :func:`rehash_delta`.

    Selects the entries that *entered* ``expr``'s selection (scratch-
    stamps them and builds a small delta schedule through the backend
    seam — all four backends for free), collects the ghost slots of
    entries that *left*, and splices both into ``base_schedule``.  The
    result is bitwise-identical to a cold ``build_schedule`` over the
    updated tables; cost scales with the touched subset plus one
    table scan, not with a full request exchange.
    """
    from repro.core.schedule import build_schedule, splice_schedules

    ctx = ensure_context(ctx, "delta_rebuild_schedule")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    registry = htables[0].registry
    if _DELTA_STAMP in registry:
        raise RuntimeError(
            "delta_rebuild_schedule is not re-entrant (scratch stamp "
            f"{_DELTA_STAMP!r} is live)"
        )
    registry.acquire(_DELTA_STAMP)
    try:
        dropped_bufs: list[np.ndarray] = []
        for p in m.ranks():
            ht = htables[p]
            aff = rehash.affected_slots[p]
            post = ht.mask[aff]
            sel = ht.expr(expr) if isinstance(expr, str) else expr
            was = sel.matches(rehash.pre_masks[p])
            now = sel.matches(post)
            offp = ht.proc[aff] != ht.rank
            newly = aff[now & ~was & offp]
            dropped = aff[was & ~now & offp]
            dropped_bufs.append(ht.buf[dropped].astype(np.int64))
            if newly.size:
                bit = registry.mask_of(_DELTA_STAMP)
                ht.mask[newly] |= bit
            m.charge_memops(p, aff.size, category)
        delta = build_schedule(ctx, htables, _DELTA_STAMP,
                               category=category)
        return splice_schedules(ctx, htables, base_schedule, delta,
                                dropped_bufs, category=category)
    finally:
        for ht in htables:
            ht.clear_stamp(_DELTA_STAMP, release=False, purge=False)
        registry.release(_DELTA_STAMP)


def localize_only(
    ctx,
    htables: list[IndexHashTable],
    indices: list[np.ndarray | None],
    category: str = "inspector",
) -> list[np.ndarray]:
    """Localize indirection arrays already fully present in the tables.

    This is the fast path for *unchanged* indirection arrays: a pure
    lookup, no translation-table traffic at all.
    """
    ctx = ensure_context(ctx, "localize_only")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    m.check_per_rank(indices, "indices")
    idx = _normalize(indices)
    return ctx.backend.localize(ctx, htables, idx, category)
