"""The inspector phase: index analysis (``CHAOS_hash``) and localization.

``chaos_hash`` is the paper's two-step inspector front half (§3.2.2): it
enters an indirection array's global indices into the per-rank hash
tables, translating only the indices *not already present* (the adaptive
reuse win), assigns ghost-buffer slots to new off-processor references,
marks every touched entry with the indirection array's stamp, and returns
the indirection array rewritten to localized indices.

The back half — schedule generation from stamped entries — lives in
:mod:`repro.core.schedule`.

Every function takes an :class:`~repro.core.context.ExecutionContext`
first: the context carries the machine and the resolved *backend*
(:mod:`repro.core.backends`) executing the analysis — ``serial``
analyses indices one dict operation at a time (the reference semantics),
``vectorized`` (the default) probes and inserts whole arrays through a
batched open-addressed key store.  The same backend also performs the
translation-table lookups ``chaos_hash`` triggers.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import ensure_context
from repro.core.hashtable import IndexHashTable, StampRegistry
from repro.core.translation import TranslationTable

#: memops charged per hash probe / per new-entry insert
_PROBE_COST = 1
_INSERT_COST = 3


def make_hash_tables(
    ctx, ttable: TranslationTable
) -> list[IndexHashTable]:
    """One hash table per rank for arrays distributed like ``ttable``.

    All tables share one :class:`StampRegistry` so stamp names mean the
    same thing on every rank.  The context's backend selects the key
    store backing each table (dict reference vs batched open
    addressing); every store assigns identical slots, so the choice only
    affects wall-clock speed.
    """
    ctx = ensure_context(ctx, "make_hash_tables")
    registry = StampRegistry()
    return [
        IndexHashTable(
            rank=p,
            n_local=ttable.dist.local_size(p),
            registry=registry,
            store=ctx.backend.make_key_store(),
        )
        for p in ctx.machine.ranks()
    ]


def _normalize(indices: list[np.ndarray | None]) -> list[np.ndarray]:
    return [
        np.zeros(0, dtype=np.int64) if x is None
        else np.asarray(x, dtype=np.int64)
        for x in indices
    ]


def chaos_hash(
    ctx,
    htables: list[IndexHashTable],
    ttable: TranslationTable,
    indices: list[np.ndarray | None],
    stamp: str,
    category: str = "inspector",
) -> list[np.ndarray]:
    """Hash one indirection array into the tables; return localized copy.

    ``indices[p]`` is rank ``p``'s slice of the indirection array (global
    indices into the data array described by ``ttable``).  Only indices
    absent from the hash table are translated through the translation
    table — re-hashing a mostly-unchanged indirection array is cheap.

    Returns per-rank localized index arrays: owned references become local
    offsets, off-processor references become ``n_local + buffer_slot``.
    """
    ctx = ensure_context(ctx, "chaos_hash")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    m.check_per_rank(indices, "indices")
    idx = _normalize(indices)
    return ctx.backend.chaos_hash(ctx, htables, ttable, idx, stamp, category)


def clear_stamp(
    ctx,
    htables: list[IndexHashTable],
    stamp: str,
    release: bool = False,
    category: str = "inspector",
) -> int:
    """Clear a stamp on every rank (paper: before re-hashing a regenerated
    non-bonded list, its old entries are cleared and the stamp reused).

    Returns the total number of entries that carried the stamp.
    """
    ctx = ensure_context(ctx, "clear_stamp")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    total = 0
    for p in m.ranks():
        ht = htables[p]
        m.charge_memops(p, ht.n_entries, category)
        if stamp in ht.registry:
            total += ht.clear_stamp(stamp, release=False)
    if release and htables and stamp in htables[0].registry:
        htables[0].registry.release(stamp)
    return total


def localize_only(
    ctx,
    htables: list[IndexHashTable],
    indices: list[np.ndarray | None],
    category: str = "inspector",
) -> list[np.ndarray]:
    """Localize indirection arrays already fully present in the tables.

    This is the fast path for *unchanged* indirection arrays: a pure
    lookup, no translation-table traffic at all.
    """
    ctx = ensure_context(ctx, "localize_only")
    m = ctx.machine
    m.check_per_rank(htables, "hash tables")
    m.check_per_rank(indices, "indices")
    idx = _normalize(indices)
    return ctx.backend.localize(ctx, htables, idx, category)
