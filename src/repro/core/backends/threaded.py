"""Threaded backend: vectorized per-rank kernels fanned over a pool.

Once communication plans are compiled, the CHAOS pipeline is
embarrassingly parallel across ranks: the per-rank kernels of the
executor, lightweight and remap phases (and the owner-grouped schedule
build) read shared inputs and write only rank-owned outputs —
preallocated CSR slices or per-rank arrays.  This backend inherits every
kernel from :class:`~repro.core.backends.vectorized.VectorizedBackend`
and overrides exactly one hook, ``_run_ranks``, to submit the rank loop
to a :class:`concurrent.futures.ThreadPoolExecutor`.

The pool is a *per-context resource*: :meth:`ThreadedBackend.open`
creates it once when an :class:`~repro.core.context.ExecutionContext`
is constructed (worker threads themselves start lazily on first use),
and the owning component's ``close()`` shuts it down deterministically.
A garbage-collection finalizer backs the deterministic path up, so a
context that is dropped without ``close()`` cannot leak OS threads.

Correctness is inherited, not re-derived: all machine accounting
(clocks, traffic) happens on the calling thread in rank order — worker
threads never touch the machine — and each rank kernel computes exactly
what the vectorized backend computes, writing into disjoint outputs.
Results, schedules and traffic statistics are therefore bitwise
identical to ``vectorized`` (enforced by ``tests/test_threaded_backend.py``
three ways against ``serial`` too).

Because the simulated machine runs in one process, the fan-out contends
with the GIL; the win is bounded by how much of each kernel numpy runs
with the GIL released (fancy indexing, argsort, ``ufunc.at``).  Real
speedups need rank counts and payloads large enough to amortize the
submit overhead — the backend exists first of all to prove that the
context seam can host a genuinely concurrent execution strategy.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor

from repro.core.backends.base import BackendResources, register_backend
from repro.core.backends.vectorized import VectorizedBackend


def _pool_width(n_ranks: int) -> int:
    """Worker count: one per rank, capped by the host's cores."""
    return max(1, min(int(n_ranks), os.cpu_count() or 1))


class ThreadedResources(BackendResources):
    """Per-context worker pool (plus its GC safety-net finalizer)."""

    __slots__ = ("pool", "n_workers", "_finalizer")

    def __init__(self, backend, n_ranks: int):
        super().__init__(backend)
        self.n_workers = _pool_width(n_ranks)
        self.pool = ThreadPoolExecutor(
            max_workers=self.n_workers,
            thread_name_prefix="repro-rank",
        )
        # safety net only: deterministic teardown is ctx.close(); the
        # callback must not capture ``self`` or the handle is immortal
        self._finalizer = weakref.finalize(
            self, self.pool.shutdown, wait=False, cancel_futures=True
        )

    def _release(self) -> None:
        self._finalizer.detach()
        self.pool.shutdown(wait=True)


@register_backend
class ThreadedBackend(VectorizedBackend):
    """Vectorized kernels with the rank loops run on a worker pool."""

    name = "threaded"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, ctx) -> ThreadedResources:
        return ThreadedResources(self, ctx.machine.n_ranks)

    # ------------------------------------------------------------------
    # rank-loop execution hook
    # ------------------------------------------------------------------
    def _run_ranks(self, ctx, fn) -> list:
        res = ctx.resources
        if not isinstance(res, ThreadedResources) or res.backend is not self:
            raise RuntimeError(
                "threaded backend invoked on a context whose resources it "
                "does not own; build the context with "
                "ExecutionContext.resolve(machine, 'threaded')"
            )
        if res.closed:
            raise RuntimeError(
                "ExecutionContext already closed: its thread pool was shut "
                "down; create a fresh context for new work"
            )
        futures = [res.pool.submit(fn, p) for p in ctx.machine.ranks()]
        try:
            return [f.result() for f in futures]
        except BaseException:
            # one kernel failed: stop the not-yet-started ranks and wait
            # out the in-flight ones so no worker is still writing into
            # the caller's arrays after the exception propagates
            for f in futures:
                f.cancel()
            for f in futures:
                if not f.cancelled():
                    f.exception()
            raise
