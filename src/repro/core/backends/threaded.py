"""Threaded backend: vectorized per-rank kernels fanned over a pool.

Once communication plans are compiled, the CHAOS pipeline is
embarrassingly parallel across ranks: the per-rank kernels of the
executor, lightweight and remap phases (and the owner-grouped schedule
build) read shared inputs and write only rank-owned outputs —
preallocated CSR slices or per-rank arrays.  This backend inherits every
kernel from :class:`~repro.core.backends.vectorized.VectorizedBackend`
and overrides exactly one hook, ``_run_ranks``, to submit the rank loop
to a :class:`concurrent.futures.ThreadPoolExecutor`.

The pool is a *per-context resource* built on the shared
:class:`~repro.core.backends.base.PooledResources` lifecycle:
:meth:`ThreadedBackend.open` creates it once when an
:class:`~repro.core.context.ExecutionContext` is constructed (worker
threads themselves start lazily on first use), and the owning
component's ``close()`` shuts it down deterministically, with a
garbage-collection finalizer as the safety net.

Correctness is inherited, not re-derived: all machine accounting
(clocks, traffic) happens on the calling thread in rank order — worker
threads never touch the machine — and each rank kernel computes exactly
what the vectorized backend computes, writing into disjoint outputs.
Results, schedules and traffic statistics are therefore bitwise
identical to ``vectorized`` (enforced by ``tests/test_threaded_backend.py``
four ways against ``serial`` and ``multiprocess`` too).

Because the simulated machine runs in one process, the fan-out contends
with the GIL; the win is bounded by how much of each kernel numpy runs
with the GIL released (fancy indexing, argsort, ``ufunc.at``).  Real
speedups need rank counts and payloads large enough to amortize the
submit overhead — for true parallelism over the same kernels see the
``multiprocess`` backend, which runs them in worker *processes* over
shared memory.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.backends.base import (
    PooledResources,
    collect_futures,
    register_backend,
)
from repro.core.backends.vectorized import (
    VectorizedBackend,
    default_fused_registry,
)


class ThreadedResources(PooledResources):
    """Per-context thread pool (plus its GC safety-net finalizer)."""

    __slots__ = ()

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers,
            thread_name_prefix="repro-rank",
        )


@register_backend
class ThreadedBackend(VectorizedBackend):
    """Vectorized kernels with the rank loops run on a worker pool."""

    name = "threaded"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, ctx) -> ThreadedResources:
        res = ThreadedResources(self, ctx.machine.n_ranks)
        res.fused_kernels = default_fused_registry()
        return res

    # ------------------------------------------------------------------
    # rank-loop execution hook
    # ------------------------------------------------------------------
    def _run_ranks(self, ctx, fn) -> list:
        res = self._owned_resources(ctx, ThreadedResources)
        pool = res.ensure_pool()
        return collect_futures(
            [pool.submit(fn, p) for p in ctx.machine.ranks()]
        )
