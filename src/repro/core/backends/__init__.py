"""Pluggable executor backends.

Importing this package registers the four built-in backends:

* ``serial`` — reference pair-loop semantics,
* ``vectorized`` — compiled flat plans (the default),
* ``threaded`` — vectorized kernels with the rank loops fanned out over
  a per-context worker *thread* pool,
* ``multiprocess`` — the same kernels shipped to worker *processes*
  over shared-memory views of the compiled plan buffers.

Selection happens through the
:class:`~repro.core.context.ExecutionContext` every primitive takes
first: ``ExecutionContext.resolve(machine, "serial")`` for an explicit
choice, or ``ExecutionContext.resolve(machine)`` to follow the
process-wide default (:func:`set_default_backend` / ``REPRO_BACKEND``
env var, temporarily overridable with :func:`use_backend`).  Backends
own their per-context resources through :meth:`Backend.open` /
:meth:`Backend.close`; the handle rides on ``ctx.resources``.
"""

from repro.core.backends.base import (
    BACKEND_ENV_VAR,
    Backend,
    BackendResources,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.backends.multiprocess import MultiprocessBackend
from repro.core.backends.serial import SerialBackend
from repro.core.backends.threaded import ThreadedBackend
from repro.core.backends.vectorized import VectorizedBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendResources",
    "MultiprocessBackend",
    "SerialBackend",
    "ThreadedBackend",
    "VectorizedBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
